/**
 * @file
 * Example: the Clifford + kT extension (paper Section 8). At stretched
 * bond lengths the Clifford space alone misses part of the correlation
 * energy; allowing a few T gates — still classically simulable via the
 * exact branch decomposition T = alpha I + beta S — closes much of the
 * gap. This example also demonstrates custom objectives with explicit
 * constraint penalties.
 *
 * Usage: clifford_t_boost [bond_length_angstrom] [max_t_gates]
 */
#include <cstdlib>
#include <iostream>

#include "core/clifford_ansatz.hpp"
#include "core/pipeline.hpp"
#include "problems/molecule_factory.hpp"
#include "statevector/lanczos.hpp"

int
main(int argc, char** argv)
{
    using namespace cafqa;

    const double bond = (argc > 1) ? std::atof(argv[1]) : 1.8;
    const std::size_t max_t =
        (argc > 2) ? static_cast<std::size_t>(std::atoi(argv[2])) : 2;

    const auto system = problems::make_molecular_system("H2", bond);

    // Build the constrained objective by hand (what make_objective does
    // internally): energy + quadratic penalties pinning the neutral
    // singlet sector.
    VqaObjective objective;
    objective.hamiltonian = system.hamiltonian;
    objective.add_number_constraint(system.number_op,
                                    system.n_alpha + system.n_beta, 2.0);
    objective.add_sz_constraint(system.sz_op, 0.0, 2.0);

    PipelineConfig config;
    config.ansatz = system.ansatz;
    config.objective = objective;
    config.search = {.warmup = 120, .iterations = 160, .seed = 3};
    config.search.seed_steps.push_back(efficient_su2_bitstring_steps(
        system.num_qubits, system.hf_bits));

    CafqaPipeline pipeline(std::move(config));
    const CafqaResult& base = pipeline.run_clifford_search();
    const TBoostResult& boost = pipeline.run_t_boost(max_t);
    const GroundState exact = lanczos_ground_state(system.hamiltonian);

    std::cout << "H2 @ " << bond << " A\n"
              << "Hartree-Fock:        " << system.hf_energy << " Ha\n"
              << "CAFQA (Clifford):    " << base.best_energy << " Ha\n"
              << "CAFQA + " << boost.t_positions.size()
              << "T:          " << boost.best_energy << " Ha\n"
              << "Exact:               " << exact.energy << " Ha\n";
    if (!boost.t_positions.empty()) {
        std::cout << "T gates inserted after rotation slots:";
        for (const auto slot : boost.t_positions) {
            std::cout << ' ' << slot;
        }
        std::cout << '\n';
    } else {
        std::cout << "No T insertion improved the objective at this bond"
                     " length (Clifford-only is already tight).\n";
    }
    std::cout << "Branch count at k=" << boost.t_positions.size() << ": "
              << (std::size_t{1} << boost.t_positions.size())
              << " Clifford branches per evaluation\n";
    return 0;
}
