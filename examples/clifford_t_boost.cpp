/**
 * @file
 * Example: the Clifford + kT extension (paper Section 8). At stretched
 * bond lengths the Clifford space alone misses part of the correlation
 * energy; allowing a few T gates — still classically simulable via the
 * exact branch decomposition T = alpha I + beta S — closes much of the
 * gap. The problem (constrained objective, HF prior, exact reference)
 * comes fully prepared from the registry.
 *
 * Usage: clifford_t_boost [bond_length_angstrom] [max_t_gates]
 */
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/text.hpp"
#include "core/pipeline.hpp"
#include "problems/problem.hpp"

int
main(int argc, char** argv)
{
    using namespace cafqa;

    const double bond = (argc > 1) ? std::atof(argv[1]) : 1.8;
    const std::size_t max_t =
        (argc > 2) ? static_cast<std::size_t>(std::atoi(argv[2])) : 2;

    // The registry key carries the geometry; the returned problem
    // already contains the energy + electron-count + S_z objective
    // that clifford_t_boost used to assemble by hand.
    const auto problem =
        problems::make_problem("molecule:H2?bond=" + format_real(bond));

    PipelineConfig config;
    config.ansatz = problem.ansatz;
    config.objective = problem.objective;
    config.search = {.warmup = 120, .iterations = 160, .seed = 3};
    config.search.seed_steps = problem.seed_steps;

    CafqaPipeline pipeline(std::move(config));
    const CafqaResult& base = pipeline.run_clifford_search();
    const TBoostResult& boost = pipeline.run_t_boost(max_t);
    const double exact = problem.exact_energy().value();

    std::cout << "H2 @ " << bond << " A\n"
              << "Hartree-Fock:        "
              << problem.reference_energy.value() << " Ha\n"
              << "CAFQA (Clifford):    " << base.best_energy << " Ha\n"
              << "CAFQA + " << boost.t_positions.size()
              << "T:          " << boost.best_energy << " Ha\n"
              << "Exact:               " << exact << " Ha\n";
    if (!boost.t_positions.empty()) {
        std::cout << "T gates inserted after rotation slots:";
        for (const auto slot : boost.t_positions) {
            std::cout << ' ' << slot;
        }
        std::cout << '\n';
    } else {
        std::cout << "No T insertion improved the objective at this bond"
                     " length (Clifford-only is already tight).\n";
    }
    std::cout << "Branch count at k=" << boost.t_positions.size() << ": "
              << (std::size_t{1} << boost.t_positions.size())
              << " Clifford branches per evaluation\n";
    return 0;
}
