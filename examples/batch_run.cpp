/**
 * @file
 * Batch front end: execute many declarative RunSpecs concurrently and
 * emit one aggregated JSON report — the serve-many-requests workflow in
 * miniature.
 *
 * Usage:
 *   batch_run [--concurrency N] [--run-threads N] [--trace]
 *             [--jsonl FILE | SPEC ...]
 *
 * Each positional argument is one spec in the text form, e.g.
 *   batch_run "problem=molecule:H2?bond=2.2 warmup=60 iterations=60" \
 *             "problem=maxcut:ring-8 search=anneal" \
 *             "problem=tfim:chain-6?h=0.8" \
 *             "problem=xxz:chain-4?delta=0.5"
 * `--jsonl FILE` instead reads one JSON spec object per line ("-" for
 * stdin; '#' lines are comments).
 *
 * Exit status is 0 only when every run succeeded; failed runs are
 * reported inside the JSON (`"ok": false`) rather than aborting the
 * batch.
 */
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/text.hpp"
#include "core/batch_runner.hpp"

namespace {

[[noreturn]] void
fail(const std::string& message)
{
    std::cerr << "batch_run: " << message << '\n'
              << "usage: batch_run [--concurrency N] [--run-threads N]"
                 " [--trace] [--jsonl FILE | SPEC ...]\n";
    std::exit(1);
}

/** Strict whole-token integer parse with a lower bound. */
std::size_t
parse_count(const std::string& flag, const std::string& text,
            std::int64_t min_value)
{
    const auto value = cafqa::parse_integer_token(text);
    if (!value || *value < min_value) {
        fail(flag + " expects an integer >= " +
             std::to_string(min_value) + ", got '" + text + "'");
    }
    return static_cast<std::size_t>(*value);
}

std::string
read_all(std::istream& stream)
{
    std::ostringstream out;
    out << stream.rdbuf();
    return out.str();
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cafqa;

    BatchOptions options;
    std::vector<RunSpec> specs;
    bool trace = false;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> const char* {
                if (i + 1 >= argc) {
                    fail(arg + " requires a value");
                }
                return argv[++i];
            };
            if (arg == "--concurrency") {
                // 0 = use the shared hardware-sized pool.
                options.concurrency = parse_count(arg, next(), 0);
            } else if (arg == "--run-threads") {
                options.run_threads = parse_count(arg, next(), 1);
            } else if (arg == "--trace") {
                trace = true;
            } else if (arg == "--jsonl") {
                const std::string path = next();
                std::string text;
                if (path == "-") {
                    text = read_all(std::cin);
                } else {
                    std::ifstream file(path);
                    if (!file) {
                        fail("cannot open " + path);
                    }
                    text = read_all(file);
                }
                for (auto& spec : parse_run_specs_jsonl(text)) {
                    specs.push_back(std::move(spec));
                }
            } else if (!arg.empty() && arg[0] == '-') {
                fail("unknown option '" + arg + "'");
            } else {
                specs.push_back(RunSpec::parse(arg));
            }
        }
        if (specs.empty()) {
            fail("no run specs given");
        }
        for (const auto& spec : specs) {
            spec.validate();
        }

        BatchRunner runner(options);
        if (trace) {
            runner.set_observer([](std::size_t index, const RunSpec& spec,
                                   const PipelineEvent& event) {
                if (event.event == PipelineEvent::Kind::StageEnd) {
                    std::cerr << "[run " << index << " "
                              << (spec.label.empty() ? spec.problem
                                                     : spec.label)
                              << "] " << event.stage << " done, best "
                              << event.best_value << '\n';
                }
            });
        }

        const std::vector<RunRecord> records = runner.run(specs);
        std::cout << batch_results_json(records) << '\n';

        for (const auto& record : records) {
            if (!record.ok) {
                std::cerr << "batch_run: run failed ("
                          << record.spec.problem << "): " << record.error
                          << '\n';
                return 1;
            }
        }
    } catch (const std::exception& error) {
        std::cerr << "batch_run: " << error.what() << '\n';
        return 1;
    }
    return 0;
}
