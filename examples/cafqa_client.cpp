/**
 * @file
 * Command-line client for the CAFQA job server: submit specs, stream
 * every event the server sends back as JSON lines on stdout, exit once
 * all submitted jobs resolved (result or rejection).
 *
 * Usage:
 *   cafqa_client (--unix PATH | --host ADDR --port N)
 *                [--stats] [--metrics] [--shutdown MODE] [SPEC ...]
 *
 * Each positional argument is one text-form spec
 * (`problem=maxcut:ring-6 warmup=8 ...`), submitted with ids c1, c2,
 * ... `--stats` asks for a stats event after the submissions;
 * `--metrics` asks for a metrics event (Prometheus text plus a JSON
 * snapshot of every registered series);
 * `--shutdown drain|now` asks the server to shut down afterwards (the
 * client then also waits for the server's bye).
 *
 * Exit status: 0 when every submitted job produced an ok record, 1 on
 * rejections, failed records or connection errors.
 */
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/text.hpp"
#include "server/client.hpp"

namespace {

[[noreturn]] void
fail(const std::string& message)
{
    std::cerr << "cafqa_client: " << message << '\n'
              << "usage: cafqa_client (--unix PATH | --host ADDR "
                 "--port N) [--stats] [--metrics] [--shutdown MODE] "
                 "[SPEC ...]\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cafqa;
    using namespace cafqa::server;

    std::string unix_path;
    std::string host = "127.0.0.1";
    int port = 0;
    bool stats = false;
    bool metrics = false;
    bool do_shutdown = false;
    bool drain = true;
    std::vector<std::string> spec_texts;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> const char* {
                if (i + 1 >= argc) {
                    fail(arg + " requires a value");
                }
                return argv[++i];
            };
            if (arg == "--unix") {
                unix_path = next();
            } else if (arg == "--host") {
                host = next();
            } else if (arg == "--port") {
                port = std::atoi(next());
            } else if (arg == "--stats") {
                stats = true;
            } else if (arg == "--metrics") {
                metrics = true;
            } else if (arg == "--shutdown") {
                const std::string mode = next();
                if (mode != "drain" && mode != "now") {
                    fail("--shutdown expects drain or now");
                }
                do_shutdown = true;
                drain = mode == "drain";
            } else if (!arg.empty() && arg[0] == '-') {
                fail("unknown option '" + arg + "'");
            } else {
                spec_texts.push_back(arg);
            }
        }
        if (unix_path.empty() && port == 0) {
            fail("name a server: --unix PATH or --port N");
        }

        BlockingClient client =
            unix_path.empty() ? BlockingClient::connect_tcp(host, port)
                              : BlockingClient::connect_unix(unix_path);

        std::size_t pending = 0;
        for (std::size_t i = 0; i < spec_texts.size(); ++i) {
            const std::string id = "c" + std::to_string(i + 1);
            // Submit the raw text form; the server rejects (rather
            // than drops) anything malformed, so bad specs still get
            // a per-job response.
            client.send_line("{\"op\":\"submit\",\"id\":\"" + id +
                             "\",\"spec\":" + json_quote(spec_texts[i]) +
                             "}");
            ++pending;
        }
        if (stats) {
            client.send_line(stats_line());
        }
        if (metrics) {
            client.send_line(metrics_line());
        }
        if (do_shutdown) {
            client.send_line(shutdown_line(drain));
        }

        bool all_ok = true;
        std::size_t stats_pending = stats ? 1 : 0;
        std::size_t metrics_pending = metrics ? 1 : 0;
        while (pending > 0 || stats_pending > 0 || metrics_pending > 0 ||
               do_shutdown) {
            const auto line = client.read_line();
            if (!line) {
                if (pending > 0) {
                    std::cerr << "cafqa_client: connection closed with "
                              << pending << " job(s) unresolved\n";
                    all_ok = false;
                }
                break;
            }
            std::cout << *line << '\n';
            const Event event = parse_event(*line);
            if (event.event == "result") {
                --pending;
                if (event.record_json.find("\"ok\":true") ==
                    std::string::npos) {
                    all_ok = false;
                }
            } else if (event.event == "rejected") {
                --pending;
                all_ok = false;
            } else if (event.event == "error") {
                all_ok = false;
            } else if (event.event == "stats") {
                stats_pending = 0;
            } else if (event.event == "metrics") {
                metrics_pending = 0;
            } else if (event.event == "bye") {
                break;
            }
        }
        return all_ok ? 0 : 1;
    } catch (const std::exception& error) {
        std::cerr << "cafqa_client: " << error.what() << '\n';
        return 1;
    }
}
