/**
 * @file
 * Quickstart: CAFQA end to end on H2.
 *
 * Pipeline shown here (all in-process, no external dependencies):
 *   1. Resolve the problem through the registry: one key builds the H2
 *      molecular problem at a stretched bond length — STO-3G integrals,
 *      restricted Hartree-Fock, parity mapping with two-qubit
 *      reduction, constrained objective and Clifford-searchable ansatz.
 *   2. Run the CAFQA search: Bayesian optimization over the discrete
 *      Clifford parameter space of a hardware-efficient ansatz, each
 *      candidate evaluated exactly by the stabilizer simulator.
 *   3. Compare the CAFQA initialization against Hartree-Fock and the
 *      exact (Lanczos) ground state.
 *
 * Build: cmake --build build --target quickstart
 * Run:   ./build/quickstart
 */
#include <iostream>

#include "core/pipeline.hpp"
#include "problems/problem.hpp"
#include "statevector/lanczos.hpp"

int
main()
{
    using namespace cafqa;

    // 1. The molecular problem: H2 at 2.2 Angstrom (~3x equilibrium),
    //    where Hartree-Fock loses most of the correlation energy. The
    //    registry key is the whole problem description — swap it for
    //    "molecule:LiH?bond=2.4", "maxcut:ring-8" or "tfim:chain-6"
    //    and the rest of this file runs unchanged.
    const auto problem = problems::make_problem("molecule:H2?bond=2.2");
    std::cout << "Problem: " << problem.key << " (" << problem.detail
              << ")\n"
              << "Qubits after parity mapping + Z2 reduction: "
              << problem.num_qubits << '\n'
              << "Hamiltonian terms: " << problem.hamiltonian().num_terms()
              << '\n'
              << "Ansatz parameters (each in {0, pi/2, pi, 3pi/2}): "
              << problem.ansatz.num_params() << "\n\n";

    // 2. The CAFQA search through the pipeline facade. The problem's
    //    objective adds electron-count and S_z penalties so the search
    //    stays in the neutral singlet sector. Since H2 is small enough
    //    for an exact reference, the search is told to stop as soon as
    //    it is within 0.02 Ha of the ground state instead of burning
    //    its whole budget. (At this stretched geometry the best
    //    Clifford state sits ~0.012 Ha above exact, so the target is
    //    reachable; closing the rest is the continuous tuning stage's
    //    job.)
    const GroundState exact =
        lanczos_ground_state(problem.hamiltonian());

    PipelineConfig config;
    config.ansatz = problem.ansatz;
    config.objective = problem.objective;
    config.search = {.warmup = 150, .iterations = 200, .seed = 7};
    config.stopping.target_value = exact.energy + 0.02;
    // Prior-inject the Hartree-Fock point (the problem's seed steps):
    // it is itself a Clifford state, so CAFQA is guaranteed to do at
    // least as well as HF.
    config.search.seed_steps = problem.seed_steps;
    CafqaPipeline pipeline(std::move(config));
    const CafqaResult& result = pipeline.run_clifford_search();

    std::cout << "CAFQA best Clifford steps: ";
    for (const int s : result.best_steps) {
        std::cout << s;
    }
    const CafqaOptions& budget = pipeline.config().search;
    std::cout << "\nSearch used " << result.history.size() << " of "
              << (budget.seed_steps.size() + budget.warmup +
                  budget.iterations)
              << " budgeted evaluations (stop reason: "
              << to_string(result.stop_reason) << ")\n\n";

    // 3. Compare against Hartree-Fock and the exact ground state.
    const double hf_energy = problem.reference_energy.value();
    const double hf_error = hf_energy - exact.energy;
    const double cafqa_error = result.best_energy - exact.energy;

    std::cout << "Hartree-Fock energy: " << hf_energy << " Ha\n"
              << "CAFQA energy:        " << result.best_energy << " Ha\n"
              << "Exact energy:        " << exact.energy << " Ha\n\n"
              << "HF error:    " << hf_error << " Ha\n"
              << "CAFQA error: " << cafqa_error << " Ha\n"
              << "Correlation energy recovered: "
              << 100.0 * (1.0 - cafqa_error / hf_error) << " %\n";

    return 0;
}
