/**
 * @file
 * Example: CAFQA beyond chemistry — initializing a MaxCut (QAOA-style)
 * variational problem through the problem registry. MaxCut optima are
 * computational basis states, so the Clifford space contains the exact
 * optimum and CAFQA can solve the instance outright (paper Fig. 15
 * includes two MaxCut problems).
 *
 * Usage: maxcut_cafqa [num_vertices] [edge_probability]
 */
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/pipeline.hpp"
#include "problems/problem.hpp"

int
main(int argc, char** argv)
try {
    using namespace cafqa;

    const std::size_t n =
        (argc > 1) ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;
    const double p = (argc > 2) ? std::atof(argv[2]) : 0.4;

    // One registry key describes the whole instance: an Erdos-Renyi
    // graph with the requested edge probability and a fixed seed; the
    // registry validates the arguments (size >= 2, p in (0, 1]).
    const auto problem = problems::make_problem(
        "maxcut:er-" + std::to_string(n) + "?p=" + std::to_string(p) +
        "&seed=2023");
    std::cout << "MaxCut instance: " << problem.key << " ("
              << problem.detail << ")\n";

    PipelineConfig config;
    config.objective = problem.objective;
    config.ansatz = problem.ansatz;
    config.search = {.warmup = 250, .iterations = 500, .seed = 5,
                     .stall_limit = 200};

    CafqaPipeline pipeline(std::move(config));
    const CafqaResult& result = pipeline.run_clifford_search();

    const double cafqa_cut = -result.best_energy;
    std::cout << "CAFQA cut value:   " << cafqa_cut << '\n'
              << "Evaluations to best: " << result.evaluations_to_best
              << '\n';
    // The exact solver of a small MaxCut problem is the brute-force
    // optimum (the ground energy is minus the maximum cut weight);
    // above the brute-force limit there is no exact reference.
    if (const auto exact = problem.exact_energy()) {
        const double optimal = -*exact;
        std::cout << "Brute-force optimum: " << optimal << '\n'
                  << (cafqa_cut >= optimal - 1e-9
                          ? "CAFQA found the exact optimum.\n"
                          : "CAFQA found an approximate cut (raise the "
                            "search budget for the optimum).\n");
    } else {
        std::cout << "Instance too large for the brute-force optimum.\n";
    }
    return 0;
} catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
}
