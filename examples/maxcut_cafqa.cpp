/**
 * @file
 * Example: CAFQA beyond chemistry — initializing a MaxCut (QAOA-style)
 * variational problem. MaxCut optima are computational basis states, so
 * the Clifford space contains the exact optimum and CAFQA can solve the
 * instance outright (paper Fig. 15 includes two MaxCut problems).
 *
 * Usage: maxcut_cafqa [num_vertices] [edge_probability]
 */
#include <cstdlib>
#include <iostream>

#include "circuit/efficient_su2.hpp"
#include "core/pipeline.hpp"
#include "problems/maxcut.hpp"

int
main(int argc, char** argv)
{
    using namespace cafqa;

    const std::size_t n =
        (argc > 1) ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;
    const double p = (argc > 2) ? std::atof(argv[2]) : 0.4;

    const auto problem =
        problems::make_random_maxcut(n, p, 2023, "example");
    std::cout << "MaxCut instance: " << problem.num_vertices
              << " vertices, " << problem.edges.size() << " edges\n";

    PipelineConfig config;
    config.objective.hamiltonian = problem.hamiltonian;
    config.ansatz = make_efficient_su2(problem.num_vertices);
    config.search = {.warmup = 250, .iterations = 500, .seed = 5,
                     .stall_limit = 200};

    CafqaPipeline pipeline(std::move(config));
    const CafqaResult& result = pipeline.run_clifford_search();

    const double cafqa_cut = -result.best_energy;
    const double optimal = problem.optimal_cut();
    std::cout << "CAFQA cut value:   " << cafqa_cut << '\n'
              << "Brute-force optimum: " << optimal << '\n'
              << "Evaluations to best: " << result.evaluations_to_best
              << '\n'
              << (cafqa_cut >= optimal - 1e-9
                      ? "CAFQA found the exact optimum.\n"
                      : "CAFQA found an approximate cut (raise the search "
                        "budget for the optimum).\n");
    return 0;
}
