/**
 * @file
 * Example: scan a dissociation curve for any supported molecule and
 * compare Hartree-Fock, CAFQA and exact energies at each bond length —
 * the workflow behind the paper's Figs. 8-11.
 *
 * Usage:
 *   dissociation_scan [molecule] [num_points]
 *   dissociation_scan [--spec "field=value ..."] [--molecule NAME]
 *                     [--points N] [--min-bond A] [--max-bond A]
 *                     [--cold]
 *
 * The scan configuration is a RunSpec (`core/run_spec.hpp`): pass
 * `--spec "problem=molecule:H6 warmup=300 iterations=400 seed=3"` to
 * rescale budgets or switch the search strategy for every point of the
 * sweep; the spec's seed is advanced by one per grid point. The bond
 * grid defaults to the molecule's Table-1 range and is overridable
 * with --min-bond/--max-bond/--points.
 *
 * By default each bond length warm-starts from its left neighbor's
 * best Clifford assignment (`BatchRunner`'s warm-start hook — the
 * paper's initialization story applied recursively along the curve),
 * which cuts evaluations-to-chemical-accuracy versus independent
 * searches; pass --cold to re-search every point from scratch and
 * compare the EvalsToAcc column.
 */
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/text.hpp"
#include "core/batch_runner.hpp"
#include "core/run_spec.hpp"
#include "problems/molecule_factory.hpp"

namespace {

[[noreturn]] void
fail(const std::string& message)
{
    std::cerr << "dissociation_scan: " << message << '\n'
              << "usage: dissociation_scan [molecule] [num_points]\n"
                 "       dissociation_scan [--spec SPEC]"
                 " [--molecule NAME] [--points N]\n"
                 "                         [--min-bond A] [--max-bond A]"
                 " [--cold]\n";
    std::exit(1);
}

/** Strict whole-token integer parse (rejects "3x", "abc", "",
 *  out-of-int-range values that would otherwise wrap). */
int
parse_int(const std::string& flag, const std::string& text)
{
    const auto value = cafqa::parse_integer_token(text);
    if (!value || *value < std::numeric_limits<int>::min() ||
        *value > std::numeric_limits<int>::max()) {
        fail(flag + " expects an integer, got '" + text + "'");
    }
    return static_cast<int>(*value);
}

/** Strict whole-token finite positive double parse. */
double
parse_length(const std::string& flag, const std::string& text)
{
    const auto value = cafqa::parse_real_token(text);
    if (!value || *value <= 0.0) {
        fail(flag + " expects a positive length in angstrom, got '" +
             text + "'");
    }
    return *value;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cafqa;

    // Scan defaults sized for a quick interactive run; a --spec
    // overrides any of them.
    RunSpec spec = RunSpec::parse(
        "problem=molecule:LiH warmup=150 iterations=200 seed=11");
    std::string molecule;
    int points = 6;
    double min_bond = 0.0;
    double max_bond = 0.0;
    bool cold = false;

    try {
        int positional = 0;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> const char* {
                if (i + 1 >= argc) {
                    fail(arg + " requires a value");
                }
                return argv[++i];
            };
            if (arg == "--spec") {
                spec = RunSpec::parse(next());
            } else if (arg == "--molecule") {
                molecule = next();
            } else if (arg == "--points") {
                points = parse_int(arg, next());
            } else if (arg == "--min-bond") {
                min_bond = parse_length(arg, next());
            } else if (arg == "--max-bond") {
                max_bond = parse_length(arg, next());
            } else if (arg == "--cold") {
                cold = true;
            } else if (!arg.empty() && arg[0] == '-') {
                fail("unknown option '" + arg + "'");
            } else if (positional == 0) {
                molecule = arg;
                ++positional;
            } else if (positional == 1) {
                points = parse_int("num_points", arg);
                ++positional;
            } else {
                fail("unexpected argument '" + arg + "'");
            }
        }
        if (points < 2) {
            fail("num_points must be at least 2");
        }

        // The scanned problem key starts from the spec's (so sector
        // parameters like charge/spin are preserved per point); the
        // molecule comes from --molecule / the first positional,
        // falling back to the key's instance.
        problems::ProblemKey base_key =
            problems::ProblemKey::parse(spec.problem);
        if (!molecule.empty()) {
            base_key.instance = molecule;
        } else {
            molecule = base_key.instance;
        }
        const auto info = problems::molecule_info(molecule);
        if (min_bond <= 0.0) {
            min_bond = info.min_bond_length;
        }
        if (max_bond <= 0.0) {
            max_bond = info.max_bond_length;
        }
        if (max_bond <= min_bond) {
            fail("--max-bond must exceed --min-bond");
        }

        std::cout << "Scanning " << molecule << " from " << min_bond
                  << " to " << max_bond << " Angstrom ("
                  << info.num_qubits << " qubits)\n\n";

        Table table(molecule + " dissociation");
        table.set_header({"Bond(A)", "HF(Ha)", "CAFQA(Ha)", "Exact(Ha)",
                          "CorrRecovered(%)", "EvalsToAcc"});

        std::vector<RunSpec> point_specs;
        std::vector<double> bonds;
        for (int i = 0; i < points; ++i) {
            const double bond =
                min_bond + (max_bond - min_bond) * i / (points - 1);
            // The base key with its bond parameter replaced: every
            // other parameter (charge, spin, ...) scans unchanged.
            problems::ProblemKey key = base_key;
            std::erase_if(key.params, [](const auto& param) {
                return param.first == "bond";
            });
            key.params.emplace_back("bond", format_real(bond));
            RunSpec point = spec;
            point.problem = key.to_string();
            point.seed = spec.seed + static_cast<std::uint64_t>(i);
            point_specs.push_back(std::move(point));
            bonds.push_back(bond);
        }

        // Sequential scan (concurrency 1) so each point can hand its
        // best Clifford assignment to its right neighbor through the
        // runner's warm-start hook — unless --cold asked for
        // independent searches.
        BatchOptions batch_options;
        batch_options.concurrency = 1;
        BatchRunner runner(batch_options);
        if (!cold) {
            runner.set_warm_start(
                [](std::size_t index, const RunSpec&,
                   const std::vector<RunRecord>& records)
                    -> std::vector<int> {
                    if (index == 0 || !records[index - 1].ok) {
                        return {};
                    }
                    return records[index - 1].best_steps;
                });
        }
        const std::vector<RunRecord> records = runner.run(point_specs);

        std::size_t total_evals = 0;
        std::size_t accuracy_hits = 0;
        std::size_t accuracy_evals = 0;
        for (int i = 0; i < points; ++i) {
            const RunRecord& record = records[static_cast<std::size_t>(i)];
            const double bond = bonds[static_cast<std::size_t>(i)];
            if (!record.ok) {
                fail("point " + std::to_string(i) + " failed: " +
                     record.error);
            }
            total_evals += record.evaluations;
            std::string to_accuracy = "-";
            if (record.evals_to_accuracy.has_value()) {
                to_accuracy = std::to_string(*record.evals_to_accuracy);
                ++accuracy_hits;
                accuracy_evals += *record.evals_to_accuracy;
            }

            const double hf = record.reference_energy.value_or(0.0);
            // No exact reference above the Lanczos size limit: report
            // "-" rather than a fabricated 0/100% row.
            std::string exact = "-";
            std::string recovered = "-";
            if (record.exact_energy.has_value()) {
                const double denom = hf - *record.exact_energy;
                exact = Table::num(*record.exact_energy, 5);
                recovered = Table::num(
                    (denom > 1e-12)
                        ? 100.0 * (hf - record.cafqa_energy) / denom
                        : 100.0,
                    1);
            }
            table.add_row({Table::num(bond, 2), Table::num(hf, 5),
                           Table::num(record.cafqa_energy, 5), exact,
                           recovered, to_accuracy});
        }
        table.print(std::cout);
        std::cout << "\nWarm start: " << (cold ? "off" : "on")
                  << "; total search evaluations: " << total_evals;
        if (accuracy_hits > 0) {
            std::cout << "; mean evals-to-chemical-accuracy: "
                      << Table::num(static_cast<double>(accuracy_evals) /
                                        static_cast<double>(accuracy_hits),
                                    1)
                      << " over " << accuracy_hits << "/" << points
                      << " points";
        }
        std::cout << " (compare --cold vs default)\n";
    } catch (const std::exception& error) {
        std::cerr << "error: " << error.what() << '\n';
        return 1;
    }
    return 0;
}
