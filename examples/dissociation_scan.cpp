/**
 * @file
 * Example: scan a dissociation curve for any supported molecule and
 * compare Hartree-Fock, CAFQA and exact energies at each bond length —
 * the workflow behind the paper's Figs. 8-11.
 *
 * Usage: dissociation_scan [molecule] [num_points]
 *   molecule   one of: H2 LiH H2O H6 N2 NaH BeH2 H10 Cr2 (default LiH)
 *   num_points bond lengths across the molecule's Table-1 range
 *              (default 6)
 */
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/clifford_ansatz.hpp"
#include "core/pipeline.hpp"
#include "problems/molecule_factory.hpp"
#include "statevector/lanczos.hpp"

int
main(int argc, char** argv)
{
    using namespace cafqa;

    const std::string molecule = (argc > 1) ? argv[1] : "LiH";
    const int points = (argc > 2) ? std::atoi(argv[2]) : 6;
    if (points < 2) {
        std::cerr << "num_points must be at least 2\n";
        return 1;
    }

    const auto info = problems::molecule_info(molecule);
    std::cout << "Scanning " << molecule << " from "
              << info.min_bond_length << " to " << info.max_bond_length
              << " Angstrom (" << info.num_qubits << " qubits)\n\n";

    Table table(molecule + " dissociation");
    table.set_header({"Bond(A)", "HF(Ha)", "CAFQA(Ha)", "Exact(Ha)",
                      "CorrRecovered(%)"});

    for (int i = 0; i < points; ++i) {
        const double bond = info.min_bond_length +
            (info.max_bond_length - info.min_bond_length) * i /
                (points - 1);
        const auto system =
            problems::make_molecular_system(molecule, bond);
        PipelineConfig config;
        config.ansatz = system.ansatz;
        config.objective = problems::make_objective(system);
        config.search = {.warmup = 150,
                         .iterations = 200,
                         .seed = 11 + static_cast<std::uint64_t>(i)};
        config.search.seed_steps.push_back(efficient_su2_bitstring_steps(
            system.num_qubits, system.hf_bits));
        CafqaPipeline pipeline(std::move(config));
        const CafqaResult& cafqa = pipeline.run_clifford_search();
        const GroundState exact =
            lanczos_ground_state(system.hamiltonian);

        const double denom = system.hf_energy - exact.energy;
        const double recovered = (denom > 1e-12)
            ? 100.0 * (system.hf_energy - cafqa.best_energy) / denom
            : 100.0;
        table.add_row({Table::num(bond, 2),
                       Table::num(system.hf_energy, 5),
                       Table::num(cafqa.best_energy, 5),
                       Table::num(exact.energy, 5),
                       Table::num(recovered, 1)});
    }
    table.print(std::cout);
    return 0;
}
