/**
 * @file
 * Command-line front end for the full CAFQA pipeline — run any supported
 * molecule at any bond length with configurable budgets and emit a
 * machine-readable CSV line, suitable for scripting dissociation sweeps.
 *
 * Usage:
 *   cafqa_cli --molecule LiH --bond 2.4 [--warmup 200] [--iterations 300]
 *             [--seed 7] [--max-t 0] [--no-hf-seed] [--csv-header]
 */
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/cafqa_driver.hpp"
#include "core/clifford_ansatz.hpp"
#include "problems/molecule_factory.hpp"
#include "statevector/lanczos.hpp"

namespace {

void
usage()
{
    std::cerr
        << "cafqa_cli --molecule <name> --bond <angstrom>\n"
        << "          [--warmup N] [--iterations N] [--seed N]\n"
        << "          [--max-t K] [--no-hf-seed] [--csv-header]\n"
        << "molecules:";
    for (const auto& name : cafqa::problems::supported_molecules()) {
        std::cerr << ' ' << name;
    }
    std::cerr << '\n';
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cafqa;

    std::string molecule;
    double bond = 0.0;
    CafqaOptions options{.warmup = 200, .iterations = 300, .seed = 7};
    std::size_t max_t = 0;
    bool hf_seed = true;
    bool csv_header = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage();
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--molecule") {
            molecule = next();
        } else if (arg == "--bond") {
            bond = std::atof(next());
        } else if (arg == "--warmup") {
            options.warmup = static_cast<std::size_t>(std::atoi(next()));
        } else if (arg == "--iterations") {
            options.iterations =
                static_cast<std::size_t>(std::atoi(next()));
        } else if (arg == "--seed") {
            options.seed = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (arg == "--max-t") {
            max_t = static_cast<std::size_t>(std::atoi(next()));
        } else if (arg == "--no-hf-seed") {
            hf_seed = false;
        } else if (arg == "--csv-header") {
            csv_header = true;
        } else {
            usage();
            return 1;
        }
    }
    if (molecule.empty() || bond <= 0.0) {
        usage();
        return 1;
    }

    if (csv_header) {
        std::cout << "molecule,bond_angstrom,qubits,scf_converged,"
                     "hf_energy,cafqa_energy,exact_energy,t_gates,"
                     "evals_to_best,corr_recovered_pct\n";
    }

    try {
        const auto system =
            problems::make_molecular_system(molecule, bond);
        const VqaObjective objective = problems::make_objective(system);
        if (hf_seed) {
            options.seed_steps.push_back(efficient_su2_bitstring_steps(
                system.num_qubits, system.hf_bits));
        }

        double cafqa_energy = 0.0;
        std::size_t evals = 0;
        std::size_t t_gates = 0;
        if (max_t == 0) {
            const CafqaResult result =
                run_cafqa(system.ansatz, objective, options);
            cafqa_energy = result.best_energy;
            evals = result.evaluations_to_best;
        } else {
            const CafqaKtResult result =
                run_cafqa_kt(system.ansatz, objective, max_t, options);
            cafqa_energy = result.best_energy;
            evals = result.base.evaluations_to_best;
            t_gates = result.t_positions.size();
        }

        double exact = 0.0;
        double recovered = 0.0;
        if (system.num_qubits <= 20) {
            exact = lanczos_ground_state(system.hamiltonian).energy;
            const double denom = system.hf_energy - exact;
            recovered = (denom > 1e-12)
                ? 100.0 * (system.hf_energy - cafqa_energy) / denom
                : 100.0;
        }

        std::cout << molecule << ',' << bond << ',' << system.num_qubits
                  << ',' << (system.scf_converged ? 1 : 0) << ','
                  << system.hf_energy << ',' << cafqa_energy << ','
                  << exact << ',' << t_gates << ',' << evals << ','
                  << recovered << '\n';
    } catch (const std::exception& error) {
        std::cerr << "error: " << error.what() << '\n';
        return 1;
    }
    return 0;
}
