/**
 * @file
 * Command-line front end for the full CAFQA pipeline, built on the
 * declarative RunSpec API: run *any* registered problem family —
 * molecules, MaxCut, TFIM, XXZ, runtime-registered ones — with
 * configurable budgets, and emit a machine-readable result line.
 *
 * Three equivalent ways to select the run:
 *
 *   cafqa_cli --spec "problem=molecule:LiH?bond=2.4 warmup=200 tune=200"
 *   cafqa_cli --problem maxcut:ring-8 --search anneal
 *   cafqa_cli --molecule LiH --bond 2.4 --warmup 200 --tune 200
 *
 * `--spec` takes a whole run as one `field=value ...` string
 * (`core/run_spec.hpp`); every historical flag still works and
 * overrides the corresponding spec field, so old invocations behave
 * exactly as before (molecule runs keep the historical CSV line;
 * other families default to JSON, also selectable with --json).
 *
 * --tune-backend accepts any registered backend kind or "auto";
 * --search/--tuner accept any optimizer-registry kind; --budget caps
 * objective evaluations per stage; --target-energy stops a stage once
 * its best objective reaches the given value; --cache memoizes
 * evaluations across stages. Every numeric option is validated:
 * non-numeric text, trailing garbage, and out-of-range values exit
 * with status 1 and the usage text, as do unknown flags and malformed
 * specs.
 */
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/text.hpp"
#include "core/batch_runner.hpp"
#include "core/run_spec.hpp"

namespace {

void
usage()
{
    std::cerr
        << "cafqa_cli [--spec \"field=value ...\"] [--problem KEY]\n"
        << "          [--molecule <name> --bond <angstrom>]\n"
        << "          [--warmup N] [--iterations N] [--seed N]\n"
        << "          [--max-t K] [--tune N] [--tune-backend KIND]\n"
        << "          [--search KIND] [--tuner KIND] [--budget N]\n"
        << "          [--target-energy E] [--threads N] [--cache]\n"
        << "          [--cache-capacity N] [--no-hf-seed] [--json]\n"
        << "          [--trace] [--csv-header]\n"
        << "  --spec SPEC       whole run as one field=value string\n"
        << "  --problem KEY     problem registry key"
           " (family:instance?param=value)\n"
        << "  --tune N          run N tuner iterations after the search\n"
        << "  --tune-backend    backend registry kind for tuning\n"
        << "                    (default: statevector; others:";
    for (const auto& kind : cafqa::registered_backends()) {
        std::cerr << ' ' << kind;
    }
    std::cerr << ")\n  --search KIND     discrete search strategy (default:"
                 " bayes; discrete:";
    for (const auto& kind : cafqa::registered_discrete_optimizers()) {
        std::cerr << ' ' << kind;
    }
    std::cerr << ")\n  --tuner KIND      continuous tuning strategy"
                 " (default: spsa; continuous:";
    for (const auto& kind : cafqa::registered_continuous_optimizers()) {
        std::cerr << ' ' << kind;
    }
    std::cerr << ")\n  --budget N        cap objective evaluations per"
                 " stage (N >= 1)\n"
              << "  --target-energy E stop a stage once its best"
                 " objective reaches E\n"
              << "  --threads N       worker threads for batched"
                 " evaluation (N >= 1;\n"
                 "                    default: the shared hardware-sized"
                 " pool)\n"
              << "  --cache           memoize backend evaluations across"
                 " the stages\n"
              << "  --cache-capacity N  max resident cache entries"
                 " (implies --cache)\n"
              << "  --json            print the run record as JSON"
                 " (default for\n"
                 "                    non-molecule problems)\n"
              << "  --trace           print stage progress (and cache"
                 " stats) to stderr\n"
              << "problem families:\n";
    for (const auto& info : cafqa::problems::problem_family_catalog()) {
        std::cerr << "  " << info.family << "  " << info.description
                  << " (e.g. " << info.sample_key << ")\n";
    }
}

[[noreturn]] void
fail_usage(const std::string& message)
{
    std::cerr << "cafqa_cli: " << message << '\n';
    usage();
    std::exit(1);
}

/** Strict floating-point parse: the whole token must be a finite
 *  number ("nan"/"inf" would silently disable comparisons downstream). */
double
parse_real(const std::string& flag, const char* text)
{
    const auto value = cafqa::parse_real_token(text);
    if (!value) {
        fail_usage(flag + " expects a finite number, got '" +
                   std::string(text) + "'");
    }
    return *value;
}

/** The historical CSV line for molecule runs (format-stable). */
void
print_molecule_csv(const cafqa::problems::Problem& problem,
                   const cafqa::RunRecord& record)
{
    const double bond = problem.metric("bond_angstrom").value_or(0.0);
    const bool scf =
        problem.metric("scf_converged").value_or(0.0) != 0.0;
    const double hf = record.reference_energy.value_or(0.0);
    const double exact = record.exact_energy.value_or(0.0);
    double recovered = 0.0;
    if (record.exact_energy.has_value()) {
        const double denom = hf - exact;
        recovered = (denom > 1e-12)
            ? 100.0 * (hf - record.cafqa_energy) / denom
            : 100.0;
    }
    std::cout << problem.name << ',' << bond << ',' << problem.num_qubits
              << ',' << (scf ? 1 : 0) << ',' << hf << ','
              << record.cafqa_energy << ','
              << record.tuned_value.value_or(0.0) << ',' << exact << ','
              << record.t_gates << ',' << record.evaluations_to_best
              << ',' << recovered << '\n';
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cafqa;

    std::string spec_text;
    std::string problem_key;
    std::string molecule;
    std::optional<double> bond;
    /** Spec-field overrides in argv order (later flags win). */
    std::vector<std::pair<std::string, std::string>> overrides;
    bool json = false;
    bool trace = false;
    bool csv_header = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                fail_usage(arg + " requires a value");
            }
            return argv[++i];
        };
        /** `--warmup 60` becomes the spec assignment `warmup=60`,
         *  validated by RunSpec::set below. */
        auto override_field = [&](const std::string& field) {
            overrides.emplace_back(field, next());
        };
        if (arg == "--spec") {
            spec_text = next();
        } else if (arg == "--problem") {
            problem_key = next();
        } else if (arg == "--molecule") {
            molecule = next();
        } else if (arg == "--bond") {
            bond = parse_real(arg, next());
        } else if (arg == "--warmup") {
            override_field("warmup");
        } else if (arg == "--iterations") {
            override_field("iterations");
        } else if (arg == "--seed") {
            override_field("seed");
        } else if (arg == "--max-t") {
            override_field("max-t");
        } else if (arg == "--tune") {
            override_field("tune");
        } else if (arg == "--tune-backend") {
            override_field("tune-backend");
        } else if (arg == "--search") {
            override_field("search");
        } else if (arg == "--tuner") {
            override_field("tuner");
        } else if (arg == "--budget") {
            override_field("budget");
        } else if (arg == "--target-energy") {
            override_field("target-energy");
        } else if (arg == "--threads") {
            override_field("threads");
        } else if (arg == "--cache") {
            overrides.emplace_back("cache", "1");
        } else if (arg == "--cache-capacity") {
            override_field("cache-capacity");
        } else if (arg == "--no-hf-seed") {
            overrides.emplace_back("hf-seed", "0");
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--trace") {
            trace = true;
        } else if (arg == "--csv-header") {
            csv_header = true;
        } else {
            fail_usage("unknown option '" + arg + "'");
        }
    }

    // Base spec from --spec, then every flag overrides its field —
    // including flags explicitly set to their default values.
    RunSpec spec;
    try {
        if (!spec_text.empty()) {
            spec = RunSpec::parse(spec_text);
        }
        for (const auto& [field, value] : overrides) {
            spec.set(field, value);
        }
    } catch (const std::exception& error) {
        fail_usage(error.what());
    }

    // Problem selection: --molecule/--bond compose a key; --problem
    // wins over the spec's problem field.
    if (!molecule.empty()) {
        if (!problem_key.empty()) {
            fail_usage("use either --problem or --molecule, not both");
        }
        if (!bond.has_value() || *bond <= 0.0) {
            fail_usage("--bond must be a positive length in angstrom");
        }
        problem_key = "molecule:" + molecule +
                      "?bond=" + format_real(*bond);
    } else if (bond.has_value()) {
        fail_usage("--bond requires --molecule");
    }
    if (!problem_key.empty()) {
        spec.problem = problem_key;
    }
    if (spec.problem.empty()) {
        fail_usage("no problem selected (use --spec, --problem, or "
                   "--molecule with --bond)");
    }

    if (csv_header) {
        std::cout << "molecule,bond_angstrom,qubits,scf_converged,"
                     "hf_energy,cafqa_energy,tuned_value,exact_energy,"
                     "t_gates,evals_to_best,corr_recovered_pct\n";
    }

    try {
        const problems::Problem problem =
            problems::make_problem(spec.problem);

        PipelineObserver observer;
        if (trace) {
            observer = [](const PipelineEvent& event) {
                switch (event.event) {
                  case PipelineEvent::Kind::StageBegin:
                    std::cerr << "[" << event.stage << "] begin\n";
                    break;
                  case PipelineEvent::Kind::StageEnd:
                    std::cerr << "[" << event.stage << "] end, best "
                              << event.best_value << '\n';
                    if (event.cache != nullptr) {
                        std::cerr
                            << "[" << event.stage << "] cache: "
                            << event.cache->hits << " hits, "
                            << event.cache->misses << " misses ("
                            << 100.0 * event.cache->hit_rate()
                            << "% hit rate), "
                            << event.cache->preparations
                            << " state preparations, "
                            << event.cache->evictions << " evictions, "
                            << event.cache->bytes << " bytes\n";
                    }
                    break;
                  case PipelineEvent::Kind::Progress:
                    if (event.evaluation % 50 == 0) {
                        std::cerr << "[" << event.stage << "] eval "
                                  << event.evaluation << ", best "
                                  << event.best_value << '\n';
                    }
                    break;
                }
            };
        }

        const RunRecord record =
            execute_run_spec(spec, problem, std::move(observer));
        if (trace) {
            std::cerr << "[clifford_search] stop reason: "
                      << record.stop_reason << '\n';
            if (!record.tune_stop_reason.empty()) {
                std::cerr << "[vqa_tune] stop reason: "
                          << record.tune_stop_reason << '\n';
            }
        }

        if (json || problem.family != "molecule") {
            std::cout << record.to_json() << '\n';
        } else {
            print_molecule_csv(problem, record);
        }
    } catch (const std::exception& error) {
        std::cerr << "error: " << error.what() << '\n';
        return 1;
    }
    return 0;
}
