/**
 * @file
 * Command-line front end for the full CAFQA pipeline — run any supported
 * molecule at any bond length with configurable budgets and emit a
 * machine-readable CSV line, suitable for scripting dissociation sweeps.
 *
 * Drives the `CafqaPipeline` facade end to end: discrete Clifford
 * search, optional Clifford+kT boost, optional continuous VQA tuning on
 * any registered backend ("statevector", "density", "sampled", ...).
 *
 * Usage:
 *   cafqa_cli --molecule LiH --bond 2.4 [--warmup 200] [--iterations 300]
 *             [--seed 7] [--max-t 0] [--tune 0] [--tune-backend KIND]
 *             [--search KIND] [--tuner KIND] [--budget N]
 *             [--target-energy E] [--threads 0] [--no-hf-seed] [--trace]
 *             [--csv-header]
 *
 * --tune-backend accepts any registered kind or "auto" (the default:
 * statevector, or density when a noise model is configured).
 * --search/--tuner accept any optimizer-registry kind ("bayes",
 * "anneal", "random", "exhaustive" / "spsa", "nelder-mead", ...);
 * --budget caps total objective evaluations per stage and
 * --target-energy stops a stage as soon as its best objective value
 * reaches the given energy (e.g. exact + chemical accuracy).
 */
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/clifford_ansatz.hpp"
#include "core/pipeline.hpp"
#include "problems/molecule_factory.hpp"
#include "statevector/lanczos.hpp"

namespace {

void
usage()
{
    std::cerr
        << "cafqa_cli --molecule <name> --bond <angstrom>\n"
        << "          [--warmup N] [--iterations N] [--seed N]\n"
        << "          [--max-t K] [--tune N] [--tune-backend KIND]\n"
        << "          [--search KIND] [--tuner KIND] [--budget N]\n"
        << "          [--target-energy E] [--threads N] [--no-hf-seed]\n"
        << "          [--trace] [--csv-header]\n"
        << "  --tune N          run N tuner iterations after the search\n"
        << "  --tune-backend    backend registry kind for tuning\n"
        << "                    (default: statevector; others:";
    for (const auto& kind : cafqa::registered_backends()) {
        std::cerr << ' ' << kind;
    }
    std::cerr << ")\n  --search KIND     discrete search strategy (default:"
                 " bayes; discrete:";
    for (const auto& kind : cafqa::registered_discrete_optimizers()) {
        std::cerr << ' ' << kind;
    }
    std::cerr << ")\n  --tuner KIND      continuous tuning strategy"
                 " (default: spsa; continuous:";
    for (const auto& kind : cafqa::registered_continuous_optimizers()) {
        std::cerr << ' ' << kind;
    }
    std::cerr << ")\n  --budget N        cap objective evaluations per"
                 " stage\n"
              << "  --target-energy E stop a stage once its best"
                 " objective reaches E\n"
              << "  --trace           print stage progress to stderr\n"
              << "molecules:";
    for (const auto& name : cafqa::problems::supported_molecules()) {
        std::cerr << ' ' << name;
    }
    std::cerr << '\n';
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cafqa;

    std::string molecule;
    double bond = 0.0;
    CafqaOptions search{.warmup = 200, .iterations = 300, .seed = 7};
    std::size_t max_t = 0;
    std::size_t tune_iterations = 0;
    std::string tune_backend;
    std::string search_kind = "bayes";
    std::string tuner_kind = "spsa";
    StoppingCriteria stopping;
    std::size_t threads = 0;
    bool hf_seed = true;
    bool trace = false;
    bool csv_header = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage();
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--molecule") {
            molecule = next();
        } else if (arg == "--bond") {
            bond = std::atof(next());
        } else if (arg == "--warmup") {
            search.warmup = static_cast<std::size_t>(std::atoi(next()));
        } else if (arg == "--iterations") {
            search.iterations =
                static_cast<std::size_t>(std::atoi(next()));
        } else if (arg == "--seed") {
            search.seed = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (arg == "--max-t") {
            max_t = static_cast<std::size_t>(std::atoi(next()));
        } else if (arg == "--tune") {
            tune_iterations =
                static_cast<std::size_t>(std::atoi(next()));
        } else if (arg == "--tune-backend") {
            tune_backend = next();
            if (tune_backend == "auto") {
                tune_backend.clear();
            }
        } else if (arg == "--search") {
            search_kind = next();
        } else if (arg == "--tuner") {
            tuner_kind = next();
        } else if (arg == "--budget") {
            stopping.max_evaluations =
                static_cast<std::size_t>(std::atoll(next()));
        } else if (arg == "--target-energy") {
            stopping.target_value = std::atof(next());
        } else if (arg == "--threads") {
            threads = static_cast<std::size_t>(std::atoi(next()));
        } else if (arg == "--no-hf-seed") {
            hf_seed = false;
        } else if (arg == "--trace") {
            trace = true;
        } else if (arg == "--csv-header") {
            csv_header = true;
        } else {
            usage();
            return 1;
        }
    }
    if (molecule.empty() || bond <= 0.0) {
        usage();
        return 1;
    }

    if (csv_header) {
        std::cout << "molecule,bond_angstrom,qubits,scf_converged,"
                     "hf_energy,cafqa_energy,tuned_value,exact_energy,"
                     "t_gates,evals_to_best,corr_recovered_pct\n";
    }

    try {
        const auto system =
            problems::make_molecular_system(molecule, bond);

        PipelineConfig config;
        config.ansatz = system.ansatz;
        config.objective = problems::make_objective(system);
        config.search = search;
        config.threads = threads;
        config.tuner.iterations = tune_iterations;
        config.tuner.seed = search.seed + 1;
        config.tuner.backend = tune_backend;
        config.search_optimizer = optimizer_config(search_kind);
        config.tuner_optimizer = optimizer_config(tuner_kind);
        config.stopping = stopping;
        if (hf_seed) {
            config.search.seed_steps.push_back(
                efficient_su2_bitstring_steps(system.num_qubits,
                                              system.hf_bits));
        }

        CafqaPipeline pipeline(std::move(config));
        if (trace) {
            pipeline.set_observer([](const PipelineEvent& event) {
                switch (event.event) {
                  case PipelineEvent::Kind::StageBegin:
                    std::cerr << "[" << event.stage << "] begin\n";
                    break;
                  case PipelineEvent::Kind::StageEnd:
                    std::cerr << "[" << event.stage << "] end, best "
                              << event.best_value << '\n';
                    break;
                  case PipelineEvent::Kind::Progress:
                    if (event.evaluation % 50 == 0) {
                        std::cerr << "[" << event.stage << "] eval "
                                  << event.evaluation << ", best "
                                  << event.best_value << '\n';
                    }
                    break;
                }
            });
        }

        pipeline.run_clifford_search();
        if (trace) {
            std::cerr << "[clifford_search] stop reason: "
                      << to_string(
                             pipeline.clifford_result().stop_reason)
                      << '\n';
        }
        if (max_t > 0) {
            pipeline.run_t_boost(max_t);
        }
        double tuned_value = 0.0;
        if (tune_iterations > 0) {
            tuned_value = pipeline.run_vqa_tune().final_value;
            if (trace) {
                std::cerr << "[vqa_tune] stop reason: "
                          << to_string(
                                 pipeline.tune_result().stop_reason)
                          << '\n';
            }
        }

        const double cafqa_energy = pipeline.best_energy();
        const std::size_t evals =
            pipeline.clifford_result().evaluations_to_best;
        const std::size_t t_gates =
            max_t > 0 ? pipeline.t_boost_result().t_positions.size() : 0;

        double exact = 0.0;
        double recovered = 0.0;
        if (system.num_qubits <= 20) {
            exact = lanczos_ground_state(system.hamiltonian).energy;
            const double denom = system.hf_energy - exact;
            recovered = (denom > 1e-12)
                ? 100.0 * (system.hf_energy - cafqa_energy) / denom
                : 100.0;
        }

        std::cout << molecule << ',' << bond << ',' << system.num_qubits
                  << ',' << (system.scf_converged ? 1 : 0) << ','
                  << system.hf_energy << ',' << cafqa_energy << ','
                  << tuned_value << ',' << exact << ',' << t_gates << ','
                  << evals << ',' << recovered << '\n';
    } catch (const std::exception& error) {
        std::cerr << "error: " << error.what() << '\n';
        return 1;
    }
    return 0;
}
