/**
 * @file
 * Command-line front end for the full CAFQA pipeline — run any supported
 * molecule at any bond length with configurable budgets and emit a
 * machine-readable CSV line, suitable for scripting dissociation sweeps.
 *
 * Drives the `CafqaPipeline` facade end to end: discrete Clifford
 * search, optional Clifford+kT boost, optional continuous VQA tuning on
 * any registered backend ("statevector", "density", "sampled", ...).
 *
 * Usage:
 *   cafqa_cli --molecule LiH --bond 2.4 [--warmup 200] [--iterations 300]
 *             [--seed 7] [--max-t 0] [--tune 0] [--tune-backend KIND]
 *             [--search KIND] [--tuner KIND] [--budget N]
 *             [--target-energy E] [--threads N] [--cache]
 *             [--cache-capacity N] [--no-hf-seed] [--trace]
 *             [--csv-header]
 *
 * --tune-backend accepts any registered kind or "auto" (the default:
 * statevector, or density when a noise model is configured).
 * --search/--tuner accept any optimizer-registry kind ("bayes",
 * "anneal", "random", "exhaustive" / "spsa", "nelder-mead", ...);
 * --budget caps total objective evaluations per stage and
 * --target-energy stops a stage as soon as its best objective value
 * reaches the given energy (e.g. exact + chemical accuracy).
 * --cache wraps every stage backend in the memoizing evaluation cache
 * (re-visited points skip state preparation); --cache-capacity bounds
 * its resident entries and implies --cache.
 *
 * Every numeric option is validated: non-numeric text, trailing
 * garbage, and out-of-range values (e.g. --threads 0) exit with status
 * 1 and the usage text, as do unknown flags.
 */
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/clifford_ansatz.hpp"
#include "core/pipeline.hpp"
#include "problems/molecule_factory.hpp"
#include "statevector/lanczos.hpp"

namespace {

void
usage()
{
    std::cerr
        << "cafqa_cli --molecule <name> --bond <angstrom>\n"
        << "          [--warmup N] [--iterations N] [--seed N]\n"
        << "          [--max-t K] [--tune N] [--tune-backend KIND]\n"
        << "          [--search KIND] [--tuner KIND] [--budget N]\n"
        << "          [--target-energy E] [--threads N] [--cache]\n"
        << "          [--cache-capacity N] [--no-hf-seed]\n"
        << "          [--trace] [--csv-header]\n"
        << "  --tune N          run N tuner iterations after the search\n"
        << "  --tune-backend    backend registry kind for tuning\n"
        << "                    (default: statevector; others:";
    for (const auto& kind : cafqa::registered_backends()) {
        std::cerr << ' ' << kind;
    }
    std::cerr << ")\n  --search KIND     discrete search strategy (default:"
                 " bayes; discrete:";
    for (const auto& kind : cafqa::registered_discrete_optimizers()) {
        std::cerr << ' ' << kind;
    }
    std::cerr << ")\n  --tuner KIND      continuous tuning strategy"
                 " (default: spsa; continuous:";
    for (const auto& kind : cafqa::registered_continuous_optimizers()) {
        std::cerr << ' ' << kind;
    }
    std::cerr << ")\n  --budget N        cap objective evaluations per"
                 " stage (N >= 1)\n"
              << "  --target-energy E stop a stage once its best"
                 " objective reaches E\n"
              << "  --threads N       worker threads for batched"
                 " evaluation (N >= 1;\n"
                 "                    default: the shared hardware-sized"
                 " pool)\n"
              << "  --cache           memoize backend evaluations across"
                 " the stages\n"
              << "  --cache-capacity N  max resident cache entries"
                 " (implies --cache)\n"
              << "  --trace           print stage progress (and cache"
                 " stats) to stderr\n"
              << "molecules:";
    for (const auto& name : cafqa::problems::supported_molecules()) {
        std::cerr << ' ' << name;
    }
    std::cerr << '\n';
}

[[noreturn]] void
fail_usage(const std::string& message)
{
    std::cerr << "cafqa_cli: " << message << '\n';
    usage();
    std::exit(1);
}

/** Strict integer parse: the whole token must be a number >= min_value
 *  (rejects "abc", "12x", "-3", "" and out-of-range values). */
std::uint64_t
parse_count(const std::string& flag, const char* text,
            std::uint64_t min_value)
{
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || value < 0 ||
        static_cast<std::uint64_t>(value) < min_value) {
        fail_usage(flag + " expects an integer >= " +
                   std::to_string(min_value) + ", got '" + text + "'");
    }
    return static_cast<std::uint64_t>(value);
}

/** Strict floating-point parse: the whole token must be a finite
 *  number ("nan"/"inf" would silently disable comparisons downstream). */
double
parse_real(const std::string& flag, const char* text)
{
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0' || errno == ERANGE ||
        !std::isfinite(value)) {
        fail_usage(flag + " expects a finite number, got '" + text + "'");
    }
    return value;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cafqa;

    std::string molecule;
    double bond = 0.0;
    CafqaOptions search{.warmup = 200, .iterations = 300, .seed = 7};
    std::size_t max_t = 0;
    std::size_t tune_iterations = 0;
    std::string tune_backend;
    std::string search_kind = "bayes";
    std::string tuner_kind = "spsa";
    StoppingCriteria stopping;
    std::size_t threads = 0;
    CacheOptions cache;
    bool hf_seed = true;
    bool trace = false;
    bool csv_header = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                fail_usage(arg + " requires a value");
            }
            return argv[++i];
        };
        if (arg == "--molecule") {
            molecule = next();
        } else if (arg == "--bond") {
            bond = parse_real(arg, next());
        } else if (arg == "--warmup") {
            search.warmup =
                static_cast<std::size_t>(parse_count(arg, next(), 1));
        } else if (arg == "--iterations") {
            search.iterations =
                static_cast<std::size_t>(parse_count(arg, next(), 1));
        } else if (arg == "--seed") {
            search.seed = parse_count(arg, next(), 0);
        } else if (arg == "--max-t") {
            max_t = static_cast<std::size_t>(parse_count(arg, next(), 0));
        } else if (arg == "--tune") {
            tune_iterations =
                static_cast<std::size_t>(parse_count(arg, next(), 0));
        } else if (arg == "--tune-backend") {
            tune_backend = next();
            if (tune_backend == "auto") {
                tune_backend.clear();
            }
        } else if (arg == "--search") {
            search_kind = next();
        } else if (arg == "--tuner") {
            tuner_kind = next();
        } else if (arg == "--budget") {
            stopping.max_evaluations =
                static_cast<std::size_t>(parse_count(arg, next(), 1));
        } else if (arg == "--target-energy") {
            stopping.target_value = parse_real(arg, next());
        } else if (arg == "--threads") {
            threads =
                static_cast<std::size_t>(parse_count(arg, next(), 1));
        } else if (arg == "--cache") {
            cache.enabled = true;
        } else if (arg == "--cache-capacity") {
            cache.enabled = true;
            cache.capacity =
                static_cast<std::size_t>(parse_count(arg, next(), 1));
        } else if (arg == "--no-hf-seed") {
            hf_seed = false;
        } else if (arg == "--trace") {
            trace = true;
        } else if (arg == "--csv-header") {
            csv_header = true;
        } else {
            fail_usage("unknown option '" + arg + "'");
        }
    }
    if (molecule.empty()) {
        fail_usage("--molecule is required");
    }
    if (bond <= 0.0) {
        fail_usage("--bond must be a positive length in angstrom");
    }

    if (csv_header) {
        std::cout << "molecule,bond_angstrom,qubits,scf_converged,"
                     "hf_energy,cafqa_energy,tuned_value,exact_energy,"
                     "t_gates,evals_to_best,corr_recovered_pct\n";
    }

    try {
        const auto system =
            problems::make_molecular_system(molecule, bond);

        PipelineConfig config;
        config.ansatz = system.ansatz;
        config.objective = problems::make_objective(system);
        config.search = search;
        config.threads = threads;
        config.tuner.iterations = tune_iterations;
        config.tuner.seed = search.seed + 1;
        config.tuner.backend = tune_backend;
        config.search_optimizer = optimizer_config(search_kind);
        config.tuner_optimizer = optimizer_config(tuner_kind);
        config.stopping = stopping;
        config.cache = cache;
        if (hf_seed) {
            config.search.seed_steps.push_back(
                efficient_su2_bitstring_steps(system.num_qubits,
                                              system.hf_bits));
        }

        CafqaPipeline pipeline(std::move(config));
        if (trace) {
            pipeline.set_observer([](const PipelineEvent& event) {
                switch (event.event) {
                  case PipelineEvent::Kind::StageBegin:
                    std::cerr << "[" << event.stage << "] begin\n";
                    break;
                  case PipelineEvent::Kind::StageEnd:
                    std::cerr << "[" << event.stage << "] end, best "
                              << event.best_value << '\n';
                    if (event.cache != nullptr) {
                        std::cerr
                            << "[" << event.stage << "] cache: "
                            << event.cache->hits << " hits, "
                            << event.cache->misses << " misses ("
                            << 100.0 * event.cache->hit_rate()
                            << "% hit rate), "
                            << event.cache->preparations
                            << " state preparations, "
                            << event.cache->evictions << " evictions, "
                            << event.cache->bytes << " bytes\n";
                    }
                    break;
                  case PipelineEvent::Kind::Progress:
                    if (event.evaluation % 50 == 0) {
                        std::cerr << "[" << event.stage << "] eval "
                                  << event.evaluation << ", best "
                                  << event.best_value << '\n';
                    }
                    break;
                }
            });
        }

        pipeline.run_clifford_search();
        if (trace) {
            std::cerr << "[clifford_search] stop reason: "
                      << to_string(
                             pipeline.clifford_result().stop_reason)
                      << '\n';
        }
        if (max_t > 0) {
            pipeline.run_t_boost(max_t);
        }
        double tuned_value = 0.0;
        if (tune_iterations > 0) {
            tuned_value = pipeline.run_vqa_tune().final_value;
            if (trace) {
                std::cerr << "[vqa_tune] stop reason: "
                          << to_string(
                                 pipeline.tune_result().stop_reason)
                          << '\n';
            }
        }

        const double cafqa_energy = pipeline.best_energy();
        const std::size_t evals =
            pipeline.clifford_result().evaluations_to_best;
        const std::size_t t_gates =
            max_t > 0 ? pipeline.t_boost_result().t_positions.size() : 0;

        double exact = 0.0;
        double recovered = 0.0;
        if (system.num_qubits <= 20) {
            exact = lanczos_ground_state(system.hamiltonian).energy;
            const double denom = system.hf_energy - exact;
            recovered = (denom > 1e-12)
                ? 100.0 * (system.hf_energy - cafqa_energy) / denom
                : 100.0;
        }

        std::cout << molecule << ',' << bond << ',' << system.num_qubits
                  << ',' << (system.scf_converged ? 1 : 0) << ','
                  << system.hf_energy << ',' << cafqa_energy << ','
                  << tuned_value << ',' << exact << ',' << t_gates << ','
                  << evals << ',' << recovered << '\n';
    } catch (const std::exception& error) {
        std::cerr << "error: " << error.what() << '\n';
        return 1;
    }
    return 0;
}
