/**
 * @file
 * The CAFQA serving daemon: bind a socket, accept JSON-lines requests,
 * execute jobs over a shared worker pool and ONE process-wide
 * evaluation cache, stream records back. SIGTERM/SIGINT drain
 * gracefully — admission stops, in-flight and queued jobs finish and
 * flush their records, then the server says bye and exits.
 *
 * Usage:
 *   cafqa_server [--unix PATH | --host ADDR --port N]
 *                [--workers N] [--queue N] [--run-threads N]
 *                [--cache-capacity N] [--no-cache]
 *
 * Defaults: TCP on 127.0.0.1 with an ephemeral port (printed on
 * stdout as `listening on 127.0.0.1:PORT`), 2 workers, queue of 1024,
 * shared cache on. A Unix-domain server prints
 * `listening on PATH` instead. The protocol grammar lives in
 * `src/server/protocol.hpp` and the README's Serving section.
 */
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include <unistd.h>

#include "common/text.hpp"
#include "server/job_server.hpp"

namespace {

[[noreturn]] void
fail(const std::string& message)
{
    std::cerr << "cafqa_server: " << message << '\n'
              << "usage: cafqa_server [--unix PATH | --host ADDR "
                 "--port N] [--workers N] [--queue N] [--run-threads N]"
                 " [--cache-capacity N] [--no-cache]\n";
    std::exit(1);
}

std::size_t
parse_count(const std::string& flag, const std::string& text,
            std::int64_t min_value)
{
    const auto value = cafqa::parse_integer_token(text);
    if (!value || *value < min_value) {
        fail(flag + " expects an integer >= " +
             std::to_string(min_value) + ", got '" + text + "'");
    }
    return static_cast<std::size_t>(*value);
}

/** Signal -> self-pipe (the only async-signal-safe hand-off): the main
 *  thread blocks on the read end and turns the byte into a drain. */
int signal_pipe[2] = {-1, -1};

extern "C" void
on_terminate(int)
{
    const char byte = 't';
    [[maybe_unused]] const ssize_t n = ::write(signal_pipe[1], &byte, 1);
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cafqa;
    using namespace cafqa::server;

    ServerOptions options;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> const char* {
                if (i + 1 >= argc) {
                    fail(arg + " requires a value");
                }
                return argv[++i];
            };
            if (arg == "--unix") {
                options.unix_path = next();
            } else if (arg == "--host") {
                options.host = next();
            } else if (arg == "--port") {
                options.port =
                    static_cast<int>(parse_count(arg, next(), 0));
            } else if (arg == "--workers") {
                options.workers = parse_count(arg, next(), 1);
            } else if (arg == "--queue") {
                options.queue_capacity = parse_count(arg, next(), 1);
            } else if (arg == "--run-threads") {
                options.run_threads = parse_count(arg, next(), 1);
            } else if (arg == "--cache-capacity") {
                options.cache.capacity = parse_count(arg, next(), 1);
            } else if (arg == "--no-cache") {
                options.cache.enabled = false;
            } else {
                fail("unknown option '" + arg + "'");
            }
        }

        if (::pipe(signal_pipe) != 0) {
            fail("cannot create the signal pipe");
        }

        JobServer server(options);
        server.start();
        if (!options.unix_path.empty()) {
            std::cout << "listening on " << options.unix_path
                      << std::endl;
        } else {
            std::cout << "listening on " << options.host << ":"
                      << server.port() << std::endl;
        }

        struct sigaction action{};
        action.sa_handler = on_terminate;
        ::sigaction(SIGTERM, &action, nullptr);
        ::sigaction(SIGINT, &action, nullptr);

        // Drain on the first signal byte; a client `shutdown` op makes
        // wait() return on its own, so watch both in a helper thread.
        // lint:allow(raw-thread) a signal watcher must block in read()
        // independently of the pool; it is joined right below.
        std::thread signal_watcher([&server] {
            char byte;
            if (::read(signal_pipe[0], &byte, 1) == 1) {
                server.shutdown(true);
            }
        });

        server.wait();

        // Unblock the watcher if shutdown came over the wire instead.
        on_terminate(0);
        signal_watcher.join();

        const ServerCounters counters = server.counters();
        std::cerr << "cafqa_server: drained; submitted "
                  << counters.submitted << ", completed "
                  << counters.completed << ", cancelled "
                  << counters.cancelled << ", rejected "
                  << counters.rejected << '\n';
    } catch (const std::exception& error) {
        std::cerr << "cafqa_server: " << error.what() << '\n';
        return 1;
    }
    return 0;
}
