/**
 * @file
 * Example: the full CAFQA-then-VQA pipeline of paper Fig. 4 — classical
 * Clifford-space bootstrap, then continuous SPSA tuning on a simulated
 * noisy machine, compared against starting from Hartree-Fock.
 *
 * Usage: noisy_vqa_pipeline [bond_length_angstrom] [spsa_iterations]
 */
#include <cstdlib>
#include <iostream>

#include "core/cafqa_driver.hpp"
#include "core/clifford_ansatz.hpp"
#include "core/vqa_tuner.hpp"
#include "problems/molecule_factory.hpp"
#include "statevector/lanczos.hpp"

int
main(int argc, char** argv)
{
    using namespace cafqa;

    const double bond = (argc > 1) ? std::atof(argv[1]) : 4.2;
    const std::size_t iterations =
        (argc > 2) ? static_cast<std::size_t>(std::atoi(argv[2])) : 250;

    const auto system = problems::make_molecular_system("LiH", bond);
    VqaObjective objective;
    objective.hamiltonian = system.hamiltonian;

    // ---- Classical stage: CAFQA (red box of Fig. 4). ----
    CafqaOptions options{.warmup = 150, .iterations = 200, .seed = 21};
    options.seed_steps.push_back(efficient_su2_bitstring_steps(
        system.num_qubits, system.hf_bits));
    const CafqaResult cafqa = run_cafqa(
        system.ansatz, problems::make_objective(system), options);
    std::cout << "CAFQA initialization energy: " << cafqa.best_energy
              << " Ha\n";

    // ---- Quantum stage: noisy continuous tuning (blue box). ----
    VqaTunerOptions tuner;
    tuner.iterations = iterations;
    tuner.noise = NoiseModel{"nisq-surrogate", 0.002, 0.015, 0.002};

    tuner.seed = 1;
    const VqaTuneResult from_cafqa = tune_vqa(
        system.ansatz, objective, steps_to_angles(cafqa.best_steps),
        tuner);

    tuner.seed = 2;
    const VqaTuneResult from_hf = tune_vqa(
        system.ansatz, objective,
        steps_to_angles(efficient_su2_bitstring_steps(system.num_qubits,
                                                      system.hf_bits)),
        tuner);

    const GroundState exact = lanczos_ground_state(system.hamiltonian);
    const std::size_t it_cafqa =
        iterations_to_converge(from_cafqa.trace, 5e-3);
    const std::size_t it_hf = iterations_to_converge(from_hf.trace, 5e-3);

    std::cout << "Exact ground energy:          " << exact.energy
              << " Ha\n"
              << "Noisy VQA from CAFQA init:    " << from_cafqa.final_value
              << " Ha (converged in " << it_cafqa << " iterations)\n"
              << "Noisy VQA from HF init:       " << from_hf.final_value
              << " Ha (converged in " << it_hf << " iterations)\n"
              << "Convergence speedup from CAFQA: "
              << static_cast<double>(it_hf) /
                     static_cast<double>(std::max<std::size_t>(it_cafqa, 1))
              << "x\n";
    return 0;
}
