/**
 * @file
 * Example: the full CAFQA-then-VQA pipeline of paper Fig. 4 — classical
 * Clifford-space bootstrap, then continuous SPSA tuning on a simulated
 * noisy machine, compared against starting from Hartree-Fock.
 *
 * Usage: noisy_vqa_pipeline [bond_length_angstrom] [iterations] [tuner]
 *
 * `tuner` is any continuous optimizer-registry kind ("spsa" default,
 * "nelder-mead" for the noise-free baseline) — the pipeline swaps the
 * strategy without any other change.
 */
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/text.hpp"
#include "core/clifford_ansatz.hpp"
#include "core/pipeline.hpp"
#include "problems/problem.hpp"
#include "statevector/lanczos.hpp"

int
main(int argc, char** argv)
{
    using namespace cafqa;

    const double bond = (argc > 1) ? std::atof(argv[1]) : 4.2;
    const std::size_t iterations =
        (argc > 2) ? static_cast<std::size_t>(std::atoi(argv[2])) : 250;
    const std::string tuner_kind = (argc > 3) ? argv[3] : "spsa";

    const auto problem = problems::make_problem(
        "molecule:LiH?bond=" + format_real(bond));
    VqaObjective objective;
    objective.hamiltonian = problem.hamiltonian();

    // ---- Both stages through one pipeline: the discrete CAFQA search
    //      (red box of Fig. 4) feeds its best point straight into the
    //      noisy continuous tuning (blue box). ----
    VqaTunerOptions tuner;
    tuner.iterations = iterations;
    tuner.noise = NoiseModel{"nisq-surrogate", 0.002, 0.015, 0.002};
    tuner.seed = 1;

    PipelineConfig config;
    config.ansatz = problem.ansatz;
    config.objective = problem.objective;
    config.search = {.warmup = 150, .iterations = 200, .seed = 21};
    config.search.seed_steps = problem.seed_steps;
    config.tuner = tuner;

    CafqaPipeline pipeline(std::move(config));
    const CafqaResult& cafqa = pipeline.run_clifford_search();
    std::cout << "CAFQA initialization energy: " << cafqa.best_energy
              << " Ha\n";

    // Note: the pipeline tunes the *constrained* objective; this example
    // follows the paper's Fig. 14 and tunes the bare Hamiltonian, so it
    // uses a second pipeline with an explicit initialization for the HF
    // comparison as well.
    PipelineConfig cafqa_tune;
    cafqa_tune.ansatz = problem.ansatz;
    cafqa_tune.objective = objective;
    cafqa_tune.tuner = tuner;
    cafqa_tune.tuner_optimizer = optimizer_config(tuner_kind);
    CafqaPipeline tune_from_cafqa(std::move(cafqa_tune));
    const VqaTuneResult from_cafqa =
        tune_from_cafqa.run_vqa_tune(steps_to_angles(cafqa.best_steps));

    tuner.seed = 2;
    PipelineConfig hf_tune;
    hf_tune.ansatz = problem.ansatz;
    hf_tune.objective = objective;
    hf_tune.tuner = tuner;
    hf_tune.tuner_optimizer = optimizer_config(tuner_kind);
    CafqaPipeline tune_from_hf(std::move(hf_tune));
    // The problem's seed steps are the HF determinant's Clifford point.
    const VqaTuneResult from_hf = tune_from_hf.run_vqa_tune(
        steps_to_angles(problem.seed_steps.front()));

    const GroundState exact =
        lanczos_ground_state(problem.hamiltonian());
    const std::size_t it_cafqa =
        iterations_to_converge(from_cafqa.trace, 5e-3);
    const std::size_t it_hf = iterations_to_converge(from_hf.trace, 5e-3);

    std::cout << "Exact ground energy:          " << exact.energy
              << " Ha\n"
              << "Tuner strategy:               " << tuner_kind << "\n"
              << "Noisy VQA from CAFQA init:    " << from_cafqa.final_value
              << " Ha (converged in " << it_cafqa << " iterations)\n"
              << "Noisy VQA from HF init:       " << from_hf.final_value
              << " Ha (converged in " << it_hf << " iterations)\n"
              << "Convergence speedup from CAFQA: "
              << static_cast<double>(it_hf) /
                     static_cast<double>(std::max<std::size_t>(it_cafqa, 1))
              << "x\n";
    return 0;
}
