/**
 * @file
 * Aaronson-Gottesman stabilizer tableau (Gottesman-Knill simulation,
 * paper Section 2.3).
 *
 * The tableau tracks n destabilizer rows and n stabilizer rows, each a
 * signed Pauli string, starting from the |0...0> state (destabilizer_i =
 * X_i, stabilizer_i = Z_i). Conjugation by Clifford gates updates rows in
 * O(n/64); Pauli expectation values are computed exactly, returning only
 * -1, 0 or +1 — the property the paper exploits to evaluate each Pauli
 * term with a single noise-free "shot" (Section 3, item 7).
 */
#ifndef CAFQA_STABILIZER_TABLEAU_HPP
#define CAFQA_STABILIZER_TABLEAU_HPP

#include <vector>

#include "pauli/pauli_string.hpp"

namespace cafqa {

/** Stabilizer tableau for a pure n-qubit stabilizer state. */
class Tableau
{
  public:
    /** Tableau of the all-zeros computational basis state. */
    explicit Tableau(std::size_t num_qubits);

    std::size_t num_qubits() const { return num_qubits_; }

    /** @name Clifford gate conjugations (in-place). */
    /// @{
    void h(std::size_t q);
    void x(std::size_t q);
    void y(std::size_t q);
    void z(std::size_t q);
    void s(std::size_t q);
    void sdg(std::size_t q);
    void cx(std::size_t control, std::size_t target);
    void cz(std::size_t a, std::size_t b);
    void swap(std::size_t a, std::size_t b);
    /// @}

    /** Rotation by k*pi/2 about X/Y/Z (k taken mod 4). */
    void rx_steps(std::size_t q, int k);
    void ry_steps(std::size_t q, int k);
    void rz_steps(std::size_t q, int k);
    /** Two-qubit ZZ rotation by k*pi/2 (RZZ = CX . RZ_b . CX). */
    void rzz_steps(std::size_t a, std::size_t b, int k);

    /**
     * Exact expectation of a Hermitian Pauli string on the current state.
     * @return +1, -1, or 0.
     */
    int expectation(const PauliString& pauli) const;

    /** Read access to stabilizer generator i (sign included). */
    const PauliString& stabilizer(std::size_t i) const;
    /** Read access to destabilizer generator i. */
    const PauliString& destabilizer(std::size_t i) const;

    /**
     * Internal consistency check: destabilizer/stabilizer pairs satisfy
     * the symplectic anticommutation pattern and every row is Hermitian.
     * Used by tests and debug assertions.
     */
    bool check_invariants() const;

  private:
    /** Apply a single-qubit conjugation given the bit/phase update rule:
     *  (x,z) -> (new_x, new_z), phase += phase_step(x, z). */
    template <typename Rule>
    void apply_single_qubit(std::size_t q, Rule rule);

    std::size_t num_qubits_;
    /** Rows 0..n-1: destabilizers; rows n..2n-1: stabilizers. */
    std::vector<PauliString> rows_;
};

} // namespace cafqa

#endif // CAFQA_STABILIZER_TABLEAU_HPP
