/**
 * @file
 * Batched Pauli-sum expectation engine over the column-packed
 * symplectic tableau.
 *
 * A `PauliSum` is precompiled ONCE into packed term masks and then
 * every term of the Hamiltonian is evaluated against the current
 * tableau in a single pass. Two evaluation strategies are compiled,
 * selected by a static cost model (overridable):
 *
 * - **Transposed** (term-rich sums, e.g. molecular Hamiltonians whose
 *   term count grows as O(n^4)): the sum itself is bit-packed
 *   *across terms* — per qubit, one bit-plane holding the X (resp. Z)
 *   support of 64 terms per word. Screening then walks the tableau's
 *   stabilizer columns once, XORing term planes into per-generator
 *   symplectic-product planes: the anticommutation of EVERY term with
 *   every generator falls out word-parallel, 64 terms at a time, and
 *   sign recovery reduces the destabilizer-selected generator phases
 *   with two-bit packed adders plus a pairwise cross-phase matrix.
 *   Cost is O(tableau support * terms/64) for the entire sum.
 *
 * - **Per-term grouped** (few terms or very wide systems, e.g. MaxCut
 *   on 256+ qubits): terms are evaluated one at a time against the
 *   row-packed columns, precompiled through the qubit-wise-commuting
 *   grouping of Gokhale et al. (`pauli/grouping.hpp`): a group gathers
 *   its basis columns once into a contiguous block and screens with a
 *   single shared-support mask — when no stabilizer row touches the
 *   group's basis, every member term skips screening outright.
 *
 * Either way the reduction accumulates in original term order, so both
 * strategies, serial or thread-pool parallel, are bit-identical to the
 * legacy row-based term loop.
 */
#ifndef CAFQA_STABILIZER_EXPECTATION_ENGINE_HPP
#define CAFQA_STABILIZER_EXPECTATION_ENGINE_HPP

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/thread_pool.hpp"
#include "pauli/grouping.hpp"
#include "pauli/pauli_sum.hpp"
#include "stabilizer/symplectic_tableau.hpp"

namespace cafqa {

/** Evaluation strategy selection. */
enum class EvalStrategy : std::uint8_t {
    /** Pick by the compiled cost model (default). */
    Auto,
    /** Force the per-term grouped pass. */
    PerTerm,
    /** Force the transposed term-plane pass. */
    Transposed,
};

/** Engine knobs. */
struct ExpectationEngineOptions
{
    EvalStrategy strategy = EvalStrategy::Auto;
    /** Precompile the per-term pass through the QWC grouping (shared
     *  column gather + group-level screening). Disabling falls back to
     *  one group per term; results are bit-identical either way. */
    bool use_grouping = true;
    /** Max tolerated |imag coefficient|; the sum must be Hermitian for
     *  its stabilizer expectation to be the real number we return. */
    double hermitian_tolerance = 1e-8;
};

/** A PauliSum compiled for single-pass evaluation on stabilizer states. */
class StabilizerExpectationEngine
{
  public:
    /**
     * Precompile `op`. Throws std::invalid_argument when the sum is not
     * Hermitian within `options.hermitian_tolerance` — a silent
     * `coefficient.real()` would hide mapping bugs that produce complex
     * coefficients.
     */
    explicit StabilizerExpectationEngine(
        const PauliSum& op, ExpectationEngineOptions options = {});

    std::size_t num_qubits() const { return num_qubits_; }
    std::size_t num_terms() const { return coefficients_.size(); }
    /** Measurement groups of the per-term pass (0 when the transposed
     *  strategy was compiled instead). */
    std::size_t num_groups() const { return groups_.size(); }
    /** The strategy the cost model picked ("transposed" / "per-term"). */
    std::string_view strategy() const;

    /** Exact expectation of the compiled sum on the current tableau,
     *  all terms in one serial pass. */
    double expectation(const SymplecticTableau& tableau) const;

    /**
     * Same value, with the work fanned out across `pool` (term blocks
     * for the transposed strategy, groups for the per-term one). The
     * final reduction stays in term order, so the result is
     * bit-identical to the serial pass. Must not be called from inside
     * a running `parallel_for` job of the same pool.
     */
    double expectation(const SymplecticTableau& tableau,
                       ThreadPool& pool) const;

  private:
    // ---- per-term grouped strategy ----

    struct CompiledTerm
    {
        /** Phase exponent k of the canonical term string (i^k X^x Z^z). */
        std::uint8_t phase = 0;
        /** Slice into ops_: indices into the owning group's columns. */
        std::uint32_t first_op = 0;
        std::uint32_t num_ops = 0;
        /** Original index in the source PauliSum (reduction order). */
        std::uint32_t term_index = 0;
    };

    struct CompiledGroup
    {
        /** Distinct tableau columns the group's basis touches,
         *  encoded (q << 1) | is_z_column. */
        std::vector<std::uint32_t> columns;
        std::vector<CompiledTerm> terms;
    };

    struct Scratch
    {
        // per-term strategy
        std::vector<std::uint64_t> stab, destab, anti, sel;
        // transposed strategy
        std::vector<std::uint64_t> sym_planes, sel_planes, cross_rows;
        std::vector<std::uint64_t> masks;
        // shared
        std::vector<std::int8_t> results;
    };

    /** Per-thread reusable buffers: engines are shared across worker
     *  clones, so scratch cannot live in the (const) engine itself, and
     *  re-allocating per evaluation would dominate small sums. */
    static Scratch& thread_scratch();

    void compile_per_term(const PauliSum& op,
                          const std::vector<MeasurementGroup>& groups);
    void compile_transposed(const PauliSum& op);

    /** Fill `results[term_index]` (+1/-1/0) for one group's terms. */
    void evaluate_group(const SymplecticTableau& tableau,
                        const CompiledGroup& group, Scratch& scratch,
                        std::int8_t* results) const;

    /** Pairwise generator cross-phase matrix (tableau-only, shared
     *  read-only across parallel term blocks). */
    void build_cross_rows(const SymplecticTableau& tableau,
                          std::vector<std::uint64_t>& cross_rows) const;

    /** Evaluate terms in word block [block_begin, block_end): either
     *  fill `results` per term, or (serial pass) accumulate the
     *  +/-coefficients straight into `*fused_total` in term order. */
    void evaluate_transposed(const SymplecticTableau& tableau,
                             std::size_t block_begin,
                             std::size_t block_end,
                             const std::uint64_t* cross_rows,
                             Scratch& scratch, std::int8_t* results,
                             double* fused_total) const;

    double evaluate(const SymplecticTableau& tableau,
                    ThreadPool* pool) const;

    double reduce(const std::int8_t* results) const;

    std::size_t num_qubits_ = 0;
    bool transposed_ = false;
    /** Real coefficients in original term order (for the reduction). */
    std::vector<double> coefficients_;

    // per-term strategy state
    std::vector<CompiledGroup> groups_;
    /** Per-term op stream: indices into the owning group's columns. */
    std::vector<std::uint32_t> ops_;

    // transposed strategy state
    /** Words per 64-term block row. */
    std::size_t term_words_ = 0;
    /** Qubit-major term support planes: element [q * term_words_ + w],
     *  bit t of word w = term 64*w + t. */
    std::vector<std::uint64_t> term_x_planes_, term_z_planes_;
    /** Term phase-exponent bit-planes (k = kp0 + 2*kp1 mod 4). */
    std::vector<std::uint64_t> term_kp0_, term_kp1_;
};

} // namespace cafqa

#endif // CAFQA_STABILIZER_EXPECTATION_ENGINE_HPP
