#include "stabilizer/tableau.hpp"

#include "common/error.hpp"

namespace cafqa {

Tableau::Tableau(std::size_t num_qubits) : num_qubits_(num_qubits)
{
    CAFQA_REQUIRE(num_qubits >= 1, "tableau needs at least one qubit");
    rows_.reserve(2 * num_qubits);
    for (std::size_t i = 0; i < num_qubits; ++i) {
        PauliString d(num_qubits);
        d.set_x_bit(i, true);
        rows_.push_back(std::move(d));
    }
    for (std::size_t i = 0; i < num_qubits; ++i) {
        PauliString s(num_qubits);
        s.set_z_bit(i, true);
        rows_.push_back(std::move(s));
    }
}

template <typename Rule>
void
Tableau::apply_single_qubit(std::size_t q, Rule rule)
{
    CAFQA_REQUIRE(q < num_qubits_, "qubit index out of range");
    for (auto& row : rows_) {
        const bool x = row.x_bit(q);
        const bool z = row.z_bit(q);
        if (!x && !z) {
            continue;
        }
        rule(row, q, x, z);
    }
}

void
Tableau::h(std::size_t q)
{
    // H: X^x Z^z -> Z^x X^z = (-1)^{xz} X^z Z^x
    apply_single_qubit(q, [](PauliString& row, std::size_t qq, bool x,
                             bool z) {
        if (x && z) {
            row.mul_phase(2);
        }
        row.set_x_bit(qq, z);
        row.set_z_bit(qq, x);
    });
}

void
Tableau::x(std::size_t q)
{
    // X: Z -> -Z, X -> X  =>  phase += 2z
    apply_single_qubit(q, [](PauliString& row, std::size_t, bool, bool z) {
        if (z) {
            row.mul_phase(2);
        }
    });
}

void
Tableau::y(std::size_t q)
{
    // Y: X -> -X, Z -> -Z  =>  phase += 2*(x XOR z)
    apply_single_qubit(q, [](PauliString& row, std::size_t, bool x, bool z) {
        if (x != z) {
            row.mul_phase(2);
        }
    });
}

void
Tableau::z(std::size_t q)
{
    // Z: X -> -X  =>  phase += 2x
    apply_single_qubit(q, [](PauliString& row, std::size_t, bool x, bool) {
        if (x) {
            row.mul_phase(2);
        }
    });
}

void
Tableau::s(std::size_t q)
{
    // S: X^x Z^z -> i^x X^x Z^{z^x}
    apply_single_qubit(q, [](PauliString& row, std::size_t qq, bool x,
                             bool z) {
        if (x) {
            row.mul_phase(1);
            row.set_z_bit(qq, !z);
        }
    });
}

void
Tableau::sdg(std::size_t q)
{
    // Sdg: X^x Z^z -> i^{-x} X^x Z^{z^x}
    apply_single_qubit(q, [](PauliString& row, std::size_t qq, bool x,
                             bool z) {
        if (x) {
            row.mul_phase(3);
            row.set_z_bit(qq, !z);
        }
    });
}

void
Tableau::cx(std::size_t control, std::size_t target)
{
    CAFQA_REQUIRE(control < num_qubits_ && target < num_qubits_,
                  "qubit index out of range");
    CAFQA_REQUIRE(control != target, "control equals target");
    // In the i^k X^x Z^z convention CX needs no phase update:
    //   X_c -> X_c X_t, Z_t -> Z_c Z_t.
    for (auto& row : rows_) {
        if (row.x_bit(control)) {
            row.set_x_bit(target, !row.x_bit(target));
        }
        if (row.z_bit(target)) {
            row.set_z_bit(control, !row.z_bit(control));
        }
    }
}

void
Tableau::cz(std::size_t a, std::size_t b)
{
    // CZ = (I ox H) CX (I ox H)
    h(b);
    cx(a, b);
    h(b);
}

void
Tableau::swap(std::size_t a, std::size_t b)
{
    cx(a, b);
    cx(b, a);
    cx(a, b);
}

void
Tableau::rx_steps(std::size_t q, int k)
{
    switch (((k % 4) + 4) % 4) {
      case 0: break;
      case 1: sdg(q); h(q); sdg(q); break; // RX(pi/2) = Sdg H Sdg
      case 2: x(q); break;
      case 3: s(q); h(q); s(q); break;     // RX(3pi/2) = S H S
    }
}

void
Tableau::ry_steps(std::size_t q, int k)
{
    switch (((k % 4) + 4) % 4) {
      case 0: break;
      case 1: z(q); h(q); break;           // RY(pi/2) = H * Z
      case 2: y(q); break;
      case 3: h(q); z(q); break;           // RY(3pi/2) = Z * H
    }
}

void
Tableau::rz_steps(std::size_t q, int k)
{
    switch (((k % 4) + 4) % 4) {
      case 0: break;
      case 1: s(q); break;
      case 2: z(q); break;
      case 3: sdg(q); break;
    }
}

void
Tableau::rzz_steps(std::size_t a, std::size_t b, int k)
{
    if (((k % 4) + 4) % 4 == 0) {
        return;
    }
    cx(a, b);
    rz_steps(b, k);
    cx(a, b);
}

int
Tableau::expectation(const PauliString& pauli) const
{
    CAFQA_REQUIRE(pauli.num_qubits() == num_qubits_,
                  "operator qubit count mismatch");
    CAFQA_REQUIRE(pauli.is_hermitian(),
                  "expectation requires a Hermitian Pauli string");

    // If P anticommutes with any stabilizer generator, <P> = 0.
    for (std::size_t i = 0; i < num_qubits_; ++i) {
        if (!pauli.commutes_with(rows_[num_qubits_ + i])) {
            return 0;
        }
    }

    // Otherwise P is +/- a product of stabilizer generators; generator i
    // participates iff P anticommutes with destabilizer i.
    PauliString product(num_qubits_);
    for (std::size_t i = 0; i < num_qubits_; ++i) {
        if (!pauli.commutes_with(rows_[i])) {
            product *= rows_[num_qubits_ + i];
        }
    }
    CAFQA_ASSERT(product.equal_letters(pauli),
                 "commuting Pauli is not in the stabilizer group");
    // <product> = +1 by construction, so <P> = sign(P) * sign(product).
    const double ratio =
        (pauli.sign() * std::conj(product.sign())).real();
    return ratio > 0 ? 1 : -1;
}

const PauliString&
Tableau::stabilizer(std::size_t i) const
{
    CAFQA_REQUIRE(i < num_qubits_, "stabilizer index out of range");
    return rows_[num_qubits_ + i];
}

const PauliString&
Tableau::destabilizer(std::size_t i) const
{
    CAFQA_REQUIRE(i < num_qubits_, "destabilizer index out of range");
    return rows_[i];
}

bool
Tableau::check_invariants() const
{
    for (const auto& row : rows_) {
        if (!row.is_hermitian()) {
            return false;
        }
    }
    for (std::size_t i = 0; i < num_qubits_; ++i) {
        for (std::size_t j = 0; j < num_qubits_; ++j) {
            const bool commute = rows_[i].commutes_with(rows_[num_qubits_ + j]);
            if ((i == j) == commute) {
                return false; // d_i must anticommute exactly with s_i
            }
            if (!rows_[num_qubits_ + i].commutes_with(rows_[num_qubits_ + j])) {
                return false; // stabilizers commute pairwise
            }
            if (!rows_[i].commutes_with(rows_[j])) {
                return false; // destabilizers commute pairwise
            }
        }
    }
    return true;
}

} // namespace cafqa
