#include "stabilizer/stabilizer_simulator.hpp"

#include "common/error.hpp"
#include "stabilizer/circuit_replay.hpp"

namespace cafqa {

StabilizerSimulator::StabilizerSimulator(std::size_t num_qubits)
    : tableau_(num_qubits)
{}

int
StabilizerSimulator::angle_to_steps(double angle, double tolerance)
{
    return angle_to_quarter_steps(angle, tolerance);
}

void
StabilizerSimulator::apply(const GateOp& op, const std::vector<double>& params)
{
    replay_gate(tableau_, op,
                is_rotation(op.kind) ? op.resolved_angle(params) : 0.0);
}

void
StabilizerSimulator::apply_circuit(const Circuit& circuit,
                                   const std::vector<double>& params)
{
    replay_circuit(tableau_, circuit, params);
}

void
StabilizerSimulator::apply_circuit_steps(const Circuit& circuit,
                                         const std::vector<int>& steps)
{
    replay_circuit_steps(tableau_, circuit, steps);
}

int
StabilizerSimulator::expectation(const PauliString& pauli) const
{
    return tableau_.expectation(pauli);
}

double
StabilizerSimulator::expectation(const PauliSum& op,
                                 double hermitian_tolerance) const
{
    CAFQA_REQUIRE(op.num_qubits() == num_qubits(),
                  "operator qubit count mismatch");
    require_hermitian(op, hermitian_tolerance);
    double total = 0.0;
    for (const auto& term : op.terms()) {
        const int e = tableau_.expectation(term.string);
        if (e != 0) {
            total += term.coefficient.real() * e;
        }
    }
    return total;
}

} // namespace cafqa
