#include "stabilizer/stabilizer_simulator.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace cafqa {

StabilizerSimulator::StabilizerSimulator(std::size_t num_qubits)
    : tableau_(num_qubits)
{}

int
StabilizerSimulator::angle_to_steps(double angle, double tolerance)
{
    constexpr double half_pi = std::numbers::pi / 2.0;
    const double steps = angle / half_pi;
    const double rounded = std::round(steps);
    CAFQA_REQUIRE(std::abs(steps - rounded) <= tolerance,
                  "rotation angle is not a multiple of pi/2");
    const int k = static_cast<int>(
        std::llround(rounded) % 4);
    return (k + 4) % 4;
}

void
StabilizerSimulator::apply_resolved(const GateOp& op, double angle)
{
    switch (op.kind) {
      case GateKind::H: tableau_.h(op.q0); break;
      case GateKind::X: tableau_.x(op.q0); break;
      case GateKind::Y: tableau_.y(op.q0); break;
      case GateKind::Z: tableau_.z(op.q0); break;
      case GateKind::S: tableau_.s(op.q0); break;
      case GateKind::Sdg: tableau_.sdg(op.q0); break;
      case GateKind::CX: tableau_.cx(op.q0, op.q1); break;
      case GateKind::CZ: tableau_.cz(op.q0, op.q1); break;
      case GateKind::Swap: tableau_.swap(op.q0, op.q1); break;
      case GateKind::Rx:
        tableau_.rx_steps(op.q0, angle_to_steps(angle));
        break;
      case GateKind::Ry:
        tableau_.ry_steps(op.q0, angle_to_steps(angle));
        break;
      case GateKind::Rz:
        tableau_.rz_steps(op.q0, angle_to_steps(angle));
        break;
      case GateKind::Rzz:
        tableau_.rzz_steps(op.q0, op.q1, angle_to_steps(angle));
        break;
      case GateKind::T:
      case GateKind::Tdg:
        CAFQA_REQUIRE(false,
                      "T gates are not Clifford; use the Clifford+kT "
                      "branch simulator (core/clifford_t)");
    }
}

void
StabilizerSimulator::apply(const GateOp& op, const std::vector<double>& params)
{
    apply_resolved(op, is_rotation(op.kind) ? op.resolved_angle(params) : 0.0);
}

void
StabilizerSimulator::apply_circuit(const Circuit& circuit,
                                   const std::vector<double>& params)
{
    CAFQA_REQUIRE(circuit.num_qubits() == num_qubits(),
                  "circuit qubit count mismatch");
    for (const auto& op : circuit.ops()) {
        apply(op, params);
    }
}

void
StabilizerSimulator::apply_circuit_steps(const Circuit& circuit,
                                         const std::vector<int>& steps)
{
    CAFQA_REQUIRE(circuit.num_qubits() == num_qubits(),
                  "circuit qubit count mismatch");
    CAFQA_REQUIRE(steps.size() == circuit.num_params(),
                  "step vector size must equal circuit parameter count");
    for (const auto& op : circuit.ops()) {
        if (is_rotation(op.kind) && op.param >= 0) {
            const int k = steps[static_cast<std::size_t>(op.param)];
            switch (op.kind) {
              case GateKind::Rx: tableau_.rx_steps(op.q0, k); break;
              case GateKind::Ry: tableau_.ry_steps(op.q0, k); break;
              case GateKind::Rz: tableau_.rz_steps(op.q0, k); break;
              case GateKind::Rzz:
                tableau_.rzz_steps(op.q0, op.q1, k);
                break;
              default: break;
            }
        } else {
            apply_resolved(op,
                           is_rotation(op.kind) ? op.angle : 0.0);
        }
    }
}

int
StabilizerSimulator::expectation(const PauliString& pauli) const
{
    return tableau_.expectation(pauli);
}

double
StabilizerSimulator::expectation(const PauliSum& op) const
{
    CAFQA_REQUIRE(op.num_qubits() == num_qubits(),
                  "operator qubit count mismatch");
    double total = 0.0;
    for (const auto& term : op.terms()) {
        const int e = tableau_.expectation(term.string);
        if (e != 0) {
            total += term.coefficient.real() * e;
        }
    }
    return total;
}

} // namespace cafqa
