/**
 * @file
 * Circuit-level front end for the stabilizer state: applies Clifford
 * circuits (with rotation parameters given either as angles that are
 * multiples of pi/2, or directly as integer quarter-turn counts) and
 * evaluates Pauli-sum expectation values exactly.
 *
 * The state lives in the column-packed `SymplecticTableau`
 * (word-parallel gate conjugations); the legacy row-based `Tableau`
 * remains available as the reference oracle for differential tests.
 */
#ifndef CAFQA_STABILIZER_STABILIZER_SIMULATOR_HPP
#define CAFQA_STABILIZER_STABILIZER_SIMULATOR_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "pauli/pauli_sum.hpp"
#include "stabilizer/symplectic_tableau.hpp"

namespace cafqa {

/** Stabilizer-state simulator over the circuit IR. */
class StabilizerSimulator
{
  public:
    /** Start in |0...0>. */
    explicit StabilizerSimulator(std::size_t num_qubits);

    std::size_t num_qubits() const { return tableau_.num_qubits(); }

    /** Apply one gate; rotation angles must be multiples of pi/2. */
    void apply(const GateOp& op, const std::vector<double>& params = {});

    /** Apply a whole circuit with real-valued parameters (each bound
     *  rotation angle must be a multiple of pi/2). */
    void apply_circuit(const Circuit& circuit,
                       const std::vector<double>& params = {});

    /**
     * Apply a parameterized circuit where parameter slot i is the integer
     * quarter-turn count steps[i] (angle = steps[i] * pi/2). This is the
     * CAFQA search fast path — no floating-point rounding involved.
     */
    void apply_circuit_steps(const Circuit& circuit,
                             const std::vector<int>& steps);

    /** Exact single-term expectation: +1, -1 or 0. */
    int expectation(const PauliString& pauli) const;

    /**
     * Exact expectation of a Hermitian Pauli sum. Throws when any
     * coefficient carries an imaginary part above `hermitian_tolerance`
     * — silently taking `.real()` would hide mapping bugs that produce
     * non-Hermitian sums.
     */
    double expectation(const PauliSum& op,
                       double hermitian_tolerance = 1e-8) const;

    const SymplecticTableau& tableau() const { return tableau_; }

    /** Convert an angle to quarter-turns; throws if not a multiple of
     *  pi/2 within `tolerance` relative to the magnitude (see
     *  `angle_to_quarter_steps` in stabilizer/circuit_replay.hpp). */
    static int angle_to_steps(double angle, double tolerance = 1e-9);

  private:
    SymplecticTableau tableau_;
};

} // namespace cafqa

#endif // CAFQA_STABILIZER_STABILIZER_SIMULATOR_HPP
