/**
 * @file
 * Circuit-level front end for the stabilizer tableau: applies Clifford
 * circuits (with rotation parameters given either as angles that are
 * multiples of pi/2, or directly as integer quarter-turn counts) and
 * evaluates Pauli-sum expectation values exactly.
 */
#ifndef CAFQA_STABILIZER_STABILIZER_SIMULATOR_HPP
#define CAFQA_STABILIZER_STABILIZER_SIMULATOR_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "pauli/pauli_sum.hpp"
#include "stabilizer/tableau.hpp"

namespace cafqa {

/** Stabilizer-state simulator over the circuit IR. */
class StabilizerSimulator
{
  public:
    /** Start in |0...0>. */
    explicit StabilizerSimulator(std::size_t num_qubits);

    std::size_t num_qubits() const { return tableau_.num_qubits(); }

    /** Apply one gate; rotation angles must be multiples of pi/2. */
    void apply(const GateOp& op, const std::vector<double>& params = {});

    /** Apply a whole circuit with real-valued parameters (each bound
     *  rotation angle must be a multiple of pi/2). */
    void apply_circuit(const Circuit& circuit,
                       const std::vector<double>& params = {});

    /**
     * Apply a parameterized circuit where parameter slot i is the integer
     * quarter-turn count steps[i] (angle = steps[i] * pi/2). This is the
     * CAFQA search fast path — no floating-point rounding involved.
     */
    void apply_circuit_steps(const Circuit& circuit,
                             const std::vector<int>& steps);

    /** Exact single-term expectation: +1, -1 or 0. */
    int expectation(const PauliString& pauli) const;

    /** Exact expectation of a Hermitian Pauli sum (real part). */
    double expectation(const PauliSum& op) const;

    const Tableau& tableau() const { return tableau_; }

    /** Convert an angle to quarter-turns; throws if not a multiple of
     *  pi/2 within `tolerance`. */
    static int angle_to_steps(double angle, double tolerance = 1e-9);

  private:
    void apply_resolved(const GateOp& op, double angle);

    Tableau tableau_;
};

} // namespace cafqa

#endif // CAFQA_STABILIZER_STABILIZER_SIMULATOR_HPP
