#include "stabilizer/symplectic_tableau.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"

namespace cafqa {

namespace {

/** Inclusive prefix parity: bit r of the result is the parity of bits
 *  0..r of v. */
inline std::uint64_t
prefix_xor(std::uint64_t v)
{
    v ^= v << 1;
    v ^= v << 2;
    v ^= v << 4;
    v ^= v << 8;
    v ^= v << 16;
    v ^= v << 32;
    return v;
}

} // namespace

SymplecticTableau::SymplecticTableau(std::size_t num_qubits)
    : num_qubits_(num_qubits), words_((num_qubits + 63) / 64)
{
    CAFQA_REQUIRE(num_qubits >= 1, "tableau needs at least one qubit");
    x_destab_.assign(num_qubits_ * words_, 0);
    z_destab_.assign(num_qubits_ * words_, 0);
    x_stab_.assign(num_qubits_ * words_, 0);
    z_stab_.assign(num_qubits_ * words_, 0);
    p0_destab_.assign(words_, 0);
    p1_destab_.assign(words_, 0);
    p0_stab_.assign(words_, 0);
    p1_stab_.assign(words_, 0);
    // |0...0>: destabilizer_i = X_i, stabilizer_i = Z_i — plane row i
    // touches qubit i only, so column q holds exactly bit q.
    for (std::size_t q = 0; q < num_qubits_; ++q) {
        const std::uint64_t bit = std::uint64_t{1} << (q % 64);
        x_destab_[q * words_ + q / 64] = bit;
        z_stab_[q * words_ + q / 64] = bit;
    }
}

void
SymplecticTableau::h(std::size_t q)
{
    CAFQA_REQUIRE(q < num_qubits_, "qubit index out of range");
    // H: X^x Z^z -> (-1)^{xz} X^z Z^x, i.e. phase += 2*x*z, swap x/z.
    std::uint64_t* xd = x_destab_.data() + q * words_;
    std::uint64_t* zd = z_destab_.data() + q * words_;
    std::uint64_t* xs = x_stab_.data() + q * words_;
    std::uint64_t* zs = z_stab_.data() + q * words_;
    for (std::size_t w = 0; w < words_; ++w) {
        p1_destab_[w] ^= xd[w] & zd[w];
        std::swap(xd[w], zd[w]);
        p1_stab_[w] ^= xs[w] & zs[w];
        std::swap(xs[w], zs[w]);
    }
}

void
SymplecticTableau::x(std::size_t q)
{
    CAFQA_REQUIRE(q < num_qubits_, "qubit index out of range");
    // X: phase += 2z
    const std::uint64_t* zd = z_destab_.data() + q * words_;
    const std::uint64_t* zs = z_stab_.data() + q * words_;
    for (std::size_t w = 0; w < words_; ++w) {
        p1_destab_[w] ^= zd[w];
        p1_stab_[w] ^= zs[w];
    }
}

void
SymplecticTableau::y(std::size_t q)
{
    CAFQA_REQUIRE(q < num_qubits_, "qubit index out of range");
    // Y: phase += 2*(x XOR z)
    for (std::size_t w = 0; w < words_; ++w) {
        p1_destab_[w] ^=
            x_destab_[q * words_ + w] ^ z_destab_[q * words_ + w];
        p1_stab_[w] ^= x_stab_[q * words_ + w] ^ z_stab_[q * words_ + w];
    }
}

void
SymplecticTableau::z(std::size_t q)
{
    CAFQA_REQUIRE(q < num_qubits_, "qubit index out of range");
    // Z: phase += 2x
    const std::uint64_t* xd = x_destab_.data() + q * words_;
    const std::uint64_t* xs = x_stab_.data() + q * words_;
    for (std::size_t w = 0; w < words_; ++w) {
        p1_destab_[w] ^= xd[w];
        p1_stab_[w] ^= xs[w];
    }
}

void
SymplecticTableau::s(std::size_t q)
{
    CAFQA_REQUIRE(q < num_qubits_, "qubit index out of range");
    // S: X^x Z^z -> i^x X^x Z^{z^x}: on rows with x, phase += 1, z ^= 1.
    const std::uint64_t* xd = x_destab_.data() + q * words_;
    std::uint64_t* zd = z_destab_.data() + q * words_;
    const std::uint64_t* xs = x_stab_.data() + q * words_;
    std::uint64_t* zs = z_stab_.data() + q * words_;
    for (std::size_t w = 0; w < words_; ++w) {
        p1_destab_[w] ^= p0_destab_[w] & xd[w];
        p0_destab_[w] ^= xd[w];
        zd[w] ^= xd[w];
        p1_stab_[w] ^= p0_stab_[w] & xs[w];
        p0_stab_[w] ^= xs[w];
        zs[w] ^= xs[w];
    }
}

void
SymplecticTableau::sdg(std::size_t q)
{
    CAFQA_REQUIRE(q < num_qubits_, "qubit index out of range");
    // Sdg: phase += 3 on rows with x (add 1 with carry, then add 2).
    const std::uint64_t* xd = x_destab_.data() + q * words_;
    std::uint64_t* zd = z_destab_.data() + q * words_;
    const std::uint64_t* xs = x_stab_.data() + q * words_;
    std::uint64_t* zs = z_stab_.data() + q * words_;
    for (std::size_t w = 0; w < words_; ++w) {
        p1_destab_[w] ^= (p0_destab_[w] & xd[w]) ^ xd[w];
        p0_destab_[w] ^= xd[w];
        zd[w] ^= xd[w];
        p1_stab_[w] ^= (p0_stab_[w] & xs[w]) ^ xs[w];
        p0_stab_[w] ^= xs[w];
        zs[w] ^= xs[w];
    }
}

void
SymplecticTableau::cx(std::size_t control, std::size_t target)
{
    CAFQA_REQUIRE(control < num_qubits_ && target < num_qubits_,
                  "qubit index out of range");
    CAFQA_REQUIRE(control != target, "control equals target");
    // X_c -> X_c X_t, Z_t -> Z_c Z_t; no phase update in this convention.
    const std::uint64_t* xdc = x_destab_.data() + control * words_;
    std::uint64_t* xdt = x_destab_.data() + target * words_;
    std::uint64_t* zdc = z_destab_.data() + control * words_;
    const std::uint64_t* zdt = z_destab_.data() + target * words_;
    const std::uint64_t* xsc = x_stab_.data() + control * words_;
    std::uint64_t* xst = x_stab_.data() + target * words_;
    std::uint64_t* zsc = z_stab_.data() + control * words_;
    const std::uint64_t* zst = z_stab_.data() + target * words_;
    for (std::size_t w = 0; w < words_; ++w) {
        xdt[w] ^= xdc[w];
        zdc[w] ^= zdt[w];
        xst[w] ^= xsc[w];
        zsc[w] ^= zst[w];
    }
}

void
SymplecticTableau::cz(std::size_t a, std::size_t b)
{
    // CZ = (I ox H) CX (I ox H), same composition as the reference
    // tableau so phases stay bit-identical.
    h(b);
    cx(a, b);
    h(b);
}

void
SymplecticTableau::swap(std::size_t a, std::size_t b)
{
    CAFQA_REQUIRE(a < num_qubits_ && b < num_qubits_,
                  "qubit index out of range");
    CAFQA_REQUIRE(a != b, "swap operands are equal");
    // Three CX conjugations amount to a phase-free column exchange.
    std::swap_ranges(x_destab_.begin() + static_cast<std::ptrdiff_t>(a * words_),
                     x_destab_.begin() + static_cast<std::ptrdiff_t>((a + 1) * words_),
                     x_destab_.begin() + static_cast<std::ptrdiff_t>(b * words_));
    std::swap_ranges(z_destab_.begin() + static_cast<std::ptrdiff_t>(a * words_),
                     z_destab_.begin() + static_cast<std::ptrdiff_t>((a + 1) * words_),
                     z_destab_.begin() + static_cast<std::ptrdiff_t>(b * words_));
    std::swap_ranges(x_stab_.begin() + static_cast<std::ptrdiff_t>(a * words_),
                     x_stab_.begin() + static_cast<std::ptrdiff_t>((a + 1) * words_),
                     x_stab_.begin() + static_cast<std::ptrdiff_t>(b * words_));
    std::swap_ranges(z_stab_.begin() + static_cast<std::ptrdiff_t>(a * words_),
                     z_stab_.begin() + static_cast<std::ptrdiff_t>((a + 1) * words_),
                     z_stab_.begin() + static_cast<std::ptrdiff_t>(b * words_));
}

void
SymplecticTableau::rx_steps(std::size_t q, int k)
{
    switch (((k % 4) + 4) % 4) {
      case 0: break;
      case 1: sdg(q); h(q); sdg(q); break; // RX(pi/2) = Sdg H Sdg
      case 2: x(q); break;
      case 3: s(q); h(q); s(q); break;     // RX(3pi/2) = S H S
    }
}

void
SymplecticTableau::ry_steps(std::size_t q, int k)
{
    switch (((k % 4) + 4) % 4) {
      case 0: break;
      case 1: z(q); h(q); break;           // RY(pi/2) = H * Z
      case 2: y(q); break;
      case 3: h(q); z(q); break;           // RY(3pi/2) = Z * H
    }
}

void
SymplecticTableau::rz_steps(std::size_t q, int k)
{
    switch (((k % 4) + 4) % 4) {
      case 0: break;
      case 1: s(q); break;
      case 2: z(q); break;
      case 3: sdg(q); break;
    }
}

void
SymplecticTableau::rzz_steps(std::size_t a, std::size_t b, int k)
{
    if (((k % 4) + 4) % 4 == 0) {
        return;
    }
    cx(a, b);
    rz_steps(b, k);
    cx(a, b);
}

int
stabilizer_product_phase(const SymplecticTableau& t,
                         const std::uint64_t* sel)
{
    const std::size_t words = t.words();
    // Sum of the selected generators' own phases, mod 4.
    std::size_t cnt = 0;
    for (std::size_t w = 0; w < words; ++w) {
        cnt += static_cast<std::size_t>(
            std::popcount(t.phase0_stab()[w] & sel[w]));
        cnt += 2 * static_cast<std::size_t>(
                       std::popcount(t.phase1_stab()[w] & sel[w]));
    }
    // Cross terms of the sequential product R_1 * R_2 * ...: multiplying
    // X^{x1}Z^{z1} by X^{x2}Z^{z2} adds 2*|z1 & x2|, so row r contributes
    // (per qubit) the parity of the z bits of earlier selected rows times
    // its own x bit. The exclusive prefix parity over the selected z
    // column gives exactly that per-row mask, word-parallel.
    int cross = 0;
    for (std::size_t q = 0; q < t.num_qubits(); ++q) {
        const std::uint64_t* xs = t.x_stab(q);
        const std::uint64_t* zs = t.z_stab(q);
        std::uint64_t carry = 0;
        int parity = 0;
        for (std::size_t w = 0; w < words; ++w) {
            const std::uint64_t zq = zs[w] & sel[w];
            const std::uint64_t xq = xs[w] & sel[w];
            if ((zq | xq) == 0) {
                continue;
            }
            const std::uint64_t exclusive =
                prefix_xor(zq << 1) ^ (std::uint64_t{0} - carry);
            parity ^= std::popcount(exclusive & xq) & 1;
            carry ^= static_cast<std::uint64_t>(std::popcount(zq)) & 1;
        }
        cross ^= parity;
    }
    return static_cast<int>((cnt + 2 * static_cast<std::size_t>(cross)) & 3);
}

int
SymplecticTableau::expectation(const PauliString& pauli) const
{
    CAFQA_REQUIRE(pauli.num_qubits() == num_qubits_,
                  "operator qubit count mismatch");
    CAFQA_REQUIRE(pauli.is_hermitian(),
                  "expectation requires a Hermitian Pauli string");

    // Row r anticommutes with P iff the accumulated symplectic product
    // bit is set: XOR, per support qubit, the opposing-plane column.
    std::vector<std::uint64_t> anti(words_, 0);
    std::vector<std::uint64_t> sel(words_, 0);
    const auto& xw = pauli.x_words();
    const auto& zw = pauli.z_words();
    for (std::size_t q = 0; q < num_qubits_; ++q) {
        const bool px = (xw[q / 64] >> (q % 64)) & 1;
        const bool pz = (zw[q / 64] >> (q % 64)) & 1;
        if (!px && !pz) {
            continue;
        }
        if (px) {
            const std::uint64_t* zs = z_stab(q);
            const std::uint64_t* zd = z_destab(q);
            for (std::size_t w = 0; w < words_; ++w) {
                anti[w] ^= zs[w];
                sel[w] ^= zd[w];
            }
        }
        if (pz) {
            const std::uint64_t* xs = x_stab(q);
            const std::uint64_t* xd = x_destab(q);
            for (std::size_t w = 0; w < words_; ++w) {
                anti[w] ^= xs[w];
                sel[w] ^= xd[w];
            }
        }
    }
    // If P anticommutes with any stabilizer generator, <P> = 0.
    for (std::size_t w = 0; w < words_; ++w) {
        if (anti[w] != 0) {
            return 0;
        }
    }
    // Otherwise P = +/- the product of the generators whose paired
    // destabilizer anticommutes with P; compare phase exponents.
    const int product_phase = stabilizer_product_phase(*this, sel.data());
    const int diff = (static_cast<int>(pauli.phase_exponent()) + 4 -
                      product_phase) & 3;
    CAFQA_ASSERT((diff & 1) == 0,
                 "commuting Pauli is not in the stabilizer group");
    return diff == 0 ? 1 : -1;
}

PauliString
SymplecticTableau::reconstruct_row(const std::vector<std::uint64_t>& x,
                                   const std::vector<std::uint64_t>& z,
                                   const std::vector<std::uint64_t>& p0,
                                   const std::vector<std::uint64_t>& p1,
                                   std::size_t row) const
{
    PauliString out(num_qubits_);
    const std::size_t w = row / 64;
    const std::uint64_t bit = std::uint64_t{1} << (row % 64);
    for (std::size_t q = 0; q < num_qubits_; ++q) {
        if (x[q * words_ + w] & bit) {
            out.set_x_bit(q, true);
        }
        if (z[q * words_ + w] & bit) {
            out.set_z_bit(q, true);
        }
    }
    const std::uint8_t phase = static_cast<std::uint8_t>(
        ((p0[w] & bit) ? 1 : 0) + ((p1[w] & bit) ? 2 : 0));
    out.set_phase_exponent(phase);
    return out;
}

PauliString
SymplecticTableau::stabilizer(std::size_t i) const
{
    CAFQA_REQUIRE(i < num_qubits_, "stabilizer index out of range");
    return reconstruct_row(x_stab_, z_stab_, p0_stab_, p1_stab_, i);
}

PauliString
SymplecticTableau::destabilizer(std::size_t i) const
{
    CAFQA_REQUIRE(i < num_qubits_, "destabilizer index out of range");
    return reconstruct_row(x_destab_, z_destab_, p0_destab_, p1_destab_, i);
}

bool
SymplecticTableau::check_invariants() const
{
    std::vector<PauliString> destab;
    std::vector<PauliString> stab;
    for (std::size_t i = 0; i < num_qubits_; ++i) {
        destab.push_back(destabilizer(i));
        stab.push_back(stabilizer(i));
        if (!destab.back().is_hermitian() || !stab.back().is_hermitian()) {
            return false;
        }
    }
    for (std::size_t i = 0; i < num_qubits_; ++i) {
        for (std::size_t j = 0; j < num_qubits_; ++j) {
            const bool commute = destab[i].commutes_with(stab[j]);
            if ((i == j) == commute) {
                return false; // d_i must anticommute exactly with s_i
            }
            if (!stab[i].commutes_with(stab[j])) {
                return false; // stabilizers commute pairwise
            }
            if (!destab[i].commutes_with(destab[j])) {
                return false; // destabilizers commute pairwise
            }
        }
    }
    return true;
}

} // namespace cafqa
