#include "stabilizer/expectation_engine.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"
#include "pauli/grouping.hpp"

namespace cafqa {

namespace {

/** Column references a Pauli letter contributes to the symplectic
 *  product: an X/Y support bit flips against the Z columns, a Z/Y
 *  support bit against the X columns. */
constexpr std::uint32_t
x_column(std::size_t q)
{
    return static_cast<std::uint32_t>(q << 1);
}

constexpr std::uint32_t
z_column(std::size_t q)
{
    return static_cast<std::uint32_t>((q << 1) | 1);
}

} // namespace

StabilizerExpectationEngine::StabilizerExpectationEngine(
    const PauliSum& op, ExpectationEngineOptions options)
    : num_qubits_(op.num_qubits())
{
    CAFQA_REQUIRE(num_qubits_ >= 1,
                  "expectation engine needs at least one qubit");
    require_hermitian(op, options.hermitian_tolerance);

    coefficients_.reserve(op.num_terms());
    for (const auto& term : op.terms()) {
        coefficients_.push_back(term.coefficient.real());
    }

    // The QWC grouping serves double duty: its size drives the Auto
    // strategy choice, and the per-term pass compiles from it — so it
    // is computed at most once and reused.
    std::vector<MeasurementGroup> qwc_groups;
    const bool need_qwc =
        options.strategy == EvalStrategy::Auto ||
        (options.strategy == EvalStrategy::PerTerm &&
         options.use_grouping);
    if (need_qwc) {
        qwc_groups = group_qubitwise_commuting(op);
    }

    if (options.strategy == EvalStrategy::Auto) {
        // Strongly QWC-structured sums (e.g. diagonal MaxCut
        // Hamiltonians: one group) win on the per-term pass — the
        // shared gather and group-level screening skip nearly all the
        // work. Everything else (molecular sums, generic mixtures)
        // wins on the transposed term-plane pass, whose cost is
        // bounded by tableau support rather than term count.
        transposed_ = op.num_terms() >= 2 &&
                      qwc_groups.size() * 8 > op.num_terms();
    } else {
        transposed_ = options.strategy == EvalStrategy::Transposed;
    }

    if (transposed_) {
        compile_transposed(op);
    } else if (options.use_grouping) {
        compile_per_term(op, qwc_groups);
    } else {
        // One trivial group per term.
        qwc_groups.clear();
        qwc_groups.reserve(op.num_terms());
        for (std::size_t t = 0; t < op.num_terms(); ++t) {
            MeasurementGroup group;
            group.term_indices.push_back(t);
            group.basis = op.terms()[t].string;
            qwc_groups.push_back(std::move(group));
        }
        compile_per_term(op, qwc_groups);
    }
}

std::string_view
StabilizerExpectationEngine::strategy() const
{
    return transposed_ ? "transposed" : "per-term";
}

// ------------------------------------------------- per-term compilation

void
StabilizerExpectationEngine::compile_per_term(
    const PauliSum& op, const std::vector<MeasurementGroup>& groups)
{
    // One measurement group per QWC class (or per term when grouping is
    // off): each group's basis names the distinct tableau columns its
    // terms can touch, so the evaluation pass gathers those columns
    // once and every member term XORs a subset of the gathered block.
    groups_.reserve(groups.size());
    for (const auto& group : groups) {
        CompiledGroup compiled;
        // Column slots from the shared basis, in qubit order; remember
        // each qubit's slot so terms can reference gathered columns by
        // small index.
        std::vector<std::uint32_t> x_slot(num_qubits_, UINT32_MAX);
        std::vector<std::uint32_t> z_slot(num_qubits_, UINT32_MAX);
        for (std::size_t q = 0; q < num_qubits_; ++q) {
            const PauliLetter letter = group.basis.letter(q);
            if (letter == PauliLetter::I) {
                continue;
            }
            if (letter != PauliLetter::X) { // Z or Y: symplectic vs X cols
                x_slot[q] =
                    static_cast<std::uint32_t>(compiled.columns.size());
                compiled.columns.push_back(x_column(q));
            }
            if (letter != PauliLetter::Z) { // X or Y: symplectic vs Z cols
                z_slot[q] =
                    static_cast<std::uint32_t>(compiled.columns.size());
                compiled.columns.push_back(z_column(q));
            }
        }
        for (const std::size_t t : group.term_indices) {
            const PauliString& string = op.terms()[t].string;
            CompiledTerm term;
            term.phase = string.phase_exponent();
            term.term_index = static_cast<std::uint32_t>(t);
            term.first_op = static_cast<std::uint32_t>(ops_.size());
            for (std::size_t q = 0; q < num_qubits_; ++q) {
                if (string.x_bit(q)) {
                    CAFQA_ASSERT(z_slot[q] != UINT32_MAX,
                                 "term support outside its group basis");
                    ops_.push_back(z_slot[q]);
                }
                if (string.z_bit(q)) {
                    CAFQA_ASSERT(x_slot[q] != UINT32_MAX,
                                 "term support outside its group basis");
                    ops_.push_back(x_slot[q]);
                }
            }
            term.num_ops =
                static_cast<std::uint32_t>(ops_.size()) - term.first_op;
            compiled.terms.push_back(term);
        }
        groups_.push_back(std::move(compiled));
    }
}

void
StabilizerExpectationEngine::evaluate_group(const SymplecticTableau& tableau,
                                            const CompiledGroup& group,
                                            Scratch& scratch,
                                            std::int8_t* results) const
{
    const std::size_t words = tableau.words();
    const std::size_t cols = group.columns.size();
    scratch.stab.resize(cols * words);
    scratch.destab.resize(cols * words);
    scratch.anti.resize(words);
    scratch.sel.resize(words);

    // Gather the group's basis columns once; `touched` accumulates the
    // shared-support mask over the stabilizer plane — when it stays
    // zero, no stabilizer row meets the group's basis, every term
    // trivially commutes with every generator, and the per-term
    // screening XOR pass can be skipped for the whole group.
    std::uint64_t touched = 0;
    for (std::size_t c = 0; c < cols; ++c) {
        const std::uint32_t ref = group.columns[c];
        const std::size_t q = ref >> 1;
        const std::uint64_t* stab_src =
            (ref & 1) ? tableau.z_stab(q) : tableau.x_stab(q);
        const std::uint64_t* destab_src =
            (ref & 1) ? tableau.z_destab(q) : tableau.x_destab(q);
        for (std::size_t w = 0; w < words; ++w) {
            scratch.stab[c * words + w] = stab_src[w];
            scratch.destab[c * words + w] = destab_src[w];
            touched |= stab_src[w];
        }
    }
    const bool screen = touched != 0;

    for (const CompiledTerm& term : group.terms) {
        std::fill(scratch.sel.begin(), scratch.sel.end(), 0);
        std::uint64_t any_anti = 0;
        if (screen) {
            std::fill(scratch.anti.begin(), scratch.anti.end(), 0);
            for (std::uint32_t o = 0; o < term.num_ops; ++o) {
                const std::uint32_t slot = ops_[term.first_op + o];
                const std::uint64_t* col =
                    scratch.stab.data() + slot * words;
                for (std::size_t w = 0; w < words; ++w) {
                    scratch.anti[w] ^= col[w];
                }
            }
            for (std::size_t w = 0; w < words; ++w) {
                any_anti |= scratch.anti[w];
            }
        }
        if (any_anti != 0) {
            results[term.term_index] = 0; // anticommutes with a generator
            continue;
        }
        for (std::uint32_t o = 0; o < term.num_ops; ++o) {
            const std::uint32_t slot = ops_[term.first_op + o];
            const std::uint64_t* col = scratch.destab.data() + slot * words;
            for (std::size_t w = 0; w < words; ++w) {
                scratch.sel[w] ^= col[w];
            }
        }
        const int product_phase =
            stabilizer_product_phase(tableau, scratch.sel.data());
        const int diff =
            (static_cast<int>(term.phase) + 4 - product_phase) & 3;
        CAFQA_ASSERT((diff & 1) == 0,
                     "commuting Pauli is not in the stabilizer group");
        results[term.term_index] = diff == 0 ? 1 : -1;
    }
}

// ----------------------------------------------- transposed compilation

void
StabilizerExpectationEngine::compile_transposed(const PauliSum& op)
{
    term_words_ = (op.num_terms() + 63) / 64;
    term_x_planes_.assign(num_qubits_ * term_words_, 0);
    term_z_planes_.assign(num_qubits_ * term_words_, 0);
    term_kp0_.assign(term_words_, 0);
    term_kp1_.assign(term_words_, 0);

    for (std::size_t t = 0; t < op.num_terms(); ++t) {
        const PauliString& string = op.terms()[t].string;
        const std::size_t w = t / 64;
        const std::uint64_t bit = std::uint64_t{1} << (t % 64);
        const auto& xw = string.x_words();
        const auto& zw = string.z_words();
        for (std::size_t q = 0; q < num_qubits_; ++q) {
            if ((xw[q / 64] >> (q % 64)) & 1) {
                term_x_planes_[q * term_words_ + w] |= bit;
            }
            if ((zw[q / 64] >> (q % 64)) & 1) {
                term_z_planes_[q * term_words_ + w] |= bit;
            }
        }
        const std::uint8_t k = string.phase_exponent();
        if (k & 1) {
            term_kp0_[w] |= bit;
        }
        if (k & 2) {
            term_kp1_[w] |= bit;
        }
    }
}

void
StabilizerExpectationEngine::build_cross_rows(
    const SymplecticTableau& tableau,
    std::vector<std::uint64_t>& cross_rows) const
{
    // Pairwise cross-phase matrix of the stabilizer generators:
    // M[r] ^= Xstab[q] for every Z bit of row r, so M_rj =
    // parity |z_r & x_j| — the i^2 factor of multiplying generators r
    // and j. Depends only on the tableau, so the parallel pass builds
    // it once and shares it read-only across term blocks.
    const std::size_t row_words = tableau.words();
    cross_rows.assign(num_qubits_ * row_words, 0);
    for (std::size_t q = 0; q < num_qubits_; ++q) {
        const std::uint64_t* zs = tableau.z_stab(q);
        const std::uint64_t* xs = tableau.x_stab(q);
        for (std::size_t rw = 0; rw < row_words; ++rw) {
            for (std::uint64_t bits = zs[rw]; bits != 0;
                 bits &= bits - 1) {
                const std::size_t r =
                    rw * 64 +
                    static_cast<std::size_t>(std::countr_zero(bits));
                std::uint64_t* m = cross_rows.data() + r * row_words;
                for (std::size_t w = 0; w < row_words; ++w) {
                    m[w] ^= xs[w];
                }
            }
        }
    }
}

void
StabilizerExpectationEngine::evaluate_transposed(
    const SymplecticTableau& tableau, std::size_t block_begin,
    std::size_t block_end, const std::uint64_t* cross_rows,
    Scratch& scratch, std::int8_t* results, double* fused_total) const
{
    const std::size_t n = num_qubits_;
    const std::size_t row_words = tableau.words();
    const std::size_t width = block_end - block_begin;

    scratch.sym_planes.assign(n * width, 0);
    scratch.sel_planes.assign(n * width, 0);
    scratch.masks.assign(4 * width, 0);
    std::uint64_t* screened = scratch.masks.data();
    std::uint64_t* ph0 = scratch.masks.data() + width;
    std::uint64_t* ph1 = scratch.masks.data() + 2 * width;
    std::uint64_t* cross = scratch.masks.data() + 3 * width;

    // Serial callers pass no prebuilt cross-phase matrix: it is
    // accumulated for free inside the main sweep below. Parallel term
    // blocks receive it prebuilt (it depends only on the tableau, so
    // per-worker recomputation would be pure duplication).
    const bool build_m = cross_rows == nullptr;
    if (build_m) {
        scratch.cross_rows.assign(n * row_words, 0);
        cross_rows = scratch.cross_rows.data();
    }

    // Walk the tableau columns once: every stabilizer (destabilizer)
    // row r with a Z bit at qubit q anticommutes with exactly the terms
    // carrying X/Y there, i.e. XOR the term X plane of q into row r's
    // symplectic-product plane — 64 terms per word. When building the
    // cross-phase matrix, the same sweep accumulates M[r] ^= Xstab[q]
    // for every Z bit of row r (M_rj = parity |z_r & x_j|).
    for (std::size_t q = 0; q < n; ++q) {
        const std::uint64_t* term_x =
            term_x_planes_.data() + q * term_words_ + block_begin;
        const std::uint64_t* term_z =
            term_z_planes_.data() + q * term_words_ + block_begin;
        const std::uint64_t* zs = tableau.z_stab(q);
        const std::uint64_t* xs = tableau.x_stab(q);
        const std::uint64_t* zd = tableau.z_destab(q);
        const std::uint64_t* xd = tableau.x_destab(q);
        for (std::size_t rw = 0; rw < row_words; ++rw) {
            for (std::uint64_t bits = zs[rw]; bits != 0;
                 bits &= bits - 1) {
                const std::size_t r =
                    rw * 64 +
                    static_cast<std::size_t>(std::countr_zero(bits));
                std::uint64_t* sym = scratch.sym_planes.data() + r * width;
                for (std::size_t w = 0; w < width; ++w) {
                    sym[w] ^= term_x[w];
                }
                if (build_m) {
                    std::uint64_t* m =
                        scratch.cross_rows.data() + r * row_words;
                    for (std::size_t w = 0; w < row_words; ++w) {
                        m[w] ^= xs[w];
                    }
                }
            }
            for (std::uint64_t bits = xs[rw]; bits != 0;
                 bits &= bits - 1) {
                const std::size_t r =
                    rw * 64 +
                    static_cast<std::size_t>(std::countr_zero(bits));
                std::uint64_t* sym = scratch.sym_planes.data() + r * width;
                for (std::size_t w = 0; w < width; ++w) {
                    sym[w] ^= term_z[w];
                }
            }
            for (std::uint64_t bits = zd[rw]; bits != 0;
                 bits &= bits - 1) {
                const std::size_t r =
                    rw * 64 +
                    static_cast<std::size_t>(std::countr_zero(bits));
                std::uint64_t* sel = scratch.sel_planes.data() + r * width;
                for (std::size_t w = 0; w < width; ++w) {
                    sel[w] ^= term_x[w];
                }
            }
            for (std::uint64_t bits = xd[rw]; bits != 0;
                 bits &= bits - 1) {
                const std::size_t r =
                    rw * 64 +
                    static_cast<std::size_t>(std::countr_zero(bits));
                std::uint64_t* sel = scratch.sel_planes.data() + r * width;
                for (std::size_t w = 0; w < width; ++w) {
                    sel[w] ^= term_z[w];
                }
            }
        }
    }

    // A term is screened to zero when it anticommutes with any
    // stabilizer generator.
    for (std::size_t r = 0; r < n; ++r) {
        const std::uint64_t* sym = scratch.sym_planes.data() + r * width;
        for (std::size_t w = 0; w < width; ++w) {
            screened[w] |= sym[w];
        }
    }

    // Phase accumulation: add generator r's own phase (0..3) into the
    // packed two-bit per-term counters wherever r is selected.
    for (std::size_t r = 0; r < n; ++r) {
        const std::size_t rw = r / 64;
        const std::uint64_t bit = std::uint64_t{1} << (r % 64);
        const int phase =
            ((tableau.phase0_stab()[rw] & bit) ? 1 : 0) +
            ((tableau.phase1_stab()[rw] & bit) ? 2 : 0);
        if (phase == 0) {
            continue;
        }
        const std::uint64_t* sel = scratch.sel_planes.data() + r * width;
        for (std::size_t w = 0; w < width; ++w) {
            const std::uint64_t s = sel[w];
            if (phase & 1) {
                const std::uint64_t carry = ph0[w] & s;
                ph0[w] ^= s;
                ph1[w] ^= carry;
            }
            if (phase == 2 || phase == 3) {
                ph1[w] ^= s;
            }
        }
    }

    // Cross phases: multiplying the selected generators r < j
    // contributes 2 per pair with M_rj = 1; parity per term is the XOR
    // of sel[r] & sel[j] over those pairs.
    for (std::size_t r = 0; r < n; ++r) {
        const std::uint64_t* m = cross_rows + r * row_words;
        const std::uint64_t* sel_r = scratch.sel_planes.data() + r * width;
        for (std::size_t rw = 0; rw < row_words; ++rw) {
            for (std::uint64_t bits = m[rw]; bits != 0; bits &= bits - 1) {
                const std::size_t j =
                    rw * 64 +
                    static_cast<std::size_t>(std::countr_zero(bits));
                if (j <= r) {
                    continue; // upper triangle only (M is symmetric)
                }
                const std::uint64_t* sel_j =
                    scratch.sel_planes.data() + j * width;
                for (std::size_t w = 0; w < width; ++w) {
                    cross[w] ^= sel_r[w] & sel_j[w];
                }
            }
        }
    }

    // Sign: diff = k_term - k_product mod 4 is even for every
    // unscreened term (they lie in +/- the stabilizer group), so the
    // low bits must agree and diff == 2 exactly when the high bits
    // differ. With `fused_total` set (serial pass) the +/-coefficients
    // accumulate here directly, visiting only the unscreened bits in
    // ascending term order — the same order, and therefore the same
    // double, as the deferred reduce().
    for (std::size_t w = 0; w < width; ++w) {
        const std::uint64_t valid =
            (block_begin + w + 1 == (coefficients_.size() + 63) / 64 &&
             coefficients_.size() % 64 != 0)
                ? ((std::uint64_t{1} << (coefficients_.size() % 64)) - 1)
                : ~std::uint64_t{0};
        const std::uint64_t live = ~screened[w] & valid;
        CAFQA_ASSERT(((ph0[w] ^
                       term_kp0_[block_begin + w]) & live) == 0,
                     "commuting Pauli is not in the stabilizer group");
        const std::uint64_t negative =
            (ph1[w] ^ cross[w] ^
             term_kp1_[block_begin + w]) & live;
        const std::size_t base = (block_begin + w) * 64;
        if (fused_total != nullptr) {
            for (std::uint64_t bits = live; bits != 0; bits &= bits - 1) {
                const std::size_t t =
                    base +
                    static_cast<std::size_t>(std::countr_zero(bits));
                const double coeff = coefficients_[t];
                *fused_total += (negative >> (t % 64)) & 1 ? -coeff
                                                           : coeff;
            }
            continue;
        }
        const std::size_t end =
            std::min(coefficients_.size(), base + 64);
        for (std::size_t t = base; t < end; ++t) {
            const std::uint64_t bit = std::uint64_t{1} << (t % 64);
            if (screened[w] & bit) {
                results[t] = 0;
            } else {
                results[t] = (negative & bit) ? -1 : 1;
            }
        }
    }
}

// ------------------------------------------------------------ evaluation

double
StabilizerExpectationEngine::reduce(const std::int8_t* results) const
{
    // Accumulate in original term order, skipping screened terms, which
    // reproduces the legacy row-based loop bit-for-bit.
    double total = 0.0;
    for (std::size_t t = 0; t < coefficients_.size(); ++t) {
        if (results[t] != 0) {
            total += coefficients_[t] * results[t];
        }
    }
    return total;
}

StabilizerExpectationEngine::Scratch&
StabilizerExpectationEngine::thread_scratch()
{
    // assign()/resize() keep capacity across calls, so steady state
    // allocates nothing.
    static thread_local Scratch scratch;
    return scratch;
}

double
StabilizerExpectationEngine::evaluate(const SymplecticTableau& tableau,
                                      ThreadPool* pool) const
{
    CAFQA_REQUIRE(tableau.num_qubits() == num_qubits_,
                  "operator qubit count mismatch");
    if (transposed_) {
        Scratch& caller_scratch = thread_scratch();
        if (pool != nullptr && pool->size() > 1 && term_words_ > 1) {
            build_cross_rows(tableau, caller_scratch.cross_rows);
            const std::uint64_t* cross_rows =
                caller_scratch.cross_rows.data();
            std::vector<std::int8_t>& results = caller_scratch.results;
            results.resize(coefficients_.size());
            const std::size_t workers =
                std::min(pool->size(), term_words_);
            const std::size_t chunk =
                (term_words_ + workers - 1) / workers;
            pool->parallel_for(
                workers, [&](std::size_t worker, std::size_t index) {
                    (void)worker; // scratch is per-thread
                    const std::size_t begin = index * chunk;
                    const std::size_t end =
                        std::min(term_words_, begin + chunk);
                    if (begin < end) {
                        evaluate_transposed(tableau, begin, end,
                                            cross_rows, thread_scratch(),
                                            results.data(), nullptr);
                    }
                });
            return reduce(results.data());
        }
        double total = 0.0;
        evaluate_transposed(tableau, 0, term_words_, nullptr,
                            caller_scratch, nullptr, &total);
        return total;
    }

    // No zero-fill needed: every term belongs to exactly one group,
    // and evaluate_group writes all of its terms.
    std::vector<std::int8_t>& results = thread_scratch().results;
    results.resize(coefficients_.size());
    if (pool != nullptr && pool->size() > 1 && groups_.size() > 1) {
        pool->parallel_for(groups_.size(),
                           [&](std::size_t worker, std::size_t index) {
                               (void)worker; // scratch is per-thread
                               evaluate_group(tableau, groups_[index],
                                              thread_scratch(),
                                              results.data());
                           });
    } else {
        Scratch& scratch = thread_scratch();
        for (const CompiledGroup& group : groups_) {
            evaluate_group(tableau, group, scratch, results.data());
        }
    }
    return reduce(results.data());
}

double
StabilizerExpectationEngine::expectation(
    const SymplecticTableau& tableau) const
{
    return evaluate(tableau, nullptr);
}

double
StabilizerExpectationEngine::expectation(const SymplecticTableau& tableau,
                                         ThreadPool& pool) const
{
    return evaluate(tableau, &pool);
}

} // namespace cafqa
