/**
 * @file
 * Column-bit-packed symplectic stabilizer tableau — the word-parallel
 * production representation behind the Gottesman-Knill hot path (the
 * legacy row-of-PauliString `Tableau` in `stabilizer/tableau.hpp` is
 * kept as the reference oracle for differential tests).
 *
 * Layout: instead of 2n rows each packing n qubits, the X/Z supports
 * are stored as per-qubit *columns* spanning all rows of a plane
 * (destabilizers rows 0..n-1 in one plane, stabilizers in the other),
 * 64 rows per word. A single-qubit Clifford conjugation then touches
 * one X column, one Z column and the two packed phase bit-planes —
 * a handful of uint64 AND/XOR operations updating 64 rows at a time —
 * and CX is two column XORs. Phases keep the library-wide
 * i^k X^x Z^z convention (Y = i*X*Z) as two bit-planes (k mod 4), so
 * every update is bit-identical to the legacy row-based rules.
 *
 * The packed columns are exposed read-only; `StabilizerExpectationEngine`
 * (`stabilizer/expectation_engine.hpp`) builds whole-Hamiltonian
 * evaluation passes on top of them.
 */
#ifndef CAFQA_STABILIZER_SYMPLECTIC_TABLEAU_HPP
#define CAFQA_STABILIZER_SYMPLECTIC_TABLEAU_HPP

#include <cstdint>
#include <vector>

#include "pauli/pauli_string.hpp"

namespace cafqa {

/** Column-packed stabilizer tableau for a pure n-qubit state. */
class SymplecticTableau
{
  public:
    /** Tableau of the all-zeros computational basis state. */
    explicit SymplecticTableau(std::size_t num_qubits);

    std::size_t num_qubits() const { return num_qubits_; }
    /** Words per column (64 plane rows each). */
    std::size_t words() const { return words_; }

    /** @name Clifford gate conjugations (in-place, word-parallel). */
    /// @{
    void h(std::size_t q);
    void x(std::size_t q);
    void y(std::size_t q);
    void z(std::size_t q);
    void s(std::size_t q);
    void sdg(std::size_t q);
    void cx(std::size_t control, std::size_t target);
    void cz(std::size_t a, std::size_t b);
    void swap(std::size_t a, std::size_t b);
    /// @}

    /** Rotation by k*pi/2 about X/Y/Z (k taken mod 4). */
    void rx_steps(std::size_t q, int k);
    void ry_steps(std::size_t q, int k);
    void rz_steps(std::size_t q, int k);
    /** Two-qubit ZZ rotation by k*pi/2 (RZZ = CX . RZ_b . CX). */
    void rzz_steps(std::size_t a, std::size_t b, int k);

    /**
     * Exact expectation of a Hermitian Pauli string on the current state.
     * @return +1, -1, or 0.
     */
    int expectation(const PauliString& pauli) const;

    /** Reconstruct stabilizer generator i as a signed PauliString. */
    PauliString stabilizer(std::size_t i) const;
    /** Reconstruct destabilizer generator i. */
    PauliString destabilizer(std::size_t i) const;

    /** Internal consistency check (see Tableau::check_invariants). */
    bool check_invariants() const;

    /** @name Packed read access for the expectation engine.
     *  Each accessor returns `words()` uint64s; bit r of word w is row
     *  64*w + r of the plane. */
    /// @{
    const std::uint64_t* x_destab(std::size_t q) const
    {
        return x_destab_.data() + q * words_;
    }
    const std::uint64_t* z_destab(std::size_t q) const
    {
        return z_destab_.data() + q * words_;
    }
    const std::uint64_t* x_stab(std::size_t q) const
    {
        return x_stab_.data() + q * words_;
    }
    const std::uint64_t* z_stab(std::size_t q) const
    {
        return z_stab_.data() + q * words_;
    }
    /** Stabilizer-plane phase bit-planes (phase = p0 + 2*p1 mod 4). */
    const std::uint64_t* phase0_stab() const { return p0_stab_.data(); }
    const std::uint64_t* phase1_stab() const { return p1_stab_.data(); }
    /// @}

  private:
    PauliString reconstruct_row(const std::vector<std::uint64_t>& x,
                                const std::vector<std::uint64_t>& z,
                                const std::vector<std::uint64_t>& p0,
                                const std::vector<std::uint64_t>& p1,
                                std::size_t row) const;

    std::size_t num_qubits_ = 0;
    std::size_t words_ = 0;
    /** Column-major supports: element [q * words_ + w]. */
    std::vector<std::uint64_t> x_destab_, z_destab_, x_stab_, z_stab_;
    /** Row-packed phase exponents mod 4, two bit-planes per plane. */
    std::vector<std::uint64_t> p0_destab_, p1_destab_, p0_stab_, p1_stab_;
};

/**
 * Phase exponent (i^k, k mod 4) of the product of the stabilizer
 * generators selected by `sel` (a `t.words()`-word row mask over the
 * stabilizer plane), accumulated in row order — the destabilizer-selected
 * generator accumulation at the core of sign recovery. Shared by
 * `SymplecticTableau::expectation` and the batched engine.
 */
int stabilizer_product_phase(const SymplecticTableau& t,
                             const std::uint64_t* sel);

} // namespace cafqa

#endif // CAFQA_STABILIZER_SYMPLECTIC_TABLEAU_HPP
