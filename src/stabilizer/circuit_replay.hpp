/**
 * @file
 * Circuit-to-tableau replay shared by every stabilizer representation.
 *
 * `SymplecticTableau` (production) and the legacy `Tableau` (reference
 * oracle) expose the same gate-conjugation surface; the function
 * templates here hold the one copy of the gate-dispatch logic so the
 * two representations are driven gate-for-gate identically — the
 * property the differential tests rely on.
 */
#ifndef CAFQA_STABILIZER_CIRCUIT_REPLAY_HPP
#define CAFQA_STABILIZER_CIRCUIT_REPLAY_HPP

#include <cmath>
#include <numbers>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/error.hpp"

namespace cafqa {

/**
 * Convert an angle to quarter-turn counts (angle = k * pi/2, k in
 * {0,1,2,3}); throws if the angle is not a multiple of pi/2.
 *
 * The check is relative-aware: the distance to the nearest quarter turn
 * is compared against `tolerance * max(1, |angle / (pi/2)|)`, so
 * accumulated multiples such as 1e6 * (pi/2) — whose double
 * representation carries an absolute error far above any fixed
 * tolerance — are accepted, while genuinely non-Clifford angles of any
 * magnitude still throw.
 */
inline int
angle_to_quarter_steps(double angle, double tolerance = 1e-9)
{
    constexpr double half_pi = std::numbers::pi / 2.0;
    const double steps = angle / half_pi;
    const double rounded = std::round(steps);
    const double slack = tolerance * std::max(1.0, std::abs(steps));
    CAFQA_REQUIRE(std::abs(steps - rounded) <= slack,
                  "rotation angle is not a multiple of pi/2");
    const int k = static_cast<int>(std::llround(rounded) % 4);
    return (k + 4) % 4;
}

/** Apply one gate; rotation angles must be multiples of pi/2. */
template <typename TableauT>
void
replay_gate(TableauT& tableau, const GateOp& op, double angle)
{
    switch (op.kind) {
      case GateKind::H: tableau.h(op.q0); break;
      case GateKind::X: tableau.x(op.q0); break;
      case GateKind::Y: tableau.y(op.q0); break;
      case GateKind::Z: tableau.z(op.q0); break;
      case GateKind::S: tableau.s(op.q0); break;
      case GateKind::Sdg: tableau.sdg(op.q0); break;
      case GateKind::CX: tableau.cx(op.q0, op.q1); break;
      case GateKind::CZ: tableau.cz(op.q0, op.q1); break;
      case GateKind::Swap: tableau.swap(op.q0, op.q1); break;
      case GateKind::Rx:
        tableau.rx_steps(op.q0, angle_to_quarter_steps(angle));
        break;
      case GateKind::Ry:
        tableau.ry_steps(op.q0, angle_to_quarter_steps(angle));
        break;
      case GateKind::Rz:
        tableau.rz_steps(op.q0, angle_to_quarter_steps(angle));
        break;
      case GateKind::Rzz:
        tableau.rzz_steps(op.q0, op.q1, angle_to_quarter_steps(angle));
        break;
      case GateKind::T:
      case GateKind::Tdg:
        CAFQA_REQUIRE(false,
                      "T gates are not Clifford; use the Clifford+kT "
                      "branch simulator (core/clifford_t)");
    }
}

/** Apply a whole circuit with real-valued parameters (each bound
 *  rotation angle must be a multiple of pi/2). */
template <typename TableauT>
void
replay_circuit(TableauT& tableau, const Circuit& circuit,
               const std::vector<double>& params = {})
{
    CAFQA_REQUIRE(circuit.num_qubits() == tableau.num_qubits(),
                  "circuit qubit count mismatch");
    for (const auto& op : circuit.ops()) {
        replay_gate(tableau, op,
                    is_rotation(op.kind) ? op.resolved_angle(params) : 0.0);
    }
}

/** Apply a parameterized circuit where parameter slot i is the integer
 *  quarter-turn count steps[i] — the CAFQA search fast path. */
template <typename TableauT>
void
replay_circuit_steps(TableauT& tableau, const Circuit& circuit,
                     const std::vector<int>& steps)
{
    CAFQA_REQUIRE(circuit.num_qubits() == tableau.num_qubits(),
                  "circuit qubit count mismatch");
    CAFQA_REQUIRE(steps.size() == circuit.num_params(),
                  "step vector size must equal circuit parameter count");
    for (const auto& op : circuit.ops()) {
        if (is_rotation(op.kind) && op.param >= 0) {
            const int k = steps[static_cast<std::size_t>(op.param)];
            switch (op.kind) {
              case GateKind::Rx: tableau.rx_steps(op.q0, k); break;
              case GateKind::Ry: tableau.ry_steps(op.q0, k); break;
              case GateKind::Rz: tableau.rz_steps(op.q0, k); break;
              case GateKind::Rzz:
                tableau.rzz_steps(op.q0, op.q1, k);
                break;
              default: break;
            }
        } else {
            replay_gate(tableau, op,
                        is_rotation(op.kind) ? op.angle : 0.0);
        }
    }
}

} // namespace cafqa

#endif // CAFQA_STABILIZER_CIRCUIT_REPLAY_HPP
