/**
 * @file
 * Hardware-efficient SU2 ansatz builder (paper Section 2.2 / Fig. 3).
 *
 * The ansatz repeats blocks of parameterized single-qubit rotations and a
 * ladder of entangling CX gates, mirroring Qiskit's `EfficientSU2` with
 * linear entanglement. All fixed gates are Clifford, so restricting the
 * rotation parameters to multiples of pi/2 yields a pure Clifford circuit
 * — exactly the structure CAFQA searches.
 */
#ifndef CAFQA_CIRCUIT_EFFICIENT_SU2_HPP
#define CAFQA_CIRCUIT_EFFICIENT_SU2_HPP

#include <vector>

#include "circuit/circuit.hpp"

namespace cafqa {

/** Options for the hardware-efficient ansatz. */
struct EfficientSu2Options
{
    /** Number of entanglement layers (paper uses 1). */
    std::size_t reps = 1;
    /** Rotation gates applied per block, in order. */
    std::vector<GateKind> rotation_blocks = {GateKind::Ry, GateKind::Rz};
    /** Append a final rotation block after the last entangler. */
    bool final_rotation_layer = true;
};

/**
 * Build the EfficientSU2 ansatz on `num_qubits` qubits with linear CX
 * entanglement. Parameter count:
 *   num_qubits * rotation_blocks.size() * (reps + final_rotation_layer).
 */
Circuit make_efficient_su2(std::size_t num_qubits,
                           const EfficientSu2Options& options = {});

/**
 * One-parameter toy ansatz for the Fig. 5 microbenchmark on the 2-qubit
 * XX Hamiltonian: RY(theta) on qubit 0 followed by CX(0,1). The prepared
 * state cos(theta/2)|00> + sin(theta/2)|11> has <XX> = sin(theta), whose
 * minimum -1 is attained at the Clifford point theta = 3*pi/2.
 */
Circuit make_microbenchmark_ansatz();

} // namespace cafqa

#endif // CAFQA_CIRCUIT_EFFICIENT_SU2_HPP
