#include "circuit/circuit.hpp"

#include <cmath>
#include <numbers>
#include <sstream>

#include "common/error.hpp"

namespace cafqa {

bool
is_rotation(GateKind kind)
{
    return kind == GateKind::Rx || kind == GateKind::Ry ||
           kind == GateKind::Rz || kind == GateKind::Rzz;
}

bool
is_two_qubit(GateKind kind)
{
    return kind == GateKind::CX || kind == GateKind::CZ ||
           kind == GateKind::Swap || kind == GateKind::Rzz;
}

std::string
gate_name(GateKind kind)
{
    switch (kind) {
      case GateKind::H: return "h";
      case GateKind::X: return "x";
      case GateKind::Y: return "y";
      case GateKind::Z: return "z";
      case GateKind::S: return "s";
      case GateKind::Sdg: return "sdg";
      case GateKind::T: return "t";
      case GateKind::Tdg: return "tdg";
      case GateKind::CX: return "cx";
      case GateKind::CZ: return "cz";
      case GateKind::Swap: return "swap";
      case GateKind::Rx: return "rx";
      case GateKind::Ry: return "ry";
      case GateKind::Rz: return "rz";
      case GateKind::Rzz: return "rzz";
    }
    return "?";
}

double
GateOp::resolved_angle(const std::vector<double>& params) const
{
    if (param < 0) {
        return angle;
    }
    CAFQA_REQUIRE(static_cast<std::size_t>(param) < params.size(),
                  "parameter vector too short for circuit");
    return params[static_cast<std::size_t>(param)];
}

Circuit::Circuit(std::size_t num_qubits) : num_qubits_(num_qubits) {}

void
Circuit::check_qubit(std::size_t q) const
{
    CAFQA_REQUIRE(q < num_qubits_, "qubit index out of range");
}

#define CAFQA_DEFINE_1Q(NAME, KIND)                                          \
    void Circuit::NAME(std::size_t q)                                        \
    {                                                                        \
        check_qubit(q);                                                      \
        ops_.push_back(GateOp{GateKind::KIND, q, 0, -1, 0.0});               \
    }

CAFQA_DEFINE_1Q(h, H)
CAFQA_DEFINE_1Q(x, X)
CAFQA_DEFINE_1Q(y, Y)
CAFQA_DEFINE_1Q(z, Z)
CAFQA_DEFINE_1Q(s, S)
CAFQA_DEFINE_1Q(sdg, Sdg)
CAFQA_DEFINE_1Q(t, T)
CAFQA_DEFINE_1Q(tdg, Tdg)

#undef CAFQA_DEFINE_1Q

void
Circuit::cx(std::size_t control, std::size_t target)
{
    check_qubit(control);
    check_qubit(target);
    CAFQA_REQUIRE(control != target, "control equals target");
    ops_.push_back(GateOp{GateKind::CX, control, target, -1, 0.0});
}

void
Circuit::cz(std::size_t a, std::size_t b)
{
    check_qubit(a);
    check_qubit(b);
    CAFQA_REQUIRE(a != b, "cz operands equal");
    ops_.push_back(GateOp{GateKind::CZ, a, b, -1, 0.0});
}

void
Circuit::swap(std::size_t a, std::size_t b)
{
    check_qubit(a);
    check_qubit(b);
    CAFQA_REQUIRE(a != b, "swap operands equal");
    ops_.push_back(GateOp{GateKind::Swap, a, b, -1, 0.0});
}

void
Circuit::rx(std::size_t q, double angle)
{
    check_qubit(q);
    ops_.push_back(GateOp{GateKind::Rx, q, 0, -1, angle});
}

void
Circuit::ry(std::size_t q, double angle)
{
    check_qubit(q);
    ops_.push_back(GateOp{GateKind::Ry, q, 0, -1, angle});
}

void
Circuit::rz(std::size_t q, double angle)
{
    check_qubit(q);
    ops_.push_back(GateOp{GateKind::Rz, q, 0, -1, angle});
}

int
Circuit::rx_param(std::size_t q)
{
    check_qubit(q);
    const int slot = static_cast<int>(num_params_++);
    ops_.push_back(GateOp{GateKind::Rx, q, 0, slot, 0.0});
    return slot;
}

int
Circuit::ry_param(std::size_t q)
{
    check_qubit(q);
    const int slot = static_cast<int>(num_params_++);
    ops_.push_back(GateOp{GateKind::Ry, q, 0, slot, 0.0});
    return slot;
}

int
Circuit::rz_param(std::size_t q)
{
    check_qubit(q);
    const int slot = static_cast<int>(num_params_++);
    ops_.push_back(GateOp{GateKind::Rz, q, 0, slot, 0.0});
    return slot;
}

void
Circuit::rzz(std::size_t a, std::size_t b, double angle)
{
    check_qubit(a);
    check_qubit(b);
    CAFQA_REQUIRE(a != b, "rzz operands equal");
    ops_.push_back(GateOp{GateKind::Rzz, a, b, -1, angle});
}

int
Circuit::rzz_param(std::size_t a, std::size_t b)
{
    check_qubit(a);
    check_qubit(b);
    CAFQA_REQUIRE(a != b, "rzz operands equal");
    const int slot = static_cast<int>(num_params_++);
    ops_.push_back(GateOp{GateKind::Rzz, a, b, slot, 0.0});
    return slot;
}

int
Circuit::new_param()
{
    return static_cast<int>(num_params_++);
}

namespace {

void
check_slot(int slot, std::size_t num_params)
{
    CAFQA_REQUIRE(slot >= 0 &&
                      static_cast<std::size_t>(slot) < num_params,
                  "parameter slot was not allocated");
}

} // namespace

void
Circuit::rx_at(std::size_t q, int slot)
{
    check_qubit(q);
    check_slot(slot, num_params_);
    ops_.push_back(GateOp{GateKind::Rx, q, 0, slot, 0.0});
}

void
Circuit::ry_at(std::size_t q, int slot)
{
    check_qubit(q);
    check_slot(slot, num_params_);
    ops_.push_back(GateOp{GateKind::Ry, q, 0, slot, 0.0});
}

void
Circuit::rz_at(std::size_t q, int slot)
{
    check_qubit(q);
    check_slot(slot, num_params_);
    ops_.push_back(GateOp{GateKind::Rz, q, 0, slot, 0.0});
}

void
Circuit::rzz_at(std::size_t a, std::size_t b, int slot)
{
    check_qubit(a);
    check_qubit(b);
    CAFQA_REQUIRE(a != b, "rzz operands equal");
    check_slot(slot, num_params_);
    ops_.push_back(GateOp{GateKind::Rzz, a, b, slot, 0.0});
}

void
Circuit::append(const Circuit& other)
{
    CAFQA_REQUIRE(other.num_qubits_ == num_qubits_, "qubit count mismatch");
    for (GateOp op : other.ops_) {
        if (op.param >= 0) {
            op.param += static_cast<int>(num_params_);
        }
        ops_.push_back(op);
    }
    num_params_ += other.num_params_;
}

bool
Circuit::is_clifford(const std::vector<double>& params,
                     double tolerance) const
{
    constexpr double half_pi = std::numbers::pi / 2.0;
    for (const auto& op : ops_) {
        if (op.kind == GateKind::T || op.kind == GateKind::Tdg) {
            return false;
        }
        if (is_rotation(op.kind)) {
            const double angle = op.resolved_angle(params);
            const double steps = angle / half_pi;
            if (std::abs(steps - std::round(steps)) > tolerance) {
                return false;
            }
        }
    }
    return true;
}

std::size_t
Circuit::count(GateKind kind) const
{
    std::size_t total = 0;
    for (const auto& op : ops_) {
        if (op.kind == kind) {
            ++total;
        }
    }
    return total;
}

std::string
Circuit::to_string() const
{
    std::ostringstream out;
    for (const auto& op : ops_) {
        out << gate_name(op.kind) << " q" << op.q0;
        if (is_two_qubit(op.kind)) {
            out << ", q" << op.q1;
        }
        if (is_rotation(op.kind)) {
            if (op.param >= 0) {
                out << " (theta[" << op.param << "])";
            } else {
                out << " (" << op.angle << ")";
            }
        }
        out << '\n';
    }
    return out.str();
}

} // namespace cafqa
