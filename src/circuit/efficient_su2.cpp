#include "circuit/efficient_su2.hpp"

#include "common/error.hpp"

namespace cafqa {

namespace {

void
add_rotation_block(Circuit& circuit, const std::vector<GateKind>& blocks)
{
    for (GateKind kind : blocks) {
        for (std::size_t q = 0; q < circuit.num_qubits(); ++q) {
            switch (kind) {
              case GateKind::Rx: circuit.rx_param(q); break;
              case GateKind::Ry: circuit.ry_param(q); break;
              case GateKind::Rz: circuit.rz_param(q); break;
              default:
                CAFQA_REQUIRE(false,
                              "rotation_blocks must contain Rx/Ry/Rz only");
            }
        }
    }
}

void
add_linear_entanglement(Circuit& circuit)
{
    for (std::size_t q = 0; q + 1 < circuit.num_qubits(); ++q) {
        circuit.cx(q, q + 1);
    }
}

} // namespace

Circuit
make_efficient_su2(std::size_t num_qubits, const EfficientSu2Options& options)
{
    CAFQA_REQUIRE(num_qubits >= 1, "ansatz needs at least one qubit");
    CAFQA_REQUIRE(!options.rotation_blocks.empty(),
                  "at least one rotation block is required");
    Circuit circuit(num_qubits);
    for (std::size_t rep = 0; rep < options.reps; ++rep) {
        add_rotation_block(circuit, options.rotation_blocks);
        add_linear_entanglement(circuit);
    }
    if (options.final_rotation_layer) {
        add_rotation_block(circuit, options.rotation_blocks);
    }
    return circuit;
}

Circuit
make_microbenchmark_ansatz()
{
    Circuit circuit(2);
    circuit.ry_param(0);
    circuit.cx(0, 1);
    return circuit;
}

} // namespace cafqa
