/**
 * @file
 * Gate-level circuit intermediate representation shared by the stabilizer,
 * statevector and density-matrix simulators.
 *
 * A circuit may contain *parameterized* rotation gates (RX/RY/RZ whose
 * angle is a slot in an external parameter vector) alongside fixed gates.
 * CAFQA restricts the parameter slots to multiples of pi/2, which makes
 * every gate Clifford; the same circuit evaluated with free angles is the
 * conventional VQA ansatz.
 */
#ifndef CAFQA_CIRCUIT_CIRCUIT_HPP
#define CAFQA_CIRCUIT_CIRCUIT_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace cafqa {

/** Supported gate kinds. */
enum class GateKind : std::uint8_t {
    H, X, Y, Z, S, Sdg, T, Tdg,
    CX, CZ, Swap,
    Rx, Ry, Rz,
    /** Two-qubit ZZ rotation exp(-i theta/2 Z x Z), used by QAOA-style
     *  ansatze; Clifford at quarter-turn angles like the 1q rotations. */
    Rzz,
};

/** True for RX/RY/RZ/RZZ. */
bool is_rotation(GateKind kind);
/** True for CX/CZ/Swap. */
bool is_two_qubit(GateKind kind);
/** Printable mnemonic, e.g. "cx". */
std::string gate_name(GateKind kind);

/** One gate application. */
struct GateOp
{
    GateKind kind;
    std::size_t q0 = 0;
    /** Second operand for two-qubit gates (target for CX). */
    std::size_t q1 = 0;
    /** Parameter slot for rotations; -1 means the fixed `angle` is used. */
    int param = -1;
    /** Fixed rotation angle, when param < 0. */
    double angle = 0.0;

    /** Resolve the rotation angle against a parameter vector. */
    double resolved_angle(const std::vector<double>& params) const;
};

/** An ordered list of gates on a fixed number of qubits. */
class Circuit
{
  public:
    explicit Circuit(std::size_t num_qubits = 0);

    std::size_t num_qubits() const { return num_qubits_; }
    std::size_t num_params() const { return num_params_; }
    const std::vector<GateOp>& ops() const { return ops_; }
    std::vector<GateOp>& mutable_ops() { return ops_; }

    void h(std::size_t q);
    void x(std::size_t q);
    void y(std::size_t q);
    void z(std::size_t q);
    void s(std::size_t q);
    void sdg(std::size_t q);
    void t(std::size_t q);
    void tdg(std::size_t q);
    void cx(std::size_t control, std::size_t target);
    void cz(std::size_t a, std::size_t b);
    void swap(std::size_t a, std::size_t b);

    /** Fixed-angle rotations. */
    void rx(std::size_t q, double angle);
    void ry(std::size_t q, double angle);
    void rz(std::size_t q, double angle);

    /** Fixed-angle two-qubit ZZ rotation. */
    void rzz(std::size_t a, std::size_t b, double angle);

    /** Parameterized rotations; allocates the next parameter slot and
     *  returns its index. */
    int rx_param(std::size_t q);
    int ry_param(std::size_t q);
    int rz_param(std::size_t q);
    int rzz_param(std::size_t a, std::size_t b);

    /** Allocate a parameter slot without attaching a gate (for shared
     *  parameters, e.g. QAOA layer angles). */
    int new_param();

    /** Rotations bound to an existing slot (shared parameters). */
    void rx_at(std::size_t q, int slot);
    void ry_at(std::size_t q, int slot);
    void rz_at(std::size_t q, int slot);
    void rzz_at(std::size_t a, std::size_t b, int slot);

    /** Append another circuit's gates (parameter slots are shifted). */
    void append(const Circuit& other);

    /**
     * True if every gate is Clifford given the parameter values: fixed
     * gates are all Clifford except T/Tdg, rotations must be multiples of
     * pi/2 within `tolerance`.
     */
    bool is_clifford(const std::vector<double>& params,
                     double tolerance = 1e-9) const;

    /** Count of gates of one kind. */
    std::size_t count(GateKind kind) const;

    /** One-gate-per-line dump. */
    std::string to_string() const;

  private:
    void check_qubit(std::size_t q) const;

    std::size_t num_qubits_ = 0;
    std::size_t num_params_ = 0;
    std::vector<GateOp> ops_;
};

} // namespace cafqa

#endif // CAFQA_CIRCUIT_CIRCUIT_HPP
