/**
 * @file
 * The Clifford Ansatz (paper Section 3, step 1-2): a hardware-efficient
 * parameterized circuit whose fixed gates are all Clifford, searched over
 * the discrete space theta[i] in {0, pi/2, pi, 3pi/2}.
 */
#ifndef CAFQA_CORE_CLIFFORD_ANSATZ_HPP
#define CAFQA_CORE_CLIFFORD_ANSATZ_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "opt/bayes_opt.hpp"

namespace cafqa {

/** Quarter-turn steps -> rotation angles (k * pi/2). */
std::vector<double> steps_to_angles(const std::vector<int>& steps);

/** The discrete search space of a parameterized Clifford circuit:
 *  one 4-valued parameter per rotation slot. */
DiscreteSpace clifford_search_space(const Circuit& ansatz);

/**
 * Validate that an ansatz is CAFQA-compatible: every fixed gate is
 * Clifford (no T/Tdg, no fixed non-quarter rotation angles).
 * @throws std::invalid_argument otherwise.
 */
void require_clifford_ansatz(const Circuit& ansatz);

/**
 * Quarter-turn steps that make the default EfficientSU2 ansatz
 * (make_efficient_su2 with reps = 1, RY/RZ blocks, linear CX ladder)
 * prepare the computational basis state |bits>. Used to start VQA tuning
 * from the Hartree-Fock determinant (Fig. 14 "HF" curves).
 */
std::vector<int> efficient_su2_bitstring_steps(std::size_t num_qubits,
                                               const std::vector<int>& bits);

} // namespace cafqa

#endif // CAFQA_CORE_CLIFFORD_ANSATZ_HPP
