/**
 * @file
 * Finite-shot expectation estimation — the statistics a real quantum
 * device produces. Terms are partitioned into qubit-wise-commuting
 * measurement groups (one basis rotation per group, paper reference
 * [25]); each group's terms are estimated from the *same* sampled
 * bitstrings, reproducing both shot noise and the covariance structure
 * of shared measurement settings.
 */
#ifndef CAFQA_CORE_SAMPLED_EVALUATOR_HPP
#define CAFQA_CORE_SAMPLED_EVALUATOR_HPP

#include <optional>

#include "common/rng.hpp"
#include "core/evaluator.hpp"
#include "pauli/grouping.hpp"

namespace cafqa {

/** Shot-based backend over the ideal statevector. */
class SampledEvaluator final : public ContinuousBackend
{
  public:
    /**
     * @param ansatz  parameterized circuit.
     * @param shots   measurement shots per qubit-wise-commuting group.
     * @param seed    sampling RNG seed.
     */
    SampledEvaluator(Circuit ansatz, std::size_t shots,
                     std::uint64_t seed);

    std::string_view kind() const override { return "sampled"; }
    std::size_t num_qubits() const override { return ansatz_.num_qubits(); }
    std::size_t num_params() const override { return ansatz_.num_params(); }

    void prepare(const std::vector<double>& params) override;
    double expectation(const PauliSum& op) const override;
    std::unique_ptr<Backend> clone() const override;

    std::size_t shots() const { return shots_; }

  private:
    Circuit ansatz_;
    std::size_t shots_;
    mutable Rng rng_;
    std::optional<Statevector> state_;
};

} // namespace cafqa

#endif // CAFQA_CORE_SAMPLED_EVALUATOR_HPP
