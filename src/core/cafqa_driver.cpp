#include "core/cafqa_driver.hpp"

#include "common/error.hpp"
#include "core/clifford_ansatz.hpp"

namespace cafqa {

CafqaResult
run_cafqa(const Circuit& ansatz, const VqaObjective& objective,
          const CafqaOptions& options)
{
    require_clifford_ansatz(ansatz);
    CAFQA_REQUIRE(objective.hamiltonian.num_qubits() == ansatz.num_qubits(),
                  "Hamiltonian and ansatz qubit counts differ");

    CliffordEvaluator evaluator(ansatz);
    auto objective_fn = [&](const std::vector<int>& steps) {
        evaluator.prepare(steps);
        return objective.evaluate(evaluator);
    };

    BayesOptOptions bayes = options.bayes;
    bayes.warmup = options.warmup;
    bayes.iterations = options.iterations;
    bayes.seed = options.seed;
    bayes.stall_limit = options.stall_limit;
    bayes.seed_configs.insert(bayes.seed_configs.end(),
                              options.seed_steps.begin(),
                              options.seed_steps.end());

    const BayesOptResult search = bayes_opt_minimize(
        objective_fn, clifford_search_space(ansatz), bayes);

    CafqaResult result;
    result.best_steps = search.best_config;
    result.best_objective = search.best_value;
    result.history = search.history;
    result.best_trace = search.best_trace;
    result.evaluations_to_best = search.evaluations_to_best;
    result.num_parameters = ansatz.num_params();

    evaluator.prepare(result.best_steps);
    result.best_energy = objective.energy(evaluator);
    return result;
}

CafqaResult
exhaustive_clifford_search(const Circuit& ansatz,
                           const VqaObjective& objective)
{
    require_clifford_ansatz(ansatz);
    const std::size_t num_params = ansatz.num_params();
    CAFQA_REQUIRE(num_params <= 12,
                  "exhaustive search limited to 12 parameters (4^12)");

    CliffordEvaluator evaluator(ansatz);
    CafqaResult result;
    result.num_parameters = num_params;

    std::vector<int> steps(num_params, 0);
    const std::uint64_t limit = std::uint64_t{1} << (2 * num_params);
    for (std::uint64_t code = 0; code < limit; ++code) {
        std::uint64_t rest = code;
        for (std::size_t i = 0; i < num_params; ++i) {
            steps[i] = static_cast<int>(rest & 3);
            rest >>= 2;
        }
        evaluator.prepare(steps);
        const double value = objective.evaluate(evaluator);
        if (code == 0 || value < result.best_objective) {
            result.best_objective = value;
            result.best_steps = steps;
            result.evaluations_to_best = code + 1;
        }
    }
    evaluator.prepare(result.best_steps);
    result.best_energy = objective.energy(evaluator);
    return result;
}

namespace {

/** Insert a T gate immediately after the rotation with parameter slot
 *  `slot`. */
Circuit
with_t_after_slot(const Circuit& ansatz, std::size_t slot)
{
    Circuit out(ansatz.num_qubits());
    for (const auto& op : ansatz.ops()) {
        out.mutable_ops().push_back(op);
        if (is_rotation(op.kind) && op.param >= 0 &&
            static_cast<std::size_t>(op.param) == slot) {
            out.mutable_ops().push_back(
                GateOp{GateKind::T, op.q0, 0, -1, 0.0});
        }
    }
    return out;
}

/** Short Clifford-parameter search over a Clifford+T circuit using the
 *  exact branch evaluator. */
std::pair<std::vector<int>, double>
search_with_t(const Circuit& circuit_with_t, const VqaObjective& objective,
              std::size_t num_params, const CafqaOptions& options,
              const std::vector<int>& seed_steps)
{
    CliffordTEvaluator evaluator(circuit_with_t);
    auto objective_fn = [&](const std::vector<int>& steps) {
        evaluator.prepare(steps);
        return objective.evaluate(evaluator);
    };

    BayesOptOptions bayes = options.bayes;
    // T placement rounds use a reduced budget (the paper limits this
    // exploration to "under 10 T gates" with careful cost control).
    bayes.warmup = std::max<std::size_t>(options.warmup / 4, 16);
    bayes.iterations = std::max<std::size_t>(options.iterations / 4, 32);
    bayes.seed = options.seed + 101;
    // Prior-inject the incumbent Clifford assignment so a T insertion
    // can only be accepted when it genuinely improves on it.
    bayes.seed_configs = {seed_steps};

    DiscreteSpace space;
    space.cardinalities.assign(num_params, 4);

    const BayesOptResult search =
        bayes_opt_minimize(objective_fn, space, bayes);
    return {search.best_config, search.best_value};
}

} // namespace

CafqaKtResult
run_cafqa_kt(const Circuit& ansatz, const VqaObjective& objective,
             std::size_t max_t_gates, const CafqaOptions& options)
{
    CafqaKtResult result;
    result.base = run_cafqa(ansatz, objective, options);
    result.best_steps = result.base.best_steps;
    result.best_energy = result.base.best_energy;
    double best_objective = result.base.best_objective;

    Circuit current = ansatz;
    for (std::size_t round = 0; round < max_t_gates; ++round) {
        bool improved = false;
        Circuit best_circuit = current;
        std::vector<int> best_steps = result.best_steps;
        double round_best = best_objective;
        std::size_t best_slot = 0;

        for (std::size_t slot = 0; slot < ansatz.num_params(); ++slot) {
            const Circuit candidate = with_t_after_slot(current, slot);
            const auto [steps, value] =
                search_with_t(candidate, objective, ansatz.num_params(),
                              options, result.best_steps);
            if (value < round_best - 1e-10) {
                round_best = value;
                best_circuit = candidate;
                best_steps = steps;
                best_slot = slot;
                improved = true;
            }
        }
        if (!improved) {
            break; // no single T insertion helps further
        }
        result.t_positions.push_back(best_slot);
        current = best_circuit;
        result.best_steps = best_steps;
        best_objective = round_best;

        CliffordTEvaluator evaluator(current);
        evaluator.prepare(result.best_steps);
        result.best_energy = objective.energy(evaluator);
    }
    return result;
}

} // namespace cafqa
