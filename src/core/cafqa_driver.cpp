#include "core/cafqa_driver.hpp"

#include <memory>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/clifford_ansatz.hpp"
#include "core/evaluator.hpp"
#include "core/pipeline.hpp"

namespace cafqa {

CafqaResult
run_cafqa(const Circuit& ansatz, const VqaObjective& objective,
          const CafqaOptions& options)
{
    require_clifford_ansatz(ansatz);
    PipelineConfig config;
    config.ansatz = ansatz;
    config.objective = objective;
    config.search = options;
    CafqaPipeline pipeline(std::move(config));
    return pipeline.run_clifford_search();
}

CafqaResult
exhaustive_clifford_search(const Circuit& ansatz,
                           const VqaObjective& objective)
{
    require_clifford_ansatz(ansatz);
    const std::size_t num_params = ansatz.num_params();
    CAFQA_REQUIRE(num_params <= 12,
                  "exhaustive search limited to 12 parameters (4^12)");
    CAFQA_REQUIRE(objective.hamiltonian.num_qubits() == ansatz.num_qubits(),
                  "Hamiltonian and ansatz qubit counts differ");

    const CliffordEvaluator prototype(ansatz);
    const std::vector<PauliSum> observables = objective.gather_observables();
    const std::uint64_t limit = std::uint64_t{1} << (2 * num_params);

    const auto decode = [num_params](std::uint64_t code,
                                     std::vector<int>& steps) {
        for (std::size_t i = 0; i < num_params; ++i) {
            steps[i] = static_cast<int>(code & 3);
            code >>= 2;
        }
    };

    // Fan the ascending code scan out in contiguous chunks; each worker
    // keeps its own backend clone and chunk-local minimum, and the merge
    // prefers lower codes on ties, so the result is identical to the
    // serial scan (first code achieving the minimum wins).
    ThreadPool& pool = ThreadPool::shared();
    const std::uint64_t chunk_count = std::min<std::uint64_t>(
        limit, static_cast<std::uint64_t>(pool.size()) * 8);
    const std::uint64_t chunk_size =
        (limit + chunk_count - 1) / chunk_count;

    struct ChunkBest
    {
        double value = 0.0;
        std::uint64_t code = 0;
        bool valid = false;
    };
    std::vector<ChunkBest> chunk_best(chunk_count);
    std::vector<std::unique_ptr<DiscreteBackend>> clones(pool.size());

    pool.parallel_for(
        chunk_count, [&](std::size_t worker, std::size_t chunk) {
            auto& backend = clones[worker];
            if (!backend) {
                backend = prototype.clone_discrete();
            }
            const std::uint64_t lo = chunk * chunk_size;
            const std::uint64_t hi =
                std::min<std::uint64_t>(lo + chunk_size, limit);
            std::vector<int> steps(num_params, 0);
            ChunkBest best;
            for (std::uint64_t code = lo; code < hi; ++code) {
                decode(code, steps);
                backend->prepare(steps);
                const double value =
                    objective.combine(backend->expectations(observables));
                if (!best.valid || value < best.value) {
                    best.value = value;
                    best.code = code;
                    best.valid = true;
                }
            }
            chunk_best[chunk] = best;
        });

    CafqaResult result;
    result.num_parameters = num_params;
    ChunkBest overall;
    for (const ChunkBest& candidate : chunk_best) {
        if (!candidate.valid) {
            continue;
        }
        if (!overall.valid || candidate.value < overall.value) {
            overall = candidate;
        }
    }
    CAFQA_ASSERT(overall.valid, "exhaustive search evaluated nothing");

    result.best_objective = overall.value;
    result.evaluations_to_best = overall.code + 1;
    result.stop_reason = StopReason::SpaceExhausted;
    result.best_steps.assign(num_params, 0);
    decode(overall.code, result.best_steps);

    CliffordEvaluator evaluator(ansatz);
    evaluator.prepare(result.best_steps);
    result.best_energy = objective.energy(evaluator);
    return result;
}

CafqaKtResult
run_cafqa_kt(const Circuit& ansatz, const VqaObjective& objective,
             std::size_t max_t_gates, const CafqaOptions& options)
{
    require_clifford_ansatz(ansatz);
    PipelineConfig config;
    config.ansatz = ansatz;
    config.objective = objective;
    config.search = options;
    CafqaPipeline pipeline(std::move(config));
    pipeline.run_t_boost(max_t_gates);

    CafqaKtResult result;
    result.base = pipeline.clifford_result();
    result.boost = pipeline.t_boost_result();
    return result;
}

} // namespace cafqa
