/**
 * @file
 * CAFQA search result/option types and the legacy free-function entry
 * points (paper Section 3, red box of Fig. 4): Bayesian optimization
 * over the discrete Clifford parameter space, with every candidate
 * evaluated exactly and noise-free by the stabilizer simulator.
 *
 * The free functions below are thin deprecated shims over the
 * `CafqaPipeline` facade (`core/pipeline.hpp`), kept so existing call
 * sites keep working; new code should drive the pipeline directly (it
 * adds stage observers, backend selection through the registry, and
 * thread-pool batched candidate evaluation).
 */
#ifndef CAFQA_CORE_CAFQA_DRIVER_HPP
#define CAFQA_CORE_CAFQA_DRIVER_HPP

#include "circuit/circuit.hpp"
#include "core/objective.hpp"
#include "opt/bayes_opt.hpp"

namespace cafqa {

/** CAFQA search controls (forwarded to the Bayesian optimizer). */
struct CafqaOptions
{
    /** Random warm-up evaluations (paper Fig. 7 uses 1000). */
    std::size_t warmup = 200;
    /** Model-guided search evaluations. */
    std::size_t iterations = 300;
    std::uint64_t seed = 2023;
    /** Early stop after this many non-improving evaluations (0 = off). */
    std::size_t stall_limit = 0;
    /** Step assignments evaluated before the warm-up (prior injection).
     *  Seeding the Hartree-Fock point guarantees CAFQA never returns a
     *  state worse than the HF baseline — the paper's "equal to or
     *  better than" property. */
    std::vector<std::vector<int>> seed_steps;
    /** Forwarded knobs for the underlying optimizer. */
    BayesOptOptions bayes;
};

/** Search outcome: the Clifford initialization for subsequent VQA. */
struct CafqaResult
{
    /** Best quarter-turn assignment (one entry per ansatz parameter). */
    std::vector<int> best_steps;
    /** Bare Hamiltonian expectation at the best steps. */
    double best_energy = 0.0;
    /** Objective (energy + penalties) at the best steps. */
    double best_objective = 0.0;
    /** Objective of every evaluation in order. */
    std::vector<double> history;
    /** Running best objective. */
    std::vector<double> best_trace;
    /** Evaluation count at which the best configuration appeared
     *  (Fig. 15 metric). */
    std::size_t evaluations_to_best = 0;
    std::size_t num_parameters = 0;
    /** Why the search ended (budget, target-value early exit, ...). */
    StopReason stop_reason = StopReason::BudgetExhausted;
};

/**
 * Outcome of the greedy Clifford + kT boost stage (paper Section 8 /
 * Fig. 16). When no T insertion improves the objective, `t_positions`
 * is empty and the fields echo the Clifford-stage optimum over the
 * unmodified ansatz.
 */
struct TBoostResult
{
    /** Rotation-slot indices where T gates were inserted, in acceptance
     *  order. */
    std::vector<std::size_t> t_positions;
    /** Best quarter-turn assignment over `circuit`. */
    std::vector<int> best_steps;
    /** Bare Hamiltonian expectation at the best steps. */
    double best_energy = 0.0;
    /** Objective (energy + penalties) at the best steps. */
    double best_objective = 0.0;
    /** The ansatz with the accepted T gates inserted. */
    Circuit circuit;
};

/**
 * Combined result of the legacy `run_cafqa_kt` shim: the Clifford-only
 * stage plus the T-boost stage. (The boost fields used to be duplicated
 * at the top level; they now live only in `boost`.)
 */
struct CafqaKtResult
{
    /** Clifford-only stage outcome. */
    CafqaResult base;
    /** T-boost stage outcome (echoes the base point when empty). */
    TBoostResult boost;
};

/**
 * Run the CAFQA Clifford search for an objective over an ansatz.
 * Deprecated shim over `CafqaPipeline::run_clifford_search`.
 */
CafqaResult run_cafqa(const Circuit& ansatz, const VqaObjective& objective,
                      const CafqaOptions& options = {});

/**
 * Exhaustive enumeration of the 4^num_params Clifford space — tractable
 * for small ansatze (<= 12 parameters) and used to certify that the
 * Bayesian search found the true Clifford optimum. Fanned out across
 * the shared thread pool with per-worker backend clones; the result is
 * identical to a serial ascending scan (first code achieving the
 * minimum wins).
 */
CafqaResult exhaustive_clifford_search(const Circuit& ansatz,
                                       const VqaObjective& objective);

/**
 * Clifford + k T-gates extension (paper Section 8 / Fig. 16): greedily
 * insert up to `max_t_gates` T gates after rotation slots, re-running a
 * (shorter) Clifford-parameter search for each accepted insertion. Each
 * candidate is evaluated with the exact branch decomposition.
 * Deprecated shim over `CafqaPipeline::run_t_boost`.
 */
CafqaKtResult run_cafqa_kt(const Circuit& ansatz,
                           const VqaObjective& objective,
                           std::size_t max_t_gates,
                           const CafqaOptions& options = {});

} // namespace cafqa

#endif // CAFQA_CORE_CAFQA_DRIVER_HPP
