/**
 * @file
 * Post-CAFQA variational tuning (paper Section 7.3 / Fig. 14): a
 * continuous optimizer (SPSA by default; any registered
 * `ContinuousOptimizer` via `PipelineConfig::tuner_optimizer`) over the
 * full parameter space, on either the ideal statevector backend or the
 * noisy density-matrix backend, starting from a chosen initialization
 * (HF bitstring-equivalent parameters or CAFQA steps).
 */
#ifndef CAFQA_CORE_VQA_TUNER_HPP
#define CAFQA_CORE_VQA_TUNER_HPP

#include <string>

#include "circuit/circuit.hpp"
#include "core/objective.hpp"
#include "density/noise_model.hpp"
#include "opt/spsa.hpp"

namespace cafqa {

/** Tuning controls. */
struct VqaTunerOptions
{
    std::size_t iterations = 500;
    std::uint64_t seed = 7;
    /** Noise model; an all-zero model selects the ideal backend. */
    NoiseModel noise;
    /**
     * Backend registry kind for the continuous stage. Empty picks
     * automatically: "density" when `noise` is enabled, else
     * "statevector". Set "sampled" for finite-shot tuning.
     */
    std::string backend;
    /** Measurement shots per commuting group ("sampled" backend). */
    std::size_t shots = 4096;
    /** SPSA gain parameters (iterations/seed fields are overridden).
     *  Defaults are sized for VQE angle landscapes in radians. */
    SpsaOptions spsa{.iterations = 200,
                     .a = 2.0,
                     .c = 0.2,
                     .alpha = 0.602,
                     .gamma = 0.101,
                     .stability = 20.0,
                     .seed = 1234};
};

/** Tuning outcome. */
struct VqaTuneResult
{
    /** Recorded objective trace: the start-point value followed by the
     *  value after each tuning step (for SPSA) or every evaluation
     *  (other tuners). */
    std::vector<double> trace;
    std::vector<double> final_params;
    double final_value = 0.0;
    /** Why the tuner ended (budget, target-value early exit, ...). */
    StopReason stop_reason = StopReason::BudgetExhausted;
};

/**
 * Tune the ansatz parameters starting from `initial_params`.
 * Deprecated shim over `CafqaPipeline::run_vqa_tune`.
 */
VqaTuneResult tune_vqa(const Circuit& ansatz, const VqaObjective& objective,
                       const std::vector<double>& initial_params,
                       const VqaTunerOptions& options = {});

/**
 * Convergence metric for Fig. 14: the number of tuning steps until the
 * trace value is within `tolerance` of the eventual best. `trace[0]`
 * is the start point (0 steps), so an initialization already within
 * tolerance returns 0. Returns trace.size() if the trace never reaches
 * the tolerance band.
 */
std::size_t iterations_to_converge(const std::vector<double>& trace,
                                   double tolerance);

} // namespace cafqa

#endif // CAFQA_CORE_VQA_TUNER_HPP
