/**
 * @file
 * Concurrent multi-run execution — the first step toward the
 * serve-many-requests north star: hand the runner a list of `RunSpec`s
 * and it executes them concurrently over a thread pool, each run fully
 * isolated (its own pipeline, backends and caches), and returns
 * machine-readable per-run records plus an aggregated JSON report.
 *
 *   BatchRunner runner;
 *   const auto records = runner.run({
 *       RunSpec::parse("problem=molecule:H2?bond=2.2 warmup=60"),
 *       RunSpec::parse("problem=maxcut:ring-8 search=anneal"),
 *   });
 *   std::cout << batch_results_json(records) << '\n';
 *
 * Concurrency never changes results: every record is bit-identical to
 * executing its spec alone with `execute_run_spec` (regression-tested),
 * because runs share nothing and each pipeline's own evaluation
 * batching is trajectory-preserving.
 */
#ifndef CAFQA_CORE_BATCH_RUNNER_HPP
#define CAFQA_CORE_BATCH_RUNNER_HPP

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/run_spec.hpp"
#include "problems/problem.hpp"

namespace cafqa {

/** Outcome of one spec execution. */
struct RunRecord
{
    /** The spec as submitted. */
    RunSpec spec;
    /** Canonical problem key (round-trips through make_problem). */
    std::string problem_key;
    std::string problem_name;
    std::size_t num_qubits = 0;

    /** False when the run threw; `error` then holds the message and
     *  the result fields are meaningless. */
    bool ok = false;
    std::string error;
    /** True when a cancel token stopped the run early (the result
     *  fields hold the best point found before cancellation; stages
     *  that had not started were skipped). Serialized only when set,
     *  so uncancelled records are byte-identical to pre-cancel runs. */
    bool cancelled = false;

    /** Objective (energy + penalties) at the best discrete point. */
    double best_objective = 0.0;
    /** Bare Hamiltonian energy at the best discrete point (after
     *  T-boost when the spec enabled it). */
    double cafqa_energy = 0.0;
    /** Final tuned objective value (when `spec.tune > 0`). */
    std::optional<double> tuned_value;
    /** Problem baselines, when the family provides them. */
    std::optional<double> reference_energy;
    std::optional<double> exact_energy;
    /** Instance metrics copied from the problem (bond length, edge
     *  count, couplings, ...). */
    std::vector<std::pair<std::string, double>> metrics;

    /** Best discrete assignment (quarter-turn steps) — the payload a
     *  later run can warm-start from (`RunSpec::warm_start`). */
    std::vector<int> best_steps;
    /** Recorded evaluations of the discrete search stage. */
    std::size_t evaluations = 0;
    std::size_t evaluations_to_best = 0;
    /** 1-based evaluation index where the search objective first came
     *  within chemical accuracy (1.6e-3 Ha) of the exact energy;
     *  unset when `exact` is off or accuracy was never reached.
     *  Computed post-hoc from the best trace — it never changes the
     *  search itself. */
    std::optional<std::size_t> evals_to_accuracy;
    std::size_t t_gates = 0;
    /** Stop reason of the discrete search stage. */
    std::string stop_reason;
    /** Stop reason of the tuning stage (empty when `spec.tune == 0`). */
    std::string tune_stop_reason;
    /** Wall-clock duration of this run (not deterministic). */
    double wall_ms = 0.0;

    /** One flat JSON object (one line, no trailing newline). */
    std::string to_json() const;
};

/**
 * Per-run execution hooks threaded through `execute_run_spec` — the
 * serving integration surface. All fields optional; the default context
 * reproduces a plain solo run exactly.
 */
struct RunContext
{
    /** Receives the pipeline's stage events. */
    PipelineObserver observer;
    /**
     * Cooperative cancel token (`StoppingCriteria::cancel`): when
     * another thread stores true, the in-flight stage stops at its next
     * recorded evaluation with stop reason "cancelled" and later stages
     * are skipped; the record keeps the best point found so far with
     * `RunRecord::cancelled` set. Latency is one evaluation (one block
     * in batched phases).
     */
    std::shared_ptr<std::atomic<bool>> cancel;
    /** Cross-run shared evaluation cache (`PipelineConfig`'s field of
     *  the same name): jobs on the same problem share materialized
     *  evaluations process-wide. */
    std::shared_ptr<EvaluationCache> shared_cache;
};

/**
 * Execute one spec end to end: resolve the problem, run the discrete
 * search, the optional T-boost and the optional continuous tuning, and
 * collect the record. Throws on failure (the batch runner catches and
 * records instead). The optional observer receives the pipeline's
 * stage events.
 */
RunRecord execute_run_spec(const RunSpec& spec,
                           PipelineObserver observer = nullptr);

/** Same, over an already-resolved problem (the CLI resolves once so it
 *  can also report problem metadata on its own). */
RunRecord execute_run_spec(const RunSpec& spec,
                           const problems::Problem& problem,
                           PipelineObserver observer = nullptr);

/** Same, with the full serving context (cancel token, shared cache). */
RunRecord execute_run_spec(const RunSpec& spec, const RunContext& context);
RunRecord execute_run_spec(const RunSpec& spec,
                           const problems::Problem& problem,
                           const RunContext& context);

/** Batch execution controls. */
struct BatchOptions
{
    /** Concurrent runs; 0 uses the process-wide shared pool (sized to
     *  the hardware), otherwise a dedicated pool of this size. */
    std::size_t concurrency = 0;
    /**
     * Worker threads given to each run whose spec leaves `threads` at
     * 0. Runs inside the batch must not lean on the shared pool (the
     * batch fan-out itself may occupy it), so 0 is re-mapped to this
     * per-run pool size; 1 (the default) keeps every core busy running
     * whole specs side by side.
     */
    std::size_t run_threads = 1;
};

/** Observer fan-in: every run's pipeline events funnel through one
 *  callback, tagged with the run index (serialized by the runner, so
 *  the callback needs no locking of its own). */
using BatchObserver = std::function<void(
    std::size_t run_index, const RunSpec& spec, const PipelineEvent&)>;

/**
 * Warm-start provider, consulted as each run is about to start: a
 * nonempty return is injected as that run's `RunSpec::warm_start`
 * (the reported record keeps the spec as submitted). This is the
 * cross-run transfer hook — e.g. seed each run from a neighboring
 * run's `RunRecord::best_steps`. `records` is the in-progress result
 * array (`ok` is false for runs that have not finished). Chained
 * hand-offs (run i seeds run i+1) need `concurrency == 1`, which runs
 * the specs in index order — with more workers, reading a peer's
 * record races with its writer and finish order is timing-dependent.
 */
using WarmStartHook = std::function<std::vector<int>(
    std::size_t run_index, const RunSpec& spec,
    const std::vector<RunRecord>& records)>;

/** Executes many RunSpecs concurrently with per-run isolation. */
class BatchRunner
{
  public:
    explicit BatchRunner(BatchOptions options = {});

    /** Install (or clear) the fan-in observer. */
    void set_observer(BatchObserver observer);

    /** Install (or clear) the cross-run warm-start provider. */
    void set_warm_start(WarmStartHook hook);

    /**
     * Execute every spec (order of the result matches the input). A
     * run that throws yields a record with `ok == false` and the error
     * message; it never aborts the other runs.
     */
    std::vector<RunRecord> run(const std::vector<RunSpec>& specs);

    /**
     * Cooperative cancellation, callable from any thread (the job
     * server's drain path; useful standalone for Ctrl-C handling).
     * Semantics: runs currently executing stop at their next recorded
     * evaluation — their records keep the best point found so far,
     * with `RunRecord::cancelled` set and stop reason "cancelled";
     * specs not yet started are not executed at all and yield
     * `ok == false`, `cancelled == true` records. The request is
     * STICKY: it also applies to future `run` calls on this runner
     * until `reset_stop` clears it (a stopped runner is "shut down",
     * not paused).
     */
    void request_stop();
    /** True once `request_stop` has been called (and not reset). */
    bool stop_requested() const;
    /** Re-arm a stopped runner for further `run` calls. */
    void reset_stop();

  private:
    BatchOptions options_;
    BatchObserver observer_;
    WarmStartHook warm_start_;
    /** Shared with every in-flight run's stopping criteria. */
    std::shared_ptr<std::atomic<bool>> stop_;
};

/** Aggregated machine-readable report: {"runs": [...], "total": N,
 *  "failed": M}. */
std::string batch_results_json(const std::vector<RunRecord>& records);

} // namespace cafqa

#endif // CAFQA_CORE_BATCH_RUNNER_HPP
