#include "core/run_spec.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"
#include "common/text.hpp"

namespace cafqa {

namespace {

[[noreturn]] void
fail_field(const std::string& name, const std::string& why)
{
    CAFQA_REQUIRE(false,
                  "run spec field \"" + name + "\" " + why +
                      " (accepted fields: problem, label, warmup, "
                      "iterations, seed, search, hf-seed, warm-start, "
                      "max-t, tune, tune-backend, tuner, budget, "
                      "target-energy, threads, cache, cache-capacity, "
                      "exact)");
}

std::uint64_t
parse_count_value(const std::string& name, const std::string& text,
                  std::uint64_t min_value)
{
    const auto value = parse_integer_token(text);
    if (!value || *value < 0 ||
        static_cast<std::uint64_t>(*value) < min_value) {
        fail_field(name, "expects an integer >= " +
                             std::to_string(min_value) + ", got \"" +
                             text + "\"");
    }
    return static_cast<std::uint64_t>(*value);
}

double
parse_real_value(const std::string& name, const std::string& text)
{
    const auto value = parse_real_token(text);
    if (!value) {
        fail_field(name,
                   "expects a finite number, got \"" + text + "\"");
    }
    return *value;
}

bool
parse_flag_value(const std::string& name, const std::string& text)
{
    if (text == "1" || text == "true") {
        return true;
    }
    if (text == "0" || text == "false") {
        return false;
    }
    fail_field(name, "expects 0/1/true/false, got \"" + text + "\"");
}

/** Text fields must survive the whitespace-tokenized text form (and
 *  the JSON form's limited escape set), so whitespace and control
 *  characters are rejected at assignment. */
std::string
parse_text_value(const std::string& name, const std::string& value)
{
    for (const char c : value) {
        if (static_cast<unsigned char>(c) < 0x21) {
            fail_field(name, "must not contain whitespace or control "
                             "characters, got \"" + value + "\"");
        }
    }
    return value;
}

/** Comma-separated quarter-turn steps ("1,3,0,2"), each 0..3. */
std::vector<int>
parse_steps_value(const std::string& name, const std::string& text)
{
    const auto bad = [&](const std::string& token) {
        fail_field(name, "expects comma-separated quarter-turn steps, "
                         "each an integer in 0..3 (e.g. "
                         "\"1,3,0,2\"), got \"" + token + "\" in \"" +
                         text + "\"");
    };
    std::vector<int> steps;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        const std::size_t end = text.find(',', begin);
        const std::string token = text.substr(
            begin, end == std::string::npos ? end : end - begin);
        const auto value = parse_integer_token(token);
        if (!value || *value < 0 || *value > 3) {
            bad(token);
        }
        steps.push_back(static_cast<int>(*value));
        if (end == std::string::npos) {
            break;
        }
        begin = end + 1;
    }
    return steps;
}

/** Render steps back into the serialized comma form. */
std::string
format_steps(const std::vector<int>& steps)
{
    std::string out;
    for (const int step : steps) {
        if (!out.empty()) {
            out += ',';
        }
        out += std::to_string(step);
    }
    return out;
}

/** Apply one `name=value` assignment (shared by both input forms). */
void
assign_field(RunSpec& spec, const std::string& name,
             const std::string& value)
{
    if (name == "problem") {
        spec.problem = parse_text_value(name, value);
    } else if (name == "label") {
        spec.label = parse_text_value(name, value);
    } else if (name == "warmup") {
        spec.warmup = static_cast<std::size_t>(
            parse_count_value(name, value, 1));
    } else if (name == "iterations") {
        spec.iterations = static_cast<std::size_t>(
            parse_count_value(name, value, 1));
    } else if (name == "seed") {
        spec.seed = parse_count_value(name, value, 0);
    } else if (name == "search") {
        spec.search = parse_text_value(name, value);
    } else if (name == "hf-seed") {
        spec.hf_seed = parse_flag_value(name, value);
    } else if (name == "warm-start" || name == "warm_start") {
        spec.warm_start = parse_steps_value("warm-start", value);
    } else if (name == "max-t") {
        spec.max_t = static_cast<std::size_t>(
            parse_count_value(name, value, 0));
    } else if (name == "tune") {
        spec.tune = static_cast<std::size_t>(
            parse_count_value(name, value, 0));
    } else if (name == "tune-backend") {
        spec.tune_backend =
            value == "auto" ? "" : parse_text_value(name, value);
    } else if (name == "tuner") {
        spec.tuner = parse_text_value(name, value);
    } else if (name == "budget") {
        spec.budget = static_cast<std::size_t>(
            parse_count_value(name, value, 1));
    } else if (name == "target-energy") {
        spec.target_energy = parse_real_value(name, value);
    } else if (name == "threads") {
        spec.threads = static_cast<std::size_t>(
            parse_count_value(name, value, 1));
    } else if (name == "cache") {
        spec.cache = parse_flag_value(name, value);
    } else if (name == "cache-capacity") {
        // A nonzero capacity implies the cache at config time
        // (make_pipeline_config), mirroring the CLI's --cache-capacity.
        spec.cache_capacity = static_cast<std::size_t>(
            parse_count_value(name, value, 1));
    } else if (name == "exact") {
        spec.exact = parse_flag_value(name, value);
    } else {
        fail_field(name, "is not a known field");
    }
}

void
require_unseen(std::vector<std::string>& seen, const std::string& name)
{
    for (const auto& existing : seen) {
        if (existing == name) {
            fail_field(name, "appears more than once");
        }
    }
    seen.push_back(name);
}

/** Append the serialized fields of `spec` that differ from defaults,
 *  via a caller-supplied emitter (shared by text and JSON forms). */
template <typename EmitText, typename EmitNumber, typename EmitFlag>
void
emit_fields(const RunSpec& spec, EmitText&& text, EmitNumber&& number,
            EmitFlag&& flag)
{
    const RunSpec defaults;
    text("problem", spec.problem);
    if (spec.label != defaults.label) {
        text("label", spec.label);
    }
    if (spec.warmup != defaults.warmup) {
        number("warmup", std::to_string(spec.warmup));
    }
    if (spec.iterations != defaults.iterations) {
        number("iterations", std::to_string(spec.iterations));
    }
    if (spec.seed != defaults.seed) {
        number("seed", std::to_string(spec.seed));
    }
    if (spec.search != defaults.search) {
        text("search", spec.search);
    }
    if (spec.hf_seed != defaults.hf_seed) {
        flag("hf-seed", spec.hf_seed);
    }
    if (!spec.warm_start.empty()) {
        text("warm-start", format_steps(spec.warm_start));
    }
    if (spec.max_t != defaults.max_t) {
        number("max-t", std::to_string(spec.max_t));
    }
    if (spec.tune != defaults.tune) {
        number("tune", std::to_string(spec.tune));
    }
    if (spec.tune_backend != defaults.tune_backend) {
        text("tune-backend", spec.tune_backend);
    }
    if (spec.tuner != defaults.tuner) {
        text("tuner", spec.tuner);
    }
    if (spec.budget != defaults.budget) {
        number("budget", std::to_string(spec.budget));
    }
    if (spec.target_energy.has_value()) {
        number("target-energy", format_real(*spec.target_energy));
    }
    if (spec.threads != defaults.threads) {
        number("threads", std::to_string(spec.threads));
    }
    if (spec.cache != defaults.cache) {
        flag("cache", spec.cache);
    }
    if (spec.cache_capacity != defaults.cache_capacity) {
        number("cache-capacity", std::to_string(spec.cache_capacity));
    }
    if (spec.exact != defaults.exact) {
        flag("exact", spec.exact);
    }
}

/** First `limit` characters of a jsonl line, elided for error text. */
std::string
line_snippet(const std::string& line, std::size_t limit = 60)
{
    if (line.size() <= limit) {
        return line;
    }
    return line.substr(0, limit) + "...";
}

} // namespace

void
RunSpec::set(const std::string& field, const std::string& value)
{
    assign_field(*this, field, value);
}

RunSpec
RunSpec::parse(const std::string& text)
{
    RunSpec spec;
    std::vector<std::string> seen;
    std::istringstream stream(text);
    std::string token;
    while (stream >> token) {
        const auto equals = token.find('=');
        if (equals == std::string::npos || equals == 0) {
            CAFQA_REQUIRE(false, "run spec token \"" + token +
                                     "\" must look like field=value");
        }
        const std::string name = token.substr(0, equals);
        require_unseen(seen, name);
        assign_field(spec, name, token.substr(equals + 1));
    }
    return spec;
}

RunSpec
RunSpec::from_json(const std::string& json)
{
    RunSpec spec;
    std::vector<std::string> seen;
    for (const JsonField& field : parse_flat_json_object(json)) {
        CAFQA_REQUIRE(field.is_string ||
                          (field.value[0] != '{' && field.value[0] != '['),
                      "run spec field \"" + field.name +
                          "\" must be a string, number or boolean, "
                          "got a nested value");
        require_unseen(seen, field.name);
        assign_field(spec, field.name, field.value);
    }
    return spec;
}

std::string
RunSpec::to_string() const
{
    std::string out;
    const auto token = [&out](const std::string& name,
                              const std::string& value) {
        out += (out.empty() ? "" : " ") + name + "=" + value;
    };
    emit_fields(
        *this, token, token,
        [&token](const std::string& name, bool value) {
            token(name, value ? "1" : "0");
        });
    return out;
}

std::string
RunSpec::to_json() const
{
    std::string out = "{";
    const auto comma = [&out] {
        if (out.size() > 1) {
            out += ",";
        }
    };
    emit_fields(
        *this,
        [&](const std::string& name, const std::string& value) {
            comma();
            out += json_quote(name) + ":" + json_quote(value);
        },
        [&](const std::string& name, const std::string& value) {
            comma();
            out += json_quote(name) + ":" + value;
        },
        [&](const std::string& name, bool value) {
            comma();
            out += json_quote(name) + ":" + (value ? "true" : "false");
        });
    out += "}";
    return out;
}

void
RunSpec::validate() const
{
    CAFQA_REQUIRE(!problem.empty(),
                  "run spec names no problem (set "
                  "problem=<family:instance>, e.g. "
                  "problem=molecule:H2?bond=0.74)");
}

std::vector<RunSpec>
parse_run_specs_jsonl(const std::string& text)
{
    std::vector<RunSpec> specs;
    std::istringstream stream(text);
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(stream, line)) {
        ++line_number;
        const auto start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#') {
            continue;
        }
        try {
            specs.push_back(RunSpec::from_json(line));
        } catch (const std::invalid_argument& error) {
            CAFQA_REQUIRE(false, "jsonl line " +
                                     std::to_string(line_number) + " (" +
                                     line_snippet(line) +
                                     "): " + error.what());
        }
    }
    return specs;
}

PipelineConfig
make_pipeline_config(const RunSpec& spec,
                     const problems::Problem& problem)
{
    PipelineConfig config;
    config.ansatz = problem.ansatz;
    config.objective = problem.objective;
    config.search.warmup = spec.warmup;
    config.search.iterations = spec.iterations;
    config.search.seed = spec.seed;
    config.threads = spec.threads;
    config.tuner.iterations = spec.tune;
    config.tuner.seed = spec.seed + 1;
    config.tuner.backend = spec.tune_backend;
    config.search_optimizer = optimizer_config(spec.search);
    config.tuner_optimizer = optimizer_config(spec.tuner);
    if (spec.budget > 0) {
        config.stopping.max_evaluations = spec.budget;
    }
    if (spec.target_energy.has_value()) {
        config.stopping.target_value = spec.target_energy;
    }
    config.cache.enabled = spec.cache || spec.cache_capacity > 0;
    if (spec.cache_capacity > 0) {
        config.cache.capacity = spec.cache_capacity;
    }
    if (spec.hf_seed) {
        config.search.seed_steps = problem.seed_steps;
    }
    if (!spec.warm_start.empty()) {
        CAFQA_REQUIRE(
            spec.warm_start.size() == problem.ansatz.num_params(),
            "run spec field \"warm-start\" has " +
                std::to_string(spec.warm_start.size()) +
                " steps but problem \"" + problem.key + "\" has " +
                std::to_string(problem.ansatz.num_params()) +
                " ansatz parameters");
        // Warm start rides after the HF point: both are prior-injected
        // seeds, evaluated before the strategy's own exploration.
        config.search.seed_steps.push_back(spec.warm_start);
    }
    return config;
}

} // namespace cafqa
