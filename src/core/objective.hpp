/**
 * @file
 * The CAFQA search objective: Hamiltonian expectation plus quadratic
 * constraint penalties (paper Section 3, item 5, and Section 7.1 —
 * electron-count preservation for ions like H2+, spin selection for
 * triplet states).
 */
#ifndef CAFQA_CORE_OBJECTIVE_HPP
#define CAFQA_CORE_OBJECTIVE_HPP

#include <span>
#include <vector>

#include "core/backend.hpp"
#include "pauli/pauli_sum.hpp"

namespace cafqa {

/** One quadratic penalty: weight * (<op> - target)^2. */
struct ConstraintPenalty
{
    PauliSum op;
    double target = 0.0;
    double weight = 1.0;
};

/** Hamiltonian + penalties. */
struct VqaObjective
{
    PauliSum hamiltonian;
    std::vector<ConstraintPenalty> penalties;

    /** Convenience: add an electron-count constraint. */
    void add_number_constraint(PauliSum number_op, double electrons,
                               double weight = 2.0);
    /** Convenience: add an S_z constraint. */
    void add_sz_constraint(PauliSum sz_op, double sz, double weight = 2.0);

    /**
     * The observable list of the batched evaluation path: the
     * Hamiltonian followed by every penalty operator, contiguous so it
     * can be handed to `Backend::expectations` as one span. Gather once
     * per search, not per evaluation.
     */
    std::vector<PauliSum> gather_observables() const;

    /**
     * Fold raw expectation values (in `gather_observables` order) into
     * the objective: energy + quadratic penalty terms.
     */
    double combine(std::span<const double> expectation_values) const;

    /**
     * Evaluate on a prepared polymorphic backend through the batched
     * `expectations` surface (one state, all observables).
     */
    double evaluate_prepared(const Backend& backend) const;

    /**
     * Evaluate on any prepared backend exposing
     * `double expectation(const PauliSum&)`.
     */
    template <typename BackendT>
    double
    evaluate(const BackendT& backend) const
    {
        double value = backend.expectation(hamiltonian);
        for (const auto& penalty : penalties) {
            const double got = backend.expectation(penalty.op);
            const double miss = got - penalty.target;
            value += penalty.weight * miss * miss;
        }
        return value;
    }

    /** The bare energy (no penalties) on a prepared backend. */
    template <typename BackendT>
    double
    energy(const BackendT& backend) const
    {
        return backend.expectation(hamiltonian);
    }
};

} // namespace cafqa

#endif // CAFQA_CORE_OBJECTIVE_HPP
