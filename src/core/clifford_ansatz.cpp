#include "core/clifford_ansatz.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace cafqa {

std::vector<double>
steps_to_angles(const std::vector<int>& steps)
{
    std::vector<double> angles(steps.size());
    for (std::size_t i = 0; i < steps.size(); ++i) {
        angles[i] = (((steps[i] % 4) + 4) % 4) * (std::numbers::pi / 2.0);
    }
    return angles;
}

DiscreteSpace
clifford_search_space(const Circuit& ansatz)
{
    DiscreteSpace space;
    space.cardinalities.assign(ansatz.num_params(), 4);
    return space;
}

void
require_clifford_ansatz(const Circuit& ansatz)
{
    constexpr double half_pi = std::numbers::pi / 2.0;
    for (const auto& op : ansatz.ops()) {
        CAFQA_REQUIRE(op.kind != GateKind::T && op.kind != GateKind::Tdg,
                      "ansatz fixed gates must be Clifford (found T)");
        if (is_rotation(op.kind) && op.param < 0) {
            const double steps = op.angle / half_pi;
            CAFQA_REQUIRE(std::abs(steps - std::round(steps)) < 1e-9,
                          "fixed rotation angle is not a multiple of pi/2");
        }
    }
}

std::vector<int>
efficient_su2_bitstring_steps(std::size_t num_qubits,
                              const std::vector<int>& bits)
{
    CAFQA_REQUIRE(bits.size() == num_qubits, "bit vector size mismatch");
    // Parameter layout of make_efficient_su2(n) with defaults:
    // RY layer [0, n), RZ layer [n, 2n), CX ladder, RY [2n, 3n),
    // RZ [3n, 4n). The CX ladder maps |b'> to the prefix-XOR of b', so
    // the first RY layer must prepare the prefix-difference of the
    // target bits; all other layers stay at identity.
    std::vector<int> steps(4 * num_qubits, 0);
    int previous = 0;
    for (std::size_t q = 0; q < num_qubits; ++q) {
        const int diff = bits[q] ^ previous;
        steps[q] = 2 * diff; // RY(pi) flips the qubit
        previous = bits[q];
    }
    return steps;
}

} // namespace cafqa
