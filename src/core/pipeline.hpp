/**
 * @file
 * The CAFQA pipeline facade — the paper's full Fig. 4 flow behind one
 * object:
 *
 *   PipelineConfig config{.ansatz = ..., .objective = ...};
 *   CafqaPipeline pipeline(std::move(config));
 *   pipeline.run_clifford_search();        // discrete stabilizer stage
 *   pipeline.run_t_boost(2);               // optional Clifford + kT
 *   pipeline.run_vqa_tune();               // continuous SPSA stage
 *
 * Each stage consumes the best initialization produced so far; stages
 * are idempotent (a second call returns the cached result). Every
 * backend is resolved through the string-keyed registry
 * (`core/backend_registry.hpp`) and every search strategy through the
 * optimizer registry (`opt/optimizer_registry.hpp`) — set
 * `PipelineConfig::search_optimizer`/`tuner_optimizer` to swap the
 * discrete search or the continuous tuner without touching any other
 * code, and `PipelineConfig::stopping` for uniform early exits
 * (target value such as chemical accuracy, wall clock, patience).
 * Candidate evaluation in block-generated phases is batched across a
 * thread pool with per-worker backend clones. Observers receive
 * begin/progress/end events per stage, which is how the bench harness
 * collects its traces.
 *
 * Concurrency contract: a `CafqaPipeline` is THREAD-CONFINED — drive
 * it from one thread. It deliberately owns no mutex of its own (the
 * `lint_invariants` naked-mutex rule would flag one anyway): all of
 * its parallelism lives behind `ThreadPool::parallel_for`, whose
 * internals carry clang thread-safety annotations
 * (`common/thread_safety.hpp`), and observer callbacks fire on the
 * calling thread in deterministic order. Run CONCURRENT pipelines by
 * giving each its own object — the shared registries and the shared()
 * pool they touch are internally synchronized.
 */
#ifndef CAFQA_CORE_PIPELINE_HPP
#define CAFQA_CORE_PIPELINE_HPP

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "circuit/circuit.hpp"
#include "common/thread_pool.hpp"
#include "core/backend_registry.hpp"
#include "core/caching_backend.hpp"
#include "core/cafqa_driver.hpp"
#include "core/objective.hpp"
#include "core/vqa_tuner.hpp"
#include "opt/optimizer_registry.hpp"

namespace cafqa {

/** One observer notification. */
struct PipelineEvent
{
    enum class Kind {
        /** A stage started. */
        StageBegin,
        /** One objective evaluation completed (`evaluation`,
         *  `best_value` filled). */
        Progress,
        /** A stage finished (`best_value` holds its final best). */
        StageEnd,
    };

    Kind event = Kind::Progress;
    /** "clifford_search", "t_boost" or "vqa_tune". */
    std::string_view stage;
    /** 1-based evaluation count within the stage (Progress only). */
    std::size_t evaluation = 0;
    /** Best objective value seen so far in the stage. */
    double best_value = 0.0;
    /** Memoizing-cache counters of the stage's backend — non-null only
     *  on StageEnd when `PipelineConfig::cache` was enabled. Valid for
     *  the duration of the observer call. */
    const CacheStats* cache = nullptr;
    /** Stage wall milliseconds (StageEnd only) — the same measurement
     *  the telemetry `cafqa_stage_ms{stage=...}` histogram records, so
     *  observers see the stage timing whether or not telemetry
     *  recording is enabled. */
    double stage_ms = 0.0;
};

/** Observer callback; invoked synchronously from the running stage. */
using PipelineObserver = std::function<void(const PipelineEvent&)>;

/** Everything the pipeline needs up front. */
struct PipelineConfig
{
    /** The parameterized (Clifford) ansatz circuit. */
    Circuit ansatz;
    /** Hamiltonian + constraint penalties. */
    VqaObjective objective;
    /** Discrete-search budget (warm-up, iterations, seeds, ...). */
    CafqaOptions search;
    /** Continuous-stage controls (SPSA budget, noise, backend kind). */
    VqaTunerOptions tuner;
    /** Worker threads for batched candidate evaluation; 0 uses the
     *  process-wide shared pool (sized to the hardware). */
    std::size_t threads = 0;
    /** Registry kind of the discrete search backend. */
    std::string search_backend = "clifford";
    /** Discrete search strategy (any optimizer-registry kind that
     *  minimizes over a `DiscreteSpace`); "bayes" reproduces the
     *  paper. The stage budget (`search.warmup + search.iterations`)
     *  and `search.seed` apply to every strategy. Note: the default
     *  strategy's algorithm knobs live in `search.bayes` (this config's
     *  own `bayes` field is replaced by it); the other option fields
     *  (`anneal`, `random`, ...) are forwarded untouched. */
    OptimizerConfig search_optimizer;
    /** Continuous tuning strategy (any optimizer-registry kind that
     *  minimizes from an `x0`); "spsa" reproduces the paper. As above,
     *  the default strategy's knobs live in `tuner.spsa` (this config's
     *  own `spsa` field is replaced by it); `nelder_mead` etc. are
     *  forwarded untouched. */
    OptimizerConfig tuner_optimizer = optimizer_config("spsa");
    /** Uniform stopping criteria applied to every stage: target-value
     *  early exit (e.g. exact energy + chemical accuracy), wall-clock
     *  budget, patience. A zero `max_evaluations` defers to the stage
     *  budgets above. */
    StoppingCriteria stopping;
    /** Memoizing evaluation cache (`core/caching_backend.hpp`). When
     *  `cache.enabled`, every stage backend — discrete search, T-boost
     *  rounds, continuous tuner — is wrapped so re-visited points skip
     *  state preparation; per-stage `CacheStats` arrive on the
     *  observer's StageEnd events. With the default
     *  `cache.unique_budget == false` the cache is a pure memoizer and
     *  results are bit-identical to the uncached run; setting
     *  `unique_budget` additionally makes `stopping.max_evaluations`
     *  count unique points only. */
    CacheOptions cache;
    /**
     * Cross-run shared evaluation cache (the job server's process-wide
     * cache). When set, every stage backend is wrapped over this cache
     * — config-hash-salted keys keep distinct circuits/kinds from
     * aliasing — instead of a per-stage fresh one. Results stay
     * bit-identical to an uncached run for deterministic backends (the
     * cache is a pure memoizer); a *stochastic* backend ("sampled")
     * would replay the first job's frozen shot noise into later jobs.
     * StageEnd cache stats then report the shared cache's global
     * counters.
     */
    std::shared_ptr<EvaluationCache> shared_cache;
};

/**
 * Facade over the three CAFQA stages. Construct once per problem; run
 * the stages in order (later stages auto-run the Clifford search if it
 * has not happened yet).
 */
class CafqaPipeline
{
  public:
    explicit CafqaPipeline(PipelineConfig config);
    ~CafqaPipeline();

    CafqaPipeline(const CafqaPipeline&) = delete;
    CafqaPipeline& operator=(const CafqaPipeline&) = delete;

    /** Install (or clear) the stage observer. */
    void set_observer(PipelineObserver observer);

    /**
     * Stage 1 (red box of Fig. 4): Bayesian optimization over the
     * discrete Clifford space, warm-up fanned out across the thread
     * pool. Idempotent.
     */
    const CafqaResult& run_clifford_search();

    /**
     * Optional stage 1b (Section 8): greedily insert up to
     * `max_t_gates` T gates, re-searching Clifford parameters with the
     * exact branch backend per candidate slot. Runs stage 1 first if
     * needed. Idempotent (the first call's `max_t_gates` wins).
     */
    const TBoostResult& run_t_boost(std::size_t max_t_gates);

    /**
     * Stage 2 (blue box of Fig. 4): continuous SPSA tuning on the
     * backend selected by the tuner options, starting from the best
     * initialization produced by the earlier stages (runs stage 1 first
     * if needed). Idempotent.
     */
    const VqaTuneResult& run_vqa_tune();

    /** Stage 2 from an explicit initialization (no discrete stage
     *  required); tunes over the current best circuit. Unlike the
     *  no-argument overload this is NOT idempotent: a second call
     *  throws rather than silently ignoring the new initialization —
     *  use one pipeline per initialization to compare starts. */
    const VqaTuneResult& run_vqa_tune(const std::vector<double>& initial);

    // ---- Current best across the stages run so far. ----

    /** Quarter-turn assignment of the best discrete point found. */
    const std::vector<int>& best_steps() const;
    /** Bare Hamiltonian energy at the best discrete point. */
    double best_energy() const;
    /** The circuit the best discrete point lives on (the ansatz, or the
     *  T-boosted circuit once a T gate was accepted). */
    const Circuit& best_circuit() const;
    /** Radian parameters equivalent to `best_steps()` — the VQA
     *  initialization. */
    std::vector<double> initial_params() const;

    // ---- Per-stage results (throw if the stage has not run). ----

    bool clifford_search_done() const { return clifford_.has_value(); }
    bool t_boost_done() const { return boost_.has_value(); }
    bool vqa_tune_done() const { return tuned_.has_value(); }

    const CafqaResult& clifford_result() const;
    const TBoostResult& t_boost_result() const;
    const VqaTuneResult& tune_result() const;

    const PipelineConfig& config() const { return config_; }

  private:
    void emit(PipelineEvent::Kind kind, std::string_view stage,
              std::size_t evaluation, double best_value,
              const CacheStats* cache = nullptr,
              double stage_ms = 0.0) const;

    /** Stage backend config with the pipeline's cache block applied. */
    BackendConfig stage_backend_config(std::string kind,
                                       Circuit ansatz) const;

    ThreadPool& pool();

    /** Objective values for a block of step candidates, fanned out over
     *  the pool with per-worker clones of `prototype`. */
    std::vector<double>
    batch_objective(const DiscreteBackend& prototype,
                    const std::vector<std::vector<int>>& candidates);

    /** One discrete search over `space` on `backend` with the
     *  configured strategy (shared by the Clifford stage and every
     *  T-boost round). */
    OptimizeOutcome discrete_search(DiscreteBackend& backend,
                                    const DiscreteSpace& space,
                                    const CafqaOptions& options,
                                    std::string_view stage);

    PipelineConfig config_;
    PipelineObserver observer_;
    std::vector<PauliSum> observables_;
    std::unique_ptr<ThreadPool> own_pool_;

    std::optional<CafqaResult> clifford_;
    std::optional<TBoostResult> boost_;
    std::optional<VqaTuneResult> tuned_;
};

} // namespace cafqa

#endif // CAFQA_CORE_PIPELINE_HPP
