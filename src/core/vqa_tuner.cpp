#include "core/vqa_tuner.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/evaluator.hpp"

namespace cafqa {

VqaTuneResult
tune_vqa(const Circuit& ansatz, const VqaObjective& objective,
         const std::vector<double>& initial_params,
         const VqaTunerOptions& options)
{
    CAFQA_REQUIRE(initial_params.size() == ansatz.num_params(),
                  "initial parameter count mismatch");

    std::unique_ptr<ExpectationBackend> backend;
    if (options.noise.enabled()) {
        backend = std::make_unique<NoisyEvaluator>(ansatz, options.noise);
    } else {
        backend = std::make_unique<IdealEvaluator>(ansatz);
    }

    auto objective_fn = [&](const std::vector<double>& params) {
        backend->prepare(params);
        return objective.evaluate(*backend);
    };

    SpsaOptions spsa = options.spsa;
    spsa.iterations = options.iterations;
    spsa.seed = options.seed;
    const SpsaResult run = spsa_minimize(objective_fn, initial_params, spsa);

    VqaTuneResult result;
    result.trace.reserve(run.trace.size());
    for (const auto& point : run.trace) {
        result.trace.push_back(point.value);
    }
    result.final_params = run.x;
    result.final_value = run.f;
    return result;
}

std::size_t
iterations_to_converge(const std::vector<double>& trace, double tolerance)
{
    if (trace.empty()) {
        return 0;
    }
    const double best = *std::min_element(trace.begin(), trace.end());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (trace[i] <= best + tolerance) {
            return i + 1;
        }
    }
    return trace.size();
}

} // namespace cafqa
