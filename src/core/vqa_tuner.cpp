#include "core/vqa_tuner.hpp"

#include <algorithm>

#include "core/pipeline.hpp"

namespace cafqa {

VqaTuneResult
tune_vqa(const Circuit& ansatz, const VqaObjective& objective,
         const std::vector<double>& initial_params,
         const VqaTunerOptions& options)
{
    PipelineConfig config;
    config.ansatz = ansatz;
    config.objective = objective;
    config.tuner = options;
    CafqaPipeline pipeline(std::move(config));
    return pipeline.run_vqa_tune(initial_params);
}

std::size_t
iterations_to_converge(const std::vector<double>& trace, double tolerance)
{
    if (trace.empty()) {
        return 0;
    }
    const double best = *std::min_element(trace.begin(), trace.end());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (trace[i] <= best + tolerance) {
            // trace[0] is the start point: converging there took 0 steps.
            return i;
        }
    }
    return trace.size();
}

} // namespace cafqa
