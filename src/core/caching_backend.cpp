#include "core/caching_backend.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/text.hpp"

namespace cafqa {

namespace {

inline std::int64_t
bits_of(double value)
{
    // Canonicalize -0.0 so it shares the entry of +0.0.
    if (value == 0.0) {
        value = 0.0;
    }
    return std::bit_cast<std::int64_t>(value);
}

/** Key prefix of a discrete point: the steps verbatim, preceded by the
 *  configuration salt when the cache is shared across configurations. */
EvaluationCache::Key
discrete_prefix(const std::vector<int>& steps, std::uint64_t salt)
{
    EvaluationCache::Key key;
    key.reserve(steps.size() + 2);
    if (salt != 0) {
        key.push_back(static_cast<std::int64_t>(salt));
    }
    for (const int s : steps) {
        key.push_back(s);
    }
    return key;
}

/** Key prefix of a continuous point: params quantized to `resolution`
 *  (`quantize_coordinate` is shared with the unique-budget accounting
 *  so the two identities agree), preceded by the configuration salt
 *  when shared. */
EvaluationCache::Key
continuous_prefix(const std::vector<double>& params, double resolution,
                  std::uint64_t salt)
{
    EvaluationCache::Key key;
    key.reserve(params.size() + 2);
    if (salt != 0) {
        key.push_back(static_cast<std::int64_t>(salt));
    }
    for (const double p : params) {
        key.push_back(quantize_coordinate(p, resolution));
    }
    return key;
}

} // namespace

std::size_t
observable_hash(const PauliSum& op)
{
    std::size_t h = hash_mix(0x243f6a8885a308d3ull, op.num_qubits());
    for (const PauliTerm& term : op.terms()) {
        h = hash_mix(h, static_cast<std::uint64_t>(
                            bits_of(term.coefficient.real())));
        h = hash_mix(h, static_cast<std::uint64_t>(
                            bits_of(term.coefficient.imag())));
        h = hash_mix(h, term.string.letters_hash());
        h = hash_mix(h, term.string.phase_exponent());
    }
    return h;
}

// ---------------------------------------------------------------------------
// EvaluationCache

std::string
CacheStats::to_json() const
{
    std::string out = "{";
    const auto field = [&out](const char* name, const std::string& value) {
        if (out.size() > 1) {
            out += ",";
        }
        out += json_quote(name) + ":" + value;
    };
    field("hits", std::to_string(hits));
    field("misses", std::to_string(misses));
    field("evictions", std::to_string(evictions));
    field("entries", std::to_string(entries));
    field("bytes", std::to_string(bytes));
    field("preparations", std::to_string(preparations));
    field("hit_rate", format_real(hit_rate()));
    out += "}";
    return out;
}

EvaluationCache::EvaluationCache(const CacheOptions& options)
    : options_(options), capacity_(options.capacity),
      // Registered here, with no lock held; the per-access bumps below
      // run lock-free under the shard locks.
      hits_metric_(telemetry::MetricsRegistry::instance().counter(
          "cafqa_cache_hits_total", {},
          "Evaluation-cache lookups answered from the cache")),
      misses_metric_(telemetry::MetricsRegistry::instance().counter(
          "cafqa_cache_misses_total", {},
          "Evaluation-cache lookups that fell through to the backend")),
      evictions_metric_(telemetry::MetricsRegistry::instance().counter(
          "cafqa_cache_evictions_total", {},
          "Evaluation-cache entries dropped by the LRU bound")),
      preparations_metric_(telemetry::MetricsRegistry::instance().counter(
          "cafqa_cache_preparations_total", {},
          "State preparations wrapped backends actually performed"))
{
    CAFQA_REQUIRE(options.capacity >= 1,
                  "cache capacity must be at least 1 entry");
    CAFQA_REQUIRE(options.shards >= 1, "cache needs at least one shard");
    // No more shards than capacity, so every shard can hold an entry.
    const std::size_t shards = std::min(options.shards, options.capacity);
    per_shard_capacity_ = (capacity_ + shards - 1) / shards;
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        shards_.push_back(std::make_unique<Shard>());
    }
}

std::size_t
EvaluationCache::hash_key(const Key& key)
{
    std::size_t h = kHashSeed;
    for (const std::int64_t word : key) {
        h = hash_mix(h, static_cast<std::uint64_t>(word));
    }
    return h;
}

std::optional<double>
EvaluationCache::lookup(const Key& key)
{
    const std::size_t hash = hash_key(key);
    Shard& shard = *shards_[hash % shards_.size()];
    MutexLock lock(shard.shard_mutex);
    const auto [begin, end] = shard.index.equal_range(hash);
    for (auto it = begin; it != end; ++it) {
        if (it->second->key == key) {
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            ++shard.hits;
            hits_metric_.add();
            return it->second->value;
        }
    }
    ++shard.misses;
    misses_metric_.add();
    return std::nullopt;
}

void
EvaluationCache::insert(const Key& key, double value)
{
    const std::size_t hash = hash_key(key);
    Shard& shard = *shards_[hash % shards_.size()];
    const std::size_t entry_bytes =
        key.size() * sizeof(Key::value_type) + sizeof(double);
    MutexLock lock(shard.shard_mutex);
    const auto [begin, end] = shard.index.equal_range(hash);
    for (auto it = begin; it != end; ++it) {
        if (it->second->key == key) {
            // Concurrent clones may race to insert the same point;
            // refresh recency and keep the materialized value.
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            return;
        }
    }
    shard.lru.push_front(Entry{key, value});
    shard.index.emplace(hash, shard.lru.begin());
    shard.bytes += entry_bytes;
    while (shard.lru.size() > per_shard_capacity_) {
        const Entry& victim = shard.lru.back();
        const std::size_t victim_hash = hash_key(victim.key);
        const auto [vbegin, vend] = shard.index.equal_range(victim_hash);
        for (auto it = vbegin; it != vend; ++it) {
            if (it->second == std::prev(shard.lru.end())) {
                shard.index.erase(it);
                break;
            }
        }
        shard.bytes -= victim.key.size() * sizeof(Key::value_type) +
                       sizeof(double);
        shard.lru.pop_back();
        ++shard.evictions;
        evictions_metric_.add();
    }
}

CacheStats
EvaluationCache::stats() const
{
    CacheStats total;
    for (const auto& shard : shards_) {
        MutexLock lock(shard->shard_mutex);
        total.hits += shard->hits;
        total.misses += shard->misses;
        total.evictions += shard->evictions;
        total.entries += shard->lru.size();
        total.bytes += shard->bytes;
    }
    total.preparations = preparations_.load();
    return total;
}

// ---------------------------------------------------------------------------
// CachingDiscreteBackend

CachingDiscreteBackend::CachingDiscreteBackend(
    std::unique_ptr<DiscreteBackend> inner, const CacheOptions& options)
    : CachingDiscreteBackend(std::move(inner),
                             std::make_shared<EvaluationCache>(options), 0)
{
}

CachingDiscreteBackend::CachingDiscreteBackend(
    std::unique_ptr<DiscreteBackend> inner,
    std::shared_ptr<EvaluationCache> cache, std::uint64_t salt)
    : inner_(std::move(inner)), cache_(std::move(cache)), salt_(salt)
{
    CAFQA_REQUIRE(inner_ != nullptr, "cannot cache a null backend");
    CAFQA_REQUIRE(cache_ != nullptr, "cannot share a null cache");
    kind_ = "cached:" + std::string(inner_->kind());
}

void
CachingDiscreteBackend::prepare(const std::vector<int>& steps)
{
    point_ = steps;
    key_prefix_ = discrete_prefix(steps, salt_);
    has_point_ = true;
    inner_prepared_ = false;
}

void
CachingDiscreteBackend::ensure_prepared() const
{
    if (!inner_prepared_) {
        inner_->prepare(point_);
        cache_->count_preparation();
        inner_prepared_ = true;
    }
}

double
CachingDiscreteBackend::expectation(const PauliSum& op) const
{
    if (!has_point_) {
        // Propagate the inner backend's "not prepared" contract.
        return inner_->expectation(op);
    }
    EvaluationCache::Key key = key_prefix_;
    key.push_back(static_cast<std::int64_t>(observable_hash(op)));
    if (const std::optional<double> hit = cache_->lookup(key)) {
        return *hit;
    }
    ensure_prepared();
    const double value = inner_->expectation(op);
    cache_->insert(key, value);
    return value;
}

std::vector<double>
CachingDiscreteBackend::expectations(std::span<const PauliSum> ops) const
{
    if (!has_point_) {
        return inner_->expectations(ops);
    }
    // One scratch key probes every observable; only misses copy it (the
    // full-hit path — the hot one — allocates nothing per op).
    std::vector<double> values(ops.size());
    std::vector<std::size_t> missing;
    std::vector<EvaluationCache::Key> miss_keys;
    EvaluationCache::Key key = key_prefix_;
    key.push_back(0);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        key.back() = static_cast<std::int64_t>(observable_hash(ops[i]));
        if (const std::optional<double> hit = cache_->lookup(key)) {
            values[i] = *hit;
        } else {
            missing.push_back(i);
            miss_keys.push_back(key);
        }
    }
    if (!missing.empty()) {
        // One preparation amortized across every missing observable,
        // exactly like the wrapped backend's own batched surface.
        ensure_prepared();
        for (std::size_t m = 0; m < missing.size(); ++m) {
            values[missing[m]] = inner_->expectation(ops[missing[m]]);
            cache_->insert(miss_keys[m], values[missing[m]]);
        }
    }
    return values;
}

std::unique_ptr<Backend>
CachingDiscreteBackend::clone() const
{
    auto copy = std::unique_ptr<CachingDiscreteBackend>(
        new CachingDiscreteBackend(inner_->clone_discrete(), cache_,
                                   salt_));
    copy->point_ = point_;
    copy->key_prefix_ = key_prefix_;
    copy->has_point_ = has_point_;
    // The fresh inner clone starts unprepared regardless of *this.
    copy->inner_prepared_ = false;
    return copy;
}

// ---------------------------------------------------------------------------
// CachingContinuousBackend

CachingContinuousBackend::CachingContinuousBackend(
    std::unique_ptr<ContinuousBackend> inner, const CacheOptions& options)
    : CachingContinuousBackend(std::move(inner),
                               std::make_shared<EvaluationCache>(options),
                               options.resolution, 0)
{
}

CachingContinuousBackend::CachingContinuousBackend(
    std::unique_ptr<ContinuousBackend> inner,
    std::shared_ptr<EvaluationCache> cache, std::uint64_t salt)
    : CachingContinuousBackend(
          std::move(inner), cache,
          cache ? cache->options().resolution : 0.0, salt)
{
}

CachingContinuousBackend::CachingContinuousBackend(
    std::unique_ptr<ContinuousBackend> inner,
    std::shared_ptr<EvaluationCache> cache, double resolution,
    std::uint64_t salt)
    : inner_(std::move(inner)),
      cache_(std::move(cache)),
      salt_(salt),
      resolution_(resolution)
{
    CAFQA_REQUIRE(inner_ != nullptr, "cannot cache a null backend");
    CAFQA_REQUIRE(cache_ != nullptr, "cannot share a null cache");
    CAFQA_REQUIRE(resolution_ > 0.0,
                  "cache quantization resolution must be positive");
    kind_ = "cached:" + std::string(inner_->kind());
}

void
CachingContinuousBackend::prepare(const std::vector<double>& params)
{
    point_ = params;
    key_prefix_ = continuous_prefix(params, resolution_, salt_);
    has_point_ = true;
    inner_prepared_ = false;
}

void
CachingContinuousBackend::ensure_prepared() const
{
    if (!inner_prepared_) {
        inner_->prepare(point_);
        cache_->count_preparation();
        inner_prepared_ = true;
    }
}

double
CachingContinuousBackend::expectation(const PauliSum& op) const
{
    if (!has_point_) {
        return inner_->expectation(op);
    }
    EvaluationCache::Key key = key_prefix_;
    key.push_back(static_cast<std::int64_t>(observable_hash(op)));
    if (const std::optional<double> hit = cache_->lookup(key)) {
        return *hit;
    }
    ensure_prepared();
    const double value = inner_->expectation(op);
    cache_->insert(key, value);
    return value;
}

std::vector<double>
CachingContinuousBackend::expectations(std::span<const PauliSum> ops) const
{
    if (!has_point_) {
        return inner_->expectations(ops);
    }
    // Scratch-key probing as in the discrete wrapper: the full-hit path
    // allocates nothing per op.
    std::vector<double> values(ops.size());
    std::vector<std::size_t> missing;
    std::vector<EvaluationCache::Key> miss_keys;
    EvaluationCache::Key key = key_prefix_;
    key.push_back(0);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        key.back() = static_cast<std::int64_t>(observable_hash(ops[i]));
        if (const std::optional<double> hit = cache_->lookup(key)) {
            values[i] = *hit;
        } else {
            missing.push_back(i);
            miss_keys.push_back(key);
        }
    }
    if (!missing.empty()) {
        ensure_prepared();
        for (std::size_t m = 0; m < missing.size(); ++m) {
            values[missing[m]] = inner_->expectation(ops[missing[m]]);
            cache_->insert(miss_keys[m], values[missing[m]]);
        }
    }
    return values;
}

std::unique_ptr<Backend>
CachingContinuousBackend::clone() const
{
    auto copy = std::unique_ptr<CachingContinuousBackend>(
        new CachingContinuousBackend(inner_->clone_continuous(), cache_,
                                     resolution_, salt_));
    copy->point_ = point_;
    copy->key_prefix_ = key_prefix_;
    copy->has_point_ = has_point_;
    copy->inner_prepared_ = false;
    return copy;
}

// ---------------------------------------------------------------------------
// Composition helpers

std::unique_ptr<Backend>
wrap_with_cache(std::unique_ptr<Backend> backend, const CacheOptions& options)
{
    CAFQA_REQUIRE(backend != nullptr, "cannot cache a null backend");
    if (auto* discrete = dynamic_cast<DiscreteBackend*>(backend.get())) {
        backend.release();
        return std::make_unique<CachingDiscreteBackend>(
            std::unique_ptr<DiscreteBackend>(discrete), options);
    }
    if (auto* continuous = dynamic_cast<ContinuousBackend*>(backend.get())) {
        backend.release();
        return std::make_unique<CachingContinuousBackend>(
            std::unique_ptr<ContinuousBackend>(continuous), options);
    }
    CAFQA_REQUIRE(false, "backend kind \"" + std::string(backend->kind()) +
                             "\" is neither discrete nor continuous; "
                             "cannot wrap it in a cache");
    return nullptr; // unreachable
}

std::unique_ptr<Backend>
wrap_with_cache(std::unique_ptr<Backend> backend,
                std::shared_ptr<EvaluationCache> cache, std::uint64_t salt)
{
    CAFQA_REQUIRE(backend != nullptr, "cannot cache a null backend");
    if (auto* discrete = dynamic_cast<DiscreteBackend*>(backend.get())) {
        backend.release();
        return std::make_unique<CachingDiscreteBackend>(
            std::unique_ptr<DiscreteBackend>(discrete), std::move(cache),
            salt);
    }
    if (auto* continuous = dynamic_cast<ContinuousBackend*>(backend.get())) {
        backend.release();
        return std::make_unique<CachingContinuousBackend>(
            std::unique_ptr<ContinuousBackend>(continuous),
            std::move(cache), salt);
    }
    CAFQA_REQUIRE(false, "backend kind \"" + std::string(backend->kind()) +
                             "\" is neither discrete nor continuous; "
                             "cannot wrap it in a cache");
    return nullptr; // unreachable
}

std::optional<CacheStats>
cache_stats_of(const Backend& backend)
{
    if (const auto* discrete =
            dynamic_cast<const CachingDiscreteBackend*>(&backend)) {
        return discrete->cache_stats();
    }
    if (const auto* continuous =
            dynamic_cast<const CachingContinuousBackend*>(&backend)) {
        return continuous->cache_stats();
    }
    return std::nullopt;
}

} // namespace cafqa
