#include "core/hartree_fock_baseline.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace cafqa {

double
basis_state_expectation(const PauliSum& op, const std::vector<int>& bits)
{
    CAFQA_REQUIRE(op.num_qubits() == bits.size(),
                  "bit vector length must match qubit count");
    // Pack bits into words aligned with the PauliString layout.
    std::vector<std::uint64_t> packed((bits.size() + 63) / 64, 0);
    for (std::size_t q = 0; q < bits.size(); ++q) {
        if (bits[q] != 0) {
            packed[q / 64] |= std::uint64_t{1} << (q % 64);
        }
    }

    double total = 0.0;
    for (const auto& term : op.terms()) {
        bool has_x = false;
        for (const auto w : term.string.x_words()) {
            has_x = has_x || (w != 0);
        }
        if (has_x) {
            continue; // <b|P|b> = 0 for off-diagonal Paulis
        }
        std::size_t parity = 0;
        const auto& zw = term.string.z_words();
        for (std::size_t w = 0; w < zw.size(); ++w) {
            parity += static_cast<std::size_t>(
                std::popcount(zw[w] & packed[w]));
        }
        const double sign = (parity & 1) ? -1.0 : 1.0;
        total += term.coefficient.real() * sign;
    }
    return total;
}

BestBitstring
best_constrained_bitstring(
    const PauliSum& hamiltonian,
    const std::vector<std::pair<PauliSum, double>>& constraints,
    std::size_t num_qubits, double tolerance)
{
    CAFQA_REQUIRE(num_qubits <= 24,
                  "exhaustive bitstring search limited to 24 qubits");
    CAFQA_REQUIRE(hamiltonian.num_qubits() == num_qubits,
                  "Hamiltonian qubit count mismatch");

    BestBitstring best;
    best.energy = std::numeric_limits<double>::infinity();
    std::vector<int> bits(num_qubits, 0);

    const std::uint64_t limit = std::uint64_t{1} << num_qubits;
    for (std::uint64_t code = 0; code < limit; ++code) {
        for (std::size_t q = 0; q < num_qubits; ++q) {
            bits[q] = static_cast<int>((code >> q) & 1);
        }
        bool feasible = true;
        for (const auto& [op, target] : constraints) {
            if (std::abs(basis_state_expectation(op, bits) - target) >
                tolerance) {
                feasible = false;
                break;
            }
        }
        if (!feasible) {
            continue;
        }
        const double energy = basis_state_expectation(hamiltonian, bits);
        if (energy < best.energy) {
            best.energy = energy;
            best.bits = bits;
        }
    }
    CAFQA_REQUIRE(std::isfinite(best.energy),
                  "no basis state satisfies the constraints");
    return best;
}

} // namespace cafqa
