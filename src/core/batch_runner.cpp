#include "core/batch_runner.hpp"

#include <chrono>
#include <cmath>

#include "common/thread_safety.hpp"

#include "common/error.hpp"
#include "common/text.hpp"
#include "common/thread_pool.hpp"
#include "telemetry/metrics.hpp"

namespace cafqa {

namespace {

/** Shortest round-trip decimal; non-finite values become JSON null. */
std::string
json_number(double value)
{
    return std::isfinite(value) ? format_real(value) : "null";
}

} // namespace

std::string
RunRecord::to_json() const
{
    std::string out = "{";
    const auto field = [&out](const std::string& name,
                              const std::string& value) {
        if (out.size() > 1) {
            out += ",";
        }
        out += json_quote(name) + ":" + value;
    };
    field("problem", json_quote(problem_key.empty() ? spec.problem
                                                    : problem_key));
    if (!spec.label.empty()) {
        field("label", json_quote(spec.label));
    }
    field("name", json_quote(problem_name));
    field("qubits", std::to_string(num_qubits));
    field("ok", ok ? "true" : "false");
    if (cancelled) {
        // Emitted only when set: uncancelled records keep the exact
        // byte layout of pre-cancellation builds (the server's
        // bit-identical-to-solo contract).
        field("cancelled", "true");
    }
    if (!ok) {
        field("error", json_quote(error));
    } else {
        field("best_objective", json_number(best_objective));
        field("cafqa_energy", json_number(cafqa_energy));
        if (tuned_value.has_value()) {
            field("tuned_value", json_number(*tuned_value));
        }
        if (reference_energy.has_value()) {
            field("reference_energy", json_number(*reference_energy));
        }
        if (exact_energy.has_value()) {
            field("exact_energy", json_number(*exact_energy));
        }
        field("evals_to_best", std::to_string(evaluations_to_best));
        field("evaluations", std::to_string(evaluations));
        if (evals_to_accuracy.has_value()) {
            field("evals_to_accuracy",
                  std::to_string(*evals_to_accuracy));
        }
        if (!best_steps.empty()) {
            std::string steps;
            for (const int step : best_steps) {
                if (!steps.empty()) {
                    steps += ',';
                }
                steps += std::to_string(step);
            }
            field("best_steps", "[" + steps + "]");
        }
        field("t_gates", std::to_string(t_gates));
        field("stop_reason", json_quote(stop_reason));
        if (!tune_stop_reason.empty()) {
            field("tune_stop_reason", json_quote(tune_stop_reason));
        }
    }
    if (!metrics.empty()) {
        std::string nested;
        for (const auto& [name, value] : metrics) {
            if (!nested.empty()) {
                nested += ",";
            }
            nested += json_quote(name) + ":" + json_number(value);
        }
        field("metrics", "{" + nested + "}");
    }
    field("wall_ms", json_number(wall_ms));
    field("spec", json_quote(spec.to_string()));
    out += "}";
    return out;
}

RunRecord
execute_run_spec(const RunSpec& spec, PipelineObserver observer)
{
    RunContext context;
    context.observer = std::move(observer);
    return execute_run_spec(spec, context);
}

RunRecord
execute_run_spec(const RunSpec& spec, const problems::Problem& problem,
                 PipelineObserver observer)
{
    RunContext context;
    context.observer = std::move(observer);
    return execute_run_spec(spec, problem, context);
}

RunRecord
execute_run_spec(const RunSpec& spec, const RunContext& context)
{
    spec.validate();
    const problems::Problem problem = problems::make_problem(spec.problem);
    return execute_run_spec(spec, problem, context);
}

RunRecord
execute_run_spec(const RunSpec& spec, const problems::Problem& problem,
                 const RunContext& context)
{
    // Fetched at entry, before any work (and with no lock held — run
    // execution never starts under a named mutex).
    auto& registry = telemetry::MetricsRegistry::instance();
    telemetry::Counter& runs_metric = registry.counter(
        "cafqa_runs_total", {}, "RunSpec executions started");
    telemetry::Histogram& run_wall_metric = registry.histogram(
        "cafqa_run_wall_ms", {},
        "Wall milliseconds per RunSpec execution");
    runs_metric.add();

    const auto start = std::chrono::steady_clock::now();

    RunRecord record;
    record.spec = spec;
    record.problem_key = problem.key;
    record.problem_name = problem.name;
    record.num_qubits = problem.num_qubits;
    record.metrics = problem.metrics;
    record.reference_energy = problem.reference_energy;

    PipelineConfig config = make_pipeline_config(spec, problem);
    config.stopping.cancel = context.cancel;
    config.shared_cache = context.shared_cache;
    CafqaPipeline pipeline(std::move(config));
    if (context.observer) {
        pipeline.set_observer(context.observer);
    }

    // A raised token stops the in-flight stage at its next recorded
    // evaluation (StopReason::Cancelled); later stages are skipped here
    // so a cancelled run never starts new work.
    const auto is_cancelled = [&context] {
        return context.cancel &&
               context.cancel->load(std::memory_order_relaxed);
    };

    pipeline.run_clifford_search();
    if (spec.max_t > 0 && !is_cancelled()) {
        pipeline.run_t_boost(spec.max_t);
        record.t_gates = pipeline.t_boost_result().t_positions.size();
    }
    if (spec.tune > 0 && !is_cancelled()) {
        record.tuned_value = pipeline.run_vqa_tune().final_value;
        record.tune_stop_reason =
            to_string(pipeline.tune_result().stop_reason);
    }

    // Gate on the stage having actually run, not on the spec asking for
    // it: a cancel during the Clifford stage skips run_t_boost, and
    // t_boost_result() would throw — turning a clean best-so-far
    // cancelled record into an error record.
    record.best_objective = pipeline.t_boost_done()
                                ? pipeline.t_boost_result().best_objective
                                : pipeline.clifford_result().best_objective;
    record.cafqa_energy = pipeline.best_energy();
    record.best_steps = pipeline.best_steps();
    record.evaluations = pipeline.clifford_result().history.size();
    record.evaluations_to_best =
        pipeline.clifford_result().evaluations_to_best;
    record.stop_reason =
        to_string(pipeline.clifford_result().stop_reason);
    if (spec.exact && !is_cancelled()) {
        record.exact_energy = problem.exact_energy();
    }
    if (record.exact_energy.has_value()) {
        // Evals-to-chemical-accuracy, read off the recorded best trace
        // after the fact (the search itself is untouched). The trace
        // holds the penalized objective >= the bare energy, so this is
        // a conservative count.
        const double threshold = *record.exact_energy + 1.6e-3;
        const std::vector<double>& trace =
            pipeline.clifford_result().best_trace;
        for (std::size_t i = 0; i < trace.size(); ++i) {
            if (trace[i] <= threshold) {
                record.evals_to_accuracy = i + 1;
                break;
            }
        }
    }
    record.cancelled = is_cancelled();
    record.ok = true;

    record.wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    run_wall_metric.observe(record.wall_ms);
    return record;
}

BatchRunner::BatchRunner(BatchOptions options)
    : options_(options),
      stop_(std::make_shared<std::atomic<bool>>(false))
{
    CAFQA_REQUIRE(options_.run_threads >= 1,
                  "per-run thread count must be at least 1");
}

void
BatchRunner::set_observer(BatchObserver observer)
{
    observer_ = std::move(observer);
}

void
BatchRunner::set_warm_start(WarmStartHook hook)
{
    warm_start_ = std::move(hook);
}

void
BatchRunner::request_stop()
{
    stop_->store(true, std::memory_order_relaxed);
}

bool
BatchRunner::stop_requested() const
{
    return stop_->load(std::memory_order_relaxed);
}

void
BatchRunner::reset_stop()
{
    // A fresh token: runs already cancelled by the old one keep their
    // (raised) flag, future runs observe the new, lowered one.
    stop_ = std::make_shared<std::atomic<bool>>(false);
}

std::vector<RunRecord>
BatchRunner::run(const std::vector<RunSpec>& specs)
{
    std::vector<RunRecord> records(specs.size());
    if (specs.empty()) {
        return records;
    }

    // A dedicated pool when a concurrency bound was asked for, else
    // the process-wide shared pool.
    std::unique_ptr<ThreadPool> own_pool;
    if (options_.concurrency > 0) {
        own_pool = std::make_unique<ThreadPool>(options_.concurrency);
    }
    ThreadPool& pool =
        own_pool ? *own_pool : ThreadPool::shared();

    // Snapshot the token so a concurrent reset_stop re-arms future
    // batches without racing this one.
    const std::shared_ptr<std::atomic<bool>> stop = stop_;

    Mutex observer_mutex{"observer_mutex"};
    pool.parallel_for(specs.size(), [&](std::size_t worker,
                                        std::size_t index) {
        (void)worker;
        RunSpec spec = specs[index];
        if (spec.threads == 0) {
            // The batch fan-out may be running on the shared pool;
            // a nested parallel_for on the same pool would deadlock,
            // so give the run its own (small) pool instead. Thread
            // count never changes results — evaluation batching is
            // trajectory-preserving.
            spec.threads = options_.run_threads;
        }
        if (warm_start_) {
            const std::vector<int> steps =
                warm_start_(index, specs[index], records);
            if (!steps.empty()) {
                spec.warm_start = steps;
            }
        }
        RunContext context;
        context.cancel = stop;
        if (observer_) {
            context.observer = [&, index](const PipelineEvent& event) {
                MutexLock lock(observer_mutex);
                observer_(index, specs[index], event);
            };
        }
        try {
            if (stop->load(std::memory_order_relaxed)) {
                // request_stop before this run started: do not execute
                // it at all (in-flight runs stop via their criteria).
                records[index] = RunRecord{};
                records[index].ok = false;
                records[index].cancelled = true;
                records[index].error = "cancelled before start "
                                       "(BatchRunner::request_stop)";
            } else {
                records[index] = execute_run_spec(spec, context);
            }
        } catch (const std::exception& error) {
            records[index] = RunRecord{};
            records[index].ok = false;
            records[index].error = error.what();
        }
        // Report the spec as submitted, not the thread-count override.
        records[index].spec = specs[index];
    });
    return records;
}

std::string
batch_results_json(const std::vector<RunRecord>& records)
{
    std::size_t failed = 0;
    std::string runs;
    for (const auto& record : records) {
        if (!record.ok) {
            ++failed;
        }
        runs += runs.empty() ? "\n  " : ",\n  ";
        runs += record.to_json();
    }
    std::string out = "{\n \"total\": ";
    out += std::to_string(records.size());
    out += ",\n \"failed\": ";
    out += std::to_string(failed);
    out += ",\n \"runs\": [";
    out += runs;
    out += runs.empty() ? "]" : "\n ]";
    out += "\n}";
    return out;
}

} // namespace cafqa
