#include "core/backend.hpp"

#include "common/error.hpp"

namespace cafqa {

std::vector<double>
Backend::expectations(std::span<const PauliSum> ops) const
{
    std::vector<double> values;
    values.reserve(ops.size());
    for (const PauliSum& op : ops) {
        values.push_back(expectation(op));
    }
    return values;
}

std::vector<double>
DiscreteBackend::expectation_batch(
    const std::vector<std::vector<int>>& candidates, const PauliSum& op)
{
    std::vector<double> values;
    values.reserve(candidates.size());
    for (const auto& steps : candidates) {
        prepare(steps);
        values.push_back(expectation(op));
    }
    return values;
}

std::unique_ptr<DiscreteBackend>
DiscreteBackend::clone_discrete() const
{
    std::unique_ptr<Backend> copy = clone();
    auto* discrete = dynamic_cast<DiscreteBackend*>(copy.get());
    CAFQA_ASSERT(discrete != nullptr,
                 "DiscreteBackend::clone returned a non-discrete backend");
    copy.release();
    return std::unique_ptr<DiscreteBackend>(discrete);
}

std::vector<double>
ContinuousBackend::expectation_batch(
    const std::vector<std::vector<double>>& candidates, const PauliSum& op)
{
    std::vector<double> values;
    values.reserve(candidates.size());
    for (const auto& params : candidates) {
        prepare(params);
        values.push_back(expectation(op));
    }
    return values;
}

std::unique_ptr<ContinuousBackend>
ContinuousBackend::clone_continuous() const
{
    std::unique_ptr<Backend> copy = clone();
    auto* continuous = dynamic_cast<ContinuousBackend*>(copy.get());
    CAFQA_ASSERT(continuous != nullptr,
                 "ContinuousBackend::clone returned a non-continuous "
                 "backend");
    copy.release();
    return std::unique_ptr<ContinuousBackend>(continuous);
}

} // namespace cafqa
