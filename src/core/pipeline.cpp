#include "core/pipeline.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "core/clifford_ansatz.hpp"
#include "telemetry/metrics.hpp"

namespace cafqa {

namespace {

/** The per-stage wall-time histogram (`cafqa_stage_ms{stage=...}`).
 *  Fetched at stage entry — the pipeline is thread-confined and holds
 *  no named lock, so registration is always safe here. */
telemetry::Histogram&
stage_histogram(const char* stage)
{
    return telemetry::MetricsRegistry::instance().histogram(
        "cafqa_stage_ms", {{"stage", stage}},
        "Wall milliseconds per pipeline stage");
}

} // namespace

CafqaPipeline::CafqaPipeline(PipelineConfig config)
    : config_(std::move(config)),
      observables_(config_.objective.gather_observables())
{
    CAFQA_REQUIRE(config_.objective.hamiltonian.num_qubits() ==
                      config_.ansatz.num_qubits(),
                  "Hamiltonian and ansatz qubit counts differ");
}

CafqaPipeline::~CafqaPipeline() = default;

void
CafqaPipeline::set_observer(PipelineObserver observer)
{
    observer_ = std::move(observer);
}

void
CafqaPipeline::emit(PipelineEvent::Kind kind, std::string_view stage,
                    std::size_t evaluation, double best_value,
                    const CacheStats* cache, double stage_ms) const
{
    if (observer_) {
        observer_(PipelineEvent{kind, stage, evaluation, best_value,
                                cache, stage_ms});
    }
}

BackendConfig
CafqaPipeline::stage_backend_config(std::string kind, Circuit ansatz) const
{
    BackendConfig backend_config;
    backend_config.kind = std::move(kind);
    backend_config.ansatz = std::move(ansatz);
    backend_config.cache = config_.cache;
    backend_config.shared_cache = config_.shared_cache;
    return backend_config;
}

ThreadPool&
CafqaPipeline::pool()
{
    if (config_.threads == 0) {
        return ThreadPool::shared();
    }
    if (!own_pool_) {
        own_pool_ = std::make_unique<ThreadPool>(config_.threads);
    }
    return *own_pool_;
}

std::vector<double>
CafqaPipeline::batch_objective(const DiscreteBackend& prototype,
                               const std::vector<std::vector<int>>& candidates)
{
    ThreadPool& workers = pool();
    std::vector<double> values(candidates.size());
    std::vector<std::unique_ptr<DiscreteBackend>> clones(workers.size());
    workers.parallel_for(
        candidates.size(), [&](std::size_t worker, std::size_t index) {
            auto& backend = clones[worker];
            if (!backend) {
                backend = prototype.clone_discrete();
            }
            backend->prepare(candidates[index]);
            values[index] =
                config_.objective.combine(backend->expectations(observables_));
        });
    return values;
}

OptimizeOutcome
CafqaPipeline::discrete_search(DiscreteBackend& backend,
                               const DiscreteSpace& space,
                               const CafqaOptions& options,
                               std::string_view stage)
{
    // The stage budget knobs map onto the configured strategy: "bayes"
    // consumes them as its warm-up/model split (bit-identical to the
    // pre-registry path); every other strategy receives the same total
    // evaluation budget through the stopping criteria.
    OptimizerConfig optimizer_config = config_.search_optimizer;
    if (optimizer_config.seed == 0) {
        optimizer_config.seed = options.seed;
    }
    optimizer_config.bayes = options.bayes;
    optimizer_config.bayes.warmup = options.warmup;
    optimizer_config.bayes.iterations = options.iterations;
    optimizer_config.bayes.seed = options.seed;
    optimizer_config.bayes.stall_limit = options.stall_limit;

    StoppingCriteria criteria = config_.stopping;
    if (criteria.max_evaluations == 0 &&
        optimizer_config.kind != "bayes") {
        // "bayes" runs seed + warmup + iterations evaluations; give the
        // other strategies the same total (their seeds count against
        // the cap).
        criteria.max_evaluations = options.seed_steps.size() +
                                   options.warmup + options.iterations;
    }
    if (config_.cache.enabled && config_.cache.unique_budget) {
        // Re-visits are cache hits, not backend work: charge the budget
        // for unique points only.
        criteria.unique_evaluations = true;
        criteria.unique_resolution = config_.cache.resolution;
    }

    auto objective_fn = [&](const std::vector<int>& steps) {
        backend.prepare(steps);
        return config_.objective.combine(backend.expectations(observables_));
    };

    SearchContext context;
    context.seed_configs = options.seed_steps;
    context.batch = [&](const std::vector<std::vector<int>>& block) {
        return batch_objective(backend, block);
    };
    context.progress = [&](std::size_t evaluation, double best) {
        emit(PipelineEvent::Kind::Progress, stage, evaluation, best);
    };
    context.objective_factory = [this, &backend]() -> DiscreteObjective {
        // One clone()d backend per minted objective: concurrent
        // strategies (portfolio arms) evaluate independently while a
        // memoizing backend's clones share the sharded cache, keeping
        // the race cache-cooperative.
        std::shared_ptr<DiscreteBackend> clone = backend.clone_discrete();
        return [this, clone](const std::vector<int>& steps) {
            clone->prepare(steps);
            return config_.objective.combine(
                clone->expectations(observables_));
        };
    };

    const auto optimizer = make_discrete_optimizer(optimizer_config);
    return optimizer->minimize(objective_fn, space, criteria, context);
}

const CafqaResult&
CafqaPipeline::run_clifford_search()
{
    if (clifford_) {
        return *clifford_;
    }
    emit(PipelineEvent::Kind::StageBegin, "clifford_search", 0, 0.0);
    telemetry::TraceSpan span(stage_histogram("clifford_search"));

    const auto backend = make_discrete_backend(
        stage_backend_config(config_.search_backend, config_.ansatz));

    const OptimizeOutcome search =
        discrete_search(*backend, clifford_search_space(config_.ansatz),
                        config_.search, "clifford_search");

    CafqaResult result;
    result.best_steps = search.best_config;
    result.best_objective = search.best_value;
    result.history = search.history;
    result.best_trace = search.best_trace;
    result.evaluations_to_best = search.evaluations_to_best;
    result.num_parameters = config_.ansatz.num_params();
    result.stop_reason = search.stop_reason;

    backend->prepare(result.best_steps);
    result.best_energy = config_.objective.energy(*backend);
    clifford_ = std::move(result);

    const std::optional<CacheStats> stats = cache_stats_of(*backend);
    emit(PipelineEvent::Kind::StageEnd, "clifford_search",
         clifford_->history.size(), clifford_->best_objective,
         stats ? &*stats : nullptr, span.stop());
    return *clifford_;
}

namespace {

/** Insert a T gate immediately after the rotation with parameter slot
 *  `slot`. */
Circuit
with_t_after_slot(const Circuit& ansatz, std::size_t slot)
{
    Circuit out(ansatz.num_qubits());
    for (const auto& op : ansatz.ops()) {
        out.mutable_ops().push_back(op);
        if (is_rotation(op.kind) && op.param >= 0 &&
            static_cast<std::size_t>(op.param) == slot) {
            out.mutable_ops().push_back(
                GateOp{GateKind::T, op.q0, 0, -1, 0.0});
        }
    }
    return out;
}

/** Reduced search budget of a T placement round (the paper limits this
 *  exploration to "under 10 T gates" with careful cost control). */
CafqaOptions
t_round_options(const CafqaOptions& options,
                const std::vector<int>& incumbent_steps)
{
    CafqaOptions reduced = options;
    reduced.warmup = std::max<std::size_t>(options.warmup / 4, 16);
    reduced.iterations = std::max<std::size_t>(options.iterations / 4, 32);
    reduced.seed = options.seed + 101;
    // Prior-inject the incumbent Clifford assignment so a T insertion
    // can only be accepted when it genuinely improves on it.
    reduced.seed_steps = {incumbent_steps};
    reduced.bayes.seed_configs.clear();
    return reduced;
}

} // namespace

const TBoostResult&
CafqaPipeline::run_t_boost(std::size_t max_t_gates)
{
    if (boost_) {
        return *boost_;
    }
    const CafqaResult& base = run_clifford_search();
    emit(PipelineEvent::Kind::StageBegin, "t_boost", 0, 0.0);
    telemetry::TraceSpan span(stage_histogram("t_boost"));

    TBoostResult result;
    result.best_steps = base.best_steps;
    result.best_energy = base.best_energy;
    result.best_objective = base.best_objective;
    result.circuit = config_.ansatz;

    DiscreteSpace space;
    space.cardinalities.assign(config_.ansatz.num_params(), 4);

    CacheStats boost_stats;
    for (std::size_t round = 0; round < max_t_gates; ++round) {
        bool improved = false;
        Circuit best_circuit = result.circuit;
        std::vector<int> best_steps = result.best_steps;
        double round_best = result.best_objective;
        std::size_t best_slot = 0;

        for (std::size_t slot = 0; slot < config_.ansatz.num_params();
             ++slot) {
            const Circuit candidate =
                with_t_after_slot(result.circuit, slot);
            const auto backend = make_discrete_backend(
                stage_backend_config("clifford_t", candidate));
            const OptimizeOutcome search = discrete_search(
                *backend, space,
                t_round_options(config_.search, result.best_steps),
                "t_boost");
            if (const std::optional<CacheStats> stats =
                    config_.shared_cache ? std::optional<CacheStats>{}
                                         : cache_stats_of(*backend)) {
                // Each candidate circuit has its own cache (distinct
                // circuits share no states); the counters sum into a
                // stage total, while the point-in-time gauges
                // (entries/bytes) of these short-lived caches are left
                // 0 — the caches never coexist, so a sum would
                // overstate residency.
                boost_stats.hits += stats->hits;
                boost_stats.misses += stats->misses;
                boost_stats.evictions += stats->evictions;
                boost_stats.preparations += stats->preparations;
            }
            if (search.best_value < round_best - 1e-10) {
                round_best = search.best_value;
                best_circuit = candidate;
                best_steps = search.best_config;
                best_slot = slot;
                improved = true;
            }
        }
        if (!improved) {
            break; // no single T insertion helps further
        }
        result.t_positions.push_back(best_slot);
        result.circuit = std::move(best_circuit);
        result.best_steps = std::move(best_steps);
        result.best_objective = round_best;

        BackendConfig backend_config;
        backend_config.kind = "clifford_t";
        backend_config.ansatz = result.circuit;
        const auto backend = make_discrete_backend(backend_config);
        backend->prepare(result.best_steps);
        result.best_energy = config_.objective.energy(*backend);
    }

    boost_ = std::move(result);
    if (config_.shared_cache) {
        // Per-candidate deltas are meaningless against a shared cache
        // (every snapshot is the global counters); report the global
        // state instead of a sum of snapshots.
        boost_stats = config_.shared_cache->stats();
    }
    emit(PipelineEvent::Kind::StageEnd, "t_boost",
         boost_->t_positions.size(), boost_->best_objective,
         config_.cache.enabled || config_.shared_cache ? &boost_stats
                                                       : nullptr,
         span.stop());
    return *boost_;
}

const VqaTuneResult&
CafqaPipeline::run_vqa_tune()
{
    if (tuned_) {
        return *tuned_;
    }
    run_clifford_search();
    return run_vqa_tune(initial_params());
}

const VqaTuneResult&
CafqaPipeline::run_vqa_tune(const std::vector<double>& initial)
{
    // Unlike the no-argument overload, silently returning the cached
    // result here would discard the caller's initialization; refuse
    // instead.
    CAFQA_REQUIRE(!tuned_.has_value(),
                  "run_vqa_tune has already run on this pipeline; use a "
                  "fresh pipeline to tune from a different "
                  "initialization");
    const Circuit& circuit = best_circuit();
    CAFQA_REQUIRE(initial.size() == circuit.num_params(),
                  "initial parameter count mismatch");
    emit(PipelineEvent::Kind::StageBegin, "vqa_tune", 0, 0.0);
    telemetry::TraceSpan span(stage_histogram("vqa_tune"));

    const VqaTunerOptions& options = config_.tuner;
    BackendConfig backend_config = stage_backend_config(
        options.backend.empty()
            ? (options.noise.enabled() ? std::string("density")
                                       : std::string("statevector"))
            : options.backend,
        circuit);
    backend_config.noise = options.noise;
    backend_config.shots = options.shots;
    backend_config.seed = options.seed;
    const auto backend = make_continuous_backend(backend_config);

    std::size_t evaluations = 0;
    double best_seen = 0.0;
    auto objective_fn = [&](const std::vector<double>& params) {
        backend->prepare(params);
        const double value =
            config_.objective.combine(backend->expectations(observables_));
        ++evaluations;
        if (evaluations == 1 || value < best_seen) {
            best_seen = value;
        }
        emit(PipelineEvent::Kind::Progress, "vqa_tune", evaluations,
             best_seen);
        return value;
    };

    // The configured continuous strategy; "spsa" consumes the stage
    // budget as its iteration count (three objective calls per step),
    // any other kind receives it as an evaluation cap.
    OptimizerConfig optimizer_config = config_.tuner_optimizer;
    if (optimizer_config.seed == 0) {
        optimizer_config.seed = options.seed;
    }
    optimizer_config.spsa = options.spsa;
    optimizer_config.spsa.iterations = options.iterations;
    optimizer_config.spsa.seed = options.seed;

    StoppingCriteria criteria = config_.stopping;
    if (criteria.max_evaluations == 0 &&
        optimizer_config.kind != "spsa") {
        criteria.max_evaluations = options.iterations;
    }
    if (config_.cache.enabled && config_.cache.unique_budget) {
        criteria.unique_evaluations = true;
        criteria.unique_resolution = config_.cache.resolution;
    }

    const auto optimizer = make_continuous_optimizer(optimizer_config);
    OptimizeOutcome run =
        optimizer->minimize(objective_fn, initial, criteria, {});

    VqaTuneResult result;
    result.trace = std::move(run.history);
    result.final_params = std::move(run.best_x);
    result.final_value = run.best_value;
    result.stop_reason = run.stop_reason;
    tuned_ = std::move(result);

    const std::optional<CacheStats> stats = cache_stats_of(*backend);
    emit(PipelineEvent::Kind::StageEnd, "vqa_tune", evaluations,
         tuned_->final_value, stats ? &*stats : nullptr, span.stop());
    return *tuned_;
}

const std::vector<int>&
CafqaPipeline::best_steps() const
{
    if (boost_) {
        return boost_->best_steps;
    }
    CAFQA_REQUIRE(clifford_.has_value(),
                  "no discrete stage has run yet");
    return clifford_->best_steps;
}

double
CafqaPipeline::best_energy() const
{
    if (boost_) {
        return boost_->best_energy;
    }
    CAFQA_REQUIRE(clifford_.has_value(),
                  "no discrete stage has run yet");
    return clifford_->best_energy;
}

const Circuit&
CafqaPipeline::best_circuit() const
{
    return boost_ ? boost_->circuit : config_.ansatz;
}

std::vector<double>
CafqaPipeline::initial_params() const
{
    return steps_to_angles(best_steps());
}

const CafqaResult&
CafqaPipeline::clifford_result() const
{
    CAFQA_REQUIRE(clifford_.has_value(),
                  "run_clifford_search() has not been called");
    return *clifford_;
}

const TBoostResult&
CafqaPipeline::t_boost_result() const
{
    CAFQA_REQUIRE(boost_.has_value(),
                  "run_t_boost() has not been called");
    return *boost_;
}

const VqaTuneResult&
CafqaPipeline::tune_result() const
{
    CAFQA_REQUIRE(tuned_.has_value(),
                  "run_vqa_tune() has not been called");
    return *tuned_;
}

} // namespace cafqa
