/**
 * @file
 * The unified state-preparation backend hierarchy (the evaluation API the
 * whole library is built on).
 *
 * A `Backend` owns an ansatz circuit, prepares the ansatz state for one
 * parameter assignment, and measures expectation values of Hermitian
 * Pauli-sum observables on the prepared state. The two concrete shapes
 * differ only in the parameter domain:
 *
 * - `DiscreteBackend`:   integer quarter-turn steps (theta = k * pi/2),
 *   the CAFQA search domain. Implementations: `CliffordEvaluator`
 *   ("clifford"), `CliffordTEvaluator` ("clifford_t").
 * - `ContinuousBackend`: radian parameter vectors, the VQA tuning
 *   domain. Implementations: `IdealEvaluator` ("statevector"),
 *   `NoisyEvaluator` ("density"), `SampledEvaluator` ("sampled").
 *
 * Both expose a *batched* surface:
 *
 * - `expectations(std::span<const PauliSum>)` measures many observables
 *   on one prepared state, amortizing state preparation across the
 *   Hamiltonian and constraint operators of an objective.
 * - `expectation_batch(candidates, op)` sweeps one observable across
 *   many parameter assignments (the warm-up / enumeration access
 *   pattern); combined with `clone()` it is the unit of thread-pool
 *   fan-out.
 *
 * Backends are constructed directly or through the string-keyed registry
 * in `core/backend_registry.hpp` (`make_backend(BackendConfig)`).
 */
#ifndef CAFQA_CORE_BACKEND_HPP
#define CAFQA_CORE_BACKEND_HPP

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "pauli/pauli_sum.hpp"

namespace cafqa {

/** Common backend base: measure observables on the prepared state. */
class Backend
{
  public:
    virtual ~Backend() = default;

    /** Registry key of this backend's kind (e.g. "clifford"). */
    virtual std::string_view kind() const = 0;

    /** Qubit count of the underlying ansatz/state. */
    virtual std::size_t num_qubits() const = 0;

    /** Parameter count of the underlying ansatz. */
    virtual std::size_t num_params() const = 0;

    /** True when prepare() takes integer quarter-turn steps. */
    virtual bool discrete() const = 0;

    /** Expectation of one Hermitian operator on the prepared state. */
    virtual double expectation(const PauliSum& op) const = 0;

    /**
     * Expectations of several operators on the *same* prepared state —
     * one state preparation amortized across all observables. The
     * default implementation loops `expectation`; backends with
     * per-call setup cost override it.
     */
    virtual std::vector<double>
    expectations(std::span<const PauliSum> ops) const;

    /** Deep copy in the unprepared-or-prepared current state, for
     *  per-thread fan-out. */
    virtual std::unique_ptr<Backend> clone() const = 0;
};

/** Backend over the discrete quarter-turn domain (CAFQA search). */
class DiscreteBackend : public Backend
{
  public:
    bool discrete() const final { return true; }

    /** Prepare the ansatz state for a step assignment
     *  (steps[i] in {0, 1, 2, 3}, theta = steps[i] * pi/2). */
    virtual void prepare(const std::vector<int>& steps) = 0;

    /**
     * Sweep `op` across many candidate step assignments, re-preparing
     * per candidate. Leaves the backend prepared at the last candidate.
     */
    virtual std::vector<double>
    expectation_batch(const std::vector<std::vector<int>>& candidates,
                      const PauliSum& op);

    /** clone() with the derived static type restored. */
    std::unique_ptr<DiscreteBackend> clone_discrete() const;
};

/** Backend over continuous radian parameters (VQA tuning). */
class ContinuousBackend : public Backend
{
  public:
    bool discrete() const final { return false; }

    /** Prepare the ansatz state for a radian parameter vector. */
    virtual void prepare(const std::vector<double>& params) = 0;

    /** Sweep `op` across many parameter vectors (see DiscreteBackend). */
    virtual std::vector<double>
    expectation_batch(const std::vector<std::vector<double>>& candidates,
                      const PauliSum& op);

    /** clone() with the derived static type restored. */
    std::unique_ptr<ContinuousBackend> clone_continuous() const;
};

/** Deprecated pre-registry name for the continuous base, kept so older
 *  call sites (`ExpectationBackend`) continue to compile. */
using ExpectationBackend = ContinuousBackend;

} // namespace cafqa

#endif // CAFQA_CORE_BACKEND_HPP
