/**
 * @file
 * The Hartree-Fock baseline (paper Section 6, "Evaluation Comparisons"):
 * the best computational basis state for the target Hamiltonian under
 * electron and spin preservation constraints.
 *
 * Two flavors are provided: the direct RHF determinant expectation
 * (works at any qubit count — used for Cr2's 34 qubits), and an
 * exhaustive constrained bitstring search that verifies HF optimality on
 * small systems.
 */
#ifndef CAFQA_CORE_HARTREE_FOCK_BASELINE_HPP
#define CAFQA_CORE_HARTREE_FOCK_BASELINE_HPP

#include <cstdint>
#include <vector>

#include "pauli/pauli_sum.hpp"

namespace cafqa {

/**
 * Expectation of a Pauli sum on a computational basis state given as a
 * bit vector (bit q = qubit q). Terms with any X/Y component contribute
 * zero; diagonal terms contribute +/- their coefficient. O(terms * n),
 * valid for any qubit count.
 */
double basis_state_expectation(const PauliSum& op,
                               const std::vector<int>& bits);

/** Result of the constrained exhaustive search. */
struct BestBitstring
{
    std::vector<int> bits;
    double energy = 0.0;
};

/**
 * Exhaustively search computational basis states that satisfy the
 * constraint operators (each |<op> - target| <= tolerance) and return
 * the lowest-energy one. Restricted to <= 24 qubits.
 */
BestBitstring best_constrained_bitstring(
    const PauliSum& hamiltonian,
    const std::vector<std::pair<PauliSum, double>>& constraints,
    std::size_t num_qubits, double tolerance = 1e-6);

} // namespace cafqa

#endif // CAFQA_CORE_HARTREE_FOCK_BASELINE_HPP
