/**
 * @file
 * Declarative run description: one `RunSpec` names a problem (by its
 * registry key, `problems/problem.hpp`) plus every pipeline knob the
 * CLI exposes, so a whole CAFQA run is a single string:
 *
 *   "problem=molecule:LiH?bond=2.4 warmup=200 iterations=300 tune=200"
 *
 * Two serialized forms round-trip through parse/serialize:
 *
 * - text: whitespace-separated `field=value` tokens (the `--spec`
 *   argument of `cafqa_cli`);
 * - JSON lines: one flat JSON object per line (batch files for
 *   `core/batch_runner.hpp`), e.g.
 *   `{"problem":"maxcut:ring-8","warmup":60,"search":"anneal"}`.
 *
 * Field names and defaults deliberately mirror the historical
 * `cafqa_cli` flags, and `make_pipeline_config` reproduces the CLI's
 * config wiring exactly, so a spec-driven run of the default molecule
 * path is bit-identical to the legacy flag-driven run.
 */
#ifndef CAFQA_CORE_RUN_SPEC_HPP
#define CAFQA_CORE_RUN_SPEC_HPP

#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "problems/problem.hpp"

namespace cafqa {

/** One declarative run: problem key + pipeline configuration. */
struct RunSpec
{
    /** Problem registry key (required before execution; may be filled
     *  after parsing, e.g. by a CLI override). */
    std::string problem;
    /** Optional human label for batch reports. */
    std::string label;

    // ---- Discrete Clifford search stage. ----
    std::size_t warmup = 200;
    std::size_t iterations = 300;
    std::uint64_t seed = 7;
    /** Discrete search strategy (optimizer-registry kind). */
    std::string search = "bayes";
    /** Prior-inject the problem's seed steps (the HF point for
     *  molecules). */
    bool hf_seed = true;
    /** Cross-run warm start: a Clifford assignment (quarter-turn steps,
     *  one 0..3 value per ansatz parameter) evaluated before the
     *  search's own exploration — typically a neighboring run's
     *  best_steps. Serialized as comma-separated steps
     *  (`warm-start=1,3,0,2`; `warm_start` is accepted as an alias).
     *  Empty = off. Composes with `hf_seed` (both are seeded). */
    std::vector<int> warm_start;

    // ---- Optional stages. ----
    /** Greedy Clifford+kT rounds (0 = off). */
    std::size_t max_t = 0;
    /** Continuous tuner iterations (0 = off). */
    std::size_t tune = 0;
    /** Tuning backend registry kind; empty = auto. */
    std::string tune_backend;
    /** Continuous tuning strategy (optimizer-registry kind). */
    std::string tuner = "spsa";

    // ---- Cross-stage controls. ----
    /** Objective-evaluation cap per stage (0 = stage budgets only). */
    std::size_t budget = 0;
    /** Target-value early exit for every stage. */
    std::optional<double> target_energy;
    /** Worker threads (0 = the process-wide shared pool). */
    std::size_t threads = 0;
    /** Memoizing evaluation cache across the stages. */
    bool cache = false;
    /** Cache capacity bound (0 = default; nonzero implies `cache`). */
    std::size_t cache_capacity = 0;
    /** Compute the problem's exact reference energy for the run record
     *  (small instances only). `exact=0` skips the solve — a Lanczos
     *  run or a 2^n MaxCut brute force per record otherwise. */
    bool exact = true;

    bool operator==(const RunSpec&) const = default;

    /**
     * Assign one field by its serialized name ("warmup", "hf-seed",
     * ...), applying the same validation as parsing — the override
     * hook for CLI flags layered on top of a parsed spec. Throws
     * std::invalid_argument on unknown fields or invalid values.
     */
    void set(const std::string& field, const std::string& value);

    /**
     * Parse the text form (`field=value` tokens separated by
     * whitespace). Unknown fields, malformed tokens, duplicate fields
     * and invalid values throw std::invalid_argument naming the
     * accepted fields.
     */
    static RunSpec parse(const std::string& text);

    /** Parse one flat JSON object (same fields as the text form, same
     *  rejection rules — duplicates included). */
    static RunSpec from_json(const std::string& json);

    /** Serialize to the text form; emits `problem` plus every field
     *  that differs from its default, so parse(to_string()) == *this. */
    std::string to_string() const;

    /** Serialize to one flat JSON object (same field selection). */
    std::string to_json() const;

    /** Throws std::invalid_argument unless the spec names a problem. */
    void validate() const;
};

/**
 * Parse a JSON-lines batch file: one RunSpec object per non-empty line
 * (lines starting with '#' are comments). A bad line throws
 * std::invalid_argument prefixed with its 1-based line number and a
 * snippet of the offending text, e.g.
 * `jsonl line 3 ({"problem":...}): run spec field ...`.
 */
std::vector<RunSpec> parse_run_specs_jsonl(const std::string& text);

/**
 * The pipeline configuration for a spec over a resolved problem —
 * exactly the wiring the CLI historically applied (tuner seeded with
 * `seed + 1`, seed steps injected when `hf_seed`, ...).
 */
PipelineConfig make_pipeline_config(const RunSpec& spec,
                                    const problems::Problem& problem);

} // namespace cafqa

#endif // CAFQA_CORE_RUN_SPEC_HPP
