/**
 * @file
 * String-keyed backend registry and factory: construct any evaluation
 * backend from a `BackendConfig` without naming its concrete type.
 *
 * Built-in kinds:
 *
 * | key           | class              | domain     | extra config    |
 * |---------------|--------------------|------------|-----------------|
 * | "clifford"    | CliffordEvaluator  | discrete   | -               |
 * | "clifford_t"  | CliffordTEvaluator | discrete   | -               |
 * | "statevector" | IdealEvaluator     | continuous | -               |
 * | "density"     | NoisyEvaluator     | continuous | noise           |
 * | "sampled"     | SampledEvaluator   | continuous | shots, seed     |
 *
 * Composition: prefixing any key with `"cached:"` (e.g.
 * `"cached:clifford"`) — or setting `BackendConfig::cache.enabled` —
 * wraps the constructed backend in the memoizing decorator of
 * `core/caching_backend.hpp`, which short-circuits re-evaluations of
 * already-materialized points.
 *
 * Additional kinds (remote executors, sharded wrappers, ...) can be
 * registered at runtime with `register_backend`; `CafqaPipeline` and
 * the CLI resolve backends exclusively through this factory, so a new
 * kind is immediately usable everywhere.
 */
#ifndef CAFQA_CORE_BACKEND_REGISTRY_HPP
#define CAFQA_CORE_BACKEND_REGISTRY_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "core/backend.hpp"
#include "core/caching_backend.hpp"
#include "density/noise_model.hpp"

namespace cafqa {

/** Everything a backend factory may need; unused fields are ignored. */
struct BackendConfig
{
    /** Registry key selecting the backend kind. */
    std::string kind = "statevector";
    /** The ansatz circuit the backend prepares. */
    Circuit ansatz;
    /** Gate noise model ("density" only). */
    NoiseModel noise;
    /** Measurement shots per commuting group ("sampled" only). */
    std::size_t shots = 4096;
    /** Sampling RNG seed ("sampled" only). */
    std::uint64_t seed = 1234;
    /** Memoizing-cache block: `cache.enabled` (or the `"cached:"` kind
     *  prefix) wraps the backend in the caching decorator. */
    CacheOptions cache;
    /**
     * Cross-run shared cache (the job server's process-wide cache).
     * When set, the backend is wrapped over THIS cache instead of a
     * fresh one — regardless of `cache.enabled` — with
     * `backend_config_hash(*this)` mixed into every key, so distinct
     * configurations sharing one cache can never alias an entry.
     */
    std::shared_ptr<EvaluationCache> shared_cache;
};

/**
 * Structural hash over everything that determines a backend's
 * expectation values: kind, ansatz gates, noise parameters, shots and
 * sampling seed. Two configs with equal hashes produce (up to a 64-bit
 * collision) interchangeable evaluations — the aliasing guard for
 * cross-run cache sharing. Cache options are deliberately excluded
 * (they never change values).
 */
std::uint64_t backend_config_hash(const BackendConfig& config);

/** Factory signature stored in the registry. */
using BackendFactory =
    std::function<std::unique_ptr<Backend>(const BackendConfig&)>;

/** Register (or replace) a factory under `kind`. */
void register_backend(const std::string& kind, BackendFactory factory);

/** True if `kind` is registered. */
bool backend_registered(const std::string& kind);

/** Sorted list of registered kinds. */
std::vector<std::string> registered_backends();

/** Construct a backend; throws std::invalid_argument on unknown kind. */
std::unique_ptr<Backend> make_backend(const BackendConfig& config);

/** make_backend + checked downcast to the discrete interface. */
std::unique_ptr<DiscreteBackend>
make_discrete_backend(const BackendConfig& config);

/** make_backend + checked downcast to the continuous interface. */
std::unique_ptr<ContinuousBackend>
make_continuous_backend(const BackendConfig& config);

} // namespace cafqa

#endif // CAFQA_CORE_BACKEND_REGISTRY_HPP
