/**
 * @file
 * Memoizing evaluation cache for the backend hierarchy — the "cached
 * wrapper" extension point reserved by `core/backend_registry.hpp`.
 *
 * CAFQA's search stages re-probe the same points constantly (Bayesian
 * warm-up draws, annealing re-visits, the tuner's repeated energy
 * calls), and each probe pays a full state preparation plus one
 * expectation per observable. `CachingDiscreteBackend` /
 * `CachingContinuousBackend` wrap any concrete backend and memoize
 * `(prepared point, observable) -> expectation value` so a re-visited
 * point skips both the preparation and the measurement.
 *
 * Keys are canonical: discrete points key on the exact quarter-turn
 * step vector (the same identity `config_hash` uses for sample
 * deduplication), continuous points on the parameter vector quantized
 * to `CacheOptions::resolution`; the observable is identified by a
 * structural hash over its terms. Storage is a sharded LRU — each
 * shard has its own mutex, so per-worker backend clones produced by
 * `clone()` SHARE the cache and hit each other's entries without
 * serializing on one lock. `CacheStats` (hits / misses / evictions /
 * bytes / state preparations) is aggregated across shards and surfaced
 * through the pipeline observer (`PipelineEvent::cache` on StageEnd).
 *
 * Construction is compositional: `make_backend` wraps automatically for
 * kind `"cached:<kind>"` or whenever `BackendConfig::cache.enabled` is
 * set. Caching a *stochastic* backend ("sampled") freezes the shot
 * noise of the first evaluation of each point — by design, the cache
 * returns materialized results verbatim.
 */
#ifndef CAFQA_CORE_CACHING_BACKEND_HPP
#define CAFQA_CORE_CACHING_BACKEND_HPP

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_safety.hpp"
#include "core/backend.hpp"
#include "telemetry/metrics.hpp"

namespace cafqa {

/** Cache controls; embedded in `BackendConfig` and `PipelineConfig`. */
struct CacheOptions
{
    /** Master switch (the `"cached:"` kind prefix sets it implicitly). */
    bool enabled = false;
    /** Target resident entries. The bound is enforced per shard with
     *  the capacity split rounded up, so the true global limit is
     *  ceil(capacity / shards) * shards — up to `shards - 1` entries
     *  above this value. */
    std::size_t capacity = std::size_t{1} << 16;
    /** Lock shards; more shards = less contention under fan-out. */
    std::size_t shards = 8;
    /** Quantization step for continuous parameter keys: params within
     *  one step of each other share an entry. The default is far below
     *  any optimizer's step size, so caching stays exact in practice. */
    double resolution = 1e-12;
    /** When set, `CafqaPipeline` flips
     *  `StoppingCriteria::unique_evaluations` for its stages so budgets
     *  count unique points (re-visits are cache hits, not progress).
     *  Off by default: the default cache is a pure memoizer and the
     *  search trajectory stays bit-identical to the uncached run. */
    bool unique_budget = false;
};

/** Aggregate counters of one cache (shared by every clone). */
struct CacheStats
{
    /** Lookups answered from the cache. */
    std::size_t hits = 0;
    /** Lookups that fell through to the wrapped backend. */
    std::size_t misses = 0;
    /** Entries dropped by the LRU capacity bound. */
    std::size_t evictions = 0;
    /** Currently resident entries. */
    std::size_t entries = 0;
    /** Approximate resident key+value payload size. */
    std::size_t bytes = 0;
    /** State preparations the wrapped backend actually performed —
     *  the "backend evaluations" a bench compares against an uncached
     *  run (preparation is skipped entirely on a full hit). */
    std::size_t preparations = 0;

    double
    hit_rate() const
    {
        const std::size_t lookups = hits + misses;
        return lookups == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(lookups);
    }

    /** One flat JSON object ({"hits":..,"misses":..,...,"hit_rate":..})
     *  — shared by the job server's `stats` verb and the CLI's
     *  `--trace` output. */
    std::string to_json() const;
};

/**
 * Thread-safe sharded LRU mapping `(point key, observable hash)` to an
 * expectation value. One instance is shared (via `shared_ptr`) by a
 * wrapper and all of its clones, which is what makes the pipeline's
 * per-worker fan-out hit a common cache.
 */
class EvaluationCache
{
  public:
    /** Quantized point coordinates with the observable hash appended.
     *  Lookup compares the whole vector, so two distinct *points* can
     *  never alias; the observable component is a 64-bit structural
     *  hash (`observable_hash`), so distinct observables alias only on
     *  a full 64-bit collision — negligible against the entry counts a
     *  search produces. */
    using Key = std::vector<std::int64_t>;

    /** Throws std::invalid_argument on a zero capacity or shard count. */
    explicit EvaluationCache(const CacheOptions& options);

    /** Value for `key`, refreshing its LRU position; nullopt on miss.
     *  Counts one hit or miss. */
    std::optional<double> lookup(const Key& key);

    /** Insert (or refresh) `key`; evicts the shard's least-recently-used
     *  entry when the shard is at capacity. */
    void insert(const Key& key, double value);

    /** Count one state preparation performed by a wrapped backend. */
    void
    count_preparation()
    {
        preparations_.fetch_add(1);
        preparations_metric_.add();
    }

    /** Snapshot of the aggregate counters. */
    CacheStats stats() const;

    std::size_t capacity() const { return capacity_; }

    /** The options the cache was built with (wrappers sharing the cache
     *  pull the quantization resolution from here, so every user of one
     *  cache agrees on the continuous-point identity). */
    const CacheOptions& options() const { return options_; }

    /** Stable mix over the key words (the shard selector). */
    static std::size_t hash_key(const Key& key);

  private:
    struct Entry
    {
        Key key;
        double value = 0.0;
    };

    struct Shard
    {
        mutable Mutex shard_mutex{"shard_mutex"};
        /** Front = most recently used. */
        std::list<Entry> lru CAFQA_GUARDED_BY(shard_mutex);
        /** Hash -> LRU slot; a multimap so (unlikely) hash collisions
         *  between distinct keys stay individually addressable. The
         *  stored iterators point into `lru`, itself guarded by
         *  `shard_mutex`, so guarding the map transitively covers
         *  every pointee (the pointer-indirect analogue of
         *  `CAFQA_PT_GUARDED_BY`, which clang only accepts on raw and
         *  smart pointers). */
        std::unordered_multimap<std::size_t, std::list<Entry>::iterator>
            index CAFQA_GUARDED_BY(shard_mutex);
        std::size_t hits CAFQA_GUARDED_BY(shard_mutex) = 0;
        std::size_t misses CAFQA_GUARDED_BY(shard_mutex) = 0;
        std::size_t evictions CAFQA_GUARDED_BY(shard_mutex) = 0;
        std::size_t bytes CAFQA_GUARDED_BY(shard_mutex) = 0;
    };

    CacheOptions options_;
    std::size_t capacity_ = 0;
    std::size_t per_shard_capacity_ = 0;
    /** Process-registry mirrors of the monotonic `CacheStats` counters
     *  (`cafqa_cache_*_total`), fetched in the constructor — never
     *  under a shard lock; the bumps themselves are lock-free, so
     *  counting under `shard_mutex` is fine. All `EvaluationCache`
     *  instances in the process share these series. */
    telemetry::Counter& hits_metric_;
    telemetry::Counter& misses_metric_;
    telemetry::Counter& evictions_metric_;
    telemetry::Counter& preparations_metric_;
    /** Sized once in the constructor, structurally immutable after —
     *  no `CAFQA_PT_GUARDED_BY` applies because each pointee carries
     *  its OWN capability (`Shard::shard_mutex`); all mutable shard
     *  state is guarded field-by-field inside the Shard. */
    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<std::size_t> preparations_{0};
};

/** Structural hash of an observable: qubit count, term letters and
 *  coefficient bit patterns. Two `PauliSum`s with identical terms share
 *  cache entries regardless of object identity. */
std::size_t observable_hash(const PauliSum& op);

/** Memoizing decorator over a discrete (quarter-turn) backend. */
class CachingDiscreteBackend final : public DiscreteBackend
{
  public:
    /** Wrap `inner` with a fresh cache. */
    CachingDiscreteBackend(std::unique_ptr<DiscreteBackend> inner,
                           const CacheOptions& options);

    /**
     * Wrap `inner` over an EXISTING cache — the cross-run sharing hook
     * the job server uses so every job on the same problem hits one
     * process-wide cache. `salt` is mixed into every key; pass
     * `backend_config_hash` of the backend's full configuration so
     * distinct circuits/kinds sharing the cache can never alias (0
     * keeps the legacy single-run key layout).
     */
    CachingDiscreteBackend(std::unique_ptr<DiscreteBackend> inner,
                           std::shared_ptr<EvaluationCache> cache,
                           std::uint64_t salt);

    std::string_view kind() const override { return kind_; }
    std::size_t num_qubits() const override { return inner_->num_qubits(); }
    std::size_t num_params() const override { return inner_->num_params(); }

    /** Records the point; the wrapped backend is prepared lazily, only
     *  when a lookup misses. */
    void prepare(const std::vector<int>& steps) override;

    double expectation(const PauliSum& op) const override;
    std::vector<double>
    expectations(std::span<const PauliSum> ops) const override;

    /** Clone sharing this wrapper's cache (per-worker fan-out hits a
     *  common cache). */
    std::unique_ptr<Backend> clone() const override;

    /** The wrapped backend. */
    const DiscreteBackend& inner() const { return *inner_; }
    /** Aggregate counters of the shared cache. */
    CacheStats cache_stats() const { return cache_->stats(); }
    /** The shared cache itself (for composing wrappers by hand). */
    const std::shared_ptr<EvaluationCache>& cache() const { return cache_; }

  private:
    /** Prepare the wrapped backend for the pending point (miss path). */
    void ensure_prepared() const;

    std::unique_ptr<DiscreteBackend> inner_;
    std::shared_ptr<EvaluationCache> cache_;
    std::string kind_;
    /** Nonzero when the cache is shared across configurations: mixed
     *  into every key as a leading word. */
    std::uint64_t salt_ = 0;
    std::vector<int> point_;
    EvaluationCache::Key key_prefix_;
    bool has_point_ = false;
    mutable bool inner_prepared_ = false;
};

/** Memoizing decorator over a continuous (radian) backend. */
class CachingContinuousBackend final : public ContinuousBackend
{
  public:
    CachingContinuousBackend(std::unique_ptr<ContinuousBackend> inner,
                             const CacheOptions& options);

    /** Wrap `inner` over an existing shared cache; see the discrete
     *  wrapper. The quantization resolution comes from the shared
     *  cache's own options so every sharer agrees on point identity. */
    CachingContinuousBackend(std::unique_ptr<ContinuousBackend> inner,
                             std::shared_ptr<EvaluationCache> cache,
                             std::uint64_t salt);

    std::string_view kind() const override { return kind_; }
    std::size_t num_qubits() const override { return inner_->num_qubits(); }
    std::size_t num_params() const override { return inner_->num_params(); }

    void prepare(const std::vector<double>& params) override;

    double expectation(const PauliSum& op) const override;
    std::vector<double>
    expectations(std::span<const PauliSum> ops) const override;

    std::unique_ptr<Backend> clone() const override;

    const ContinuousBackend& inner() const { return *inner_; }
    CacheStats cache_stats() const { return cache_->stats(); }
    const std::shared_ptr<EvaluationCache>& cache() const { return cache_; }

  private:
    CachingContinuousBackend(std::unique_ptr<ContinuousBackend> inner,
                             std::shared_ptr<EvaluationCache> cache,
                             double resolution, std::uint64_t salt);

    void ensure_prepared() const;

    std::unique_ptr<ContinuousBackend> inner_;
    std::shared_ptr<EvaluationCache> cache_;
    std::string kind_;
    std::uint64_t salt_ = 0;
    double resolution_ = 1e-12;
    std::vector<double> point_;
    EvaluationCache::Key key_prefix_;
    bool has_point_ = false;
    mutable bool inner_prepared_ = false;
};

/** Wrap any backend in the matching caching decorator (used by
 *  `make_backend` for `"cached:<kind>"` / `BackendConfig::cache`). */
std::unique_ptr<Backend> wrap_with_cache(std::unique_ptr<Backend> backend,
                                         const CacheOptions& options);

/** Wrap over an existing shared cache with a key salt (used by
 *  `make_backend` when `BackendConfig::shared_cache` is set). */
std::unique_ptr<Backend>
wrap_with_cache(std::unique_ptr<Backend> backend,
                std::shared_ptr<EvaluationCache> cache, std::uint64_t salt);

/** The wrapper's cache stats, or nullopt when `backend` is not a
 *  caching decorator. */
std::optional<CacheStats> cache_stats_of(const Backend& backend);

} // namespace cafqa

#endif // CAFQA_CORE_CACHING_BACKEND_HPP
