/**
 * @file
 * Concrete state-preparation backends behind the common `Backend`
 * interface (`core/backend.hpp`): prepare the ansatz state for a
 * parameter assignment, then evaluate expectation values of any number
 * of observables (Hamiltonian + constraint operators) on the prepared
 * state.
 *
 * - CliffordEvaluator ("clifford"): exact polynomial-time stabilizer
 *   evaluation, CAFQA's classical search backend (integer quarter-turn
 *   parameters).
 * - IdealEvaluator ("statevector"): dense statevector, the "ideal
 *   machine".
 * - NoisyEvaluator ("density"): density matrix with a gate noise model,
 *   the "noisy machine".
 * - CliffordTEvaluator ("clifford_t"): Clifford + k T-gate circuits via
 *   the exact branch decomposition T = alpha I + beta S (Section 8).
 *
 * The finite-shot backend ("sampled") lives in
 * `core/sampled_evaluator.hpp`. All five are constructible by string
 * key through `make_backend` (`core/backend_registry.hpp`).
 */
#ifndef CAFQA_CORE_EVALUATOR_HPP
#define CAFQA_CORE_EVALUATOR_HPP

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "circuit/circuit.hpp"
#include "core/backend.hpp"
#include "density/noise_model.hpp"
#include "pauli/pauli_sum.hpp"
#include "stabilizer/expectation_engine.hpp"
#include "stabilizer/stabilizer_simulator.hpp"
#include "statevector/statevector.hpp"

namespace cafqa {

/**
 * Exact stabilizer backend over integer quarter-turn parameters.
 *
 * Pauli-sum observables are precompiled once per distinct sum into a
 * `StabilizerExpectationEngine` (packed term masks + QWC grouping) and
 * memoized by structural hash, so the search's hot loop — re-prepare,
 * re-measure the same Hamiltonian — pays compilation once and then
 * evaluates every term in a single batched pass per point. `clone()`
 * shares the compiled engines across thread-pool workers.
 */
class CliffordEvaluator final : public DiscreteBackend
{
  public:
    explicit CliffordEvaluator(Circuit ansatz);

    std::string_view kind() const override { return "clifford"; }
    std::size_t num_qubits() const override { return ansatz_.num_qubits(); }
    std::size_t num_params() const override { return ansatz_.num_params(); }

    /** Rebuild the tableau for a step assignment. */
    void prepare(const std::vector<int>& steps) override;

    double expectation(const PauliSum& op) const override;
    std::vector<double>
    expectations(std::span<const PauliSum> ops) const override;
    std::vector<double>
    expectation_batch(const std::vector<std::vector<int>>& candidates,
                      const PauliSum& op) override;
    /** Single Pauli term: exactly -1, 0 or +1. */
    int expectation(const PauliString& pauli) const;

    std::unique_ptr<Backend> clone() const override;

    const Circuit& ansatz() const { return ansatz_; }

  private:
    /** Compile-once lookup (keyed by `observable_hash`, the same
     *  structural identity the evaluation cache uses). */
    const StabilizerExpectationEngine& engine_for(const PauliSum& op) const;

    Circuit ansatz_;
    std::optional<StabilizerSimulator> simulator_;
    /** Engines compiled before a clone() are shared with the clone
     *  (immutable via shared_ptr); each instance then grows its own map,
     *  so per-worker clones stay lock-free. Concurrent calls must go
     *  through distinct clones, as the thread-pool fan-out does. */
    mutable std::map<std::size_t,
                     std::shared_ptr<const StabilizerExpectationEngine>>
        engines_;
};

/** Noise-free statevector backend. */
class IdealEvaluator final : public ContinuousBackend
{
  public:
    explicit IdealEvaluator(Circuit ansatz);

    std::string_view kind() const override { return "statevector"; }
    std::size_t num_qubits() const override { return ansatz_.num_qubits(); }
    std::size_t num_params() const override { return ansatz_.num_params(); }

    void prepare(const std::vector<double>& params) override;
    double expectation(const PauliSum& op) const override;
    std::unique_ptr<Backend> clone() const override;

    const Statevector& state() const;

  private:
    Circuit ansatz_;
    std::optional<Statevector> state_;
};

/** Density-matrix backend with gate noise. */
class NoisyEvaluator final : public ContinuousBackend
{
  public:
    NoisyEvaluator(Circuit ansatz, NoiseModel noise);

    std::string_view kind() const override { return "density"; }
    std::size_t num_qubits() const override { return ansatz_.num_qubits(); }
    std::size_t num_params() const override { return ansatz_.num_params(); }

    void prepare(const std::vector<double>& params) override;
    double expectation(const PauliSum& op) const override;
    std::unique_ptr<Backend> clone() const override;

    const NoiseModel& noise() const { return noise_; }

  private:
    Circuit ansatz_;
    NoiseModel noise_;
    std::optional<DensityMatrix> rho_;
};

/**
 * Clifford + k T-gate backend: expands the circuit into 2^k Clifford
 * branches using T = alpha I + beta S and sums the branch statevectors.
 * Rotation parameters remain integer quarter-turns.
 */
class CliffordTEvaluator final : public DiscreteBackend
{
  public:
    explicit CliffordTEvaluator(Circuit ansatz_with_t);

    std::string_view kind() const override { return "clifford_t"; }
    std::size_t num_qubits() const override
    {
        return original_.num_qubits();
    }
    std::size_t num_params() const override
    {
        return original_.num_params();
    }

    std::size_t num_t_gates() const { return num_t_; }
    std::size_t num_branches() const { return branches_.size(); }

    void prepare(const std::vector<int>& steps) override;
    double expectation(const PauliSum& op) const override;
    std::unique_ptr<Backend> clone() const override;

  private:
    struct Branch
    {
        std::complex<double> amplitude;
        Circuit circuit;
    };

    Circuit original_;
    std::size_t num_t_ = 0;
    std::vector<Branch> branches_;
    std::optional<Statevector> state_;
};

} // namespace cafqa

#endif // CAFQA_CORE_EVALUATOR_HPP
