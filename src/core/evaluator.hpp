/**
 * @file
 * State-preparation backends behind a common interface: prepare the
 * ansatz state for a parameter assignment, then evaluate expectation
 * values of any number of observables (Hamiltonian + constraint
 * operators) on the prepared state.
 *
 * - CliffordEvaluator: exact polynomial-time stabilizer evaluation,
 *   CAFQA's classical search backend (integer quarter-turn parameters).
 * - IdealEvaluator: dense statevector, the "ideal machine".
 * - NoisyEvaluator: density matrix with a gate noise model, the "noisy
 *   machine".
 * - CliffordTEvaluator: Clifford + k T-gate circuits via the exact
 *   branch decomposition T = alpha I + beta S (Section 8).
 */
#ifndef CAFQA_CORE_EVALUATOR_HPP
#define CAFQA_CORE_EVALUATOR_HPP

#include <memory>
#include <optional>
#include <vector>

#include "circuit/circuit.hpp"
#include "density/noise_model.hpp"
#include "pauli/pauli_sum.hpp"
#include "stabilizer/stabilizer_simulator.hpp"
#include "statevector/statevector.hpp"

namespace cafqa {

/** Common interface: prepare with continuous params, then measure. */
class ExpectationBackend
{
  public:
    virtual ~ExpectationBackend() = default;
    /** Prepare the ansatz state for a parameter vector. */
    virtual void prepare(const std::vector<double>& params) = 0;
    /** Expectation of a Hermitian operator on the prepared state. */
    virtual double expectation(const PauliSum& op) const = 0;
};

/** Exact stabilizer backend over integer quarter-turn parameters. */
class CliffordEvaluator
{
  public:
    explicit CliffordEvaluator(Circuit ansatz);

    /** Rebuild the tableau for a step assignment. */
    void prepare(const std::vector<int>& steps);

    double expectation(const PauliSum& op) const;
    /** Single Pauli term: exactly -1, 0 or +1. */
    int expectation(const PauliString& pauli) const;

    const Circuit& ansatz() const { return ansatz_; }

  private:
    Circuit ansatz_;
    std::optional<StabilizerSimulator> simulator_;
};

/** Noise-free statevector backend. */
class IdealEvaluator : public ExpectationBackend
{
  public:
    explicit IdealEvaluator(Circuit ansatz);
    void prepare(const std::vector<double>& params) override;
    double expectation(const PauliSum& op) const override;
    const Statevector& state() const;

  private:
    Circuit ansatz_;
    std::optional<Statevector> state_;
};

/** Density-matrix backend with gate noise. */
class NoisyEvaluator : public ExpectationBackend
{
  public:
    NoisyEvaluator(Circuit ansatz, NoiseModel noise);
    void prepare(const std::vector<double>& params) override;
    double expectation(const PauliSum& op) const override;

  private:
    Circuit ansatz_;
    NoiseModel noise_;
    std::optional<DensityMatrix> rho_;
};

/**
 * Clifford + k T-gate backend: expands the circuit into 2^k Clifford
 * branches using T = alpha I + beta S and sums the branch statevectors.
 * Rotation parameters remain integer quarter-turns.
 */
class CliffordTEvaluator
{
  public:
    explicit CliffordTEvaluator(Circuit ansatz_with_t);

    std::size_t num_t_gates() const { return num_t_; }
    std::size_t num_branches() const { return branches_.size(); }

    void prepare(const std::vector<int>& steps);
    double expectation(const PauliSum& op) const;

  private:
    struct Branch
    {
        std::complex<double> amplitude;
        Circuit circuit;
    };

    Circuit original_;
    std::size_t num_t_ = 0;
    std::vector<Branch> branches_;
    std::optional<Statevector> state_;
};

} // namespace cafqa

#endif // CAFQA_CORE_EVALUATOR_HPP
