#include "core/backend_registry.hpp"

#include <map>

#include "common/thread_safety.hpp"

#include <bit>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "core/evaluator.hpp"
#include "core/sampled_evaluator.hpp"

namespace cafqa {

namespace {

struct Registry
{
    Mutex backend_registry_mutex{"backend_registry_mutex"};
    std::map<std::string, BackendFactory> factories
        CAFQA_GUARDED_BY(backend_registry_mutex);
};

/** The process-wide registry, with the built-in kinds pre-registered.
 *  Function-local static so registration order is independent of
 *  translation-unit initialization order. */
Registry&
registry()
{
    static Registry instance;
    static const bool built_ins_registered = [] {
        MutexLock lock(instance.backend_registry_mutex);
        auto& factories = instance.factories;
        factories["clifford"] = [](const BackendConfig& config) {
            return std::make_unique<CliffordEvaluator>(config.ansatz);
        };
        // Alias: the paper calls the search-stage evaluator "the
        // stabilizer simulator"; kind() still reports the concrete
        // "clifford" type (same convention as custom registrations).
        factories["stabilizer"] = factories["clifford"];
        factories["clifford_t"] = [](const BackendConfig& config) {
            return std::make_unique<CliffordTEvaluator>(config.ansatz);
        };
        factories["statevector"] = [](const BackendConfig& config) {
            return std::make_unique<IdealEvaluator>(config.ansatz);
        };
        factories["density"] = [](const BackendConfig& config) {
            return std::make_unique<NoisyEvaluator>(config.ansatz,
                                                    config.noise);
        };
        factories["sampled"] = [](const BackendConfig& config) {
            return std::make_unique<SampledEvaluator>(
                config.ansatz, config.shots, config.seed);
        };
        return true;
    }();
    (void)built_ins_registered;
    return instance;
}

/** The composition prefix: "cached:<kind>" wraps <kind> in the
 *  memoizing decorator. An explicitly registered "cached:..." key
 *  takes precedence over the prefix expansion. */
constexpr std::string_view kCachedPrefix = "cached:";

bool
has_cached_prefix(const std::string& kind)
{
    return kind.size() > kCachedPrefix.size() &&
           kind.compare(0, kCachedPrefix.size(), kCachedPrefix) == 0;
}

} // namespace

std::uint64_t
backend_config_hash(const BackendConfig& config)
{
    std::size_t h = kHashSeed;
    for (const char c : config.kind) {
        h = hash_mix(h, static_cast<unsigned char>(c));
    }
    h = hash_mix(h, config.ansatz.num_qubits());
    for (const GateOp& op : config.ansatz.ops()) {
        h = hash_mix(h, static_cast<std::uint64_t>(op.kind));
        h = hash_mix(h, op.q0);
        h = hash_mix(h, op.q1);
        h = hash_mix(h, static_cast<std::uint64_t>(op.param));
        h = hash_mix(h, std::bit_cast<std::uint64_t>(op.angle));
    }
    h = hash_mix(h, std::bit_cast<std::uint64_t>(config.noise.depolarizing_1q));
    h = hash_mix(h, std::bit_cast<std::uint64_t>(config.noise.depolarizing_2q));
    h = hash_mix(h,
                 std::bit_cast<std::uint64_t>(config.noise.amplitude_damping));
    h = hash_mix(h, config.shots);
    h = hash_mix(h, config.seed);
    // Never 0: 0 means "unsalted" to the caching wrappers.
    return h == 0 ? kHashSeed : h;
}

void
register_backend(const std::string& kind, BackendFactory factory)
{
    CAFQA_REQUIRE(!kind.empty(), "backend kind must be non-empty");
    CAFQA_REQUIRE(factory != nullptr, "backend factory must be callable");
    Registry& r = registry();
    MutexLock lock(r.backend_registry_mutex);
    r.factories[kind] = std::move(factory);
}

bool
backend_registered(const std::string& kind)
{
    {
        Registry& r = registry();
        MutexLock lock(r.backend_registry_mutex);
        if (r.factories.count(kind) != 0) {
            return true;
        }
    }
    return has_cached_prefix(kind) &&
           backend_registered(kind.substr(kCachedPrefix.size()));
}

std::vector<std::string>
registered_backends()
{
    Registry& r = registry();
    MutexLock lock(r.backend_registry_mutex);
    std::vector<std::string> kinds;
    kinds.reserve(r.factories.size());
    for (const auto& [kind, factory] : r.factories) {
        kinds.push_back(kind);
    }
    return kinds;
}

std::unique_ptr<Backend>
make_backend(const BackendConfig& config)
{
    BackendFactory factory;
    {
        Registry& r = registry();
        MutexLock lock(r.backend_registry_mutex);
        const auto it = r.factories.find(config.kind);
        if (it != r.factories.end()) {
            factory = it->second;
        }
    }
    if (!factory) {
        if (has_cached_prefix(config.kind)) {
            // "cached:<kind>": construct <kind> (recursively, outside
            // the registry lock, so every registered key composes) and
            // wrap it.
            BackendConfig inner = config;
            inner.kind = config.kind.substr(kCachedPrefix.size());
            inner.cache.enabled = true;
            return make_backend(inner);
        }
        std::string all;
        {
            Registry& r = registry();
            MutexLock lock(r.backend_registry_mutex);
            for (const auto& [kind, unused] : r.factories) {
                all += all.empty() ? kind : ", " + kind;
            }
        }
        CAFQA_REQUIRE(false, "unknown backend kind \"" + config.kind +
                                 "\" (registered: " + all +
                                 "; any of them composes as "
                                 "\"cached:<kind>\")");
    }
    std::unique_ptr<Backend> backend = factory(config);
    CAFQA_ASSERT(backend != nullptr, "backend factory returned null");
    if (config.shared_cache) {
        backend = wrap_with_cache(std::move(backend), config.shared_cache,
                                  backend_config_hash(config));
    } else if (config.cache.enabled) {
        backend = wrap_with_cache(std::move(backend), config.cache);
    }
    return backend;
}

std::unique_ptr<DiscreteBackend>
make_discrete_backend(const BackendConfig& config)
{
    std::unique_ptr<Backend> backend = make_backend(config);
    auto* discrete = dynamic_cast<DiscreteBackend*>(backend.get());
    CAFQA_REQUIRE(discrete != nullptr,
                  "backend kind \"" + config.kind +
                      "\" is not a discrete (quarter-turn) backend");
    backend.release();
    return std::unique_ptr<DiscreteBackend>(discrete);
}

std::unique_ptr<ContinuousBackend>
make_continuous_backend(const BackendConfig& config)
{
    std::unique_ptr<Backend> backend = make_backend(config);
    auto* continuous = dynamic_cast<ContinuousBackend*>(backend.get());
    CAFQA_REQUIRE(continuous != nullptr,
                  "backend kind \"" + config.kind +
                      "\" is not a continuous-parameter backend");
    backend.release();
    return std::unique_ptr<ContinuousBackend>(continuous);
}

} // namespace cafqa
