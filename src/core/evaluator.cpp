#include "core/evaluator.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "core/caching_backend.hpp"
#include "core/clifford_ansatz.hpp"

namespace cafqa {

// ---------------------------------------------------------------- Clifford

CliffordEvaluator::CliffordEvaluator(Circuit ansatz)
    : ansatz_(std::move(ansatz))
{
    require_clifford_ansatz(ansatz_);
}

void
CliffordEvaluator::prepare(const std::vector<int>& steps)
{
    simulator_.emplace(ansatz_.num_qubits());
    simulator_->apply_circuit_steps(ansatz_, steps);
}

const StabilizerExpectationEngine&
CliffordEvaluator::engine_for(const PauliSum& op) const
{
    const std::size_t key = observable_hash(op);
    auto it = engines_.find(key);
    if (it == engines_.end()) {
        it = engines_
                 .emplace(key,
                          std::make_shared<
                              const StabilizerExpectationEngine>(op))
                 .first;
    }
    return *it->second;
}

double
CliffordEvaluator::expectation(const PauliSum& op) const
{
    CAFQA_REQUIRE(simulator_.has_value(), "prepare() has not been called");
    return engine_for(op).expectation(simulator_->tableau());
}

std::vector<double>
CliffordEvaluator::expectations(std::span<const PauliSum> ops) const
{
    CAFQA_REQUIRE(simulator_.has_value(), "prepare() has not been called");
    std::vector<double> values;
    values.reserve(ops.size());
    for (const PauliSum& op : ops) {
        values.push_back(engine_for(op).expectation(simulator_->tableau()));
    }
    return values;
}

std::vector<double>
CliffordEvaluator::expectation_batch(
    const std::vector<std::vector<int>>& candidates, const PauliSum& op)
{
    // Compile once, then sweep: each candidate pays only tableau
    // construction plus one batched evaluation pass.
    const StabilizerExpectationEngine& engine = engine_for(op);
    std::vector<double> values;
    values.reserve(candidates.size());
    for (const auto& steps : candidates) {
        prepare(steps);
        values.push_back(engine.expectation(simulator_->tableau()));
    }
    return values;
}

int
CliffordEvaluator::expectation(const PauliString& pauli) const
{
    CAFQA_REQUIRE(simulator_.has_value(), "prepare() has not been called");
    return simulator_->expectation(pauli);
}

std::unique_ptr<Backend>
CliffordEvaluator::clone() const
{
    return std::make_unique<CliffordEvaluator>(*this);
}

// ------------------------------------------------------------------- Ideal

IdealEvaluator::IdealEvaluator(Circuit ansatz) : ansatz_(std::move(ansatz)) {}

void
IdealEvaluator::prepare(const std::vector<double>& params)
{
    state_.emplace(ansatz_.num_qubits());
    state_->apply_circuit(ansatz_, params);
}

double
IdealEvaluator::expectation(const PauliSum& op) const
{
    CAFQA_REQUIRE(state_.has_value(), "prepare() has not been called");
    return state_->expectation(op);
}

const Statevector&
IdealEvaluator::state() const
{
    CAFQA_REQUIRE(state_.has_value(), "prepare() has not been called");
    return *state_;
}

std::unique_ptr<Backend>
IdealEvaluator::clone() const
{
    return std::make_unique<IdealEvaluator>(*this);
}

// ------------------------------------------------------------------- Noisy

NoisyEvaluator::NoisyEvaluator(Circuit ansatz, NoiseModel noise)
    : ansatz_(std::move(ansatz)), noise_(std::move(noise))
{}

void
NoisyEvaluator::prepare(const std::vector<double>& params)
{
    rho_ = simulate_noisy(ansatz_, params, noise_);
}

double
NoisyEvaluator::expectation(const PauliSum& op) const
{
    CAFQA_REQUIRE(rho_.has_value(), "prepare() has not been called");
    return rho_->expectation(op);
}

std::unique_ptr<Backend>
NoisyEvaluator::clone() const
{
    return std::make_unique<NoisyEvaluator>(*this);
}

// ------------------------------------------------------------- Clifford+kT

CliffordTEvaluator::CliffordTEvaluator(Circuit ansatz_with_t)
    : original_(std::move(ansatz_with_t))
{
    // Exact single-qubit identity: T = alpha I + beta S with
    // beta = (e^{i pi/4} - 1)/(i - 1), alpha = 1 - beta.
    const std::complex<double> i{0.0, 1.0};
    const std::complex<double> beta =
        (std::exp(i * (std::numbers::pi / 4.0)) - 1.0) / (i - 1.0);
    const std::complex<double> alpha = 1.0 - beta;
    // Tdg = conj(alpha) I + conj(beta) Sdg.

    num_t_ = original_.count(GateKind::T) + original_.count(GateKind::Tdg);
    CAFQA_REQUIRE(num_t_ <= 12,
                  "branch decomposition limited to 12 T gates (2^k "
                  "branches)");

    branches_.push_back(
        Branch{std::complex<double>{1.0, 0.0}, Circuit(original_.num_qubits())});
    for (const auto& op : original_.ops()) {
        if (op.kind != GateKind::T && op.kind != GateKind::Tdg) {
            for (auto& branch : branches_) {
                branch.circuit.mutable_ops().push_back(op);
            }
            continue;
        }
        const bool dagger = op.kind == GateKind::Tdg;
        const std::complex<double> a = dagger ? std::conj(alpha) : alpha;
        const std::complex<double> b = dagger ? std::conj(beta) : beta;
        std::vector<Branch> expanded;
        expanded.reserve(branches_.size() * 2);
        for (const auto& branch : branches_) {
            Branch identity_branch = branch;
            identity_branch.amplitude *= a;
            expanded.push_back(std::move(identity_branch));

            Branch s_branch = branch;
            s_branch.amplitude *= b;
            s_branch.circuit.mutable_ops().push_back(GateOp{
                dagger ? GateKind::Sdg : GateKind::S, op.q0, 0, -1, 0.0});
            expanded.push_back(std::move(s_branch));
        }
        branches_ = std::move(expanded);
    }

    // Branch circuits keep the original's parameter slot indices; gates
    // are applied individually in prepare(), so the per-branch
    // num_params metadata is never consulted.
}

void
CliffordTEvaluator::prepare(const std::vector<int>& steps)
{
    const std::vector<double> angles = steps_to_angles(steps);
    Statevector total(original_.num_qubits());
    auto& amps = total.amplitudes();
    std::fill(amps.begin(), amps.end(), std::complex<double>{0.0, 0.0});

    for (const auto& branch : branches_) {
        Statevector psi(original_.num_qubits());
        for (const auto& op : branch.circuit.ops()) {
            psi.apply(op, angles);
        }
        for (std::size_t k = 0; k < amps.size(); ++k) {
            amps[k] += branch.amplitude * psi.amplitudes()[k];
        }
    }
    // T is unitary, so the branch sum has unit norm up to roundoff.
    total.normalize();
    state_ = std::move(total);
}

double
CliffordTEvaluator::expectation(const PauliSum& op) const
{
    CAFQA_REQUIRE(state_.has_value(), "prepare() has not been called");
    return state_->expectation(op);
}

std::unique_ptr<Backend>
CliffordTEvaluator::clone() const
{
    return std::make_unique<CliffordTEvaluator>(*this);
}

} // namespace cafqa
