#include "core/objective.hpp"

#include "common/error.hpp"

namespace cafqa {

void
VqaObjective::add_number_constraint(PauliSum number_op, double electrons,
                                    double weight)
{
    penalties.push_back(
        ConstraintPenalty{std::move(number_op), electrons, weight});
}

void
VqaObjective::add_sz_constraint(PauliSum sz_op, double sz, double weight)
{
    penalties.push_back(ConstraintPenalty{std::move(sz_op), sz, weight});
}

std::vector<PauliSum>
VqaObjective::gather_observables() const
{
    std::vector<PauliSum> observables;
    observables.reserve(1 + penalties.size());
    observables.push_back(hamiltonian);
    for (const auto& penalty : penalties) {
        observables.push_back(penalty.op);
    }
    return observables;
}

double
VqaObjective::combine(std::span<const double> expectation_values) const
{
    CAFQA_REQUIRE(expectation_values.size() == 1 + penalties.size(),
                  "expectation value count does not match the "
                  "observable list");
    double value = expectation_values[0];
    for (std::size_t p = 0; p < penalties.size(); ++p) {
        const double miss =
            expectation_values[p + 1] - penalties[p].target;
        value += penalties[p].weight * miss * miss;
    }
    return value;
}

double
VqaObjective::evaluate_prepared(const Backend& backend) const
{
    const std::vector<PauliSum> observables = gather_observables();
    return combine(backend.expectations(observables));
}

} // namespace cafqa
