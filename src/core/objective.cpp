#include "core/objective.hpp"

namespace cafqa {

void
VqaObjective::add_number_constraint(PauliSum number_op, double electrons,
                                    double weight)
{
    penalties.push_back(
        ConstraintPenalty{std::move(number_op), electrons, weight});
}

void
VqaObjective::add_sz_constraint(PauliSum sz_op, double sz, double weight)
{
    penalties.push_back(ConstraintPenalty{std::move(sz_op), sz, weight});
}

} // namespace cafqa
