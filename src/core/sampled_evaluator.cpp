#include "core/sampled_evaluator.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"

namespace cafqa {

SampledEvaluator::SampledEvaluator(Circuit ansatz, std::size_t shots,
                                   std::uint64_t seed)
    : ansatz_(std::move(ansatz)), shots_(shots), rng_(seed)
{
    CAFQA_REQUIRE(shots >= 1, "need at least one shot");
}

void
SampledEvaluator::prepare(const std::vector<double>& params)
{
    state_.emplace(ansatz_.num_qubits());
    state_->apply_circuit(ansatz_, params);
}

double
SampledEvaluator::expectation(const PauliSum& op) const
{
    CAFQA_REQUIRE(state_.has_value(), "prepare() has not been called");
    CAFQA_REQUIRE(op.num_qubits() == state_->num_qubits(),
                  "operator qubit count mismatch");

    const auto groups = group_qubitwise_commuting(op);
    double total = 0.0;

    std::vector<double> cumulative(state_->dim());
    for (const auto& group : groups) {
        // Identity-only groups are exact.
        if (group.basis.is_identity_letters()) {
            for (const std::size_t t : group.term_indices) {
                total += op.terms()[t].coefficient.real();
            }
            continue;
        }

        // Rotate the shared basis to Z: H for X, H.Sdg for Y.
        Statevector rotated = *state_;
        for (std::size_t q = 0; q < op.num_qubits(); ++q) {
            switch (group.basis.letter(q)) {
              case PauliLetter::X:
                rotated.apply_1q(
                    Statevector::gate_matrix(GateKind::H, 0.0), q);
                break;
              case PauliLetter::Y:
                rotated.apply_1q(
                    Statevector::gate_matrix(GateKind::Sdg, 0.0), q);
                rotated.apply_1q(
                    Statevector::gate_matrix(GateKind::H, 0.0), q);
                break;
              default:
                break;
            }
        }

        // Sample bitstrings from the rotated distribution.
        double acc = 0.0;
        for (std::size_t i = 0; i < rotated.dim(); ++i) {
            acc += std::norm(rotated.amplitudes()[i]);
            cumulative[i] = acc;
        }
        std::vector<double> term_sums(group.term_indices.size(), 0.0);
        for (std::size_t shot = 0; shot < shots_; ++shot) {
            const double u = rng_.uniform_real(0.0, acc);
            const auto it = std::lower_bound(cumulative.begin(),
                                             cumulative.end(), u);
            const std::uint64_t bits = static_cast<std::uint64_t>(
                std::distance(cumulative.begin(), it));
            for (std::size_t k = 0; k < group.term_indices.size(); ++k) {
                const PauliString& term =
                    op.terms()[group.term_indices[k]].string;
                // In the rotated frame every non-identity letter reads
                // the qubit's Z value.
                std::uint64_t support = 0;
                for (std::size_t q = 0; q < op.num_qubits(); ++q) {
                    if (term.letter(q) != PauliLetter::I) {
                        support |= std::uint64_t{1} << q;
                    }
                }
                const bool odd = std::popcount(bits & support) % 2 == 1;
                term_sums[k] += odd ? -1.0 : 1.0;
            }
        }
        for (std::size_t k = 0; k < group.term_indices.size(); ++k) {
            const auto& term = op.terms()[group.term_indices[k]];
            total += term.coefficient.real() * term_sums[k] /
                     static_cast<double>(shots_);
        }
    }
    return total;
}

std::unique_ptr<Backend>
SampledEvaluator::clone() const
{
    return std::make_unique<SampledEvaluator>(*this);
}

} // namespace cafqa
