/**
 * @file
 * The CAFQA job server — the north-star serving daemon. One process
 * owns a listening socket (TCP loopback or Unix-domain), a bounded
 * client-fair job queue, a pool of worker threads executing `RunSpec`s
 * through `execute_run_spec`, and ONE process-wide evaluation cache
 * that every job shares (config-hash-salted keys, so distinct problems
 * never alias while repeated problems hit each other's entries).
 *
 *   ServerOptions options;
 *   options.unix_path = "/tmp/cafqa.sock";   // or options.port = 0 (TCP)
 *   JobServer server(options);
 *   server.start();
 *   ...
 *   server.shutdown(true);                    // drain; e.g. SIGTERM hook
 *   server.wait();                            // joins everything
 *
 * Lifecycle contract:
 *  - `submit` past capacity is rejected with a reason, never queued.
 *  - `cancel` raises the job's cooperative token: a queued job yields a
 *    cancelled record without running; an in-flight job stops at its
 *    next recorded evaluation and its record keeps the best-so-far.
 *  - `shutdown drain` stops admission, finishes every queued and
 *    in-flight job, streams all remaining records, then says bye.
 *  - `shutdown now` additionally cancels everything: queued jobs flush
 *    cancelled records immediately, in-flight jobs stop cooperatively.
 *  - Records for uncancelled jobs are byte-identical to a solo
 *    `execute_run_spec` of the same spec, except `wall_ms` (wall time
 *    is not deterministic).
 *
 * Wire protocol: `server/protocol.hpp`. Queue semantics:
 * `server/job_queue.hpp`.
 */
#ifndef CAFQA_SERVER_JOB_SERVER_HPP
#define CAFQA_SERVER_JOB_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_safety.hpp"
#include "core/caching_backend.hpp"
#include "server/job_queue.hpp"
#include "server/protocol.hpp"
#include "telemetry/metrics.hpp"

namespace cafqa::server {

/** Daemon configuration. */
struct ServerOptions
{
    /** Non-empty: listen on this Unix-domain socket path (the path is
     *  removed again on shutdown). A pre-existing path is only
     *  unlinked when it is a *stale* socket — a non-socket file or a
     *  socket another live server answers on makes `start()` throw
     *  instead of silently hijacking it. */
    std::string unix_path;
    /** TCP listen address when `unix_path` is empty. Port 0 binds an
     *  ephemeral port; read it back with `JobServer::port()`. */
    std::string host = "127.0.0.1";
    int port = 0;
    /** Concurrent job executors. */
    std::size_t workers = 2;
    /** Admission bound: queued (not yet started) jobs. */
    std::size_t queue_capacity = 1024;
    /** Protocol line bound; longer request lines drop the connection. */
    std::size_t max_line_bytes = kDefaultMaxLineBytes;
    /** Threads per run for specs that leave `threads` at 0 (same
     *  rationale as `BatchOptions::run_threads`: the workers already
     *  fan jobs out side by side). */
    std::size_t run_threads = 1;
    /** Per-write send timeout. A client that stops reading (full
     *  socket buffer) for longer than this is dropped so a worker
     *  blocked in its `respond` cannot stall job processing for other
     *  clients or wedge drain shutdown. 0 disables the bound (writes
     *  may then block indefinitely on a stalled peer). */
    std::size_t send_timeout_ms = 10'000;
    /** Process-wide shared evaluation cache. `enabled` here means
     *  "give the server one cross-job cache"; capacity/shards bound its
     *  residency. Disabled, each job falls back to whatever its own
     *  spec asked for. */
    CacheOptions cache{.enabled = true};
};

class JobServer
{
  public:
    /** Validates options; does not touch the network yet. */
    explicit JobServer(ServerOptions options);
    /** Implies `shutdown(false)` + `wait()` when still running. */
    ~JobServer();

    JobServer(const JobServer&) = delete;
    JobServer& operator=(const JobServer&) = delete;

    /** Bind, listen and spawn the accept + worker threads. Throws
     *  std::runtime_error on socket failures. */
    void start();

    /** Resolved TCP port (after `start`; 0 for a Unix-domain server). */
    int port() const { return port_; }
    const std::string& unix_path() const { return options_.unix_path; }

    /**
     * Initiate shutdown; non-blocking and callable from any thread,
     * including connection readers (the `shutdown` protocol op) —
     * teardown that must join threads happens in `wait()`. Idempotent;
     * the first call wins.
     */
    void shutdown(bool drain);

    /** Block until shutdown is initiated, then tear everything down:
     *  join workers (draining the queue per the shutdown mode), say bye
     *  on every connection, join readers, close sockets. */
    void wait();

    /** Snapshot of the server counters (stats verb / tests). */
    ServerCounters counters() const;

    /** The process-wide cache (null when `options.cache.enabled` is
     *  false). */
    const std::shared_ptr<EvaluationCache>& cache() const { return cache_; }

  private:
    struct Connection
    {
        int fd = -1;
        std::uint64_t id = 0;
        Mutex write_mutex{"write_mutex"};
        std::atomic<bool> open{true};

        ~Connection();

        /** Write `line` + '\n' whole; a failed or timed-out write
         *  (stalled peer past `ServerOptions::send_timeout_ms`) marks
         *  the connection closed — later sends discard silently and
         *  the reader is kicked loose so the connection reaps. */
        void send(const std::string& line) CAFQA_EXCLUDES(write_mutex);

        /** `send` body for a caller already holding `write_mutex`
         *  (used to order `accepted` ahead of the worker's
         *  `started`). */
        void send_locked(const std::string& line)
            CAFQA_REQUIRES(write_mutex);
    };

    void accept_loop();
    void reader_loop(std::shared_ptr<Connection> connection);
    void worker_loop();

    void handle_line(const std::shared_ptr<Connection>& connection,
                     const std::string& line);
    void handle_submit(const std::shared_ptr<Connection>& connection,
                       Request request);
    /** Execute (or flush as cancelled) one job and emit its result. */
    void process_job(Job& job);
    /** Emit the ok==false, cancelled==true record of a job that never
     *  ran. */
    void flush_cancelled(Job& job);

    void unregister_job(const std::string& id);

    /**
     * Registry references, fetched once in the constructor — before any
     * named lock can possibly be held — so every hot-path record below
     * is a lock-free atomic bump (safe under `write_mutex`,
     * `jobs_mutex`, anywhere).
     */
    struct Telemetry
    {
        /** `cafqa_server_requests_total{verb=...}` */
        telemetry::Counter& submit_requests;
        telemetry::Counter& cancel_requests;
        telemetry::Counter& stats_requests;
        telemetry::Counter& metrics_requests;
        telemetry::Counter& shutdown_requests;
        /** Lines that failed to parse as any request. */
        telemetry::Counter& bad_requests;
        /** `cafqa_server_rejects_total{reason=...}` — one series per
         *  admission-reject reason. */
        telemetry::Counter& reject_bad_spec;
        telemetry::Counter& reject_duplicate;
        telemetry::Counter& reject_queue_full;
        telemetry::Counter& reject_draining;
        telemetry::Counter& jobs_completed;
        telemetry::Counter& jobs_cancelled;
        telemetry::Gauge& busy_workers;
        /** Submit-to-result milliseconds for jobs that ran. */
        telemetry::Histogram& job_latency_ms;
    };
    static Telemetry make_telemetry();

    /** Register/clear the scrape-time callback gauges (queue depth,
     *  cache residency). Their lock acquisitions under `metrics_mutex`
     *  are the declared `dynamic metrics_mutex -> ...` manifest
     *  edges. */
    void register_callback_gauges();
    void clear_callback_gauges();

    /** Join reader threads whose loops have finished (their ids sit in
     *  `finished_readers_`), so short-lived connections don't leak
     *  joinable handles for the daemon's lifetime. */
    void reap_finished_readers();

    ServerOptions options_;
    int listen_fd_ = -1;
    int wake_pipe_[2] = {-1, -1};
    int port_ = 0;
    bool started_ = false;

    JobQueue queue_;
    std::shared_ptr<EvaluationCache> cache_;
    Telemetry metrics_;

    std::thread accept_thread_;
    std::vector<std::thread> workers_;

    Mutex connections_mutex_{"connections_mutex"};
    /** The MAP is guarded; the pointed-to `Connection`s deliberately
     *  carry no `CAFQA_PT_GUARDED_BY` — each one is internally
     *  synchronized (its own `write_mutex` + atomic `open`) and is
     *  used by workers long after `connections_mutex_` is dropped. */
    std::unordered_map<std::uint64_t, std::shared_ptr<Connection>>
        connections_ CAFQA_GUARDED_BY(connections_mutex_);
    /** Live reader threads by connection id; a reader announces its
     *  exit in `finished_readers_` and is joined opportunistically by
     *  the accept loop (finally by `wait()`). */
    std::unordered_map<std::uint64_t, std::thread> readers_
        CAFQA_GUARDED_BY(connections_mutex_);
    std::vector<std::uint64_t> finished_readers_
        CAFQA_GUARDED_BY(connections_mutex_);
    std::uint64_t next_connection_id_
        CAFQA_GUARDED_BY(connections_mutex_) = 1;

    /** Active (queued or in-flight) job id -> cancel token. The MAP is
     *  guarded; the tokens are atomics flipped/read lock-free by
     *  cancel, workers, and stopping criteria, so no
     *  `CAFQA_PT_GUARDED_BY` applies. */
    Mutex jobs_mutex_{"jobs_mutex"};
    std::unordered_map<std::string,
                       std::shared_ptr<std::atomic<bool>>>
        jobs_ CAFQA_GUARDED_BY(jobs_mutex_);
    std::atomic<std::uint64_t> next_job_id_{1};

    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> cancelled_{0};
    std::atomic<std::uint64_t> rejected_{0};
    /** Workers currently inside `process_job` (stats verb occupancy). */
    std::atomic<std::uint64_t> busy_{0};

    Mutex shutdown_mutex_{"shutdown_mutex"};
    CondVar shutdown_cv_;
    std::atomic<bool> shutdown_requested_{false};
    bool drain_ CAFQA_GUARDED_BY(shutdown_mutex_) = true;
    /** Serializes teardown so concurrent `wait` calls are safe. */
    Mutex teardown_mutex_{"teardown_mutex"};
    bool finished_ CAFQA_GUARDED_BY(teardown_mutex_) = false;
};

} // namespace cafqa::server

#endif // CAFQA_SERVER_JOB_SERVER_HPP
