/**
 * @file
 * The job-server wire protocol: JSON lines in both directions, one
 * message per '\n'-terminated line.
 *
 * Requests (client -> server) are flat JSON objects selected by their
 * "op" field:
 *
 *   {"op":"submit","id":"j1","spec":"problem=maxcut:ring-6 warmup=8"}
 *   {"op":"cancel","id":"j1"}
 *   {"op":"stats"}
 *   {"op":"metrics"}
 *   {"op":"shutdown","mode":"drain"}        // or "now"
 *
 * A line WITHOUT an "op" field is an implicit submit whose whole object
 * is a flat RunSpec (`RunSpec::from_json` grammar) — so a `RunSpec`
 * jsonl batch file pipes straight into a connection:
 *
 *   {"problem":"maxcut:ring-6","warmup":8,"iterations":8}
 *
 * Responses (server -> client) are events:
 *
 *   {"event":"accepted","id":"j1","queued":3}
 *   {"event":"rejected","id":"j1","reason":"queue full"}
 *   {"event":"started","id":"j1"}
 *   {"event":"result","id":"j1","record":{...RunRecord::to_json()...}}
 *   {"event":"cancelled","id":"j1"}          // cancel registered; the
 *                                            // result event still follows
 *   {"event":"stats","cache":{...},"submitted":N,"completed":N,
 *    "queued":N,"workers":N,"busy":N,...}
 *   {"event":"metrics","timestamp_s":T,"prometheus":"...",
 *    "snapshot":{...}}                       // full telemetry scrape
 *   {"event":"error","message":"..."}        // request-level failure
 *   {"event":"bye","reason":"drain"}         // server closing the stream
 *
 * This header is socket-free: framing and message encode/decode are
 * plain string transforms, unit-testable without a server.
 */
#ifndef CAFQA_SERVER_PROTOCOL_HPP
#define CAFQA_SERVER_PROTOCOL_HPP

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "core/batch_runner.hpp"
#include "core/caching_backend.hpp"
#include "core/run_spec.hpp"

namespace cafqa::server {

/** Default per-line bound; a line this long is a protocol violation. */
inline constexpr std::size_t kDefaultMaxLineBytes = std::size_t{1} << 20;

/**
 * Incremental '\n' splitter over an arbitrary byte stream: feed it
 * whatever `read` returned — half a line, many lines, anything — and it
 * hands back every completed line (terminator stripped, a trailing
 * '\r' too, so telnet-style clients work). A line exceeding the byte
 * bound poisons the framer: `feed` returns false, `overflowed` latches,
 * and the connection should be dropped (the alternative — skipping to
 * the next '\n' — would silently execute half a request).
 */
class LineFramer
{
  public:
    explicit LineFramer(std::size_t max_line_bytes = kDefaultMaxLineBytes);

    /** Consume `bytes`, appending completed lines to `lines`. Returns
     *  false once the current line exceeds the bound (the framer then
     *  rejects all further input). */
    bool feed(std::string_view bytes, std::vector<std::string>& lines);

    /** True once a line exceeded the bound. */
    bool overflowed() const { return overflowed_; }

    /** Bytes of the current, incomplete line. */
    std::size_t buffered() const { return buffer_.size(); }

    std::size_t max_line_bytes() const { return max_line_bytes_; }

  private:
    std::size_t max_line_bytes_;
    std::string buffer_;
    bool overflowed_ = false;
};

/** Request kinds. */
enum class Op {
    Submit,
    Cancel,
    Stats,
    /** Full telemetry scrape: Prometheus text + JSON snapshot. */
    Metrics,
    Shutdown,
};

/** One decoded request line. */
struct Request
{
    Op op = Op::Submit;
    /** Client-chosen job id (submit, cancel). Empty on an implicit
     *  submit — the server assigns one and echoes it in `accepted`. */
    std::string id;
    /** The spec to run (submit only). */
    RunSpec spec;
    /** Shutdown mode: true finishes queued + in-flight jobs first,
     *  false cancels everything in flight. */
    bool drain = true;
};

/** Decode one request line; throws std::invalid_argument naming the
 *  defect (unknown op, missing field, bad spec, duplicate field, ...). */
Request parse_request(const std::string& line);

// ---- Request encoders (client side). One JSON line, no newline. ----

std::string submit_line(const std::string& id, const RunSpec& spec);
std::string cancel_line(const std::string& id);
std::string stats_line();
std::string metrics_line();
std::string shutdown_line(bool drain);

// ---- Response encoders (server side). One JSON line, no newline. ----

std::string event_accepted(const std::string& id, std::size_t queued);
std::string event_rejected(const std::string& id,
                           const std::string& reason);
std::string event_started(const std::string& id);
/** Embeds the record verbatim (`RunRecord::to_json()`), so a client
 *  extracting the "record" field sees exactly the solo-run bytes. */
std::string event_result(const std::string& id, const RunRecord& record);
std::string event_cancelled(const std::string& id);
std::string event_error(const std::string& message);
std::string event_bye(const std::string& reason);

/** Server-level counters reported by the stats verb. */
struct ServerCounters
{
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t rejected = 0;
    std::uint64_t queued = 0;
    /** Configured worker count (occupancy denominator). */
    std::uint64_t workers = 0;
    /** Workers currently executing a job — `queued` + `busy` is how a
     *  drained server is told apart from a wedged one. */
    std::uint64_t busy = 0;
};

std::string event_stats(const ServerCounters& counters,
                        const CacheStats& cache);

/** The metrics event: Prometheus text + JSON snapshot (embedded
 *  verbatim) and the scrape wall-clock timestamp. */
std::string event_metrics(double timestamp_s,
                          const std::string& prometheus,
                          const std::string& snapshot_json);

/** One decoded response line (the client-side mirror of `Request`).
 *  Fields are filled per event kind; `record_json` holds the raw
 *  embedded record for "result". */
struct Event
{
    std::string event;
    std::string id;
    std::string reason;
    std::string message;
    std::string record_json;
    std::string cache_json;
    /** "metrics" event payloads: the Prometheus text body and the raw
     *  JSON snapshot object. */
    std::string prometheus;
    std::string snapshot_json;
    std::size_t queued = 0;
    ServerCounters counters;
};

/** Decode one response line; throws std::invalid_argument on anything
 *  that is not a well-formed event object. */
Event parse_event(const std::string& line);

} // namespace cafqa::server

#endif // CAFQA_SERVER_PROTOCOL_HPP
