/**
 * @file
 * Bounded, client-fair job queue between the server's connection
 * readers and its worker pool.
 *
 * Admission control: capacity is a hard bound — a push over it returns
 * `Admit::QueueFull` (the caller replies "rejected" with the reason)
 * instead of growing without limit, and a queue that has been closed
 * for draining returns `Admit::Draining`.
 *
 * Fairness: one deque per client plus a round-robin rotation over the
 * clients with pending work, so a client that dumps a thousand specs
 * cannot starve one that submits a single job — with A holding a1,a2,a3
 * and B holding b1,b2 the pop order is a1, b1, a2, b2, a3. Per-client
 * order is FIFO.
 *
 * Socket-free and worker-agnostic: unit tests drive push/pop directly.
 */
#ifndef CAFQA_SERVER_JOB_QUEUE_HPP
#define CAFQA_SERVER_JOB_QUEUE_HPP

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_safety.hpp"
#include "core/run_spec.hpp"
#include "telemetry/metrics.hpp"

namespace cafqa::server {

/** One queued unit of work. */
struct Job
{
    /** Fairness key — one rotation slot per distinct client. */
    std::string client;
    /** Server-unique job id (echoed in every event about this job). */
    std::string id;
    RunSpec spec;
    /** Raised to cancel (shared with the server's cancel index; checked
     *  both while queued and inside the run's stopping criteria). */
    std::shared_ptr<std::atomic<bool>> cancel;
    /** Delivers one response line to the submitting connection (safe to
     *  call after the connection dropped — it just discards). */
    std::function<void(const std::string& line)> respond;
    /** Admission time, stamped by `JobQueue::push` (queue-wait and
     *  end-to-end latency attribution). */
    std::chrono::steady_clock::time_point submitted{};
};

/** Admission verdict. */
enum class Admit {
    Accepted,
    /** The capacity bound is reached; the job was NOT queued. */
    QueueFull,
    /** The queue is closed (server draining); the job was NOT queued. */
    Draining,
};

const char* to_string(Admit admit);

class JobQueue
{
  public:
    /** Throws std::invalid_argument on zero capacity. */
    explicit JobQueue(std::size_t capacity);

    /** Admit `job` under the capacity bound. Never blocks. */
    Admit push(Job job);

    /** Next job in client-fair order; blocks while empty. Returns
     *  nullopt once the queue is closed AND drained — the workers'
     *  exit signal. */
    std::optional<Job> pop();

    /** Close admission: pushes fail with `Draining`, pops drain what is
     *  queued, then report exhaustion. Idempotent. */
    void close();

    /** Remove and return every queued job at once (immediate-shutdown
     *  path: the caller flushes cancelled records for them). */
    std::vector<Job> drain_now();

    bool closed() const;
    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }

  private:
    /** The next client slot with work (from the cursor); npos when
     *  idle. */
    std::size_t next_slot_locked() CAFQA_REQUIRES(queue_mutex_);

    /** Move the cursor past `slot` after serving it, retiring the
     *  client when its FIFO is exhausted. */
    void advance_cursor_locked(std::size_t slot, bool exhausted)
        CAFQA_REQUIRES(queue_mutex_);

    /** Pop the fair-order head (pre: at least one job queued). */
    Job pop_locked() CAFQA_REQUIRES(queue_mutex_);

    std::size_t capacity_;
    /** Registry references fetched once at construction (no lock held
     *  there); the hot-path add/observe calls are lock-free, so queue
     *  operations take no lock beyond `queue_mutex_`. */
    telemetry::Counter& pushed_metric_;
    telemetry::Counter& popped_metric_;
    telemetry::Histogram& queue_wait_metric_;
    mutable Mutex queue_mutex_{"queue_mutex"};
    CondVar ready_;
    /** Per-client FIFOs ("shards" of the fair schedule). */
    std::unordered_map<std::string, std::deque<Job>> clients_
        CAFQA_GUARDED_BY(queue_mutex_);
    /** Round-robin rotation: client keys in first-seen order. */
    std::vector<std::string> rotation_ CAFQA_GUARDED_BY(queue_mutex_);
    std::size_t cursor_ CAFQA_GUARDED_BY(queue_mutex_) = 0;
    std::size_t size_ CAFQA_GUARDED_BY(queue_mutex_) = 0;
    bool closed_ CAFQA_GUARDED_BY(queue_mutex_) = false;
};

} // namespace cafqa::server

#endif // CAFQA_SERVER_JOB_QUEUE_HPP
