#include "server/protocol.hpp"

#include "common/error.hpp"
#include "common/text.hpp"

namespace cafqa::server {

LineFramer::LineFramer(std::size_t max_line_bytes)
    : max_line_bytes_(max_line_bytes)
{
    CAFQA_REQUIRE(max_line_bytes_ > 0,
                  "line framer byte bound must be positive");
}

bool
LineFramer::feed(std::string_view bytes, std::vector<std::string>& lines)
{
    if (overflowed_) {
        return false;
    }
    std::size_t start = 0;
    while (start <= bytes.size()) {
        const std::size_t newline = bytes.find('\n', start);
        if (newline == std::string_view::npos) {
            buffer_.append(bytes.substr(start));
            break;
        }
        buffer_.append(bytes.substr(start, newline - start));
        if (buffer_.size() > max_line_bytes_) {
            overflowed_ = true;
            return false;
        }
        if (!buffer_.empty() && buffer_.back() == '\r') {
            buffer_.pop_back();
        }
        lines.push_back(std::move(buffer_));
        buffer_.clear();
        start = newline + 1;
    }
    if (buffer_.size() > max_line_bytes_) {
        overflowed_ = true;
        return false;
    }
    return true;
}

namespace {

[[noreturn]] void
fail(const std::string& why)
{
    CAFQA_REQUIRE(false, "bad request: " + why);
}

/** The field named `name`, required to exist and (when `as_string`) to
 *  be a JSON string. */
const JsonField&
required_field(const std::vector<JsonField>& fields,
               const std::string& name, bool as_string)
{
    const JsonField* field = find_json_field(fields, name);
    if (field == nullptr) {
        fail("missing required field \"" + name + "\"");
    }
    if (as_string && !field->is_string) {
        fail("field \"" + name + "\" must be a JSON string");
    }
    return *field;
}

void
reject_duplicates(const std::vector<JsonField>& fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        for (std::size_t j = i + 1; j < fields.size(); ++j) {
            if (fields[i].name == fields[j].name) {
                fail("field \"" + fields[i].name +
                     "\" appears more than once");
            }
        }
    }
}

} // namespace

Request
parse_request(const std::string& line)
{
    const std::vector<JsonField> fields = parse_flat_json_object(line);
    const JsonField* op = find_json_field(fields, "op");
    if (op == nullptr) {
        // Implicit submit: the whole object is a flat RunSpec (which
        // applies its own duplicate/unknown-field rejection).
        Request request;
        request.op = Op::Submit;
        request.spec = RunSpec::from_json(line);
        return request;
    }
    reject_duplicates(fields);
    if (!op->is_string) {
        fail("field \"op\" must be a JSON string");
    }

    Request request;
    if (op->value == "submit") {
        request.op = Op::Submit;
        if (const JsonField* id = find_json_field(fields, "id")) {
            request.id = id->value;
        }
        const JsonField& spec = required_field(fields, "spec", true);
        request.spec = RunSpec::parse(spec.value);
    } else if (op->value == "cancel") {
        request.op = Op::Cancel;
        request.id = required_field(fields, "id", true).value;
    } else if (op->value == "stats") {
        request.op = Op::Stats;
    } else if (op->value == "metrics") {
        request.op = Op::Metrics;
    } else if (op->value == "shutdown") {
        request.op = Op::Shutdown;
        if (const JsonField* mode = find_json_field(fields, "mode")) {
            if (mode->value == "drain") {
                request.drain = true;
            } else if (mode->value == "now") {
                request.drain = false;
            } else {
                fail("shutdown mode must be \"drain\" or \"now\", got \"" +
                     mode->value + "\"");
            }
        }
    } else {
        fail("unknown op \"" + op->value +
             "\" (expected submit, cancel, stats, metrics or shutdown)");
    }
    return request;
}

std::string
submit_line(const std::string& id, const RunSpec& spec)
{
    std::string out = "{\"op\":\"submit\"";
    if (!id.empty()) {
        out += ",\"id\":" + json_quote(id);
    }
    out += ",\"spec\":" + json_quote(spec.to_string()) + "}";
    return out;
}

std::string
cancel_line(const std::string& id)
{
    return "{\"op\":\"cancel\",\"id\":" + json_quote(id) + "}";
}

std::string
stats_line()
{
    return "{\"op\":\"stats\"}";
}

std::string
metrics_line()
{
    return "{\"op\":\"metrics\"}";
}

std::string
shutdown_line(bool drain)
{
    return std::string("{\"op\":\"shutdown\",\"mode\":\"") +
           (drain ? "drain" : "now") + "\"}";
}

std::string
event_accepted(const std::string& id, std::size_t queued)
{
    return "{\"event\":\"accepted\",\"id\":" + json_quote(id) +
           ",\"queued\":" + std::to_string(queued) + "}";
}

std::string
event_rejected(const std::string& id, const std::string& reason)
{
    return "{\"event\":\"rejected\",\"id\":" + json_quote(id) +
           ",\"reason\":" + json_quote(reason) + "}";
}

std::string
event_started(const std::string& id)
{
    return "{\"event\":\"started\",\"id\":" + json_quote(id) + "}";
}

std::string
event_result(const std::string& id, const RunRecord& record)
{
    return "{\"event\":\"result\",\"id\":" + json_quote(id) +
           ",\"record\":" + record.to_json() + "}";
}

std::string
event_cancelled(const std::string& id)
{
    return "{\"event\":\"cancelled\",\"id\":" + json_quote(id) + "}";
}

std::string
event_error(const std::string& message)
{
    return "{\"event\":\"error\",\"message\":" + json_quote(message) + "}";
}

std::string
event_bye(const std::string& reason)
{
    return "{\"event\":\"bye\",\"reason\":" + json_quote(reason) + "}";
}

std::string
event_stats(const ServerCounters& counters, const CacheStats& cache)
{
    return "{\"event\":\"stats\",\"submitted\":" +
           std::to_string(counters.submitted) +
           ",\"completed\":" + std::to_string(counters.completed) +
           ",\"cancelled\":" + std::to_string(counters.cancelled) +
           ",\"rejected\":" + std::to_string(counters.rejected) +
           ",\"queued\":" + std::to_string(counters.queued) +
           ",\"workers\":" + std::to_string(counters.workers) +
           ",\"busy\":" + std::to_string(counters.busy) +
           ",\"cache\":" + cache.to_json() + "}";
}

std::string
event_metrics(double timestamp_s, const std::string& prometheus,
              const std::string& snapshot_json)
{
    return "{\"event\":\"metrics\",\"timestamp_s\":" +
           format_real(timestamp_s) +
           ",\"prometheus\":" + json_quote(prometheus) +
           ",\"snapshot\":" + snapshot_json + "}";
}

namespace {

std::uint64_t
counter_value(const JsonField* field)
{
    if (field == nullptr) {
        return 0;
    }
    const auto value = parse_integer_token(field->value);
    if (!value || *value < 0) {
        fail("counter field \"" + field->name +
             "\" is not a non-negative integer");
    }
    return static_cast<std::uint64_t>(*value);
}

} // namespace

Event
parse_event(const std::string& line)
{
    const std::vector<JsonField> fields = parse_flat_json_object(line);
    Event out;
    const JsonField* kind = find_json_field(fields, "event");
    if (kind == nullptr || !kind->is_string) {
        CAFQA_REQUIRE(false,
                      "bad response: missing \"event\" field in: " + line);
    }
    out.event = kind->value;
    if (const JsonField* id = find_json_field(fields, "id")) {
        out.id = id->value;
    }
    if (const JsonField* reason = find_json_field(fields, "reason")) {
        out.reason = reason->value;
    }
    if (const JsonField* message = find_json_field(fields, "message")) {
        out.message = message->value;
    }
    if (const JsonField* record = find_json_field(fields, "record")) {
        out.record_json = record->value;
    }
    if (const JsonField* cache = find_json_field(fields, "cache")) {
        out.cache_json = cache->value;
    }
    if (const JsonField* prom = find_json_field(fields, "prometheus")) {
        out.prometheus = prom->value;
    }
    if (const JsonField* snap = find_json_field(fields, "snapshot")) {
        out.snapshot_json = snap->value;
    }
    if (const JsonField* queued = find_json_field(fields, "queued")) {
        out.queued = static_cast<std::size_t>(counter_value(queued));
    }
    out.counters.submitted =
        counter_value(find_json_field(fields, "submitted"));
    out.counters.completed =
        counter_value(find_json_field(fields, "completed"));
    out.counters.cancelled =
        counter_value(find_json_field(fields, "cancelled"));
    out.counters.rejected =
        counter_value(find_json_field(fields, "rejected"));
    out.counters.queued = counter_value(find_json_field(fields, "queued"));
    out.counters.workers =
        counter_value(find_json_field(fields, "workers"));
    out.counters.busy = counter_value(find_json_field(fields, "busy"));
    return out;
}

} // namespace cafqa::server
