#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/error.hpp"

namespace cafqa::server {

namespace {

[[noreturn]] void
fail_errno(const std::string& what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

} // namespace

BlockingClient::BlockingClient(int fd) : fd_(fd) {}

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      framer_(std::move(other.framer_)),
      pending_(std::move(other.pending_)),
      next_pending_(other.next_pending_),
      eof_(other.eof_)
{
}

BlockingClient&
BlockingClient::operator=(BlockingClient&& other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0) {
            ::close(fd_);
        }
        fd_ = std::exchange(other.fd_, -1);
        framer_ = std::move(other.framer_);
        pending_ = std::move(other.pending_);
        next_pending_ = other.next_pending_;
        eof_ = other.eof_;
    }
    return *this;
}

BlockingClient::~BlockingClient()
{
    if (fd_ >= 0) {
        ::close(fd_);
    }
}

BlockingClient
BlockingClient::connect_tcp(const std::string& host, int port)
{
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
        throw std::runtime_error("bad server address: " + host);
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        fail_errno("socket(AF_INET)");
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                  sizeof(address)) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        fail_errno("connect(" + host + ":" + std::to_string(port) + ")");
    }
    return BlockingClient(fd);
}

BlockingClient
BlockingClient::connect_unix(const std::string& path)
{
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    CAFQA_REQUIRE(path.size() < sizeof(address.sun_path),
                  "unix socket path too long: " + path);
    std::strncpy(address.sun_path, path.c_str(),
                 sizeof(address.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        fail_errno("socket(AF_UNIX)");
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                  sizeof(address)) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        fail_errno("connect(" + path + ")");
    }
    return BlockingClient(fd);
}

void
BlockingClient::send_line(const std::string& line)
{
    CAFQA_REQUIRE(fd_ >= 0, "client not connected");
    const std::string framed = line + "\n";
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t n = ::send(fd_, framed.data() + sent,
                                 framed.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            fail_errno("send");
        }
        sent += static_cast<std::size_t>(n);
    }
}

std::optional<std::string>
BlockingClient::read_line()
{
    for (;;) {
        if (next_pending_ < pending_.size()) {
            return std::move(pending_[next_pending_++]);
        }
        if (eof_) {
            return std::nullopt;
        }
        pending_.clear();
        next_pending_ = 0;
        char buffer[4096];
        const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            fail_errno("recv");
        }
        if (n == 0) {
            eof_ = true;
            continue;
        }
        if (!framer_.feed(
                std::string_view(buffer, static_cast<std::size_t>(n)),
                pending_)) {
            throw std::runtime_error(
                "server response line exceeds " +
                std::to_string(framer_.max_line_bytes()) + " bytes");
        }
    }
}

void
BlockingClient::finish_sending()
{
    CAFQA_REQUIRE(fd_ >= 0, "client not connected");
    ::shutdown(fd_, SHUT_WR);
}

} // namespace cafqa::server
