/**
 * @file
 * Minimal blocking client for the job-server protocol — one socket,
 * line-at-a-time I/O, used by `examples/cafqa_client.cpp`, the load
 * bench and the end-to-end tests. Higher-level flows compose the
 * encoders in `server/protocol.hpp`:
 *
 *   auto client = BlockingClient::connect_unix("/tmp/cafqa.sock");
 *   client.send_line(submit_line("j1", spec));
 *   while (auto line = client.read_line()) {
 *       const Event event = parse_event(*line);
 *       if (event.event == "result" && event.id == "j1") break;
 *   }
 *
 * Concurrency contract: a `BlockingClient` is THREAD-CONFINED — one
 * thread owns the socket, there is no internal locking and nothing
 * here for the thread-safety annotations to guard (the server side
 * holds all shared state, under `cafqa::Mutex`). The load bench and
 * tests that want concurrent traffic open one client per thread; the
 * server's per-connection `write_mutex` keeps each response line
 * intact regardless.
 */
#ifndef CAFQA_SERVER_CLIENT_HPP
#define CAFQA_SERVER_CLIENT_HPP

#include <optional>
#include <string>
#include <vector>

#include "server/protocol.hpp"

namespace cafqa::server {

class BlockingClient
{
  public:
    /** Throws std::runtime_error when the connection fails. */
    static BlockingClient connect_tcp(const std::string& host, int port);
    static BlockingClient connect_unix(const std::string& path);

    BlockingClient(BlockingClient&& other) noexcept;
    BlockingClient& operator=(BlockingClient&& other) noexcept;
    BlockingClient(const BlockingClient&) = delete;
    BlockingClient& operator=(const BlockingClient&) = delete;
    ~BlockingClient();

    /** Send one protocol line ('\n' appended). Throws on a dead
     *  socket. */
    void send_line(const std::string& line);

    /** Next line from the server; blocks. nullopt once the server
     *  closed the stream (after its bye, or on a dropped connection). */
    std::optional<std::string> read_line();

    /** Half-close our sending side (tells the server we are done
     *  submitting; responses keep flowing). */
    void finish_sending();

  private:
    explicit BlockingClient(int fd);

    int fd_ = -1;
    LineFramer framer_;
    std::vector<std::string> pending_;
    std::size_t next_pending_ = 0;
    bool eof_ = false;
};

} // namespace cafqa::server

#endif // CAFQA_SERVER_CLIENT_HPP
