#include "server/job_queue.hpp"

#include "common/error.hpp"

namespace cafqa::server {

const char*
to_string(Admit admit)
{
    switch (admit) {
      case Admit::Accepted: return "accepted";
      case Admit::QueueFull: return "queue full";
      case Admit::Draining: return "server draining";
    }
    return "?";
}

JobQueue::JobQueue(std::size_t capacity)
    : capacity_(capacity),
      // Registered here, before any named lock exists in this object —
      // the registering accessors must never run under another lock.
      pushed_metric_(telemetry::MetricsRegistry::instance().counter(
          "cafqa_server_jobs_pushed_total", {},
          "Jobs admitted into the server queue")),
      popped_metric_(telemetry::MetricsRegistry::instance().counter(
          "cafqa_server_jobs_popped_total", {},
          "Jobs handed to a worker from the server queue")),
      queue_wait_metric_(telemetry::MetricsRegistry::instance().histogram(
          "cafqa_server_queue_wait_ms", {},
          "Milliseconds a job spent queued before a worker picked it up"))
{
    CAFQA_REQUIRE(capacity_ > 0, "job queue capacity must be positive");
}

Admit
JobQueue::push(Job job)
{
    job.submitted = std::chrono::steady_clock::now();
    {
        MutexLock lock(queue_mutex_);
        if (closed_) {
            return Admit::Draining;
        }
        if (size_ >= capacity_) {
            return Admit::QueueFull;
        }
        auto [it, inserted] = clients_.try_emplace(job.client);
        if (inserted) {
            rotation_.push_back(job.client);
        }
        it->second.push_back(std::move(job));
        ++size_;
    }
    pushed_metric_.add();
    ready_.notify_one();
    return Admit::Accepted;
}

std::size_t
JobQueue::next_slot_locked()
{
    if (rotation_.empty()) {
        return std::string::npos;
    }
    for (std::size_t probe = 0; probe < rotation_.size(); ++probe) {
        const std::size_t slot = (cursor_ + probe) % rotation_.size();
        if (!clients_[rotation_[slot]].empty()) {
            return slot;
        }
    }
    return std::string::npos;
}

void
JobQueue::advance_cursor_locked(std::size_t slot, bool exhausted)
{
    if (exhausted) {
        // Retire the drained client so thousands of short-lived
        // connections don't accumulate dead rotation slots; the erase
        // shifts the next client INTO `slot`, which is exactly where
        // the round-robin should look next.
        clients_.erase(rotation_[slot]);
        rotation_.erase(rotation_.begin() +
                        static_cast<std::ptrdiff_t>(slot));
        cursor_ = rotation_.empty() ? 0 : slot % rotation_.size();
    } else {
        // Advance PAST the client just served so the next pop looks at
        // the following one — that is the round-robin interleave.
        cursor_ = (slot + 1) % rotation_.size();
    }
}

Job
JobQueue::pop_locked()
{
    const std::size_t slot = next_slot_locked();
    CAFQA_ASSERT(slot != std::string::npos,
                 "job queue size and rotation disagree");
    std::deque<Job>& fifo = clients_[rotation_[slot]];
    Job job = std::move(fifo.front());
    fifo.pop_front();
    --size_;
    advance_cursor_locked(slot, fifo.empty());
    return job;
}

std::optional<Job>
JobQueue::pop()
{
    std::optional<Job> job;
    {
        MutexLock lock(queue_mutex_);
        while (size_ == 0 && !closed_) {
            ready_.wait(lock);
        }
        if (size_ == 0) {
            return std::nullopt;
        }
        job = pop_locked();
    }
    popped_metric_.add();
    queue_wait_metric_.observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - job->submitted)
            .count());
    return job;
}

void
JobQueue::close()
{
    {
        MutexLock lock(queue_mutex_);
        closed_ = true;
    }
    ready_.notify_all();
}

std::vector<Job>
JobQueue::drain_now()
{
    std::vector<Job> jobs;
    MutexLock lock(queue_mutex_);
    // Fair order for the flush too, so cancelled-record order matches
    // what the workers would have run.
    while (size_ > 0) {
        jobs.push_back(pop_locked());
    }
    return jobs;
}

bool
JobQueue::closed() const
{
    MutexLock lock(queue_mutex_);
    return closed_;
}

std::size_t
JobQueue::size() const
{
    MutexLock lock(queue_mutex_);
    return size_;
}

} // namespace cafqa::server
