#include "server/job_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/error.hpp"
#include "common/text.hpp"

namespace cafqa::server {

namespace {

[[noreturn]] void
fail_errno(const std::string& what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

void
close_fd(int& fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

/**
 * Make `path` bindable without hijacking anything: nothing there is
 * fine, a stale socket (left by a crash; nobody answers) is unlinked,
 * and a non-socket file or a socket a live server answers on throws.
 */
void
remove_stale_unix_socket(const std::string& path)
{
    struct stat status {};
    if (::lstat(path.c_str(), &status) != 0) {
        if (errno == ENOENT) {
            return; // nothing to clear
        }
        fail_errno("stat(" + path + ")");
    }
    if (!S_ISSOCK(status.st_mode)) {
        throw std::runtime_error(path +
                                 " exists and is not a socket; refusing "
                                 "to unlink it");
    }
    int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe < 0) {
        fail_errno("socket(AF_UNIX)");
    }
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    std::strncpy(address.sun_path, path.c_str(),
                 sizeof(address.sun_path) - 1);
    const bool live =
        ::connect(probe, reinterpret_cast<const sockaddr*>(&address),
                  sizeof(address)) == 0;
    close_fd(probe);
    if (live) {
        throw std::runtime_error("another server is live on " + path);
    }
    ::unlink(path.c_str()); // stale socket from a crash
}

} // namespace

JobServer::Connection::~Connection()
{
    close_fd(fd);
}

void
JobServer::Connection::send(const std::string& line)
{
    MutexLock lock(write_mutex);
    send_locked(line);
}

void
JobServer::Connection::send_locked(const std::string& line)
{
    if (!open.load(std::memory_order_relaxed)) {
        return;
    }
    const std::string framed = line + "\n";
    std::size_t sent = 0;
    while (sent < framed.size()) {
        // lint:allow(blocking-under-lock) write_mutex IS the per-socket
        // write serializer, so sending under it is the point; the
        // socket carries SO_SNDTIMEO, bounding how long a stalled peer
        // can hold the lock.
        const ssize_t n = ::send(fd, framed.data() + sent,
                                 framed.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            // EAGAIN/EWOULDBLOCK: the SO_SNDTIMEO bound expired — the
            // peer stopped reading and its socket buffer is full. Any
            // other errno: peer gone (EPIPE/ECONNRESET/...). Either
            // way, drop the connection so a worker blocked in
            // `respond` cannot stall job processing; the half-close
            // below kicks the reader out of recv so the connection
            // reaps instead of lingering.
            open.store(false, std::memory_order_relaxed);
            ::shutdown(fd, SHUT_RDWR);
            return;
        }
        sent += static_cast<std::size_t>(n);
    }
}

JobServer::Telemetry
JobServer::make_telemetry()
{
    auto& registry = telemetry::MetricsRegistry::instance();
    const std::string requests = "cafqa_server_requests_total";
    const std::string requests_help =
        "Protocol requests received, by verb";
    const std::string rejects = "cafqa_server_rejects_total";
    const std::string rejects_help =
        "Submissions rejected at admission, by reason";
    return Telemetry{
        registry.counter(requests, {{"verb", "submit"}}, requests_help),
        registry.counter(requests, {{"verb", "cancel"}}, requests_help),
        registry.counter(requests, {{"verb", "stats"}}, requests_help),
        registry.counter(requests, {{"verb", "metrics"}}, requests_help),
        registry.counter(requests, {{"verb", "shutdown"}}, requests_help),
        registry.counter("cafqa_server_bad_requests_total", {},
                         "Request lines that failed to parse"),
        registry.counter(rejects, {{"reason", "bad_spec"}}, rejects_help),
        registry.counter(rejects, {{"reason", "duplicate_id"}},
                         rejects_help),
        registry.counter(rejects, {{"reason", "queue_full"}},
                         rejects_help),
        registry.counter(rejects, {{"reason", "draining"}}, rejects_help),
        registry.counter("cafqa_server_jobs_completed_total", {},
                         "Jobs that emitted a result event (ran or "
                         "flushed cancelled)"),
        registry.counter("cafqa_server_jobs_cancelled_total", {},
                         "Jobs flushed as cancelled without running"),
        registry.gauge("cafqa_server_busy_workers", {},
                       "Workers currently executing a job"),
        registry.histogram("cafqa_server_job_latency_ms", {},
                           "Submit-to-result milliseconds for jobs "
                           "that ran"),
    };
}

JobServer::JobServer(ServerOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity),
      metrics_(make_telemetry())
{
    CAFQA_REQUIRE(options_.workers >= 1,
                  "job server needs at least one worker");
    CAFQA_REQUIRE(options_.run_threads >= 1,
                  "per-run thread count must be at least 1");
    CAFQA_REQUIRE(options_.unix_path.empty() || options_.port == 0,
                  "configure either unix_path or a TCP port, not both");
    if (options_.cache.enabled) {
        cache_ = std::make_shared<EvaluationCache>(options_.cache);
    }
}

JobServer::~JobServer()
{
    if (started_) {
        shutdown(false);
        wait();
    }
    close_fd(listen_fd_);
    close_fd(wake_pipe_[0]);
    close_fd(wake_pipe_[1]);
}

void
JobServer::start()
{
    CAFQA_REQUIRE(!started_, "job server already started");
    if (::pipe(wake_pipe_) != 0) {
        fail_errno("pipe");
    }

    if (!options_.unix_path.empty()) {
        sockaddr_un address{};
        address.sun_family = AF_UNIX;
        CAFQA_REQUIRE(
            options_.unix_path.size() < sizeof(address.sun_path),
            "unix socket path too long: " + options_.unix_path);
        std::strncpy(address.sun_path, options_.unix_path.c_str(),
                     sizeof(address.sun_path) - 1);
        remove_stale_unix_socket(options_.unix_path);
        listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listen_fd_ < 0) {
            fail_errno("socket(AF_UNIX)");
        }
        if (::bind(listen_fd_,
                   reinterpret_cast<const sockaddr*>(&address),
                   sizeof(address)) != 0) {
            fail_errno("bind(" + options_.unix_path + ")");
        }
    } else {
        sockaddr_in address{};
        address.sin_family = AF_INET;
        address.sin_port =
            htons(static_cast<std::uint16_t>(options_.port));
        if (::inet_pton(AF_INET, options_.host.c_str(),
                        &address.sin_addr) != 1) {
            throw std::runtime_error("bad listen address: " +
                                     options_.host);
        }
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd_ < 0) {
            fail_errno("socket(AF_INET)");
        }
        const int yes = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &yes,
                     sizeof(yes));
        if (::bind(listen_fd_,
                   reinterpret_cast<const sockaddr*>(&address),
                   sizeof(address)) != 0) {
            fail_errno("bind(" + options_.host + ":" +
                       std::to_string(options_.port) + ")");
        }
        sockaddr_in bound{};
        socklen_t bound_size = sizeof(bound);
        if (::getsockname(listen_fd_,
                          reinterpret_cast<sockaddr*>(&bound),
                          &bound_size) != 0) {
            fail_errno("getsockname");
        }
        port_ = ntohs(bound.sin_port);
    }
    if (::listen(listen_fd_, 64) != 0) {
        fail_errno("listen");
    }

    register_callback_gauges();
    started_ = true;
    accept_thread_ = std::thread([this] { accept_loop(); });
    workers_.reserve(options_.workers);
    for (std::size_t i = 0; i < options_.workers; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

void
JobServer::accept_loop()
{
    for (;;) {
        pollfd fds[2] = {
            {listen_fd_, POLLIN, 0},
            {wake_pipe_[0], POLLIN, 0},
        };
        if (::poll(fds, 2, -1) < 0) {
            if (errno == EINTR) {
                continue;
            }
            return;
        }
        if (fds[1].revents != 0) {
            return; // shutdown
        }
        if ((fds[0].revents & POLLIN) == 0) {
            continue;
        }
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            continue;
        }
        if (options_.send_timeout_ms > 0) {
            // Bound every write so a client that stops reading cannot
            // park a worker inside `respond` forever (see
            // Connection::send_locked).
            timeval bound{};
            bound.tv_sec =
                static_cast<time_t>(options_.send_timeout_ms / 1000);
            bound.tv_usec = static_cast<suseconds_t>(
                (options_.send_timeout_ms % 1000) * 1000);
            ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &bound,
                         sizeof(bound));
        }
        auto connection = std::make_shared<Connection>();
        connection->fd = fd;
        {
            MutexLock lock(connections_mutex_);
            connection->id = next_connection_id_++;
            connections_[connection->id] = connection;
            readers_.emplace(
                connection->id,
                std::thread([this, connection] { reader_loop(connection); }));
        }
        reap_finished_readers();
    }
}

void
JobServer::register_callback_gauges()
{
    auto& registry = telemetry::MetricsRegistry::instance();
    // Each callback runs under `metrics_mutex` at scrape time and takes
    // its owner's lock — the `dynamic metrics_mutex -> queue_mutex` and
    // `dynamic metrics_mutex -> shard_mutex` edges in the lock-order
    // manifest.
    registry.set_callback_gauge(
        "cafqa_server_queue_depth", {},
        [this] { return static_cast<double>(queue_.size()); },
        "Jobs admitted but not yet handed to a worker");
    if (cache_) {
        registry.set_callback_gauge(
            "cafqa_cache_entries", {},
            [this] { return static_cast<double>(cache_->stats().entries); },
            "Resident evaluation-cache entries");
        registry.set_callback_gauge(
            "cafqa_cache_resident_bytes", {},
            [this] { return static_cast<double>(cache_->stats().bytes); },
            "Approximate resident evaluation-cache payload bytes");
    }
}

void
JobServer::clear_callback_gauges()
{
    // The registry outlives this server (it is process-wide); a scrape
    // after teardown must not call into freed state.
    auto& registry = telemetry::MetricsRegistry::instance();
    registry.clear_callback_gauge("cafqa_server_queue_depth", {});
    if (cache_) {
        registry.clear_callback_gauge("cafqa_cache_entries", {});
        registry.clear_callback_gauge("cafqa_cache_resident_bytes", {});
    }
}

void
JobServer::reap_finished_readers()
{
    std::vector<std::thread> finished;
    {
        MutexLock lock(connections_mutex_);
        finished.reserve(finished_readers_.size());
        for (const std::uint64_t id : finished_readers_) {
            const auto it = readers_.find(id);
            if (it != readers_.end()) {
                finished.push_back(std::move(it->second));
                readers_.erase(it);
            }
        }
        finished_readers_.clear();
    }
    // Join outside the lock: a reader announces itself finished as its
    // very last locked action, so these joins only wait out a return.
    for (std::thread& reader : finished) {
        reader.join();
    }
}

void
JobServer::reader_loop(std::shared_ptr<Connection> connection)
{
    LineFramer framer(options_.max_line_bytes);
    std::vector<std::string> lines;
    char buffer[4096];
    for (;;) {
        const ssize_t n = ::recv(connection->fd, buffer, sizeof(buffer), 0);
        if (n < 0 && errno == EINTR) {
            continue;
        }
        if (n <= 0) {
            break;
        }
        lines.clear();
        const bool ok = framer.feed(
            std::string_view(buffer, static_cast<std::size_t>(n)), lines);
        for (const std::string& line : lines) {
            if (!line.empty()) {
                handle_line(connection, line);
            }
        }
        if (!ok) {
            connection->send(event_error(
                "request line exceeds " +
                std::to_string(framer.max_line_bytes()) + " bytes"));
            break;
        }
    }
    connection->open.store(false, std::memory_order_relaxed);
    MutexLock lock(connections_mutex_);
    connections_.erase(connection->id);
    // Announce exit LAST so whoever joins us (accept loop reap, or
    // wait()) only ever waits for this return statement.
    finished_readers_.push_back(connection->id);
}

void
JobServer::handle_line(const std::shared_ptr<Connection>& connection,
                       const std::string& line)
{
    Request request;
    try {
        request = parse_request(line);
    } catch (const std::exception& error) {
        metrics_.bad_requests.add();
        // A submit whose spec failed to parse still deserves a per-job
        // rejection (clients correlate by id); salvage the id when the
        // envelope itself is readable.
        try {
            const auto fields = parse_flat_json_object(line);
            const JsonField* op = find_json_field(fields, "op");
            const JsonField* id = find_json_field(fields, "id");
            if (op != nullptr && op->value == "submit" && id != nullptr &&
                id->is_string) {
                rejected_.fetch_add(1, std::memory_order_relaxed);
                metrics_.reject_bad_spec.add();
                connection->send(event_rejected(id->value, error.what()));
                return;
            }
            // lint:allow(catch-swallow) best-effort probe: we only
            // tried to parse enough of the bad request to reject its
            // job id specifically; the error IS reported to the
            // client on the very next line either way.
        } catch (...) {
        }
        connection->send(event_error(error.what()));
        return;
    }
    switch (request.op) {
      case Op::Submit:
        metrics_.submit_requests.add();
        handle_submit(connection, std::move(request));
        break;
      case Op::Cancel: {
        metrics_.cancel_requests.add();
        std::shared_ptr<std::atomic<bool>> token;
        {
            MutexLock lock(jobs_mutex_);
            const auto it = jobs_.find(request.id);
            if (it != jobs_.end()) {
                token = it->second;
            }
        }
        if (token) {
            token->store(true, std::memory_order_relaxed);
            cancelled_.fetch_add(1, std::memory_order_relaxed);
            connection->send(event_cancelled(request.id));
        } else {
            connection->send(event_error("unknown or finished job id \"" +
                                         request.id + "\""));
        }
        break;
      }
      case Op::Stats:
        metrics_.stats_requests.add();
        connection->send(event_stats(
            counters(), cache_ ? cache_->stats() : CacheStats{}));
        break;
      case Op::Metrics: {
        metrics_.metrics_requests.add();
        // No named lock is held here (reader context): the scrape takes
        // metrics_mutex and, inside the callback gauges, queue_mutex /
        // shard_mutex — the declared dynamic manifest edges.
        auto& registry = telemetry::MetricsRegistry::instance();
        connection->send(
            event_metrics(telemetry::wall_timestamp_seconds(),
                          registry.prometheus(), registry.json()));
        break;
      }
      case Op::Shutdown:
        metrics_.shutdown_requests.add();
        shutdown(request.drain);
        break;
    }
}

void
JobServer::handle_submit(const std::shared_ptr<Connection>& connection,
                         Request request)
{
    std::string id = request.id.empty()
                         ? "job-" + std::to_string(next_job_id_.fetch_add(
                               1, std::memory_order_relaxed))
                         : request.id;
    try {
        request.spec.validate();
    } catch (const std::exception& error) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        metrics_.reject_bad_spec.add();
        connection->send(event_rejected(id, error.what()));
        return;
    }

    auto token = std::make_shared<std::atomic<bool>>(false);

    Job job;
    job.client = "conn-" + std::to_string(connection->id);
    job.id = id;
    job.spec = std::move(request.spec);
    job.cancel = token;
    job.respond = [connection](const std::string& line) {
        connection->send(line);
    };

    // Hold the connection's write lock ACROSS the push so `accepted`
    // hits the wire before the worker — which may pop the job
    // immediately — can interleave its `started` event. (No deadlock:
    // the queue lock is never held while writing to a connection.)
    MutexLock lock(connection->write_mutex);
    bool fresh_id;
    Admit admit = Admit::Accepted;
    {
        // Registration and push are ONE critical section: a concurrent
        // cancel must never find (and "cancel") a job the queue then
        // rejects — the client would see `cancelled` followed by
        // `rejected` for an id that never existed.
        MutexLock jobs_lock(jobs_mutex_);
        fresh_id = jobs_.try_emplace(id, token).second;
        if (fresh_id) {
            admit = queue_.push(std::move(job));
            if (admit != Admit::Accepted) {
                jobs_.erase(id);
            }
        }
    }
    if (!fresh_id) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        metrics_.reject_duplicate.add();
        connection->send_locked(event_rejected(
            id, "duplicate job id (still queued or running)"));
        return;
    }
    if (admit != Admit::Accepted) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        (admit == Admit::QueueFull ? metrics_.reject_queue_full
                                   : metrics_.reject_draining)
            .add();
        connection->send_locked(event_rejected(id, to_string(admit)));
        return;
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    connection->send_locked(event_accepted(id, queue_.size()));
}

void
JobServer::worker_loop()
{
    while (auto job = queue_.pop()) {
        busy_.fetch_add(1, std::memory_order_relaxed);
        metrics_.busy_workers.add(1.0);
        process_job(*job);
        metrics_.busy_workers.add(-1.0);
        busy_.fetch_sub(1, std::memory_order_relaxed);
    }
}

void
JobServer::process_job(Job& job)
{
    if (job.cancel->load(std::memory_order_relaxed)) {
        flush_cancelled(job);
        return;
    }
    job.respond(event_started(job.id));

    RunSpec spec = job.spec;
    if (spec.threads == 0) {
        // Workers already run whole jobs side by side; a job leaning on
        // the process-shared pool would fight its siblings for it (same
        // rationale as BatchOptions::run_threads).
        spec.threads = options_.run_threads;
    }
    RunContext context;
    context.cancel = job.cancel;
    context.shared_cache = cache_;

    RunRecord record;
    try {
        record = execute_run_spec(spec, context);
    } catch (const std::exception& error) {
        record = RunRecord{};
        record.ok = false;
        record.error = error.what();
    }
    // Report the spec as submitted, not the thread-count override.
    record.spec = job.spec;
    completed_.fetch_add(1, std::memory_order_relaxed);
    metrics_.jobs_completed.add();
    metrics_.job_latency_ms.observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - job.submitted)
            .count());
    job.respond(event_result(job.id, record));
    unregister_job(job.id);
}

void
JobServer::flush_cancelled(Job& job)
{
    RunRecord record;
    record.spec = job.spec;
    record.ok = false;
    record.cancelled = true;
    record.error = "cancelled before start";
    completed_.fetch_add(1, std::memory_order_relaxed);
    metrics_.jobs_completed.add();
    metrics_.jobs_cancelled.add();
    job.respond(event_result(job.id, record));
    unregister_job(job.id);
}

void
JobServer::unregister_job(const std::string& id)
{
    MutexLock lock(jobs_mutex_);
    jobs_.erase(id);
}

void
JobServer::shutdown(bool drain)
{
    bool expected = false;
    if (!shutdown_requested_.compare_exchange_strong(expected, true)) {
        return; // first call wins
    }
    {
        MutexLock lock(shutdown_mutex_);
        drain_ = drain;
    }
    queue_.close();
    if (!drain) {
        // Cancel everything: in-flight jobs stop at their next recorded
        // evaluation, queued jobs flush cancelled records right here
        // (a worker stuck in a long run must not delay them).
        {
            MutexLock lock(jobs_mutex_);
            // lint:allow(unordered-iter) raising every cancel token;
            // order-insensitive, nothing is serialized here.
            for (auto& [id, token] : jobs_) {
                token->store(true, std::memory_order_relaxed);
            }
        }
        for (Job& job : queue_.drain_now()) {
            flush_cancelled(job);
        }
    }
    // Wake the accept loop (signal-safe: one byte down a pipe).
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
    shutdown_cv_.notify_all();
}

void
JobServer::wait()
{
    {
        MutexLock lock(shutdown_mutex_);
        while (!shutdown_requested_.load()) {
            shutdown_cv_.wait(lock);
        }
    }
    // Unhook the scrape-time callbacks BEFORE teardown (and before
    // taking teardown_mutex_: clearing takes metrics_mutex, and a lock
    // edge out of teardown_mutex_ into it would be a new ordering
    // constraint for nothing). Idempotent, so concurrent waiters are
    // fine; the members the callbacks read outlive `wait` anyway.
    if (started_) {
        clear_callback_gauges();
    }
    MutexLock teardown(teardown_mutex_);
    if (finished_) {
        return;
    }

    // lint:allow(blocking-under-lock) teardown_mutex_ serializes
    // concurrent wait() callers across the whole teardown, including
    // these joins; none of the joined threads ever takes it.
    accept_thread_.join();
    close_fd(listen_fd_);
    if (!options_.unix_path.empty()) {
        ::unlink(options_.unix_path.c_str());
    }

    // Workers exit once the (closed) queue is empty — in drain mode
    // that is after every queued job ran and streamed its record.
    for (std::thread& worker : workers_) {
        // lint:allow(blocking-under-lock) under teardown_mutex_ by
        // design (see the accept_thread_ join above); workers never
        // take it.
        worker.join();
    }

    // Every record is out; say bye and wake the readers.
    bool drain;
    {
        MutexLock lock(shutdown_mutex_);
        drain = drain_;
    }
    std::vector<std::shared_ptr<Connection>> snapshot;
    {
        MutexLock lock(connections_mutex_);
        snapshot.reserve(connections_.size());
        // lint:allow(unordered-iter) bye goes to every connection;
        // each client only observes its own socket, so cross-client
        // order cannot leak into any output.
        for (const auto& [id, connection] : connections_) {
            snapshot.push_back(connection);
        }
    }
    for (const auto& connection : snapshot) {
        connection->send(event_bye(drain ? "drain" : "now"));
        connection->open.store(false, std::memory_order_relaxed);
        ::shutdown(connection->fd, SHUT_RDWR);
    }
    std::vector<std::thread> readers;
    {
        MutexLock lock(connections_mutex_);
        readers.reserve(readers_.size());
        // lint:allow(unordered-iter) collecting handles to join;
        // join order is immaterial and produces no output.
        for (auto& [id, reader] : readers_) {
            readers.push_back(std::move(reader));
        }
        readers_.clear();
        finished_readers_.clear();
    }
    for (std::thread& reader : readers) {
        // lint:allow(blocking-under-lock) under teardown_mutex_ by
        // design (see the accept_thread_ join above); readers observe
        // the closed socket and exit without taking it.
        reader.join();
    }
    {
        MutexLock lock(connections_mutex_);
        connections_.clear();
    }
    finished_ = true;
}

ServerCounters
JobServer::counters() const
{
    ServerCounters out;
    out.submitted = submitted_.load(std::memory_order_relaxed);
    out.completed = completed_.load(std::memory_order_relaxed);
    out.cancelled = cancelled_.load(std::memory_order_relaxed);
    out.rejected = rejected_.load(std::memory_order_relaxed);
    out.queued = queue_.size();
    out.workers = options_.workers;
    out.busy = busy_.load(std::memory_order_relaxed);
    return out;
}

} // namespace cafqa::server
