/**
 * @file
 * Unguided discrete search baselines for the paper's Section 5
 * ablation: plain uniform random search and exhaustive enumeration.
 * Random search is what Fig. 7's warm-up period degenerates to without
 * the surrogate; exhaustive enumeration certifies the true optimum on
 * small spaces (the paper uses it to validate BO on H2-sized ansatze).
 *
 * Registry keys: "random" and "exhaustive".
 */
#ifndef CAFQA_OPT_SEARCH_BASELINES_HPP
#define CAFQA_OPT_SEARCH_BASELINES_HPP

#include <cstdint>

#include "opt/optimizer.hpp"

namespace cafqa {

/** Random-search controls. */
struct RandomSearchOptions
{
    /** Uniform samples drawn when the criteria set no evaluation cap. */
    std::size_t samples = 500;
    std::uint64_t seed = 2023;
};

/**
 * Uniform random sampling with the same bounded-retry deduplication as
 * the Bayesian warm-up (registry key "random"). Honors
 * `SearchContext::batch` by generating the whole sample block up front
 * and fanning the evaluations out — the trajectory is identical to the
 * serial path.
 */
class RandomSearchOptimizer final : public DiscreteOptimizer
{
  public:
    explicit RandomSearchOptimizer(RandomSearchOptions options = {});

    std::string_view name() const override { return "random"; }

    OptimizeOutcome minimize(const DiscreteObjective& objective,
                             const DiscreteSpace& space,
                             const StoppingCriteria& criteria = {},
                             const SearchContext& context = {}) override;

  private:
    RandomSearchOptions options_;
};

/**
 * Exhaustive ascending enumeration of the whole space (registry key
 * "exhaustive"). Guaranteed to find the global optimum when allowed to
 * finish (`stop_reason == SpaceExhausted`); combine with an evaluation
 * or wall-clock budget on larger spaces. Refuses spaces beyond ~2*10^7
 * configurations unless some stopping criterion bounds the run.
 */
class ExhaustiveOptimizer final : public DiscreteOptimizer
{
  public:
    std::string_view name() const override { return "exhaustive"; }

    OptimizeOutcome minimize(const DiscreteObjective& objective,
                             const DiscreteSpace& space,
                             const StoppingCriteria& criteria = {},
                             const SearchContext& context = {}) override;
};

} // namespace cafqa

#endif // CAFQA_OPT_SEARCH_BASELINES_HPP
