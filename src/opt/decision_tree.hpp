/**
 * @file
 * Regression tree over discrete/continuous feature vectors — the building
 * block of the random-forest surrogate model used by CAFQA's Bayesian
 * optimization (paper Section 5).
 */
#ifndef CAFQA_OPT_DECISION_TREE_HPP
#define CAFQA_OPT_DECISION_TREE_HPP

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace cafqa {

/** Tree growth controls. */
struct TreeOptions
{
    std::size_t max_depth = 16;
    std::size_t min_samples_leaf = 2;
    /** Features considered per split; 0 means all. */
    std::size_t feature_subset = 0;
};

/** CART-style regression tree (variance-reduction splits). */
class DecisionTree
{
  public:
    /**
     * Fit to rows `x[i]` with targets `y[i]`. `rng` drives the random
     * feature subsets (pass a fixed-seed Rng for determinism).
     */
    void fit(const std::vector<std::vector<double>>& x,
             const std::vector<double>& y, Rng& rng,
             const TreeOptions& options = {});

    /** Predict the target for one row. */
    double predict(const std::vector<double>& x) const;

    /** Number of nodes (for tests). */
    std::size_t node_count() const { return nodes_.size(); }

  private:
    struct Node
    {
        // Leaf when feature < 0.
        int feature = -1;
        double threshold = 0.0;
        double value = 0.0;
        int left = -1;
        int right = -1;
    };

    int build(const std::vector<std::vector<double>>& x,
              const std::vector<double>& y,
              std::vector<std::size_t>& indices, std::size_t depth,
              Rng& rng, const TreeOptions& options);

    std::vector<Node> nodes_;
};

} // namespace cafqa

#endif // CAFQA_OPT_DECISION_TREE_HPP
