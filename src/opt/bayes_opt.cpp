#include "opt/bayes_opt.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "common/error.hpp"
#include "opt/discrete_sampling.hpp"

namespace cafqa {

namespace {

std::vector<double>
to_features(const std::vector<int>& config)
{
    return std::vector<double>(config.begin(), config.end());
}

} // namespace

BayesOptimizer::BayesOptimizer(BayesOptOptions options)
    : options_(std::move(options))
{
}

OptimizeOutcome
BayesOptimizer::minimize(const DiscreteObjective& objective,
                         const DiscreteSpace& space,
                         const StoppingCriteria& criteria,
                         const SearchContext& context)
{
    validate_space(space);
    validate_seed_configs(options_.seed_configs, space);
    validate_seed_configs(context.seed_configs, space);
    const BayesOptOptions& options = options_;
    Rng rng(options.seed);

    ProgressCallback progress;
    if (options.progress || context.progress) {
        progress = [&options, &context](std::size_t evaluation,
                                        double best) {
            if (options.progress) {
                options.progress(evaluation, best);
            }
            if (context.progress) {
                context.progress(evaluation, best);
            }
        };
    }
    OutcomeRecorder recorder(criteria, criteria.max_evaluations, progress);

    std::vector<std::vector<int>> configs;
    std::vector<std::vector<double>> features;
    std::vector<double> values;
    std::unordered_set<std::size_t> seen;

    auto record = [&](const std::vector<int>& config, double value) {
        configs.push_back(config);
        features.push_back(to_features(config));
        values.push_back(value);
        seen.insert(config_hash(config));
        recorder.record(config, value);
    };

    auto evaluate = [&](const std::vector<int>& config) {
        record(config, objective(config));
    };

    const DiscreteBatchEvaluator& batch =
        context.batch ? context.batch : options.warmup_batch;

    StopReason reason = StopReason::BudgetExhausted;
    try {
        // ---- Prior injection: caller-provided configurations first
        //      (the options' own seeds, then the context's). ----
        for (const auto* seeds : {&options.seed_configs,
                                  &context.seed_configs}) {
            for (const auto& config : *seeds) {
                if (seen.count(config_hash(config)) == 0) {
                    evaluate(config);
                }
            }
        }

        // ---- Warm-up: random sampling (deduplicated, bounded
        //      retries). A draw that is STILL a duplicate after the
        //      retries is dropped rather than dispatched: re-evaluating
        //      it would double-count the point against the evaluation
        //      budget (and, in the batched path, ship redundant work to
        //      the pool). The drop happens after the same RNG draws as
        //      before, so trajectories on spaces where the retries
        //      always succeed — every realistic CAFQA space — are
        //      unchanged. ----
        const std::size_t warmup =
            std::min(options.warmup, recorder.remaining_budget());
        if (batch && warmup > 0) {
            // Batched path: generate the whole block first (same
            // RNG/dedup draws as the serial loop — each config is marked
            // seen before the next is drawn), evaluate it in one call,
            // record in order.
            std::vector<std::vector<int>> block;
            block.reserve(warmup);
            for (std::size_t w = 0; w < warmup; ++w) {
                std::vector<int> config = random_config(space, rng);
                for (int attempt = 0;
                     attempt < 16 && seen.count(config_hash(config)) != 0;
                     ++attempt) {
                    config = random_config(space, rng);
                }
                if (seen.count(config_hash(config)) != 0) {
                    continue; // exhausted retries: already evaluated
                }
                seen.insert(config_hash(config));
                block.push_back(std::move(config));
            }
            const std::vector<double> block_values = batch(block);
            CAFQA_REQUIRE(block_values.size() == block.size(),
                          "warmup_batch returned wrong value count");
            for (std::size_t w = 0; w < block.size(); ++w) {
                record(block[w], block_values[w]);
            }
        } else {
            for (std::size_t w = 0; w < warmup; ++w) {
                std::vector<int> config = random_config(space, rng);
                for (int attempt = 0;
                     attempt < 16 && seen.count(config_hash(config)) != 0;
                     ++attempt) {
                    config = random_config(space, rng);
                }
                if (seen.count(config_hash(config)) != 0) {
                    continue; // exhausted retries: already evaluated
                }
                evaluate(config);
            }
        }

        // ---- Model-guided search. ----
        RandomForest forest;
        std::size_t stall = 0;
        double best_at_last_improvement = recorder.best_value();

        for (std::size_t iter = 0; iter < options.iterations; ++iter) {
            if (options.stall_limit > 0 && stall >= options.stall_limit) {
                reason = StopReason::Stalled;
                break;
            }
            if (iter % std::max<std::size_t>(1, options.refit_every) == 0) {
                forest.fit(features, values, options.seed + 17 * (iter + 1),
                           options.forest);
            }

            // Candidate pool: uniform random + mutations of elites.
            std::vector<std::vector<int>> pool;
            pool.reserve(options.random_candidates +
                         options.mutation_candidates);
            for (std::size_t c = 0; c < options.random_candidates; ++c) {
                pool.push_back(random_config(space, rng));
            }
            if (!values.empty() && options.mutation_candidates > 0) {
                // Rank evaluated configs by value, mutate the best few.
                std::vector<std::size_t> order(values.size());
                for (std::size_t i = 0; i < order.size(); ++i) {
                    order[i] = i;
                }
                std::sort(order.begin(), order.end(),
                          [&](std::size_t a, std::size_t b) {
                              return values[a] < values[b];
                          });
                const std::size_t elites =
                    std::min(options.elite_size, order.size());
                for (std::size_t c = 0; c < options.mutation_candidates;
                     ++c) {
                    const std::size_t parent =
                        order[static_cast<std::size_t>(rng.uniform_int(
                            0, static_cast<std::int64_t>(elites) - 1))];
                    std::vector<int> child = configs[parent];
                    const int flips =
                        static_cast<int>(rng.uniform_int(1, 2));
                    for (int fidx = 0; fidx < flips; ++fidx) {
                        const auto pos =
                            static_cast<std::size_t>(rng.uniform_int(
                                0,
                                static_cast<std::int64_t>(child.size()) -
                                    1));
                        child[pos] = static_cast<int>(rng.uniform_int(
                            0, space.cardinalities[pos] - 1));
                    }
                    pool.push_back(std::move(child));
                }
            }

            // Greedy acquisition: pick the unevaluated candidate with
            // the lowest surrogate prediction (epsilon-random for
            // exploration).
            std::vector<int>* chosen = nullptr;
            if (rng.bernoulli(options.epsilon_random)) {
                for (auto& candidate : pool) {
                    if (seen.count(config_hash(candidate)) == 0) {
                        chosen = &candidate;
                        break;
                    }
                }
            } else {
                double best_pred = 0.0;
                for (auto& candidate : pool) {
                    if (seen.count(config_hash(candidate)) != 0) {
                        continue;
                    }
                    const double pred =
                        forest.predict(to_features(candidate));
                    if (chosen == nullptr || pred < best_pred) {
                        best_pred = pred;
                        chosen = &candidate;
                    }
                }
            }
            if (chosen == nullptr) {
                // Whole pool already evaluated — fresh random fallback.
                evaluate(random_config(space, rng));
            } else {
                evaluate(*chosen);
            }

            if (recorder.best_value() < best_at_last_improvement - 1e-15) {
                best_at_last_improvement = recorder.best_value();
                stall = 0;
            } else {
                ++stall;
            }
        }
    } catch (const OutcomeRecorder::EarlyStop&) {
        // A stopping criterion fired; the recorder holds the reason.
    }

    return recorder.finish(reason);
}

BayesOptResult
bayes_opt_minimize(
    const std::function<double(const std::vector<int>&)>& objective,
    const DiscreteSpace& space, const BayesOptOptions& options)
{
    return BayesOptimizer(options).minimize(objective, space);
}

} // namespace cafqa
