#include "opt/bayes_opt.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.hpp"

namespace cafqa {

namespace {

/** Hash a configuration for deduplication. */
std::size_t
config_hash(const std::vector<int>& config)
{
    std::size_t h = 0x9e3779b97f4a7c15ull;
    for (const int v : config) {
        h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ull +
             (h << 6) + (h >> 2);
    }
    return h;
}

std::vector<int>
random_config(const DiscreteSpace& space, Rng& rng)
{
    std::vector<int> config(space.num_parameters());
    for (std::size_t i = 0; i < config.size(); ++i) {
        config[i] =
            static_cast<int>(rng.uniform_int(0, space.cardinalities[i] - 1));
    }
    return config;
}

std::vector<double>
to_features(const std::vector<int>& config)
{
    return std::vector<double>(config.begin(), config.end());
}

} // namespace

double
DiscreteSpace::log10_size() const
{
    double total = 0.0;
    for (const int c : cardinalities) {
        total += std::log10(static_cast<double>(c));
    }
    return total;
}

BayesOptResult
bayes_opt_minimize(
    const std::function<double(const std::vector<int>&)>& objective,
    const DiscreteSpace& space, const BayesOptOptions& options)
{
    CAFQA_REQUIRE(space.num_parameters() > 0, "empty search space");
    for (const int c : space.cardinalities) {
        CAFQA_REQUIRE(c >= 1, "parameter cardinality must be positive");
    }
    Rng rng(options.seed);

    BayesOptResult result;
    std::vector<std::vector<int>> configs;
    std::vector<std::vector<double>> features;
    std::vector<double> values;
    std::unordered_set<std::size_t> seen;

    auto record = [&](const std::vector<int>& config, double value) {
        configs.push_back(config);
        features.push_back(to_features(config));
        values.push_back(value);
        seen.insert(config_hash(config));
        result.history.push_back(value);
        if (result.best_trace.empty() || value < result.best_trace.back()) {
            result.best_trace.push_back(value);
            result.best_value = value;
            result.best_config = config;
            result.evaluations_to_best = result.history.size();
        } else {
            result.best_trace.push_back(result.best_trace.back());
        }
        if (options.progress) {
            options.progress(result.history.size(), result.best_value);
        }
    };

    auto evaluate = [&](const std::vector<int>& config) {
        const double value = objective(config);
        record(config, value);
        return value;
    };

    // ---- Prior injection: caller-provided configurations first. ----
    for (const auto& config : options.seed_configs) {
        CAFQA_REQUIRE(config.size() == space.num_parameters(),
                      "seed configuration has wrong parameter count");
        for (std::size_t i = 0; i < config.size(); ++i) {
            CAFQA_REQUIRE(config[i] >= 0 &&
                              config[i] < space.cardinalities[i],
                          "seed configuration value out of range");
        }
        if (seen.count(config_hash(config)) == 0) {
            evaluate(config);
        }
    }

    // ---- Warm-up: random sampling (deduplicated, bounded retries). ----
    if (options.warmup_batch && options.warmup > 0) {
        // Batched path: generate the whole block first (same RNG/dedup
        // draws as the serial loop — each config is marked seen before
        // the next is drawn), evaluate it in one call, record in order.
        std::vector<std::vector<int>> block;
        block.reserve(options.warmup);
        for (std::size_t w = 0; w < options.warmup; ++w) {
            std::vector<int> config = random_config(space, rng);
            for (int attempt = 0;
                 attempt < 16 && seen.count(config_hash(config)) != 0;
                 ++attempt) {
                config = random_config(space, rng);
            }
            seen.insert(config_hash(config));
            block.push_back(std::move(config));
        }
        const std::vector<double> block_values =
            options.warmup_batch(block);
        CAFQA_REQUIRE(block_values.size() == block.size(),
                      "warmup_batch returned wrong value count");
        for (std::size_t w = 0; w < block.size(); ++w) {
            record(block[w], block_values[w]);
        }
    } else {
        for (std::size_t w = 0; w < options.warmup; ++w) {
            std::vector<int> config = random_config(space, rng);
            for (int attempt = 0;
                 attempt < 16 && seen.count(config_hash(config)) != 0;
                 ++attempt) {
                config = random_config(space, rng);
            }
            evaluate(config);
        }
    }

    // ---- Model-guided search. ----
    RandomForest forest;
    std::size_t stall = 0;
    double best_at_last_improvement = result.best_value;

    for (std::size_t iter = 0; iter < options.iterations; ++iter) {
        if (options.stall_limit > 0 && stall >= options.stall_limit) {
            break;
        }
        if (iter % std::max<std::size_t>(1, options.refit_every) == 0) {
            forest.fit(features, values, options.seed + 17 * (iter + 1),
                       options.forest);
        }

        // Candidate pool: uniform random + mutations of elite configs.
        std::vector<std::vector<int>> pool;
        pool.reserve(options.random_candidates +
                     options.mutation_candidates);
        for (std::size_t c = 0; c < options.random_candidates; ++c) {
            pool.push_back(random_config(space, rng));
        }
        if (!values.empty() && options.mutation_candidates > 0) {
            // Rank evaluated configs by value, mutate the best few.
            std::vector<std::size_t> order(values.size());
            for (std::size_t i = 0; i < order.size(); ++i) {
                order[i] = i;
            }
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          return values[a] < values[b];
                      });
            const std::size_t elites =
                std::min(options.elite_size, order.size());
            for (std::size_t c = 0; c < options.mutation_candidates; ++c) {
                const std::size_t parent = order[static_cast<std::size_t>(
                    rng.uniform_int(0,
                                    static_cast<std::int64_t>(elites) - 1))];
                std::vector<int> child = configs[parent];
                const int flips = static_cast<int>(rng.uniform_int(1, 2));
                for (int fidx = 0; fidx < flips; ++fidx) {
                    const auto pos = static_cast<std::size_t>(rng.uniform_int(
                        0,
                        static_cast<std::int64_t>(child.size()) - 1));
                    child[pos] = static_cast<int>(rng.uniform_int(
                        0, space.cardinalities[pos] - 1));
                }
                pool.push_back(std::move(child));
            }
        }

        // Greedy acquisition: pick the unevaluated candidate with the
        // lowest surrogate prediction (epsilon-random for exploration).
        std::vector<int>* chosen = nullptr;
        if (rng.bernoulli(options.epsilon_random)) {
            for (auto& candidate : pool) {
                if (seen.count(config_hash(candidate)) == 0) {
                    chosen = &candidate;
                    break;
                }
            }
        } else {
            double best_pred = 0.0;
            for (auto& candidate : pool) {
                if (seen.count(config_hash(candidate)) != 0) {
                    continue;
                }
                const double pred = forest.predict(to_features(candidate));
                if (chosen == nullptr || pred < best_pred) {
                    best_pred = pred;
                    chosen = &candidate;
                }
            }
        }
        if (chosen == nullptr) {
            // Whole pool already evaluated — fall back to fresh random.
            std::vector<int> config = random_config(space, rng);
            evaluate(config);
        } else {
            evaluate(*chosen);
        }

        if (result.best_value < best_at_last_improvement - 1e-15) {
            best_at_last_improvement = result.best_value;
            stall = 0;
        } else {
            ++stall;
        }
    }

    CAFQA_ASSERT(!result.history.empty(), "no evaluations performed");
    return result;
}

} // namespace cafqa
