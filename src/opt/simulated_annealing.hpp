/**
 * @file
 * Simulated annealing over discrete configuration spaces — a baseline
 * search strategy used by the ablation bench to justify the paper's
 * choice of Bayesian optimization with a random-forest surrogate
 * (Section 5).
 *
 * `SimulatedAnnealingOptimizer` is the `DiscreteOptimizer`
 * implementation (registry key "anneal"); the free function remains as
 * a thin shim.
 */
#ifndef CAFQA_OPT_SIMULATED_ANNEALING_HPP
#define CAFQA_OPT_SIMULATED_ANNEALING_HPP

#include <functional>

#include "opt/optimizer.hpp"

namespace cafqa {

/** Annealing schedule controls. */
struct AnnealingOptions
{
    /** Schedule length = total evaluations. A nonzero
     *  `StoppingCriteria::max_evaluations` replaces this (one proposal
     *  costs one evaluation, so the budget is the schedule). */
    std::size_t iterations = 500;
    double initial_temperature = 1.0;
    double final_temperature = 1e-3;
    std::uint64_t seed = 99;
    /** Coordinates mutated per proposal. */
    std::size_t mutations_per_step = 1;
};

/** Geometric-cooling Metropolis annealing (registry key "anneal").
 *  When `SearchContext::seed_configs` is set, the seeds are evaluated
 *  first and the best of them becomes the starting state. */
class SimulatedAnnealingOptimizer final : public DiscreteOptimizer
{
  public:
    explicit SimulatedAnnealingOptimizer(AnnealingOptions options = {});

    std::string_view name() const override { return "anneal"; }

    OptimizeOutcome minimize(const DiscreteObjective& objective,
                             const DiscreteSpace& space,
                             const StoppingCriteria& criteria = {},
                             const SearchContext& context = {}) override;

  private:
    AnnealingOptions options_;
};

/**
 * Minimize `objective` over a discrete space with geometric-cooling
 * Metropolis annealing. Deprecated shim over
 * `SimulatedAnnealingOptimizer`; returns the shared `OptimizeOutcome`
 * so the strategies stay directly comparable.
 */
OptimizeOutcome simulated_annealing_minimize(
    const std::function<double(const std::vector<int>&)>& objective,
    const DiscreteSpace& space, const AnnealingOptions& options = {});

} // namespace cafqa

#endif // CAFQA_OPT_SIMULATED_ANNEALING_HPP
