/**
 * @file
 * Simulated annealing over discrete configuration spaces — a baseline
 * search strategy used by the ablation bench to justify the paper's
 * choice of Bayesian optimization with a random-forest surrogate
 * (Section 5).
 */
#ifndef CAFQA_OPT_SIMULATED_ANNEALING_HPP
#define CAFQA_OPT_SIMULATED_ANNEALING_HPP

#include <functional>

#include "opt/bayes_opt.hpp"

namespace cafqa {

/** Annealing schedule controls. */
struct AnnealingOptions
{
    std::size_t iterations = 500;
    double initial_temperature = 1.0;
    double final_temperature = 1e-3;
    std::uint64_t seed = 99;
    /** Coordinates mutated per proposal. */
    std::size_t mutations_per_step = 1;
};

/**
 * Minimize `objective` over a discrete space with geometric-cooling
 * Metropolis annealing. Returns the same result shape as the Bayesian
 * optimizer so the two are directly comparable.
 */
BayesOptResult simulated_annealing_minimize(
    const std::function<double(const std::vector<int>&)>& objective,
    const DiscreteSpace& space, const AnnealingOptions& options = {});

} // namespace cafqa

#endif // CAFQA_OPT_SIMULATED_ANNEALING_HPP
