#include "opt/search_baselines.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/error.hpp"
#include "opt/discrete_sampling.hpp"

namespace cafqa {

RandomSearchOptimizer::RandomSearchOptimizer(RandomSearchOptions options)
    : options_(options)
{
}

OptimizeOutcome
RandomSearchOptimizer::minimize(const DiscreteObjective& objective,
                                const DiscreteSpace& space,
                                const StoppingCriteria& criteria,
                                const SearchContext& context)
{
    validate_space(space);
    validate_seed_configs(context.seed_configs, space);
    CAFQA_REQUIRE(options_.samples > 0 || criteria.max_evaluations > 0 ||
                      !context.seed_configs.empty(),
                  "random search needs samples, an evaluation budget, or "
                  "seed configurations");
    Rng rng(options_.seed);
    OutcomeRecorder recorder(criteria, criteria.max_evaluations,
                             context.progress);

    // Sample generation runs in bounded chunks: the RNG/dedup sequence
    // (each config marked seen before the next draw, the warm-up's
    // idiom) is independent of the chunking and of whether a chunk is
    // evaluated serially or through `context.batch`, so the trajectory
    // is identical either way — and a huge evaluation budget never
    // materializes as one huge allocation.
    constexpr std::size_t kChunk = 4096;

    std::unordered_set<std::size_t> seen;
    std::size_t dry_chunks = 0;
    try {
        for (const auto& config : context.seed_configs) {
            if (seen.insert(config_hash(config)).second) {
                recorder.record(config, objective(config));
            }
        }

        // The budget is re-queried per chunk so unique-evaluation
        // accounting composes: under `criteria.unique_evaluations`,
        // recorded repeats do not consume budget, so the loop keeps
        // drawing until enough *distinct* points have been evaluated.
        // In that mode a draw that is still a duplicate after the
        // bounded retries is dropped rather than re-evaluated (it could
        // never make progress), and two consecutive all-duplicate
        // chunks end the run — the space is saturated.
        std::size_t drawn = 0;
        std::vector<std::vector<int>> block;
        while (dry_chunks < 2) {
            const std::size_t remaining = criteria.max_evaluations > 0
                ? recorder.remaining_budget()
                : (options_.samples > drawn ? options_.samples - drawn
                                            : 0);
            if (remaining == 0) {
                break;
            }
            block.clear();
            const std::size_t chunk = std::min(remaining, kChunk);
            for (std::size_t s = 0; s < chunk; ++s) {
                std::vector<int> config = random_config(space, rng);
                for (int attempt = 0;
                     attempt < 16 && seen.count(config_hash(config)) != 0;
                     ++attempt) {
                    config = random_config(space, rng);
                }
                ++drawn;
                if (criteria.unique_evaluations &&
                    seen.count(config_hash(config)) != 0) {
                    continue; // exhausted retries: already evaluated
                }
                seen.insert(config_hash(config));
                block.push_back(std::move(config));
            }
            if (block.empty()) {
                ++dry_chunks;
                continue;
            }
            dry_chunks = 0;
            if (context.batch) {
                const std::vector<double> values = context.batch(block);
                CAFQA_REQUIRE(values.size() == block.size(),
                              "batch evaluator returned wrong value count");
                for (std::size_t s = 0; s < block.size(); ++s) {
                    recorder.record(block[s], values[s]);
                }
            } else {
                for (const auto& config : block) {
                    recorder.record(config, objective(config));
                }
            }
        }
    } catch (const OutcomeRecorder::EarlyStop&) {
        // A stopping criterion fired; the recorder holds the reason.
    }

    return recorder.finish(dry_chunks >= 2 ? StopReason::SpaceExhausted
                                           : StopReason::BudgetExhausted);
}

OptimizeOutcome
ExhaustiveOptimizer::minimize(const DiscreteObjective& objective,
                              const DiscreteSpace& space,
                              const StoppingCriteria& criteria,
                              const SearchContext& context)
{
    validate_space(space);
    validate_seed_configs(context.seed_configs, space);
    // Only criteria that terminate unconditionally count as bounds: an
    // unreached target value or a never-stalling patience window would
    // still enumerate the whole space.
    const bool bounded =
        criteria.max_evaluations > 0 || criteria.max_seconds > 0.0;
    CAFQA_REQUIRE(bounded || space.log10_size() <= 7.35,
                  "space too large to enumerate exhaustively; set an "
                  "evaluation or wall-clock budget to bound the run");
    OutcomeRecorder recorder(criteria, criteria.max_evaluations,
                             context.progress);

    try {
        // Seeds first (gives target-value exits a strong start), then an
        // ascending odometer scan skipping the already-evaluated seeds
        // (same dedup hash as the sampling strategies; duplicate seeds
        // are evaluated once).
        std::unordered_set<std::size_t> seen;
        for (const auto& config : context.seed_configs) {
            if (seen.insert(config_hash(config)).second) {
                recorder.record(config, objective(config));
            }
        }

        std::vector<int> steps(space.num_parameters(), 0);
        bool done = false;
        while (!done) {
            if (seen.count(config_hash(steps)) == 0) {
                recorder.record(steps, objective(steps));
            }
            done = true;
            for (std::size_t i = 0; i < steps.size(); ++i) {
                if (++steps[i] < space.cardinalities[i]) {
                    done = false;
                    break;
                }
                steps[i] = 0;
            }
        }
    } catch (const OutcomeRecorder::EarlyStop&) {
        // A stopping criterion fired; the recorder holds the reason.
    }

    return recorder.finish(StopReason::SpaceExhausted);
}

} // namespace cafqa
