/**
 * @file
 * Discrete Bayesian optimization over categorical parameter spaces —
 * CAFQA's search engine (paper Section 5, replacing HyperMapper).
 *
 * The loop alternates a random-forest surrogate fit with a greedy
 * acquisition over a candidate pool (uniform random samples plus local
 * mutations of the best configurations found so far), after an initial
 * random warm-up phase (Fig. 7: "the first 1000 iterations are a warm-up
 * period").
 *
 * `BayesOptimizer` is the `DiscreteOptimizer` implementation (registry
 * key "bayes"); `bayes_opt_minimize` remains as a thin shim.
 */
#ifndef CAFQA_OPT_BAYES_OPT_HPP
#define CAFQA_OPT_BAYES_OPT_HPP

#include <functional>
#include <vector>

#include "opt/optimizer.hpp"
#include "opt/random_forest.hpp"

namespace cafqa {

/** Bayesian optimization controls. */
struct BayesOptOptions
{
    /** Random-sampling warm-up evaluations. */
    std::size_t warmup = 200;
    /** Model-guided evaluations after warm-up. */
    std::size_t iterations = 300;
    std::uint64_t seed = 2023;
    /** Uniform random candidates per acquisition round. */
    std::size_t random_candidates = 256;
    /** Mutated candidates per acquisition round (from top configs). */
    std::size_t mutation_candidates = 128;
    /** Top configurations used as mutation seeds. */
    std::size_t elite_size = 8;
    /** Probability of taking a random candidate instead of the greedy
     *  argmin (exploration). */
    double epsilon_random = 0.05;
    /** Forest refit cadence (1 = every iteration). */
    std::size_t refit_every = 1;
    ForestOptions forest;
    /** Stop early after this many non-improving iterations (0 = off). */
    std::size_t stall_limit = 0;
    /** Configurations evaluated before the random warm-up (prior
     *  injection — e.g. the Hartree-Fock point, which guarantees the
     *  search result never falls behind the HF baseline). Merged with
     *  `SearchContext::seed_configs` (options first, duplicates
     *  skipped). */
    std::vector<std::vector<int>> seed_configs;
    /** Optional progress callback (evaluation index, current best);
     *  invoked in addition to `SearchContext::progress`. */
    std::function<void(std::size_t, double)> progress;
    /**
     * Optional batched evaluator for the warm-up phase: given a block of
     * configurations, return their objective values in order. The warm-up
     * configurations are generated up front with the same RNG/dedup
     * sequence as the serial path and the results are recorded in
     * generation order, so the search trajectory is bit-identical to the
     * serial path — but the block can be fanned out across a thread pool
     * (the objective must then be safe to evaluate concurrently, e.g. on
     * per-thread backend clones). `SearchContext::batch` takes
     * precedence when both are set.
     */
    std::function<std::vector<double>(const std::vector<std::vector<int>>&)>
        warmup_batch;
};

/** Deprecated alias kept for one release; use `OptimizeOutcome`.
 *  (`best_config`, `best_value`, `history`, `best_trace` and
 *  `evaluations_to_best` carry over unchanged.) */
using BayesOptResult = OptimizeOutcome;

/** Random-forest Bayesian optimization (registry key "bayes"). */
class BayesOptimizer final : public DiscreteOptimizer
{
  public:
    explicit BayesOptimizer(BayesOptOptions options = {});

    std::string_view name() const override { return "bayes"; }

    OptimizeOutcome minimize(const DiscreteObjective& objective,
                             const DiscreteSpace& space,
                             const StoppingCriteria& criteria = {},
                             const SearchContext& context = {}) override;

  private:
    BayesOptOptions options_;
};

/** Minimize `objective` over the discrete space. Deprecated shim over
 *  `BayesOptimizer`. */
BayesOptResult bayes_opt_minimize(
    const std::function<double(const std::vector<int>&)>& objective,
    const DiscreteSpace& space, const BayesOptOptions& options = {});

} // namespace cafqa

#endif // CAFQA_OPT_BAYES_OPT_HPP
