#include "opt/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace cafqa {

namespace {

double
mean_of(const std::vector<double>& y, const std::vector<std::size_t>& idx)
{
    double sum = 0.0;
    for (const std::size_t i : idx) {
        sum += y[i];
    }
    return sum / static_cast<double>(idx.size());
}

} // namespace

void
DecisionTree::fit(const std::vector<std::vector<double>>& x,
                  const std::vector<double>& y, Rng& rng,
                  const TreeOptions& options)
{
    CAFQA_REQUIRE(!x.empty() && x.size() == y.size(),
                  "training data shape mismatch");
    nodes_.clear();
    std::vector<std::size_t> indices(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        indices[i] = i;
    }
    build(x, y, indices, 0, rng, options);
}

int
DecisionTree::build(const std::vector<std::vector<double>>& x,
                    const std::vector<double>& y,
                    std::vector<std::size_t>& indices, std::size_t depth,
                    Rng& rng, const TreeOptions& options)
{
    const int node_id = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{});
    nodes_[static_cast<std::size_t>(node_id)].value = mean_of(y, indices);

    if (depth >= options.max_depth ||
        indices.size() < 2 * options.min_samples_leaf) {
        return node_id;
    }

    const std::size_t num_features = x[0].size();
    std::size_t subset = options.feature_subset;
    if (subset == 0 || subset > num_features) {
        subset = num_features;
    }
    const std::vector<std::size_t> features =
        rng.sample_without_replacement(num_features, subset);

    // Find the split minimizing the summed squared error of children.
    double best_score = std::numeric_limits<double>::infinity();
    int best_feature = -1;
    double best_threshold = 0.0;

    std::vector<std::pair<double, std::size_t>> sorted;
    for (const std::size_t f : features) {
        sorted.clear();
        for (const std::size_t i : indices) {
            sorted.emplace_back(x[i][f], i);
        }
        std::sort(sorted.begin(), sorted.end());

        // Prefix sums enable O(1) variance updates while scanning.
        double left_sum = 0.0;
        double left_sq = 0.0;
        double right_sum = 0.0;
        double right_sq = 0.0;
        for (const auto& [value, i] : sorted) {
            (void)value;
            right_sum += y[i];
            right_sq += y[i] * y[i];
        }
        for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
            const double yi = y[sorted[k].second];
            left_sum += yi;
            left_sq += yi * yi;
            right_sum -= yi;
            right_sq -= yi * yi;
            if (sorted[k].first == sorted[k + 1].first) {
                continue; // no valid threshold between equal values
            }
            const std::size_t nl = k + 1;
            const std::size_t nr = sorted.size() - nl;
            if (nl < options.min_samples_leaf ||
                nr < options.min_samples_leaf) {
                continue;
            }
            const double sse_left =
                left_sq - left_sum * left_sum / static_cast<double>(nl);
            const double sse_right =
                right_sq - right_sum * right_sum / static_cast<double>(nr);
            const double score = sse_left + sse_right;
            if (score < best_score) {
                best_score = score;
                best_feature = static_cast<int>(f);
                best_threshold =
                    0.5 * (sorted[k].first + sorted[k + 1].first);
            }
        }
    }

    if (best_feature < 0) {
        return node_id; // no useful split found
    }

    std::vector<std::size_t> left_idx;
    std::vector<std::size_t> right_idx;
    for (const std::size_t i : indices) {
        if (x[i][static_cast<std::size_t>(best_feature)] <= best_threshold) {
            left_idx.push_back(i);
        } else {
            right_idx.push_back(i);
        }
    }
    if (left_idx.empty() || right_idx.empty()) {
        return node_id;
    }

    nodes_[static_cast<std::size_t>(node_id)].feature = best_feature;
    nodes_[static_cast<std::size_t>(node_id)].threshold = best_threshold;
    const int left = build(x, y, left_idx, depth + 1, rng, options);
    const int right = build(x, y, right_idx, depth + 1, rng, options);
    nodes_[static_cast<std::size_t>(node_id)].left = left;
    nodes_[static_cast<std::size_t>(node_id)].right = right;
    return node_id;
}

double
DecisionTree::predict(const std::vector<double>& x) const
{
    CAFQA_REQUIRE(!nodes_.empty(), "tree has not been fitted");
    std::size_t node = 0;
    while (nodes_[node].feature >= 0) {
        const auto f = static_cast<std::size_t>(nodes_[node].feature);
        CAFQA_REQUIRE(f < x.size(), "feature vector too short");
        node = static_cast<std::size_t>(
            (x[f] <= nodes_[node].threshold) ? nodes_[node].left
                                             : nodes_[node].right);
    }
    return nodes_[node].value;
}

} // namespace cafqa
