#include "opt/spsa.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cafqa {

SpsaResult
spsa_minimize(const std::function<double(const std::vector<double>&)>& objective,
              std::vector<double> x0, const SpsaOptions& options)
{
    CAFQA_REQUIRE(!x0.empty(), "empty start point");
    const std::size_t n = x0.size();
    Rng rng(options.seed);

    SpsaResult result;
    result.trace.reserve(options.iterations);

    std::vector<double> x = std::move(x0);
    std::vector<double> delta(n);
    std::vector<double> x_plus(n);
    std::vector<double> x_minus(n);

    double best_f = objective(x);
    std::vector<double> best_x = x;

    for (std::size_t k = 0; k < options.iterations; ++k) {
        const double a_k =
            options.a /
            std::pow(k + 1.0 + options.stability, options.alpha);
        const double c_k = options.c / std::pow(k + 1.0, options.gamma);

        for (std::size_t i = 0; i < n; ++i) {
            delta[i] = rng.rademacher();
            x_plus[i] = x[i] + c_k * delta[i];
            x_minus[i] = x[i] - c_k * delta[i];
        }
        const double f_plus = objective(x_plus);
        const double f_minus = objective(x_minus);
        const double diff = (f_plus - f_minus) / (2.0 * c_k);

        for (std::size_t i = 0; i < n; ++i) {
            x[i] -= a_k * diff / delta[i];
        }

        const double f_now = objective(x);
        result.trace.push_back(SpsaTracePoint{k, f_now});
        if (f_now < best_f) {
            best_f = f_now;
            best_x = x;
        }
    }

    result.x = best_x;
    result.f = best_f;
    return result;
}

} // namespace cafqa
