#include "opt/spsa.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cafqa {

SpsaOptimizer::SpsaOptimizer(SpsaOptions options) : options_(options) {}

OptimizeOutcome
SpsaOptimizer::minimize(const ContinuousObjective& objective,
                        std::vector<double> x0,
                        const StoppingCriteria& criteria,
                        const SearchContext& context)
{
    CAFQA_REQUIRE(!x0.empty(), "empty start point");
    const std::size_t n = x0.size();
    const SpsaOptions& options = options_;
    Rng rng(options.seed);
    OutcomeRecorder recorder(criteria, criteria.max_evaluations,
                             context.progress);

    std::vector<double> x = std::move(x0);
    std::vector<double> delta(n);
    std::vector<double> x_plus(n);
    std::vector<double> x_minus(n);

    try {
        recorder.record(x, objective(x));

        for (std::size_t k = 0; k < options.iterations; ++k) {
            // One iteration needs the two probes plus the post-step
            // evaluation; stop cleanly when they no longer fit.
            if (!recorder.has_budget(3)) {
                break;
            }
            const double a_k =
                options.a /
                std::pow(k + 1.0 + options.stability, options.alpha);
            const double c_k = options.c / std::pow(k + 1.0, options.gamma);

            for (std::size_t i = 0; i < n; ++i) {
                delta[i] = rng.rademacher();
                x_plus[i] = x[i] + c_k * delta[i];
                x_minus[i] = x[i] - c_k * delta[i];
            }
            const double f_plus = objective(x_plus);
            recorder.count_evaluation();
            const double f_minus = objective(x_minus);
            recorder.count_evaluation();
            const double diff = (f_plus - f_minus) / (2.0 * c_k);

            for (std::size_t i = 0; i < n; ++i) {
                x[i] -= a_k * diff / delta[i];
            }

            recorder.record(x, objective(x));
        }
    } catch (const OutcomeRecorder::EarlyStop&) {
        // A stopping criterion fired; the recorder holds the reason.
    }

    return recorder.finish(StopReason::BudgetExhausted);
}

SpsaResult
spsa_minimize(const std::function<double(const std::vector<double>&)>& objective,
              std::vector<double> x0, const SpsaOptions& options)
{
    return SpsaOptimizer(options).minimize(objective, std::move(x0));
}

} // namespace cafqa
