/**
 * @file
 * Shared sampling primitives for discrete optimizers. The Bayesian
 * warm-up and the random-search baseline must draw configurations with
 * the *same* RNG call pattern and deduplication hash so their
 * trajectories stay comparable (and the batched paths bit-identical to
 * the serial ones) — keeping the definitions in one place is what
 * guarantees that.
 */
#ifndef CAFQA_OPT_DISCRETE_SAMPLING_HPP
#define CAFQA_OPT_DISCRETE_SAMPLING_HPP

#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "opt/optimizer.hpp"

namespace cafqa {

/** Order-dependent configuration hash used for sample deduplication. */
inline std::size_t
config_hash(const std::vector<int>& config)
{
    std::size_t h = kHashSeed;
    for (const int v : config) {
        h = hash_mix(h, static_cast<std::uint64_t>(v));
    }
    return h;
}

/** Uniform configuration draw: one `uniform_int` call per parameter,
 *  in parameter order. */
inline std::vector<int>
random_config(const DiscreteSpace& space, Rng& rng)
{
    std::vector<int> config(space.num_parameters());
    for (std::size_t i = 0; i < config.size(); ++i) {
        config[i] =
            static_cast<int>(rng.uniform_int(0, space.cardinalities[i] - 1));
    }
    return config;
}

} // namespace cafqa

#endif // CAFQA_OPT_DISCRETE_SAMPLING_HPP
