/**
 * @file
 * The polymorphic optimizer interfaces every search strategy in the
 * repository conforms to (paper Section 5 ablates discrete strategies,
 * Fig. 4/14 the continuous tuners):
 *
 *   - `DiscreteOptimizer`   minimizes over a `DiscreteSpace` (CAFQA's
 *     Clifford quarter-turn search and its ablation baselines);
 *   - `ContinuousOptimizer` minimizes from a start point `x0` (the
 *     post-CAFQA VQA tuners).
 *
 * All implementations return the shared `OptimizeOutcome` (best point,
 * best value, evaluation trace, termination reason) and honor the same
 * `StoppingCriteria` (evaluation budget, wall-clock budget, target-value
 * early exit such as chemical accuracy, no-improvement patience), so
 * callers can swap strategy without touching any other code. Concrete
 * optimizers are constructible by string key through
 * `opt/optimizer_registry.hpp`, mirroring the backend registry.
 */
#ifndef CAFQA_OPT_OPTIMIZER_HPP
#define CAFQA_OPT_OPTIMIZER_HPP

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace cafqa {

/** A discrete configuration space: parameter i takes values
 *  0..cardinalities[i]-1. */
struct DiscreteSpace
{
    std::vector<int> cardinalities;

    std::size_t num_parameters() const { return cardinalities.size(); }
    /** log10 of the space size (the spaces themselves overflow). */
    double log10_size() const;
};

/** Why a minimization run ended. */
enum class StopReason {
    /** The evaluation budget (criteria or the optimizer's own) ran out. */
    BudgetExhausted,
    /** `StoppingCriteria::target_value` was reached. */
    TargetReached,
    /** `StoppingCriteria::max_seconds` elapsed. */
    TimeExpired,
    /** No improvement within the patience window (or the optimizer's own
     *  stall limit). */
    Stalled,
    /** The optimizer's own convergence test fired (e.g. Nelder-Mead's
     *  simplex f-spread tolerance). */
    Converged,
    /** An exhaustive search enumerated the entire space. */
    SpaceExhausted,
    /** `StoppingCriteria::cancel` was raised by another thread (job
     *  server cancel verb, `BatchRunner::request_stop`, SIGTERM). */
    Cancelled,
};

/** Human-readable stop reason ("budget", "target", ...). */
std::string_view to_string(StopReason reason);

/**
 * Uniform stopping controls honored by every optimizer. All fields
 * compose: the run ends as soon as any enabled criterion fires.
 */
struct StoppingCriteria
{
    /** Hard cap on objective evaluations (0 = the optimizer's own
     *  budget, e.g. warmup+iterations for Bayesian optimization). */
    std::size_t max_evaluations = 0;
    /** Wall-clock budget in seconds (0 = off). Checked after each
     *  recorded evaluation, so batched phases (Bayesian warm-up, random
     *  search chunks) may overshoot by up to one block of evaluations.
     *  Note: time-based stops make traces machine-dependent; leave off
     *  for reproducibility. */
    double max_seconds = 0.0;
    /** Stop once the best value is <= this (e.g. exact energy plus
     *  chemical accuracy). Unset = off. */
    std::optional<double> target_value;
    /** Stop after this many recorded evaluations without improvement
     *  (0 = off). */
    std::size_t patience = 0;
    /** Improvement below this does not reset the patience window. */
    double min_improvement = 1e-12;
    /**
     * When true, `max_evaluations` counts *unique* points: re-recording
     * an already-seen configuration (or continuous point) does not
     * consume budget. Pair with a memoizing backend
     * (`core/caching_backend.hpp`), where re-visits cost a cache lookup
     * instead of a state preparation — the budget then measures real
     * backend work. Unrecorded probe calls (`count_evaluation`, e.g.
     * SPSA's gradient probes) always consume budget.
     */
    bool unique_evaluations = false;
    /**
     * Quantization step for the unique identity of *continuous* points
     * (0 = exact bit patterns). Set it to the paired cache's
     * `CacheOptions::resolution` so "unique" here matches "miss" there
     * — `CafqaPipeline` does this automatically. Ignored for discrete
     * configurations.
     */
    double unique_resolution = 0.0;
    /**
     * Cooperative cancellation token: when another thread stores `true`
     * here, the run stops at the next recorded evaluation with
     * `StopReason::Cancelled` (the best point found so far is still
     * returned). Latency is one evaluation — or one block in batched
     * phases such as the Bayesian warm-up, same caveat as
     * `max_seconds`. Null (the default) disables the check.
     */
    std::shared_ptr<const std::atomic<bool>> cancel;
};

/**
 * Shared result of every optimizer. Exactly one of
 * `best_config`/`best_x` is populated, matching the optimizer's domain.
 */
struct OptimizeOutcome
{
    /** Best discrete configuration (discrete optimizers). */
    std::vector<int> best_config;
    /** Best continuous point (continuous optimizers). */
    std::vector<double> best_x;
    double best_value = 0.0;
    /** Recorded objective values in evaluation order. (SPSA records the
     *  start point and then one post-step value per iteration; its +/-
     *  gradient probes count toward `evaluations` but are not
     *  recorded.) */
    std::vector<double> history;
    /** Running minimum of `history`. */
    std::vector<double> best_trace;
    /** Total objective calls (>= history.size()). */
    std::size_t evaluations = 0;
    /** Distinct points among the recorded evaluations — the budget
     *  consumed under unique accounting. Tracked (and nonzero) only
     *  when `StoppingCriteria::unique_evaluations` is set; the default
     *  path skips the bookkeeping entirely. */
    std::size_t unique_evaluations = 0;
    /** 1-based index into `history` where the best value appeared —
     *  the "iterations to converge" metric of Fig. 15. */
    std::size_t evaluations_to_best = 0;
    StopReason stop_reason = StopReason::BudgetExhausted;
};

using DiscreteObjective = std::function<double(const std::vector<int>&)>;
using ContinuousObjective =
    std::function<double(const std::vector<double>&)>;
/** Progress callback: (1-based recorded-evaluation index, best so far). */
using ProgressCallback = std::function<void(std::size_t, double)>;
/** Batched evaluator: values for a block of configurations, in order. */
using DiscreteBatchEvaluator =
    std::function<std::vector<double>(const std::vector<std::vector<int>>&)>;

/**
 * Optional per-run inputs shared by all optimizers. Fields an optimizer
 * cannot use are ignored (continuous optimizers ignore the discrete
 * seeds and the batch hook).
 */
struct SearchContext
{
    /** Invoked after every recorded evaluation. */
    ProgressCallback progress;
    /** Discrete configurations evaluated before the strategy's own
     *  exploration (prior injection, e.g. the Hartree-Fock point). */
    std::vector<std::vector<int>> seed_configs;
    /** Batched evaluator for block-generated candidates (Bayesian
     *  warm-up, random search); the trajectory must stay identical to
     *  the serial path, only the fan-out changes. */
    DiscreteBatchEvaluator batch;
    /** Mints an independent, thread-safe equivalent of the objective
     *  (the pipeline returns one wrapping a `clone()`d backend, so
     *  clones share the memoizing cache). Lets concurrent strategies
     *  (`search/portfolio.hpp`) evaluate in parallel; without it they
     *  serialize calls to the plain objective. */
    std::function<DiscreteObjective()> objective_factory;
};

/** Root of the optimizer hierarchy (see the registry for keys). */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;
    /** Registry-style key of the algorithm ("bayes", "spsa", ...). */
    virtual std::string_view name() const = 0;
};

/** Minimizes a black-box objective over a finite discrete space. */
class DiscreteOptimizer : public Optimizer
{
  public:
    virtual OptimizeOutcome minimize(const DiscreteObjective& objective,
                                     const DiscreteSpace& space,
                                     const StoppingCriteria& criteria = {},
                                     const SearchContext& context = {}) = 0;
};

/** Minimizes a black-box objective from a continuous start point. */
class ContinuousOptimizer : public Optimizer
{
  public:
    virtual OptimizeOutcome minimize(const ContinuousObjective& objective,
                                     std::vector<double> x0,
                                     const StoppingCriteria& criteria = {},
                                     const SearchContext& context = {}) = 0;
};

/**
 * Implementation helper used by every optimizer to honor the
 * `StoppingCriteria` uniformly: call `record` after each objective
 * evaluation; it updates the outcome (history, running best, progress
 * callback) and throws the private `EarlyStop` token once any criterion
 * fires. Wrap the search loop in `try { ... } catch (EarlyStop) {}` and
 * call `finish` with the reason the loop would otherwise end with.
 */
class OutcomeRecorder
{
  public:
    /** Internal control-flow token thrown by `record`. */
    struct EarlyStop
    {
    };

    /** `max_evaluations` is the resolved evaluation cap: the criteria
     *  cap when set, else the optimizer's own budget (0 = uncapped). */
    OutcomeRecorder(const StoppingCriteria& criteria,
                    std::size_t max_evaluations, ProgressCallback progress);

    std::size_t evaluations() const { return outcome_.evaluations; }
    /** Objective calls still allowed (huge value when uncapped). */
    std::size_t remaining_budget() const;
    /** True if `upcoming` more objective calls fit in the budget. */
    bool has_budget(std::size_t upcoming) const;

    /** Count an objective call that is not recorded in the history
     *  (e.g. SPSA's +/- gradient probes). Probes always consume budget,
     *  even under `StoppingCriteria::unique_evaluations`. */
    void count_evaluation()
    {
        ++outcome_.evaluations;
        ++probe_evaluations_;
    }

    /** Record a discrete evaluation; throws EarlyStop when a criterion
     *  fires (after the value is recorded). */
    void record(const std::vector<int>& config, double value);
    /** Record a continuous evaluation; throws EarlyStop likewise. */
    void record(const std::vector<double>& x, double value);

    double best_value() const { return outcome_.best_value; }
    bool empty() const { return outcome_.history.empty(); }

    /** Finalize and take the outcome. `reason` applies only when no
     *  criterion fired earlier. */
    OptimizeOutcome finish(StopReason reason);

  private:
    void after_record(double value, bool improved);
    /** Count one point toward the unique tally (no-op on repeats). */
    void note_point(std::size_t point_hash);
    /** Evaluations charged against `max_evaluations_`. */
    std::size_t budget_consumed() const;

    StoppingCriteria criteria_;
    std::size_t max_evaluations_;
    ProgressCallback progress_;
    std::chrono::steady_clock::time_point start_;
    std::size_t since_improvement_ = 0;
    /** Hashes of recorded points (unique-evaluation accounting). */
    std::unordered_set<std::size_t> seen_points_;
    /** Probe calls counted via count_evaluation (never deduplicable). */
    std::size_t probe_evaluations_ = 0;
    std::optional<StopReason> stopped_;
    OptimizeOutcome outcome_;
};

/** Throws std::invalid_argument unless `space` is non-empty with all
 *  positive cardinalities. */
void validate_space(const DiscreteSpace& space);

/** Throws std::invalid_argument unless every seed configuration
 *  matches `space` (size and per-parameter range). */
void validate_seed_configs(
    const std::vector<std::vector<int>>& seed_configs,
    const DiscreteSpace& space);

} // namespace cafqa

#endif // CAFQA_OPT_OPTIMIZER_HPP
