#include "opt/simulated_annealing.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cafqa {

SimulatedAnnealingOptimizer::SimulatedAnnealingOptimizer(
    AnnealingOptions options)
    : options_(options)
{
}

OptimizeOutcome
SimulatedAnnealingOptimizer::minimize(const DiscreteObjective& objective,
                                      const DiscreteSpace& space,
                                      const StoppingCriteria& criteria,
                                      const SearchContext& context)
{
    validate_space(space);
    validate_seed_configs(context.seed_configs, space);
    const AnnealingOptions& options = options_;
    CAFQA_REQUIRE(options.iterations >= 1, "need at least one iteration");
    CAFQA_REQUIRE(options.initial_temperature > 0.0 &&
                      options.final_temperature > 0.0,
                  "temperatures must be positive");
    Rng rng(options.seed);
    OutcomeRecorder recorder(criteria, criteria.max_evaluations,
                             context.progress);
    // Annealing makes exactly one evaluation per step, so an evaluation
    // budget *is* an iteration count: resolve the criteria cap into the
    // schedule length (like random search's sample count) so equal-budget
    // comparisons stay equal and the cooling spans the whole run. The
    // schedule's step 0 is one evaluation (the starting state — the best
    // seed when seeds exist, a random draw otherwise), so only the seeds
    // *beyond the first* consume budget outside the schedule.
    const std::size_t seeds = context.seed_configs.size();
    const std::size_t extra_seed_evals = seeds > 0 ? seeds - 1 : 0;
    std::size_t iterations = options.iterations;
    if (criteria.max_evaluations > 0) {
        iterations = criteria.max_evaluations > extra_seed_evals
            ? criteria.max_evaluations - extra_seed_evals
            : 1;
    }

    try {
        std::vector<int> current;
        double current_value = 0.0;

        // Prior injection: evaluate the seeds and anneal from the best.
        for (const auto& config : context.seed_configs) {
            const double value = objective(config);
            recorder.record(config, value);
            if (current.empty() || value < current_value) {
                current = config;
                current_value = value;
            }
        }
        if (current.empty()) {
            current.resize(space.num_parameters());
            for (std::size_t i = 0; i < current.size(); ++i) {
                current[i] = static_cast<int>(
                    rng.uniform_int(0, space.cardinalities[i] - 1));
            }
            current_value = objective(current);
            recorder.record(current, current_value);
        }

        const double cooling = std::pow(
            options.final_temperature / options.initial_temperature,
            1.0 / static_cast<double>(iterations));
        double temperature = options.initial_temperature;

        for (std::size_t it = 1; it < iterations; ++it) {
            std::vector<int> proposal = current;
            for (std::size_t m = 0; m < options.mutations_per_step; ++m) {
                const auto pos = static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<std::int64_t>(proposal.size()) - 1));
                proposal[pos] = static_cast<int>(
                    rng.uniform_int(0, space.cardinalities[pos] - 1));
            }
            const double value = objective(proposal);
            recorder.record(proposal, value);

            const double delta = value - current_value;
            if (delta <= 0.0 ||
                rng.uniform_real() < std::exp(-delta / temperature)) {
                current = std::move(proposal);
                current_value = value;
            }
            temperature *= cooling;
        }
    } catch (const OutcomeRecorder::EarlyStop&) {
        // A stopping criterion fired; the recorder holds the reason.
    }

    return recorder.finish(StopReason::BudgetExhausted);
}

OptimizeOutcome
simulated_annealing_minimize(
    const std::function<double(const std::vector<int>&)>& objective,
    const DiscreteSpace& space, const AnnealingOptions& options)
{
    return SimulatedAnnealingOptimizer(options).minimize(objective, space);
}

} // namespace cafqa
