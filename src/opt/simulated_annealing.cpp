#include "opt/simulated_annealing.hpp"

#include <cmath>

#include "common/error.hpp"

namespace cafqa {

BayesOptResult
simulated_annealing_minimize(
    const std::function<double(const std::vector<int>&)>& objective,
    const DiscreteSpace& space, const AnnealingOptions& options)
{
    CAFQA_REQUIRE(space.num_parameters() > 0, "empty search space");
    CAFQA_REQUIRE(options.iterations >= 1, "need at least one iteration");
    CAFQA_REQUIRE(options.initial_temperature > 0.0 &&
                      options.final_temperature > 0.0,
                  "temperatures must be positive");
    Rng rng(options.seed);

    BayesOptResult result;
    auto record = [&](const std::vector<int>& config, double value) {
        result.history.push_back(value);
        if (result.best_trace.empty() || value < result.best_trace.back()) {
            result.best_trace.push_back(value);
            result.best_value = value;
            result.best_config = config;
            result.evaluations_to_best = result.history.size();
        } else {
            result.best_trace.push_back(result.best_trace.back());
        }
    };

    std::vector<int> current(space.num_parameters());
    for (std::size_t i = 0; i < current.size(); ++i) {
        current[i] =
            static_cast<int>(rng.uniform_int(0, space.cardinalities[i] - 1));
    }
    double current_value = objective(current);
    record(current, current_value);

    const double cooling = std::pow(
        options.final_temperature / options.initial_temperature,
        1.0 / static_cast<double>(options.iterations));
    double temperature = options.initial_temperature;

    for (std::size_t it = 1; it < options.iterations; ++it) {
        std::vector<int> proposal = current;
        for (std::size_t m = 0; m < options.mutations_per_step; ++m) {
            const auto pos = static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(proposal.size()) - 1));
            proposal[pos] = static_cast<int>(
                rng.uniform_int(0, space.cardinalities[pos] - 1));
        }
        const double value = objective(proposal);
        record(proposal, value);

        const double delta = value - current_value;
        if (delta <= 0.0 ||
            rng.uniform_real() < std::exp(-delta / temperature)) {
            current = std::move(proposal);
            current_value = value;
        }
        temperature *= cooling;
    }
    return result;
}

} // namespace cafqa
