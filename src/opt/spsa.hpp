/**
 * @file
 * Simultaneous Perturbation Stochastic Approximation (SPSA) — the
 * continuous optimizer the paper uses for post-CAFQA variational tuning
 * on (noisy) quantum hardware (Fig. 4, right box; Fig. 14).
 *
 * SPSA estimates the gradient with two objective evaluations per
 * iteration regardless of dimension, which makes it the standard choice
 * for noisy VQE objectives.
 */
#ifndef CAFQA_OPT_SPSA_HPP
#define CAFQA_OPT_SPSA_HPP

#include <cstdint>
#include <functional>
#include <vector>

namespace cafqa {

/** SPSA hyperparameters (Spall's standard gain sequences). */
struct SpsaOptions
{
    std::size_t iterations = 200;
    double a = 0.2;      ///< step-size numerator
    double c = 0.1;      ///< perturbation magnitude
    double alpha = 0.602; ///< step-size decay exponent
    double gamma = 0.101; ///< perturbation decay exponent
    double stability = 10.0; ///< A in a_k = a / (k + 1 + A)^alpha
    std::uint64_t seed = 1234;
};

/** Per-iteration trace entry. */
struct SpsaTracePoint
{
    std::size_t iteration;
    /** Objective value at the current iterate (one extra evaluation). */
    double value;
};

/** Result of an SPSA run. */
struct SpsaResult
{
    std::vector<double> x;
    double f = 0.0;
    /** Objective evaluated at the iterate after each step. */
    std::vector<SpsaTracePoint> trace;
};

/** Minimize a (possibly stochastic) objective from `x0`. */
SpsaResult
spsa_minimize(const std::function<double(const std::vector<double>&)>& objective,
              std::vector<double> x0, const SpsaOptions& options = {});

} // namespace cafqa

#endif // CAFQA_OPT_SPSA_HPP
