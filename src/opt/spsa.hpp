/**
 * @file
 * Simultaneous Perturbation Stochastic Approximation (SPSA) — the
 * continuous optimizer the paper uses for post-CAFQA variational tuning
 * on (noisy) quantum hardware (Fig. 4, right box; Fig. 14). Registry
 * key "spsa".
 *
 * SPSA estimates the gradient with two objective evaluations per
 * iteration regardless of dimension, which makes it the standard choice
 * for noisy VQE objectives.
 */
#ifndef CAFQA_OPT_SPSA_HPP
#define CAFQA_OPT_SPSA_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "opt/optimizer.hpp"

namespace cafqa {

/** SPSA hyperparameters (Spall's standard gain sequences). */
struct SpsaOptions
{
    std::size_t iterations = 200;
    double a = 0.2;      ///< step-size numerator
    double c = 0.1;      ///< perturbation magnitude
    double alpha = 0.602; ///< step-size decay exponent
    double gamma = 0.101; ///< perturbation decay exponent
    double stability = 10.0; ///< A in a_k = a / (k + 1 + A)^alpha
    std::uint64_t seed = 1234;
};

/** Deprecated alias kept for one release; use `OptimizeOutcome`
 *  (`x` -> `best_x`, `f` -> `best_value`; the per-iteration trace is
 *  `history`, whose first entry is the start-point value). */
using SpsaResult = OptimizeOutcome;

/**
 * SPSA minimization (registry key "spsa"). Each iteration makes three
 * objective calls (the +/- gradient probes and one post-step
 * evaluation); the probes count toward `evaluations` but only the
 * start point and the post-step values are recorded in `history`.
 */
class SpsaOptimizer final : public ContinuousOptimizer
{
  public:
    explicit SpsaOptimizer(SpsaOptions options = {});

    std::string_view name() const override { return "spsa"; }

    OptimizeOutcome minimize(const ContinuousObjective& objective,
                             std::vector<double> x0,
                             const StoppingCriteria& criteria = {},
                             const SearchContext& context = {}) override;

  private:
    SpsaOptions options_;
};

/** Minimize a (possibly stochastic) objective from `x0`. Deprecated
 *  shim over `SpsaOptimizer`. */
SpsaResult
spsa_minimize(const std::function<double(const std::vector<double>&)>& objective,
              std::vector<double> x0, const SpsaOptions& options = {});

} // namespace cafqa

#endif // CAFQA_OPT_SPSA_HPP
