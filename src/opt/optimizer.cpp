#include "opt/optimizer.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "opt/discrete_sampling.hpp"

namespace cafqa {

namespace {

/** Order-dependent hash of a continuous point. With a resolution it
 *  quantizes exactly like the evaluation cache's keys (so "unique"
 *  matches "cache miss"); at 0 only bit-identical vectors dedupe. */
std::size_t
point_hash(const std::vector<double>& x, double resolution)
{
    std::size_t h = kHashSeed;
    for (const double v : x) {
        h = hash_mix(h, resolution > 0.0
                            ? static_cast<std::uint64_t>(
                                  quantize_coordinate(v, resolution))
                            : std::bit_cast<std::uint64_t>(v));
    }
    return h;
}

} // namespace

double
DiscreteSpace::log10_size() const
{
    double total = 0.0;
    for (const int c : cardinalities) {
        total += std::log10(static_cast<double>(c));
    }
    return total;
}

std::string_view
to_string(StopReason reason)
{
    switch (reason) {
      case StopReason::BudgetExhausted:
        return "budget";
      case StopReason::TargetReached:
        return "target";
      case StopReason::TimeExpired:
        return "time";
      case StopReason::Stalled:
        return "stalled";
      case StopReason::Converged:
        return "converged";
      case StopReason::SpaceExhausted:
        return "space-exhausted";
      case StopReason::Cancelled:
        return "cancelled";
    }
    return "unknown";
}

OutcomeRecorder::OutcomeRecorder(const StoppingCriteria& criteria,
                                 std::size_t max_evaluations,
                                 ProgressCallback progress)
    : criteria_(criteria),
      max_evaluations_(max_evaluations),
      progress_(std::move(progress)),
      start_(std::chrono::steady_clock::now())
{
}

std::size_t
OutcomeRecorder::budget_consumed() const
{
    // Under unique-evaluation accounting, repeats of recorded points are
    // free; unrecorded probes (count_evaluation) always consume budget.
    return criteria_.unique_evaluations
        ? outcome_.unique_evaluations + probe_evaluations_
        : outcome_.evaluations;
}

std::size_t
OutcomeRecorder::remaining_budget() const
{
    if (max_evaluations_ == 0) {
        return std::numeric_limits<std::size_t>::max();
    }
    const std::size_t consumed = budget_consumed();
    return max_evaluations_ > consumed ? max_evaluations_ - consumed : 0;
}

bool
OutcomeRecorder::has_budget(std::size_t upcoming) const
{
    return max_evaluations_ == 0 ||
           budget_consumed() + upcoming <= max_evaluations_;
}

void
OutcomeRecorder::note_point(std::size_t point_hash)
{
    if (seen_points_.insert(point_hash).second) {
        ++outcome_.unique_evaluations;
    }
}

void
OutcomeRecorder::record(const std::vector<int>& config, double value)
{
    ++outcome_.evaluations;
    // The guard lives here (not in note_point) so the default path
    // skips both the hash and the set — an exhaustive enumeration would
    // otherwise pay one set node per configuration for a disabled
    // feature.
    if (criteria_.unique_evaluations) {
        note_point(config_hash(config));
    }
    const bool improved =
        outcome_.history.empty() || value < outcome_.best_value;
    if (improved) {
        outcome_.best_config = config;
    }
    after_record(value, improved);
}

void
OutcomeRecorder::record(const std::vector<double>& x, double value)
{
    ++outcome_.evaluations;
    if (criteria_.unique_evaluations) {
        note_point(point_hash(x, criteria_.unique_resolution));
    }
    const bool improved =
        outcome_.history.empty() || value < outcome_.best_value;
    if (improved) {
        outcome_.best_x = x;
    }
    after_record(value, improved);
}

void
OutcomeRecorder::after_record(double value, bool improved)
{
    outcome_.history.push_back(value);
    if (improved) {
        outcome_.best_value = value;
        outcome_.best_trace.push_back(value);
        outcome_.evaluations_to_best = outcome_.history.size();
    } else {
        outcome_.best_trace.push_back(outcome_.best_trace.back());
    }
    // Patience counts recorded evaluations since the last *meaningful*
    // improvement (tiny jitter below min_improvement does not reset it).
    if (outcome_.history.size() == 1 ||
        (improved &&
         outcome_.best_trace[outcome_.best_trace.size() - 2] - value >=
             criteria_.min_improvement)) {
        since_improvement_ = 0;
    } else {
        ++since_improvement_;
    }
    if (progress_) {
        progress_(outcome_.history.size(), outcome_.best_value);
    }

    // Criteria checks, most informative reason first. Cancellation wins
    // over everything: the caller asked for the run to end, and any
    // other reason would misreport a truncated search as complete.
    if (criteria_.cancel && criteria_.cancel->load(std::memory_order_relaxed)) {
        stopped_ = StopReason::Cancelled;
        throw EarlyStop{};
    }
    if (criteria_.target_value.has_value() &&
        outcome_.best_value <= *criteria_.target_value) {
        stopped_ = StopReason::TargetReached;
        throw EarlyStop{};
    }
    if (max_evaluations_ > 0 && budget_consumed() >= max_evaluations_) {
        stopped_ = StopReason::BudgetExhausted;
        throw EarlyStop{};
    }
    if (criteria_.patience > 0 && since_improvement_ >= criteria_.patience) {
        stopped_ = StopReason::Stalled;
        throw EarlyStop{};
    }
    if (criteria_.max_seconds > 0.0) {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start_;
        if (elapsed.count() >= criteria_.max_seconds) {
            stopped_ = StopReason::TimeExpired;
            throw EarlyStop{};
        }
    }
}

OptimizeOutcome
OutcomeRecorder::finish(StopReason reason)
{
    CAFQA_ASSERT(!outcome_.history.empty(), "no evaluations recorded");
    outcome_.stop_reason = stopped_.value_or(reason);
    return std::move(outcome_);
}

void
validate_space(const DiscreteSpace& space)
{
    CAFQA_REQUIRE(space.num_parameters() > 0, "empty search space");
    for (const int c : space.cardinalities) {
        CAFQA_REQUIRE(c >= 1, "parameter cardinality must be positive");
    }
}

void
validate_seed_configs(const std::vector<std::vector<int>>& seed_configs,
                      const DiscreteSpace& space)
{
    for (const auto& config : seed_configs) {
        CAFQA_REQUIRE(config.size() == space.num_parameters(),
                      "seed configuration has wrong parameter count");
        for (std::size_t i = 0; i < config.size(); ++i) {
            CAFQA_REQUIRE(config[i] >= 0 &&
                              config[i] < space.cardinalities[i],
                          "seed configuration value out of range");
        }
    }
}

} // namespace cafqa
