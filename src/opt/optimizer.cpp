#include "opt/optimizer.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace cafqa {

double
DiscreteSpace::log10_size() const
{
    double total = 0.0;
    for (const int c : cardinalities) {
        total += std::log10(static_cast<double>(c));
    }
    return total;
}

std::string_view
to_string(StopReason reason)
{
    switch (reason) {
      case StopReason::BudgetExhausted:
        return "budget";
      case StopReason::TargetReached:
        return "target";
      case StopReason::TimeExpired:
        return "time";
      case StopReason::Stalled:
        return "stalled";
      case StopReason::Converged:
        return "converged";
      case StopReason::SpaceExhausted:
        return "space-exhausted";
    }
    return "unknown";
}

OutcomeRecorder::OutcomeRecorder(const StoppingCriteria& criteria,
                                 std::size_t max_evaluations,
                                 ProgressCallback progress)
    : criteria_(criteria),
      max_evaluations_(max_evaluations),
      progress_(std::move(progress)),
      start_(std::chrono::steady_clock::now())
{
}

std::size_t
OutcomeRecorder::remaining_budget() const
{
    if (max_evaluations_ == 0) {
        return std::numeric_limits<std::size_t>::max();
    }
    return max_evaluations_ > outcome_.evaluations
        ? max_evaluations_ - outcome_.evaluations
        : 0;
}

bool
OutcomeRecorder::has_budget(std::size_t upcoming) const
{
    return max_evaluations_ == 0 ||
           outcome_.evaluations + upcoming <= max_evaluations_;
}

void
OutcomeRecorder::record(const std::vector<int>& config, double value)
{
    ++outcome_.evaluations;
    const bool improved =
        outcome_.history.empty() || value < outcome_.best_value;
    if (improved) {
        outcome_.best_config = config;
    }
    after_record(value, improved);
}

void
OutcomeRecorder::record(const std::vector<double>& x, double value)
{
    ++outcome_.evaluations;
    const bool improved =
        outcome_.history.empty() || value < outcome_.best_value;
    if (improved) {
        outcome_.best_x = x;
    }
    after_record(value, improved);
}

void
OutcomeRecorder::after_record(double value, bool improved)
{
    outcome_.history.push_back(value);
    if (improved) {
        outcome_.best_value = value;
        outcome_.best_trace.push_back(value);
        outcome_.evaluations_to_best = outcome_.history.size();
    } else {
        outcome_.best_trace.push_back(outcome_.best_trace.back());
    }
    // Patience counts recorded evaluations since the last *meaningful*
    // improvement (tiny jitter below min_improvement does not reset it).
    if (outcome_.history.size() == 1 ||
        (improved &&
         outcome_.best_trace[outcome_.best_trace.size() - 2] - value >=
             criteria_.min_improvement)) {
        since_improvement_ = 0;
    } else {
        ++since_improvement_;
    }
    if (progress_) {
        progress_(outcome_.history.size(), outcome_.best_value);
    }

    // Criteria checks, most informative reason first.
    if (criteria_.target_value.has_value() &&
        outcome_.best_value <= *criteria_.target_value) {
        stopped_ = StopReason::TargetReached;
        throw EarlyStop{};
    }
    if (max_evaluations_ > 0 && outcome_.evaluations >= max_evaluations_) {
        stopped_ = StopReason::BudgetExhausted;
        throw EarlyStop{};
    }
    if (criteria_.patience > 0 && since_improvement_ >= criteria_.patience) {
        stopped_ = StopReason::Stalled;
        throw EarlyStop{};
    }
    if (criteria_.max_seconds > 0.0) {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start_;
        if (elapsed.count() >= criteria_.max_seconds) {
            stopped_ = StopReason::TimeExpired;
            throw EarlyStop{};
        }
    }
}

OptimizeOutcome
OutcomeRecorder::finish(StopReason reason)
{
    CAFQA_ASSERT(!outcome_.history.empty(), "no evaluations recorded");
    outcome_.stop_reason = stopped_.value_or(reason);
    return std::move(outcome_);
}

void
validate_space(const DiscreteSpace& space)
{
    CAFQA_REQUIRE(space.num_parameters() > 0, "empty search space");
    for (const int c : space.cardinalities) {
        CAFQA_REQUIRE(c >= 1, "parameter cardinality must be positive");
    }
}

void
validate_seed_configs(const std::vector<std::vector<int>>& seed_configs,
                      const DiscreteSpace& space)
{
    for (const auto& config : seed_configs) {
        CAFQA_REQUIRE(config.size() == space.num_parameters(),
                      "seed configuration has wrong parameter count");
        for (std::size_t i = 0; i < config.size(); ++i) {
            CAFQA_REQUIRE(config[i] >= 0 &&
                              config[i] < space.cardinalities[i],
                          "seed configuration value out of range");
        }
    }
}

} // namespace cafqa
