/**
 * @file
 * String-keyed optimizer registry and factory, mirroring the backend
 * registry: construct any search strategy from an `OptimizerConfig`
 * without naming its concrete type.
 *
 * Built-in kinds:
 *
 * | key           | class                       | space      | options     |
 * |---------------|-----------------------------|------------|-------------|
 * | "bayes"       | BayesOptimizer              | discrete   | bayes       |
 * | "anneal"      | SimulatedAnnealingOptimizer | discrete   | anneal      |
 * | "random"      | RandomSearchOptimizer       | discrete   | random      |
 * | "tempering"   | ParallelTempering           | discrete   | tempering   |
 * | "exhaustive"  | ExhaustiveOptimizer         | discrete   | -           |
 * | "nelder-mead" | NelderMeadOptimizer         | continuous | nelder_mead |
 * | "spsa"        | SpsaOptimizer               | continuous | spsa        |
 *
 * The prefix key `"portfolio:<k1+k2+...>"` (e.g.
 * `"portfolio:anneal+bayes+random"`) composes any registered discrete
 * kinds into a `PortfolioSearch` race — arm i gets seed `seed + i`, so
 * a one-arm portfolio is bit-identical to the bare optimizer. The
 * stopping budget is per arm (each arm runs its solo trajectory), so
 * a k-arm portfolio may spend up to k times `max_evaluations`.
 *
 * Additional kinds (CMA-ES, custom schedulers, ...) can be registered
 * at runtime with `register_optimizer`; `CafqaPipeline`, the CLI and the
 * ablation bench resolve strategies exclusively through this factory, so
 * a new kind is immediately usable everywhere.
 */
#ifndef CAFQA_OPT_OPTIMIZER_REGISTRY_HPP
#define CAFQA_OPT_OPTIMIZER_REGISTRY_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "opt/bayes_opt.hpp"
#include "opt/nelder_mead.hpp"
#include "opt/search_baselines.hpp"
#include "opt/simulated_annealing.hpp"
#include "opt/spsa.hpp"
#include "search/parallel_tempering.hpp"
#include "search/portfolio.hpp"

namespace cafqa {

/** Everything an optimizer factory may need; unused fields are
 *  ignored. */
struct OptimizerConfig
{
    /** Registry key selecting the strategy. */
    std::string kind = "bayes";
    /** If nonzero, overrides every algorithm's own RNG seed. */
    std::uint64_t seed = 0;
    BayesOptOptions bayes;
    AnnealingOptions anneal;
    RandomSearchOptions random;
    TemperingOptions tempering;
    NelderMeadOptions nelder_mead;
    SpsaOptions spsa;
    /** Orchestration knobs for "portfolio:..." kinds. */
    PortfolioOptions portfolio;
};

/** Default config for `kind` (convenience for field initializers). */
inline OptimizerConfig
optimizer_config(std::string kind)
{
    OptimizerConfig config;
    config.kind = std::move(kind);
    return config;
}

/** Factory signature stored in the registry. */
using OptimizerFactory =
    std::function<std::unique_ptr<Optimizer>(const OptimizerConfig&)>;

/** Register (or replace) a factory under `kind`. */
void register_optimizer(const std::string& kind, OptimizerFactory factory);

/** True if `kind` is registered. */
bool optimizer_registered(const std::string& kind);

/** Sorted list of registered kinds. */
std::vector<std::string> registered_optimizers();

/** Sorted registered kinds whose optimizers minimize over a
 *  `DiscreteSpace` (resp. from a continuous `x0`). Constructs a
 *  throwaway instance of each kind to classify it; kinds whose factory
 *  rejects a default config are omitted. */
std::vector<std::string> registered_discrete_optimizers();
std::vector<std::string> registered_continuous_optimizers();

/** Construct an optimizer; throws std::invalid_argument on unknown
 *  kind. */
std::unique_ptr<Optimizer> make_optimizer(const OptimizerConfig& config);

/** make_optimizer + checked downcast to the discrete interface. */
std::unique_ptr<DiscreteOptimizer>
make_discrete_optimizer(const OptimizerConfig& config);

/** make_optimizer + checked downcast to the continuous interface. */
std::unique_ptr<ContinuousOptimizer>
make_continuous_optimizer(const OptimizerConfig& config);

} // namespace cafqa

#endif // CAFQA_OPT_OPTIMIZER_REGISTRY_HPP
