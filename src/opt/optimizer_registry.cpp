#include "opt/optimizer_registry.hpp"

#include <map>

#include "common/thread_safety.hpp"
#include <string_view>

#include "common/error.hpp"

namespace cafqa {

namespace {

struct Registry
{
    Mutex optimizer_registry_mutex{"optimizer_registry_mutex"};
    std::map<std::string, OptimizerFactory> factories
        CAFQA_GUARDED_BY(optimizer_registry_mutex);
};

/** The process-wide registry, with the built-in kinds pre-registered.
 *  Function-local static so registration order is independent of
 *  translation-unit initialization order. */
Registry&
registry()
{
    static Registry instance;
    static const bool built_ins_registered = [] {
        MutexLock lock(instance.optimizer_registry_mutex);
        auto& factories = instance.factories;
        factories["bayes"] = [](const OptimizerConfig& config) {
            BayesOptOptions options = config.bayes;
            if (config.seed != 0) {
                options.seed = config.seed;
            }
            return std::make_unique<BayesOptimizer>(std::move(options));
        };
        factories["anneal"] = [](const OptimizerConfig& config) {
            AnnealingOptions options = config.anneal;
            if (config.seed != 0) {
                options.seed = config.seed;
            }
            return std::make_unique<SimulatedAnnealingOptimizer>(options);
        };
        factories["random"] = [](const OptimizerConfig& config) {
            RandomSearchOptions options = config.random;
            if (config.seed != 0) {
                options.seed = config.seed;
            }
            return std::make_unique<RandomSearchOptimizer>(options);
        };
        factories["tempering"] = [](const OptimizerConfig& config) {
            TemperingOptions options = config.tempering;
            if (config.seed != 0) {
                options.seed = config.seed;
            }
            return std::make_unique<ParallelTempering>(options);
        };
        factories["exhaustive"] = [](const OptimizerConfig&) {
            return std::make_unique<ExhaustiveOptimizer>();
        };
        factories["nelder-mead"] = [](const OptimizerConfig& config) {
            return std::make_unique<NelderMeadOptimizer>(
                config.nelder_mead);
        };
        factories["spsa"] = [](const OptimizerConfig& config) {
            SpsaOptions options = config.spsa;
            if (config.seed != 0) {
                options.seed = config.seed;
            }
            return std::make_unique<SpsaOptimizer>(options);
        };
        return true;
    }();
    (void)built_ins_registered;
    return instance;
}

constexpr std::string_view kPortfolioPrefix = "portfolio:";

/** Build a `PortfolioSearch` from a "portfolio:<k1+k2+...>" key: one
 *  arm per '+'-separated discrete kind, arm i seeded `seed + i` (when
 *  a seed override is set) so a one-arm portfolio matches the bare
 *  optimizer bit for bit. */
std::unique_ptr<Optimizer>
make_portfolio_optimizer(const OptimizerConfig& config)
{
    const std::string spec =
        config.kind.substr(kPortfolioPrefix.size());
    std::vector<std::string> kinds;
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        const std::size_t end = spec.find('+', begin);
        kinds.push_back(spec.substr(
            begin, end == std::string::npos ? end : end - begin));
        if (end == std::string::npos) {
            break;
        }
        begin = end + 1;
    }
    const auto discrete_kinds = [] {
        std::string all;
        for (const std::string& kind : registered_discrete_optimizers()) {
            all += all.empty() ? kind : ", " + kind;
        }
        return all;
    };
    for (const std::string& kind : kinds) {
        CAFQA_REQUIRE(!kind.empty(),
                      "empty portfolio arm in \"" + config.kind +
                          "\": expected \"portfolio:<kind1+kind2+...>\" "
                          "over discrete kinds (" +
                          discrete_kinds() + "), e.g. "
                          "\"portfolio:anneal+bayes+random\"");
        CAFQA_REQUIRE(kind.rfind(kPortfolioPrefix, 0) != 0,
                      "portfolio arm \"" + kind +
                          "\" in \"" + config.kind +
                          "\": portfolios cannot nest");
    }
    std::vector<PortfolioArm> arms;
    arms.reserve(kinds.size());
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        OptimizerConfig arm_config = config;
        arm_config.kind = kinds[i];
        if (config.seed != 0) {
            arm_config.seed = config.seed + i;
        }
        try {
            arms.push_back(PortfolioArm{
                kinds[i], make_discrete_optimizer(arm_config)});
        } catch (const std::exception& error) {
            CAFQA_REQUIRE(false, "portfolio arm \"" + kinds[i] +
                                     "\" in \"" + config.kind +
                                     "\": " + error.what());
        }
    }
    return std::make_unique<PortfolioSearch>(
        std::move(arms), config.portfolio, config.kind);
}

template <typename Interface>
std::vector<std::string>
registered_kinds_of()
{
    std::vector<std::string> kinds;
    for (const std::string& kind : registered_optimizers()) {
        OptimizerConfig config;
        config.kind = kind;
        // Classification needs an instance; a third-party factory that
        // rejects the default config is skipped rather than breaking
        // every listing (CLI usage text, ablation bench, ...).
        try {
            const std::unique_ptr<Optimizer> optimizer =
                make_optimizer(config);
            if (dynamic_cast<const Interface*>(optimizer.get()) !=
                nullptr) {
                kinds.push_back(kind);
            }
        } catch (const std::exception&) {
            continue;
        }
    }
    return kinds;
}

} // namespace

void
register_optimizer(const std::string& kind, OptimizerFactory factory)
{
    CAFQA_REQUIRE(!kind.empty(), "optimizer kind must be non-empty");
    CAFQA_REQUIRE(factory != nullptr, "optimizer factory must be callable");
    Registry& r = registry();
    MutexLock lock(r.optimizer_registry_mutex);
    r.factories[kind] = std::move(factory);
}

bool
optimizer_registered(const std::string& kind)
{
    Registry& r = registry();
    MutexLock lock(r.optimizer_registry_mutex);
    return r.factories.count(kind) != 0;
}

std::vector<std::string>
registered_optimizers()
{
    Registry& r = registry();
    MutexLock lock(r.optimizer_registry_mutex);
    std::vector<std::string> kinds;
    kinds.reserve(r.factories.size());
    for (const auto& [kind, factory] : r.factories) {
        kinds.push_back(kind);
    }
    return kinds;
}

std::vector<std::string>
registered_discrete_optimizers()
{
    return registered_kinds_of<DiscreteOptimizer>();
}

std::vector<std::string>
registered_continuous_optimizers()
{
    return registered_kinds_of<ContinuousOptimizer>();
}

std::unique_ptr<Optimizer>
make_optimizer(const OptimizerConfig& config)
{
    if (config.kind.rfind(kPortfolioPrefix, 0) == 0) {
        return make_portfolio_optimizer(config);
    }
    OptimizerFactory factory;
    {
        Registry& r = registry();
        MutexLock lock(r.optimizer_registry_mutex);
        const auto it = r.factories.find(config.kind);
        if (it == r.factories.end()) {
            std::string all;
            for (const auto& [kind, unused] : r.factories) {
                all += all.empty() ? kind : ", " + kind;
            }
            CAFQA_REQUIRE(false,
                          "unknown optimizer kind \"" + config.kind +
                              "\" (registered: " + all +
                              "; discrete kinds also compose as "
                              "\"portfolio:<kind1+kind2+...>\")");
        }
        factory = it->second;
    }
    std::unique_ptr<Optimizer> optimizer = factory(config);
    CAFQA_ASSERT(optimizer != nullptr, "optimizer factory returned null");
    return optimizer;
}

std::unique_ptr<DiscreteOptimizer>
make_discrete_optimizer(const OptimizerConfig& config)
{
    std::unique_ptr<Optimizer> optimizer = make_optimizer(config);
    auto* discrete = dynamic_cast<DiscreteOptimizer*>(optimizer.get());
    CAFQA_REQUIRE(discrete != nullptr,
                  "optimizer kind \"" + config.kind +
                      "\" does not minimize over a discrete space");
    optimizer.release();
    return std::unique_ptr<DiscreteOptimizer>(discrete);
}

std::unique_ptr<ContinuousOptimizer>
make_continuous_optimizer(const OptimizerConfig& config)
{
    std::unique_ptr<Optimizer> optimizer = make_optimizer(config);
    auto* continuous = dynamic_cast<ContinuousOptimizer*>(optimizer.get());
    CAFQA_REQUIRE(continuous != nullptr,
                  "optimizer kind \"" + config.kind +
                      "\" does not minimize from a continuous start point");
    optimizer.release();
    return std::unique_ptr<ContinuousOptimizer>(continuous);
}

} // namespace cafqa
