#include "opt/optimizer_registry.hpp"

#include <map>
#include <mutex>

#include "common/error.hpp"

namespace cafqa {

namespace {

struct Registry
{
    std::mutex mutex;
    std::map<std::string, OptimizerFactory> factories;
};

/** The process-wide registry, with the built-in kinds pre-registered.
 *  Function-local static so registration order is independent of
 *  translation-unit initialization order. */
Registry&
registry()
{
    static Registry instance;
    static const bool built_ins_registered = [] {
        auto& factories = instance.factories;
        factories["bayes"] = [](const OptimizerConfig& config) {
            BayesOptOptions options = config.bayes;
            if (config.seed != 0) {
                options.seed = config.seed;
            }
            return std::make_unique<BayesOptimizer>(std::move(options));
        };
        factories["anneal"] = [](const OptimizerConfig& config) {
            AnnealingOptions options = config.anneal;
            if (config.seed != 0) {
                options.seed = config.seed;
            }
            return std::make_unique<SimulatedAnnealingOptimizer>(options);
        };
        factories["random"] = [](const OptimizerConfig& config) {
            RandomSearchOptions options = config.random;
            if (config.seed != 0) {
                options.seed = config.seed;
            }
            return std::make_unique<RandomSearchOptimizer>(options);
        };
        factories["exhaustive"] = [](const OptimizerConfig&) {
            return std::make_unique<ExhaustiveOptimizer>();
        };
        factories["nelder-mead"] = [](const OptimizerConfig& config) {
            return std::make_unique<NelderMeadOptimizer>(
                config.nelder_mead);
        };
        factories["spsa"] = [](const OptimizerConfig& config) {
            SpsaOptions options = config.spsa;
            if (config.seed != 0) {
                options.seed = config.seed;
            }
            return std::make_unique<SpsaOptimizer>(options);
        };
        return true;
    }();
    (void)built_ins_registered;
    return instance;
}

template <typename Interface>
std::vector<std::string>
registered_kinds_of()
{
    std::vector<std::string> kinds;
    for (const std::string& kind : registered_optimizers()) {
        OptimizerConfig config;
        config.kind = kind;
        // Classification needs an instance; a third-party factory that
        // rejects the default config is skipped rather than breaking
        // every listing (CLI usage text, ablation bench, ...).
        try {
            const std::unique_ptr<Optimizer> optimizer =
                make_optimizer(config);
            if (dynamic_cast<const Interface*>(optimizer.get()) !=
                nullptr) {
                kinds.push_back(kind);
            }
        } catch (const std::exception&) {
            continue;
        }
    }
    return kinds;
}

} // namespace

void
register_optimizer(const std::string& kind, OptimizerFactory factory)
{
    CAFQA_REQUIRE(!kind.empty(), "optimizer kind must be non-empty");
    CAFQA_REQUIRE(factory != nullptr, "optimizer factory must be callable");
    Registry& r = registry();
    std::lock_guard lock(r.mutex);
    r.factories[kind] = std::move(factory);
}

bool
optimizer_registered(const std::string& kind)
{
    Registry& r = registry();
    std::lock_guard lock(r.mutex);
    return r.factories.count(kind) != 0;
}

std::vector<std::string>
registered_optimizers()
{
    Registry& r = registry();
    std::lock_guard lock(r.mutex);
    std::vector<std::string> kinds;
    kinds.reserve(r.factories.size());
    for (const auto& [kind, factory] : r.factories) {
        kinds.push_back(kind);
    }
    return kinds;
}

std::vector<std::string>
registered_discrete_optimizers()
{
    return registered_kinds_of<DiscreteOptimizer>();
}

std::vector<std::string>
registered_continuous_optimizers()
{
    return registered_kinds_of<ContinuousOptimizer>();
}

std::unique_ptr<Optimizer>
make_optimizer(const OptimizerConfig& config)
{
    OptimizerFactory factory;
    {
        Registry& r = registry();
        std::lock_guard lock(r.mutex);
        const auto it = r.factories.find(config.kind);
        if (it == r.factories.end()) {
            std::string all;
            for (const auto& [kind, unused] : r.factories) {
                all += all.empty() ? kind : ", " + kind;
            }
            CAFQA_REQUIRE(false, "unknown optimizer kind \"" + config.kind +
                                     "\" (registered: " + all + ")");
        }
        factory = it->second;
    }
    std::unique_ptr<Optimizer> optimizer = factory(config);
    CAFQA_ASSERT(optimizer != nullptr, "optimizer factory returned null");
    return optimizer;
}

std::unique_ptr<DiscreteOptimizer>
make_discrete_optimizer(const OptimizerConfig& config)
{
    std::unique_ptr<Optimizer> optimizer = make_optimizer(config);
    auto* discrete = dynamic_cast<DiscreteOptimizer*>(optimizer.get());
    CAFQA_REQUIRE(discrete != nullptr,
                  "optimizer kind \"" + config.kind +
                      "\" does not minimize over a discrete space");
    optimizer.release();
    return std::unique_ptr<DiscreteOptimizer>(discrete);
}

std::unique_ptr<ContinuousOptimizer>
make_continuous_optimizer(const OptimizerConfig& config)
{
    std::unique_ptr<Optimizer> optimizer = make_optimizer(config);
    auto* continuous = dynamic_cast<ContinuousOptimizer*>(optimizer.get());
    CAFQA_REQUIRE(continuous != nullptr,
                  "optimizer kind \"" + config.kind +
                      "\" does not minimize from a continuous start point");
    optimizer.release();
    return std::unique_ptr<ContinuousOptimizer>(continuous);
}

} // namespace cafqa
