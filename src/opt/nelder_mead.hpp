/**
 * @file
 * Nelder-Mead downhill simplex minimizer for small continuous problems.
 * Used by the STO-nG basis fitter and available as a noise-free baseline
 * tuner for post-CAFQA VQA tuning (registry key "nelder-mead").
 */
#ifndef CAFQA_OPT_NELDER_MEAD_HPP
#define CAFQA_OPT_NELDER_MEAD_HPP

#include <functional>
#include <vector>

#include "opt/optimizer.hpp"

namespace cafqa {

/** Options for Nelder-Mead. */
struct NelderMeadOptions
{
    /** Own evaluation budget (a `StoppingCriteria` cap overrides). */
    std::size_t max_evaluations = 2000;
    /** Stop when the simplex f-value spread falls below this. */
    double f_tolerance = 1e-12;
    /** Initial simplex edge length per coordinate. */
    double initial_step = 0.5;
};

/** Deprecated alias kept for one release; use `OptimizeOutcome`
 *  (`x` -> `best_x`, `f` -> `best_value`). */
using OptimizeResult = OptimizeOutcome;

/** Downhill simplex minimization (registry key "nelder-mead"). */
class NelderMeadOptimizer final : public ContinuousOptimizer
{
  public:
    explicit NelderMeadOptimizer(NelderMeadOptions options = {});

    std::string_view name() const override { return "nelder-mead"; }

    OptimizeOutcome minimize(const ContinuousObjective& objective,
                             std::vector<double> x0,
                             const StoppingCriteria& criteria = {},
                             const SearchContext& context = {}) override;

  private:
    NelderMeadOptions options_;
};

/** Minimize `objective` starting from `x0`. Deprecated shim over
 *  `NelderMeadOptimizer`. */
OptimizeResult
nelder_mead(const std::function<double(const std::vector<double>&)>& objective,
            std::vector<double> x0, const NelderMeadOptions& options = {});

} // namespace cafqa

#endif // CAFQA_OPT_NELDER_MEAD_HPP
