/**
 * @file
 * Nelder-Mead downhill simplex minimizer for small continuous problems.
 * Used by the STO-nG basis fitter and available as a noise-free baseline
 * optimizer for post-CAFQA VQA tuning.
 */
#ifndef CAFQA_OPT_NELDER_MEAD_HPP
#define CAFQA_OPT_NELDER_MEAD_HPP

#include <functional>
#include <vector>

namespace cafqa {

/** Options for Nelder-Mead. */
struct NelderMeadOptions
{
    std::size_t max_evaluations = 2000;
    /** Stop when the simplex f-value spread falls below this. */
    double f_tolerance = 1e-12;
    /** Initial simplex edge length per coordinate. */
    double initial_step = 0.5;
};

/** Result of a minimization. */
struct OptimizeResult
{
    std::vector<double> x;
    double f = 0.0;
    std::size_t evaluations = 0;
};

/** Minimize `objective` starting from `x0`. */
OptimizeResult
nelder_mead(const std::function<double(const std::vector<double>&)>& objective,
            std::vector<double> x0, const NelderMeadOptions& options = {});

} // namespace cafqa

#endif // CAFQA_OPT_NELDER_MEAD_HPP
