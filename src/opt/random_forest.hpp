/**
 * @file
 * Random-forest regressor: bootstrap-aggregated regression trees with
 * per-split feature subsampling. CAFQA's surrogate model choice for the
 * discrete Clifford space (paper Section 5: "flexible enough to model the
 * discrete space and scales well").
 */
#ifndef CAFQA_OPT_RANDOM_FOREST_HPP
#define CAFQA_OPT_RANDOM_FOREST_HPP

#include <vector>

#include "opt/decision_tree.hpp"

namespace cafqa {

/** Forest controls. */
struct ForestOptions
{
    std::size_t num_trees = 30;
    TreeOptions tree;
    /** Bootstrap sample fraction of the training set. */
    double bootstrap_fraction = 1.0;
};

/** Mean/variance prediction across trees. */
struct ForestPrediction
{
    double mean = 0.0;
    double variance = 0.0;
};

/** Bagged regression forest. */
class RandomForest
{
  public:
    /** Fit on rows x with targets y; deterministic given the seed. */
    void fit(const std::vector<std::vector<double>>& x,
             const std::vector<double>& y, std::uint64_t seed,
             ForestOptions options = {});

    /** Mean prediction. */
    double predict(const std::vector<double>& x) const;

    /** Mean and across-tree variance (a cheap uncertainty proxy). */
    ForestPrediction predict_with_variance(
        const std::vector<double>& x) const;

    std::size_t num_trees() const { return trees_.size(); }

  private:
    std::vector<DecisionTree> trees_;
};

} // namespace cafqa

#endif // CAFQA_OPT_RANDOM_FOREST_HPP
