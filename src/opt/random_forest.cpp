#include "opt/random_forest.hpp"

#include <cmath>

#include "common/error.hpp"

namespace cafqa {

void
RandomForest::fit(const std::vector<std::vector<double>>& x,
                  const std::vector<double>& y, std::uint64_t seed,
                  ForestOptions options)
{
    CAFQA_REQUIRE(!x.empty() && x.size() == y.size(),
                  "training data shape mismatch");
    Rng rng(seed);
    trees_.assign(options.num_trees, DecisionTree{});

    // Default per-split feature count: sqrt(d), the usual forest choice.
    if (options.tree.feature_subset == 0) {
        options.tree.feature_subset = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::round(std::sqrt(static_cast<double>(x[0].size())))));
    }

    const auto sample_size = static_cast<std::size_t>(
        std::max(1.0, options.bootstrap_fraction *
                          static_cast<double>(x.size())));

    std::vector<std::vector<double>> bx;
    std::vector<double> by;
    for (auto& tree : trees_) {
        bx.clear();
        by.clear();
        for (std::size_t s = 0; s < sample_size; ++s) {
            const auto i = static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(x.size()) - 1));
            bx.push_back(x[i]);
            by.push_back(y[i]);
        }
        tree.fit(bx, by, rng, options.tree);
    }
}

double
RandomForest::predict(const std::vector<double>& x) const
{
    return predict_with_variance(x).mean;
}

ForestPrediction
RandomForest::predict_with_variance(const std::vector<double>& x) const
{
    CAFQA_REQUIRE(!trees_.empty(), "forest has not been fitted");
    double sum = 0.0;
    double sq = 0.0;
    for (const auto& tree : trees_) {
        const double p = tree.predict(x);
        sum += p;
        sq += p * p;
    }
    const double n = static_cast<double>(trees_.size());
    ForestPrediction out;
    out.mean = sum / n;
    out.variance = std::max(0.0, sq / n - out.mean * out.mean);
    return out;
}

} // namespace cafqa
