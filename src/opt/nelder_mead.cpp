#include "opt/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace cafqa {

NelderMeadOptimizer::NelderMeadOptimizer(NelderMeadOptions options)
    : options_(options)
{
}

OptimizeOutcome
NelderMeadOptimizer::minimize(const ContinuousObjective& objective,
                              std::vector<double> x0,
                              const StoppingCriteria& criteria,
                              const SearchContext& context)
{
    CAFQA_REQUIRE(!x0.empty(), "empty start point");
    const std::size_t n = x0.size();
    const std::size_t max_evaluations = criteria.max_evaluations > 0
        ? criteria.max_evaluations
        : options_.max_evaluations;
    OutcomeRecorder recorder(criteria, max_evaluations, context.progress);

    struct Vertex
    {
        std::vector<double> x;
        double f;
    };

    auto eval = [&](const std::vector<double>& x) {
        const double value = objective(x);
        recorder.record(x, value);
        return value;
    };

    StopReason reason = max_evaluations > 0 ? StopReason::Converged
                                            : StopReason::BudgetExhausted;
    try {
        std::vector<Vertex> simplex;
        simplex.push_back({x0, eval(x0)});
        for (std::size_t i = 0; i < n; ++i) {
            std::vector<double> x = x0;
            x[i] += options_.initial_step;
            simplex.push_back({x, eval(x)});
        }

        auto by_f = [](const Vertex& a, const Vertex& b) {
            return a.f < b.f;
        };

        // An explicit zero budget (options and criteria both 0) keeps
        // the historical meaning: evaluate the initial simplex only.
        while (max_evaluations > 0) {
            std::sort(simplex.begin(), simplex.end(), by_f);
            if (simplex.back().f - simplex.front().f <
                options_.f_tolerance) {
                break;
            }

            // Centroid of all but the worst vertex.
            std::vector<double> centroid(n, 0.0);
            for (std::size_t v = 0; v < n; ++v) {
                for (std::size_t i = 0; i < n; ++i) {
                    centroid[i] += simplex[v].x[i] / static_cast<double>(n);
                }
            }
            Vertex& worst = simplex.back();

            auto blend = [&](double factor) {
                std::vector<double> x(n);
                for (std::size_t i = 0; i < n; ++i) {
                    x[i] = centroid[i] + factor * (worst.x[i] - centroid[i]);
                }
                return x;
            };

            const std::vector<double> reflected = blend(-1.0);
            const double f_reflected = eval(reflected);

            if (f_reflected < simplex.front().f) {
                const std::vector<double> expanded = blend(-2.0);
                const double f_expanded = eval(expanded);
                if (f_expanded < f_reflected) {
                    worst = {expanded, f_expanded};
                } else {
                    worst = {reflected, f_reflected};
                }
            } else if (f_reflected < simplex[n - 1].f) {
                worst = {reflected, f_reflected};
            } else {
                const std::vector<double> contracted = blend(0.5);
                const double f_contracted = eval(contracted);
                if (f_contracted < worst.f) {
                    worst = {contracted, f_contracted};
                } else {
                    // Shrink toward the best vertex.
                    for (std::size_t v = 1; v < simplex.size(); ++v) {
                        for (std::size_t i = 0; i < n; ++i) {
                            simplex[v].x[i] = simplex[0].x[i] +
                                0.5 * (simplex[v].x[i] - simplex[0].x[i]);
                        }
                        simplex[v].f = eval(simplex[v].x);
                    }
                }
            }
        }
    } catch (const OutcomeRecorder::EarlyStop&) {
        reason = StopReason::BudgetExhausted; // recorder reason wins
    }

    return recorder.finish(reason);
}

OptimizeResult
nelder_mead(const std::function<double(const std::vector<double>&)>& objective,
            std::vector<double> x0, const NelderMeadOptions& options)
{
    return NelderMeadOptimizer(options).minimize(objective, std::move(x0));
}

} // namespace cafqa
