#include "pauli/pauli_string.hpp"

#include <bit>

#include "common/error.hpp"

namespace cafqa {

namespace {

std::size_t
word_count(std::size_t num_qubits)
{
    return (num_qubits + 63) / 64;
}

std::complex<double>
i_power(std::uint8_t k)
{
    switch (k & 3) {
      case 0: return {1.0, 0.0};
      case 1: return {0.0, 1.0};
      case 2: return {-1.0, 0.0};
      default: return {0.0, -1.0};
    }
}

std::size_t
popcount_and(const std::vector<std::uint64_t>& a,
             const std::vector<std::uint64_t>& b)
{
    std::size_t total = 0;
    for (std::size_t w = 0; w < a.size(); ++w) {
        total += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
    }
    return total;
}

} // namespace

PauliString::PauliString(std::size_t num_qubits)
    : num_qubits_(num_qubits),
      x_(word_count(num_qubits), 0),
      z_(word_count(num_qubits), 0)
{}

PauliString
PauliString::from_label(const std::string& label)
{
    std::size_t pos = 0;
    std::uint8_t phase = 0;
    if (pos < label.size() && (label[pos] == '+' || label[pos] == '-')) {
        if (label[pos] == '-') {
            phase = 2;
        }
        ++pos;
    }
    if (pos < label.size() && label[pos] == 'i') {
        phase = (phase + 1) & 3;
        ++pos;
    }
    const std::size_t n = label.size() - pos;
    PauliString p(n);
    for (std::size_t q = 0; q < n; ++q) {
        switch (label[pos + q]) {
          case 'I': break;
          case 'X': p.set_x_bit(q, true); break;
          case 'Y':
            p.set_x_bit(q, true);
            p.set_z_bit(q, true);
            phase = (phase + 1) & 3; // Y = i * X * Z
            break;
          case 'Z': p.set_z_bit(q, true); break;
          default:
            CAFQA_REQUIRE(false, "invalid Pauli letter in label: " + label);
        }
    }
    p.phase_ = phase;
    return p;
}

bool
PauliString::x_bit(std::size_t qubit) const
{
    return (x_[qubit / 64] >> (qubit % 64)) & 1;
}

bool
PauliString::z_bit(std::size_t qubit) const
{
    return (z_[qubit / 64] >> (qubit % 64)) & 1;
}

void
PauliString::set_x_bit(std::size_t qubit, bool value)
{
    const std::uint64_t mask = std::uint64_t{1} << (qubit % 64);
    if (value) {
        x_[qubit / 64] |= mask;
    } else {
        x_[qubit / 64] &= ~mask;
    }
}

void
PauliString::set_z_bit(std::size_t qubit, bool value)
{
    const std::uint64_t mask = std::uint64_t{1} << (qubit % 64);
    if (value) {
        z_[qubit / 64] |= mask;
    } else {
        z_[qubit / 64] &= ~mask;
    }
}

PauliLetter
PauliString::letter(std::size_t qubit) const
{
    const bool x = x_bit(qubit);
    const bool z = z_bit(qubit);
    if (x && z) {
        return PauliLetter::Y;
    }
    if (x) {
        return PauliLetter::X;
    }
    if (z) {
        return PauliLetter::Z;
    }
    return PauliLetter::I;
}

void
PauliString::set_letter(std::size_t qubit, PauliLetter new_letter)
{
    // Keep sign() invariant: compensate the implicit i carried by each Y.
    const bool was_y = letter(qubit) == PauliLetter::Y;
    const bool is_y = new_letter == PauliLetter::Y;
    if (was_y && !is_y) {
        phase_ = (phase_ + 3) & 3;
    } else if (!was_y && is_y) {
        phase_ = (phase_ + 1) & 3;
    }
    set_x_bit(qubit, new_letter == PauliLetter::X ||
                     new_letter == PauliLetter::Y);
    set_z_bit(qubit, new_letter == PauliLetter::Z ||
                     new_letter == PauliLetter::Y);
}

std::size_t
PauliString::weight() const
{
    std::size_t total = 0;
    for (std::size_t w = 0; w < x_.size(); ++w) {
        total += static_cast<std::size_t>(std::popcount(x_[w] | z_[w]));
    }
    return total;
}

bool
PauliString::is_identity_letters() const
{
    for (std::size_t w = 0; w < x_.size(); ++w) {
        if ((x_[w] | z_[w]) != 0) {
            return false;
        }
    }
    return true;
}

bool
PauliString::is_hermitian() const
{
    const std::size_t y_count = popcount_and(x_, z_);
    return ((phase_ + 4 - (y_count & 3)) & 1) == 0;
}

std::complex<double>
PauliString::sign() const
{
    const std::size_t y_count = popcount_and(x_, z_);
    const std::uint8_t k =
        static_cast<std::uint8_t>((phase_ + 4 - (y_count & 3)) & 3);
    return i_power(k);
}

bool
PauliString::commutes_with(const PauliString& other) const
{
    CAFQA_REQUIRE(num_qubits_ == other.num_qubits_, "qubit count mismatch");
    const std::size_t sym = popcount_and(x_, other.z_) +
                            popcount_and(z_, other.x_);
    return (sym & 1) == 0;
}

PauliString&
PauliString::operator*=(const PauliString& rhs)
{
    CAFQA_REQUIRE(num_qubits_ == rhs.num_qubits_, "qubit count mismatch");
    // X^{x1} Z^{z1} X^{x2} Z^{z2} = (-1)^{z1.x2} X^{x1^x2} Z^{z1^z2}
    const std::size_t anti = popcount_and(z_, rhs.x_);
    phase_ = static_cast<std::uint8_t>(
        (phase_ + rhs.phase_ + 2 * (anti & 1)) & 3);
    for (std::size_t w = 0; w < x_.size(); ++w) {
        x_[w] ^= rhs.x_[w];
        z_[w] ^= rhs.z_[w];
    }
    return *this;
}

bool
PauliString::operator==(const PauliString& other) const
{
    return num_qubits_ == other.num_qubits_ && phase_ == other.phase_ &&
           x_ == other.x_ && z_ == other.z_;
}

bool
PauliString::equal_letters(const PauliString& other) const
{
    return num_qubits_ == other.num_qubits_ && x_ == other.x_ &&
           z_ == other.z_;
}

std::string
PauliString::to_label() const
{
    const std::complex<double> s = sign();
    std::string out;
    if (s.real() < -0.5) {
        out += "-";
    } else if (s.imag() > 0.5) {
        out += "+i";
    } else if (s.imag() < -0.5) {
        out += "-i";
    }
    for (std::size_t q = 0; q < num_qubits_; ++q) {
        switch (letter(q)) {
          case PauliLetter::I: out += 'I'; break;
          case PauliLetter::X: out += 'X'; break;
          case PauliLetter::Y: out += 'Y'; break;
          case PauliLetter::Z: out += 'Z'; break;
        }
    }
    return out;
}

void
PauliString::remove_qubit(std::size_t qubit)
{
    CAFQA_REQUIRE(qubit < num_qubits_, "qubit index out of range");
    CAFQA_REQUIRE(!x_bit(qubit),
                  "cannot remove a qubit carrying an X/Y component");
    PauliString shrunk(num_qubits_ - 1);
    for (std::size_t q = 0; q < num_qubits_; ++q) {
        if (q == qubit) {
            continue;
        }
        const std::size_t dst = (q < qubit) ? q : q - 1;
        shrunk.set_x_bit(dst, x_bit(q));
        shrunk.set_z_bit(dst, z_bit(q));
    }
    shrunk.phase_ = phase_;
    *this = std::move(shrunk);
}

std::size_t
PauliString::letters_hash() const
{
    std::size_t h = 0x9e3779b97f4a7c15ull ^ num_qubits_;
    auto mix = [&h](std::uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    for (std::uint64_t w : x_) {
        mix(w);
    }
    for (std::uint64_t w : z_) {
        mix(w ^ 0xabcdef1234567890ull);
    }
    return h;
}

PauliString
operator*(PauliString lhs, const PauliString& rhs)
{
    lhs *= rhs;
    return lhs;
}

} // namespace cafqa
