#include "pauli/grouping.hpp"

#include "common/error.hpp"

namespace cafqa {

bool
qubitwise_commute(const PauliString& a, const PauliString& b)
{
    CAFQA_REQUIRE(a.num_qubits() == b.num_qubits(), "qubit count mismatch");
    // Word-parallel: a conflict is a qubit where both letters are
    // non-identity (support bits set on both sides) and the (x, z) bit
    // pairs differ.
    const auto& xa = a.x_words();
    const auto& za = a.z_words();
    const auto& xb = b.x_words();
    const auto& zb = b.z_words();
    for (std::size_t w = 0; w < xa.size(); ++w) {
        const std::uint64_t support_a = xa[w] | za[w];
        const std::uint64_t support_b = xb[w] | zb[w];
        const std::uint64_t differ = (xa[w] ^ xb[w]) | (za[w] ^ zb[w]);
        if (support_a & support_b & differ) {
            return false;
        }
    }
    return true;
}

std::vector<MeasurementGroup>
group_qubitwise_commuting(const PauliSum& op)
{
    std::vector<MeasurementGroup> groups;
    for (std::size_t t = 0; t < op.num_terms(); ++t) {
        const PauliString& term = op.terms()[t].string;
        bool placed = false;
        for (auto& group : groups) {
            if (qubitwise_commute(group.basis, term)) {
                group.term_indices.push_back(t);
                // Extend the shared basis with this term's letters.
                for (std::size_t q = 0; q < term.num_qubits(); ++q) {
                    if (term.letter(q) != PauliLetter::I) {
                        group.basis.set_letter(q, term.letter(q));
                    }
                }
                placed = true;
                break;
            }
        }
        if (!placed) {
            MeasurementGroup group;
            group.term_indices.push_back(t);
            group.basis = PauliString(op.num_qubits());
            for (std::size_t q = 0; q < term.num_qubits(); ++q) {
                group.basis.set_letter(q, term.letter(q));
            }
            groups.push_back(std::move(group));
        }
    }
    return groups;
}

} // namespace cafqa
