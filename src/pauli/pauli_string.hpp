/**
 * @file
 * Bit-packed n-qubit Pauli strings with exact phase tracking.
 *
 * Internal representation: P = i^phase * prod_q X_q^{x_q} Z_q^{z_q},
 * with the X factor to the left of the Z factor on each qubit. In this
 * convention Y = i * X * Z, so a Hermitian string made of {I,X,Y,Z}
 * letters with a real sign s in {+1,-1} has
 *     phase = (2*s_bit + #Y) mod 4.
 *
 * The X/Z supports are packed 64 qubits per word, which keeps products,
 * commutation checks and tableau updates O(n/64).
 */
#ifndef CAFQA_PAULI_PAULI_STRING_HPP
#define CAFQA_PAULI_PAULI_STRING_HPP

#include <complex>
#include <cstdint>
#include <string>
#include <vector>

namespace cafqa {

/** Single-qubit Pauli letter. */
enum class PauliLetter : std::uint8_t { I = 0, X = 1, Y = 2, Z = 3 };

/** An n-qubit Pauli operator with a global phase i^k. */
class PauliString
{
  public:
    /** Identity on `num_qubits` qubits. */
    explicit PauliString(std::size_t num_qubits = 0);

    /**
     * Parse from text such as "XIZY", "-XX", "+iZZ", "-iYI".
     * Qubit 0 is the leftmost letter.
     */
    static PauliString from_label(const std::string& label);

    std::size_t num_qubits() const { return num_qubits_; }

    /** True if the qubit carries an X or Y component. */
    bool x_bit(std::size_t qubit) const;
    /** True if the qubit carries a Z or Y component. */
    bool z_bit(std::size_t qubit) const;
    void set_x_bit(std::size_t qubit, bool value);
    void set_z_bit(std::size_t qubit, bool value);

    /** The Pauli letter on one qubit ignoring the global phase. */
    PauliLetter letter(std::size_t qubit) const;
    /** Overwrite the letter on one qubit, adjusting phase so that the
     *  string remains i^phase * X^x Z^z with Y counted as i*XZ. */
    void set_letter(std::size_t qubit, PauliLetter letter);

    /** Phase exponent k in P = i^k * X^x Z^z, in {0,1,2,3}. */
    std::uint8_t phase_exponent() const { return phase_; }
    void set_phase_exponent(std::uint8_t k) { phase_ = k & 3; }
    /** Multiply the global phase by i^k. */
    void mul_phase(std::uint8_t k) { phase_ = (phase_ + k) & 3; }

    /** Number of non-identity letters. */
    std::size_t weight() const;

    /** True when every letter is I (phase may still be nontrivial). */
    bool is_identity_letters() const;

    /** True when the operator is Hermitian, i.e. equals +/- a tensor
     *  product of {I,X,Y,Z}. */
    bool is_hermitian() const;

    /**
     * The coefficient c in P = c * (tensor of letters), where the letter
     * string is as returned by letter(). For Hermitian strings this is
     * +1 or -1; otherwise +/-i.
     */
    std::complex<double> sign() const;

    /** True iff this commutes with `other` (phases ignored). */
    bool commutes_with(const PauliString& other) const;

    /** In-place product: *this = *this * rhs, tracking phase exactly. */
    PauliString& operator*=(const PauliString& rhs);

    bool operator==(const PauliString& other) const;

    /** True when the letters match, ignoring the global phase. */
    bool equal_letters(const PauliString& other) const;

    /** Label such as "-iXIZY" (qubit 0 leftmost). */
    std::string to_label() const;

    /** Remove the given qubit position, shifting higher qubits down.
     *  The removed letter must be I or Z; its phase is untouched (the
     *  caller accounts for the Z eigenvalue). */
    void remove_qubit(std::size_t qubit);

    /** Packed words, 64 qubits each, for hashing and fast iteration. */
    const std::vector<std::uint64_t>& x_words() const { return x_; }
    const std::vector<std::uint64_t>& z_words() const { return z_; }

    /** Stable hash over the letters (phase excluded). */
    std::size_t letters_hash() const;

  private:
    std::size_t num_qubits_ = 0;
    std::uint8_t phase_ = 0;
    std::vector<std::uint64_t> x_;
    std::vector<std::uint64_t> z_;
};

/** Out-of-place product with exact phase. */
PauliString operator*(PauliString lhs, const PauliString& rhs);

} // namespace cafqa

#endif // CAFQA_PAULI_PAULI_STRING_HPP
