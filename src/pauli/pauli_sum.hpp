/**
 * @file
 * Weighted sums of Pauli strings — the qubit-Hamiltonian representation
 * used throughout CAFQA (molecular Hamiltonians, number/spin operators,
 * MaxCut objectives).
 *
 * Terms are kept canonical: each stored string has sign +1 (the sign and
 * any i factors are folded into the complex coefficient), so combining
 * like terms is a pure hash-map reduction over the letter bits.
 */
#ifndef CAFQA_PAULI_PAULI_SUM_HPP
#define CAFQA_PAULI_PAULI_SUM_HPP

#include <complex>
#include <string>
#include <vector>

#include "pauli/pauli_string.hpp"

namespace cafqa {

/** One canonical term: coefficient times a sign-free Pauli string. */
struct PauliTerm
{
    std::complex<double> coefficient;
    PauliString string; // sign() == +1 by construction
};

/** A linear combination of Pauli strings on a fixed qubit count. */
class PauliSum
{
  public:
    /** Empty (zero) operator on `num_qubits` qubits. */
    explicit PauliSum(std::size_t num_qubits = 0);

    /** Convenience builder: sum of labeled terms, e.g.
     *  {{0.1, "XYXY"}, {0.5, "IZZI"}}. */
    static PauliSum from_terms(
        std::size_t num_qubits,
        const std::vector<std::pair<std::complex<double>, std::string>>&
            terms);

    std::size_t num_qubits() const { return num_qubits_; }
    std::size_t num_terms() const { return terms_.size(); }
    const std::vector<PauliTerm>& terms() const { return terms_; }

    /** Add coeff * string; the string's own sign is folded into coeff. */
    void add_term(std::complex<double> coeff, PauliString string);

    PauliSum& operator+=(const PauliSum& other);
    PauliSum& operator-=(const PauliSum& other);
    PauliSum& operator*=(std::complex<double> scale);

    /** Operator product; term count is the product of term counts before
     *  simplification. */
    PauliSum operator*(const PauliSum& other) const;

    /** Combine like terms and drop those with |coeff| <= tolerance. */
    void simplify(double tolerance = 1e-12);

    /** Max |imag part| over coefficients (after simplify, a Hermitian
     *  operator has only real coefficients). */
    double max_imag_coefficient() const;

    /** Drop imaginary parts; requires max_imag_coefficient() below tol. */
    void chop_to_hermitian(double tolerance = 1e-8);

    /** Coefficient of the identity string (0 if absent). */
    std::complex<double> identity_coefficient() const;

    /** True when every term is diagonal (letters in {I, Z} only). */
    bool is_diagonal() const;

    /** The diagonal (I/Z-only) part of the operator. */
    PauliSum diagonal_part() const;

    /** Sum of |coeff| — an easy upper bound on the spectral norm. */
    double one_norm() const;

    /** Multi-line human-readable dump (for debugging and examples). */
    std::string to_string(std::size_t max_terms = 32) const;

  private:
    std::size_t num_qubits_ = 0;
    std::vector<PauliTerm> terms_;
};

PauliSum operator+(PauliSum a, const PauliSum& b);
PauliSum operator-(PauliSum a, const PauliSum& b);
PauliSum operator*(std::complex<double> scale, PauliSum a);

/**
 * Throw std::invalid_argument unless every coefficient's |imag part|
 * is within `tolerance` — the shared precondition of every evaluator
 * that returns a real expectation value (a silent `.real()` would hide
 * mapping bugs that produce non-Hermitian sums).
 */
void require_hermitian(const PauliSum& op, double tolerance);

} // namespace cafqa

#endif // CAFQA_PAULI_PAULI_SUM_HPP
