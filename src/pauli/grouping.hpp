/**
 * @file
 * Qubit-wise-commuting (QWC) grouping of Pauli sums — the
 * measurement-setting reduction of Gokhale et al. (paper reference
 * [25]): terms that commute qubit-by-qubit can be estimated from the
 * same measured bitstrings, cutting the number of state preparations a
 * real device needs per energy evaluation.
 */
#ifndef CAFQA_PAULI_GROUPING_HPP
#define CAFQA_PAULI_GROUPING_HPP

#include <vector>

#include "pauli/pauli_sum.hpp"

namespace cafqa {

/** True when the strings commute on every qubit individually (letters
 *  equal, or at least one is I). */
bool qubitwise_commute(const PauliString& a, const PauliString& b);

/** One measurement group: term indices plus the shared basis. */
struct MeasurementGroup
{
    /** Indices into the PauliSum's term list. */
    std::vector<std::size_t> term_indices;
    /** Per-qubit measurement basis: the non-identity letter shared by
     *  the group (I where no term touches the qubit). */
    PauliString basis;
};

/**
 * Greedy first-fit QWC grouping. Every term lands in exactly one group;
 * terms within a group are pairwise qubit-wise commuting.
 */
std::vector<MeasurementGroup> group_qubitwise_commuting(const PauliSum& op);

} // namespace cafqa

#endif // CAFQA_PAULI_GROUPING_HPP
