#include "pauli/pauli_sum.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "common/error.hpp"

namespace cafqa {

namespace {

/** Strip the sign/phase from a string into the coefficient. */
void
canonicalize(std::complex<double>& coeff, PauliString& string)
{
    coeff *= string.sign();
    // Reset phase so that sign() == +1: phase must equal #Y mod 4.
    std::size_t y_count = 0;
    for (std::size_t q = 0; q < string.num_qubits(); ++q) {
        if (string.letter(q) == PauliLetter::Y) {
            ++y_count;
        }
    }
    string.set_phase_exponent(static_cast<std::uint8_t>(y_count & 3));
}

} // namespace

PauliSum::PauliSum(std::size_t num_qubits) : num_qubits_(num_qubits) {}

PauliSum
PauliSum::from_terms(
    std::size_t num_qubits,
    const std::vector<std::pair<std::complex<double>, std::string>>& terms)
{
    PauliSum sum(num_qubits);
    for (const auto& [coeff, label] : terms) {
        PauliString p = PauliString::from_label(label);
        CAFQA_REQUIRE(p.num_qubits() == num_qubits,
                      "label length does not match qubit count: " + label);
        sum.add_term(coeff, std::move(p));
    }
    sum.simplify();
    return sum;
}

void
PauliSum::add_term(std::complex<double> coeff, PauliString string)
{
    CAFQA_REQUIRE(string.num_qubits() == num_qubits_,
                  "term qubit count mismatch");
    canonicalize(coeff, string);
    terms_.push_back(PauliTerm{coeff, std::move(string)});
}

PauliSum&
PauliSum::operator+=(const PauliSum& other)
{
    CAFQA_REQUIRE(num_qubits_ == other.num_qubits_, "qubit count mismatch");
    terms_.insert(terms_.end(), other.terms_.begin(), other.terms_.end());
    return *this;
}

PauliSum&
PauliSum::operator-=(const PauliSum& other)
{
    CAFQA_REQUIRE(num_qubits_ == other.num_qubits_, "qubit count mismatch");
    for (const auto& term : other.terms_) {
        terms_.push_back(PauliTerm{-term.coefficient, term.string});
    }
    return *this;
}

PauliSum&
PauliSum::operator*=(std::complex<double> scale)
{
    for (auto& term : terms_) {
        term.coefficient *= scale;
    }
    return *this;
}

PauliSum
PauliSum::operator*(const PauliSum& other) const
{
    CAFQA_REQUIRE(num_qubits_ == other.num_qubits_, "qubit count mismatch");
    PauliSum product(num_qubits_);
    product.terms_.reserve(terms_.size() * other.terms_.size());
    for (const auto& a : terms_) {
        for (const auto& b : other.terms_) {
            PauliString s = a.string * b.string;
            std::complex<double> c = a.coefficient * b.coefficient;
            canonicalize(c, s);
            product.terms_.push_back(PauliTerm{c, std::move(s)});
        }
    }
    product.simplify();
    return product;
}

void
PauliSum::simplify(double tolerance)
{
    std::unordered_map<std::size_t, std::vector<std::size_t>> buckets;
    std::vector<PauliTerm> combined;
    combined.reserve(terms_.size());

    for (auto& term : terms_) {
        const std::size_t h = term.string.letters_hash();
        auto& bucket = buckets[h];
        bool merged = false;
        for (std::size_t idx : bucket) {
            if (combined[idx].string.equal_letters(term.string)) {
                combined[idx].coefficient += term.coefficient;
                merged = true;
                break;
            }
        }
        if (!merged) {
            bucket.push_back(combined.size());
            combined.push_back(std::move(term));
        }
    }

    combined.erase(
        std::remove_if(combined.begin(), combined.end(),
                       [tolerance](const PauliTerm& t) {
                           return std::abs(t.coefficient) <= tolerance;
                       }),
        combined.end());
    terms_ = std::move(combined);
}

double
PauliSum::max_imag_coefficient() const
{
    double worst = 0.0;
    for (const auto& term : terms_) {
        worst = std::max(worst, std::abs(term.coefficient.imag()));
    }
    return worst;
}

void
PauliSum::chop_to_hermitian(double tolerance)
{
    require_hermitian(*this, tolerance);
    for (auto& term : terms_) {
        term.coefficient = {term.coefficient.real(), 0.0};
    }
}

void
require_hermitian(const PauliSum& op, double tolerance)
{
    const double imag = op.max_imag_coefficient();
    CAFQA_REQUIRE(imag <= tolerance,
                  "PauliSum is not Hermitian (|imag coefficient| = " +
                      std::to_string(imag) +
                      "); a real-valued expectation is defined for "
                      "Hermitian sums only");
}

std::complex<double>
PauliSum::identity_coefficient() const
{
    for (const auto& term : terms_) {
        if (term.string.is_identity_letters()) {
            return term.coefficient;
        }
    }
    return {0.0, 0.0};
}

bool
PauliSum::is_diagonal() const
{
    for (const auto& term : terms_) {
        for (const auto w : term.string.x_words()) {
            if (w != 0) {
                return false;
            }
        }
    }
    return true;
}

PauliSum
PauliSum::diagonal_part() const
{
    PauliSum diag(num_qubits_);
    for (const auto& term : terms_) {
        bool has_x = false;
        for (const auto w : term.string.x_words()) {
            has_x = has_x || (w != 0);
        }
        if (!has_x) {
            diag.terms_.push_back(term);
        }
    }
    return diag;
}

double
PauliSum::one_norm() const
{
    double total = 0.0;
    for (const auto& term : terms_) {
        total += std::abs(term.coefficient);
    }
    return total;
}

std::string
PauliSum::to_string(std::size_t max_terms) const
{
    std::ostringstream out;
    out << "PauliSum(" << num_qubits_ << " qubits, " << terms_.size()
        << " terms)\n";
    std::size_t shown = 0;
    for (const auto& term : terms_) {
        if (shown++ >= max_terms) {
            out << "  ... (" << terms_.size() - max_terms << " more)\n";
            break;
        }
        out << "  (" << term.coefficient.real();
        if (std::abs(term.coefficient.imag()) > 1e-15) {
            out << (term.coefficient.imag() >= 0 ? "+" : "")
                << term.coefficient.imag() << "i";
        }
        out << ") * " << term.string.to_label() << '\n';
    }
    return out.str();
}

PauliSum
operator+(PauliSum a, const PauliSum& b)
{
    a += b;
    return a;
}

PauliSum
operator-(PauliSum a, const PauliSum& b)
{
    a -= b;
    return a;
}

PauliSum
operator*(std::complex<double> scale, PauliSum a)
{
    a *= scale;
    return a;
}

} // namespace cafqa
