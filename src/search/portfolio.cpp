#include "search/portfolio.hpp"

#include <algorithm>
#include <limits>
#include <thread>

#include "common/error.hpp"
#include "common/thread_safety.hpp"
#include "telemetry/metrics.hpp"

namespace cafqa {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Orchestrator state shared by the arm threads. All fields are
 *  guarded by `control_mutex` except the per-arm kill tokens (atomics
 *  read by the arms' recorders). */
struct Control
{
    struct Arm
    {
        std::shared_ptr<std::atomic<bool>> kill =
            std::make_shared<std::atomic<bool>>(false);
        /** Evaluations this arm may still run before its next barrier
         *  arrival. */
        std::size_t allowance = 0;
        /** Best value the arm has recorded so far. */
        double best = kInf;
        /** Round in which `best` last improved (staleness clock). */
        std::size_t last_improve_round = 0;
        /** Parked at the barrier, waiting for the round to turn. */
        bool waiting = false;
        /** Exhausted its own budget and parked awaiting a restart
         *  grant from the reclaimed pool. */
        bool pending = false;
        /** Budget cap granted for the arm's next warm-started attempt
         *  (nonzero = restart approved). */
        std::size_t restart_budget = 0;
        /** Warm restarts taken so far. */
        std::size_t restarts = 0;
        /** The arm is done: its optimizer returned and no restart is
         *  coming. */
        bool finished = false;
        bool killed = false;
    };

    Mutex control_mutex{"control_mutex"};
    CondVar cv;
    /** Serializes objective calls when no objective_factory is set. */
    Mutex eval_mutex{"eval_mutex"};

    /** Per-arm slots: the vector itself is sized once before the arm
     *  threads start, but every field of every slot is part of the
     *  round-barrier invariant. */
    std::vector<Arm> arms CAFQA_GUARDED_BY(control_mutex);
    /** Remaining shared evaluation pool (when capped): arms x the
     *  per-arm budget. */
    std::size_t pool CAFQA_GUARDED_BY(control_mutex) = 0;
    bool pool_capped CAFQA_GUARDED_BY(control_mutex) = false;
    std::size_t round CAFQA_GUARDED_BY(control_mutex) = 0;
    std::size_t generation CAFQA_GUARDED_BY(control_mutex) = 0;
    bool external_cancel CAFQA_GUARDED_BY(control_mutex) = false;
    bool target_seen CAFQA_GUARDED_BY(control_mutex) = false;

    // Set once before the arm threads start, read-only afterwards.
    PortfolioOptions options;
    std::shared_ptr<const std::atomic<bool>> parent_cancel;
    ProgressCallback progress;

    std::size_t progress_evals CAFQA_GUARDED_BY(control_mutex) = 0;
    double progress_best CAFQA_GUARDED_BY(control_mutex) = kInf;

    bool live(std::size_t i) const CAFQA_REQUIRES(control_mutex)
    {
        return !arms[i].finished && !arms[i].killed;
    }

    void kill(std::size_t i) CAFQA_REQUIRES(control_mutex)
    {
        if (live(i)) {
            arms[i].killed = true;
            arms[i].kill->store(true, std::memory_order_relaxed);
            // Its unspent allowance flows back to the pool for the
            // survivors — the "rebalanced to survivors" contract.
            if (pool_capped) {
                pool += arms[i].allowance;
            }
            arms[i].allowance = 0;
        }
    }

    void kill_everyone() CAFQA_REQUIRES(control_mutex)
    {
        for (std::size_t i = 0; i < arms.size(); ++i) {
            kill(i);
        }
        // Arms parked at the barrier must observe their raised token.
        cv.notify_all();
    }

    /** True when no live arm is still running evaluations — every one
     *  is parked with an empty allowance, either at the evaluation
     *  barrier or pending a restart grant. Killed arms (possibly mid
     *  final evaluation) do not hold the round open. */
    bool round_closed() const CAFQA_REQUIRES(control_mutex)
    {
        for (std::size_t i = 0; i < arms.size(); ++i) {
            const bool parked = (arms[i].waiting || arms[i].pending) &&
                                arms[i].allowance == 0;
            if (live(i) && !parked) {
                return false;
            }
        }
        return true;
    }

    /** Turn the round: decide kills from the arms' round-boundary
     *  bests, grant restarts to budget-exhausted arms from the
     *  reclaimed pool, refill allowances, advance the generation.
     *  Runs under `mutex`, triggered by whichever arm closes the
     *  round — the decisions depend only on per-round state, never on
     *  thread timing. */
    void complete_round() CAFQA_REQUIRES(control_mutex)
    {
        ++round;

        // Kill at most the single worst live arm per round, once the
        // grace window has passed and a race still exists — and only
        // when that arm is stale: dominance alone is not enough,
        // because slow-burn strategies (annealing before it cools)
        // legitimately trail mid-run and win late.
        std::size_t live_count = 0;
        for (std::size_t i = 0; i < arms.size(); ++i) {
            live_count += live(i) ? 1 : 0;
        }
        if (round > options.grace_rounds && live_count > 1) {
            std::size_t best_arm = arms.size();
            std::size_t worst_arm = arms.size();
            for (std::size_t i = 0; i < arms.size(); ++i) {
                if (!live(i)) {
                    continue;
                }
                if (best_arm == arms.size() ||
                    arms[i].best < arms[best_arm].best) {
                    best_arm = i;
                }
                if (worst_arm == arms.size() ||
                    arms[i].best >= arms[worst_arm].best) {
                    worst_arm = i;
                }
            }
            if (worst_arm != best_arm &&
                arms[worst_arm].best >
                    arms[best_arm].best + options.kill_margin &&
                round - arms[worst_arm].last_improve_round >=
                    options.stale_rounds) {
                kill(worst_arm);
            }
        }

        // Reclaimed budget flows to arms that spent their own: a
        // pending arm restarts (warm-started by its thread) when the
        // pool can still fund at least one round, capped by the pool
        // as it stands at this barrier; otherwise it is done. Arm
        // order keeps the grants deterministic.
        for (std::size_t i = 0; i < arms.size(); ++i) {
            if (!live(i) || !arms[i].pending) {
                continue;
            }
            if (pool_capped && pool >= options.sync_evals) {
                arms[i].restart_budget = pool;
            } else {
                arms[i].finished = true;
            }
        }

        // Refill allowances in arm order; an arm the pool cannot fund
        // at all is out of budget.
        for (std::size_t i = 0; i < arms.size(); ++i) {
            if (!live(i)) {
                continue;
            }
            if (!pool_capped) {
                arms[i].allowance = options.sync_evals;
                continue;
            }
            const std::size_t grant = std::min(options.sync_evals, pool);
            pool -= grant;
            arms[i].allowance = grant;
            if (grant == 0) {
                kill(i);
            }
        }

        ++generation;
        cv.notify_all();
    }
};

/** Fold an arm's attempts (first leg plus warm-started restarts) into
 *  the single outcome the merged trace and the report carry. */
OptimizeOutcome
combine_attempts(std::vector<OptimizeOutcome> attempts)
{
    if (attempts.size() == 1) {
        // The common path — and the parity path: a one-arm portfolio
        // must return the bare optimizer's outcome verbatim.
        return std::move(attempts.front());
    }
    OptimizeOutcome combined;
    combined.best_value = kInf;
    for (OptimizeOutcome& attempt : attempts) {
        combined.history.insert(combined.history.end(),
                                attempt.history.begin(),
                                attempt.history.end());
        combined.evaluations += attempt.evaluations;
        combined.unique_evaluations += attempt.unique_evaluations;
        if (!attempt.best_config.empty() &&
            attempt.best_value < combined.best_value) {
            combined.best_value = attempt.best_value;
            combined.best_config = std::move(attempt.best_config);
        }
        combined.stop_reason = attempt.stop_reason;
    }
    combined.best_trace.reserve(combined.history.size());
    double running = kInf;
    combined.evaluations_to_best = 0;
    for (std::size_t j = 0; j < combined.history.size(); ++j) {
        if (combined.history[j] < running) {
            running = combined.history[j];
            if (running == combined.best_value &&
                combined.evaluations_to_best == 0) {
                combined.evaluations_to_best = j + 1;
            }
        }
        combined.best_trace.push_back(running);
    }
    return combined;
}

} // namespace

PortfolioSearch::PortfolioSearch(std::vector<PortfolioArm> arms,
                                 PortfolioOptions options, std::string key)
    : arms_(std::move(arms)), options_(options), key_(std::move(key))
{
    CAFQA_REQUIRE(!arms_.empty(), "portfolio needs at least one arm");
    for (const PortfolioArm& arm : arms_) {
        CAFQA_REQUIRE(arm.optimizer != nullptr,
                      "portfolio arm has no optimizer");
    }
    CAFQA_REQUIRE(options_.sync_evals >= 1,
                  "sync_evals must be at least 1");
    auto& registry = telemetry::MetricsRegistry::instance();
    arm_evals_metrics_.reserve(arms_.size());
    for (const PortfolioArm& arm : arms_) {
        arm_evals_metrics_.push_back(&registry.counter(
            "cafqa_portfolio_evals_total", {{"arm", arm.kind}},
            "Objective evaluations recorded, per portfolio arm kind"));
    }
    kills_metric_ = &registry.counter(
        "cafqa_portfolio_kills_total", {},
        "Portfolio arms killed by the round orchestrator");
    restarts_metric_ = &registry.counter(
        "cafqa_portfolio_restarts_total", {},
        "Warm restarts granted to budget-exhausted portfolio arms");
}

OptimizeOutcome
PortfolioSearch::minimize(const DiscreteObjective& objective,
                          const DiscreteSpace& space,
                          const StoppingCriteria& criteria,
                          const SearchContext& context)
{
    validate_space(space);
    validate_seed_configs(context.seed_configs, space);

    const std::size_t n = arms_.size();
    Control control;
    // Uncontended (no arm thread exists yet), but the analysis wants
    // every touch of the guarded round state under the lock.
    MutexLock setup_lock(control.control_mutex);
    control.arms.resize(n);
    control.pool_capped = criteria.max_evaluations > 0;
    // max_evaluations is the PER-ARM budget (each arm's trajectory is
    // eval-for-eval its solo run), so the shared pool holds one full
    // budget per arm; kills hand what is left back to the pool and
    // restarts spend it.
    control.pool = criteria.max_evaluations * n;
    control.options = options_;
    control.parent_cancel = criteria.cancel;
    control.progress = context.progress;

    // Round zero's allowances, granted before any thread starts.
    for (std::size_t i = 0; i < n; ++i) {
        if (control.pool_capped) {
            const std::size_t grant =
                std::min(options_.sync_evals, control.pool);
            control.pool -= grant;
            control.arms[i].allowance = grant;
            if (grant == 0) {
                control.kill(i);
            }
        } else {
            control.arms[i].allowance = options_.sync_evals;
        }
    }
    setup_lock.unlock();

    std::vector<OptimizeOutcome> outcomes(n);
    // lint:allow(raw-thread) the arms must run CONCURRENTLY (they
    // synchronize at round barriers); ThreadPool::parallel_for runs
    // indices in whatever order workers grab them and may serialize
    // them on a small pool, which would deadlock the barrier.
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        threads.emplace_back([&, i] {
            // Each arm evaluates through its own objective when the
            // caller can mint thread-safe clones (pipeline: one
            // clone()d backend per arm, shared cache); otherwise all
            // arms serialize on one mutex around the shared objective.
            DiscreteObjective own;
            if (context.objective_factory) {
                own = context.objective_factory();
            }
            const DiscreteObjective* eval =
                own ? &own : &objective;

            DiscreteObjective gated =
                [&](const std::vector<int>& config) {
                    {
                        MutexLock lock(control.control_mutex);
                        if (control.parent_cancel &&
                            control.parent_cancel->load(
                                std::memory_order_relaxed) &&
                            !control.external_cancel) {
                            control.external_cancel = true;
                            control.kill_everyone();
                        }
                        Control::Arm& me = control.arms[i];
                        // A killed arm passes straight through: this
                        // one evaluation lets its recorder observe the
                        // raised token and stop with best-so-far.
                        while (!me.killed && me.allowance == 0) {
                            me.waiting = true;
                            if (control.round_closed()) {
                                control.complete_round();
                            } else {
                                control.cv.wait(lock);
                            }
                            me.waiting = false;
                        }
                        if (!me.killed) {
                            --me.allowance;
                        }
                    }
                    double value;
                    if (own) {
                        value = (*eval)(config);
                    } else {
                        MutexLock guard(control.eval_mutex);
                        value = (*eval)(config);
                    }
                    {
                        MutexLock lock(control.control_mutex);
                        Control::Arm& me = control.arms[i];
                        if (value < me.best) {
                            me.best = value;
                            me.last_improve_round = control.round;
                        }
                        ++control.progress_evals;
                        control.progress_best =
                            std::min(control.progress_best, value);
                        if (control.progress) {
                            control.progress(control.progress_evals,
                                             control.progress_best);
                        }
                    }
                    return value;
                };

            // The arm's cap is the caller's budget unchanged, so its
            // schedules (annealing's cooling span, Bayesian warm-up
            // split) resolve exactly as they would solo. The kill
            // token is copied out under the lock (the shared_ptr slot
            // is guarded state; the atomic it points to is lock-free
            // by design).
            StoppingCriteria arm_criteria = criteria;
            {
                MutexLock lock(control.control_mutex);
                arm_criteria.cancel = control.arms[i].kill;
            }

            SearchContext arm_context;
            arm_context.seed_configs = context.seed_configs;

            std::vector<OptimizeOutcome> attempts;
            while (true) {
                OptimizeOutcome outcome;
                try {
                    outcome = arms_[i].optimizer->minimize(
                        gated, space, arm_criteria, arm_context);
                    // lint:allow(catch-swallow) the failure IS
                    // recorded, as a finished empty arm: an arm
                    // throwing mid-race must not strand its peers at
                    // the barrier, and best_value = inf loses every
                    // merge.
                } catch (...) {
                    outcome = OptimizeOutcome{};
                    outcome.best_value = kInf;
                }

                MutexLock lock(control.control_mutex);
                Control::Arm& me = control.arms[i];
                const StopReason reason = outcome.stop_reason;
                const bool has_config = !outcome.best_config.empty();
                attempts.push_back(std::move(outcome));
                if (control.pool_capped) {
                    control.pool += me.allowance;
                }
                me.allowance = 0;
                if (!me.killed && reason == StopReason::TargetReached) {
                    control.target_seen = true;
                    control.kill_everyone();
                }
                // Only an arm that ran out of its own budget while the
                // race goes on is a restart candidate; killed arms,
                // target hits, and optimizers that stopped for their
                // own reasons (converged, space exhausted) are done.
                const bool wants_restart =
                    control.pool_capped && !me.killed &&
                    !control.target_seen &&
                    reason == StopReason::BudgetExhausted && has_config;
                if (!wants_restart) {
                    me.finished = true;
                    if (control.round_closed()) {
                        control.complete_round();
                    } else {
                        control.cv.notify_all();
                    }
                    break;
                }

                me.pending = true;
                if (control.round_closed()) {
                    control.complete_round();
                } else {
                    control.cv.notify_all();
                }
                while (me.pending && me.restart_budget == 0 &&
                       !me.finished && !me.killed) {
                    control.cv.wait(lock);
                }
                me.pending = false;
                if (me.finished || me.killed) {
                    me.finished = true;
                    if (control.round_closed()) {
                        control.complete_round();
                    } else {
                        control.cv.notify_all();
                    }
                    break;
                }

                // Restart granted: rerun the same optimizer capped by
                // the reclaimed budget, warm-started from this arm's
                // best configuration so the continuation refines
                // rather than starts over.
                ++me.restarts;
                arm_criteria.max_evaluations = me.restart_budget;
                me.restart_budget = 0;
                std::vector<int> warm;
                double warm_best = kInf;
                for (const OptimizeOutcome& attempt : attempts) {
                    if (!attempt.best_config.empty() &&
                        attempt.best_value < warm_best) {
                        warm_best = attempt.best_value;
                        warm = attempt.best_config;
                    }
                }
                arm_context.seed_configs = {std::move(warm)};
            }

            outcomes[i] = combine_attempts(std::move(attempts));
        });
    }
    // lint:allow(raw-thread) joining the arm threads spawned above.
    for (std::thread& thread : threads) {
        thread.join();
    }

    // Merge: arm histories concatenated in arm index order (the
    // deterministic canonical order, independent of finish order).
    // The joins above are the real synchronization; the lock (held to
    // the end, uncontended) is for the analysis.
    MutexLock merge_lock(control.control_mutex);
    report_ = Report{};
    OptimizeOutcome merged;
    std::size_t offset = 0;
    for (std::size_t i = 0; i < n; ++i) {
        ArmReport arm_report;
        arm_report.kind = arms_[i].kind;
        arm_report.outcome = outcomes[i];
        arm_report.history_offset = offset;
        arm_report.killed = control.arms[i].killed;
        arm_report.restarts = control.arms[i].restarts;
        // References pre-fetched in the constructor; these bumps are
        // lock-free and safe under merge_lock.
        arm_evals_metrics_[i]->add(outcomes[i].history.size());
        if (control.arms[i].killed) {
            kills_metric_->add();
        }
        restarts_metric_->add(control.arms[i].restarts);
        report_.arms.push_back(std::move(arm_report));

        merged.history.insert(merged.history.end(),
                              outcomes[i].history.begin(),
                              outcomes[i].history.end());
        report_.trace_arm.insert(report_.trace_arm.end(),
                                 outcomes[i].history.size(), i);
        merged.evaluations += outcomes[i].evaluations;
        merged.unique_evaluations += outcomes[i].unique_evaluations;
        offset += outcomes[i].history.size();
    }

    // Winner: lowest best value, ties to the lowest arm index.
    std::size_t winner = 0;
    for (std::size_t i = 1; i < n; ++i) {
        if (!outcomes[i].best_config.empty() &&
            (outcomes[winner].best_config.empty() ||
             outcomes[i].best_value < outcomes[winner].best_value)) {
            winner = i;
        }
    }
    report_.winner = winner;
    merged.best_config = outcomes[winner].best_config;
    merged.best_value = outcomes[winner].best_value;

    merged.best_trace.reserve(merged.history.size());
    double running = kInf;
    merged.evaluations_to_best = 0;
    for (std::size_t j = 0; j < merged.history.size(); ++j) {
        if (merged.history[j] < running) {
            running = merged.history[j];
            if (running == merged.best_value &&
                merged.evaluations_to_best == 0) {
                merged.evaluations_to_best = j + 1;
            }
        }
        merged.best_trace.push_back(running);
    }

    if (control.external_cancel) {
        merged.stop_reason = StopReason::Cancelled;
    } else if (control.target_seen) {
        merged.stop_reason = StopReason::TargetReached;
    } else if (control.pool_capped &&
               control.pool < options_.sync_evals) {
        // The leftover (if any) is too small to fund another round —
        // the pool is spent.
        merged.stop_reason = StopReason::BudgetExhausted;
    } else {
        merged.stop_reason = outcomes[winner].stop_reason;
    }

    CAFQA_REQUIRE(!merged.history.empty(),
                  "portfolio produced no evaluations (every arm "
                  "failed before recording)");
    return merged;
}

} // namespace cafqa
