/**
 * @file
 * Parallel tempering (replica-exchange) over discrete configuration
 * spaces — the first strategy of the `src/search/` scaling layer: a
 * population of Metropolis replicas at a fixed geometric temperature
 * ladder, exchanging states on a deterministic seeded swap schedule.
 * The cold end of the ladder exploits (near-greedy refinement of the
 * Hartree-Fock seed), the hot end explores, and swaps let a good
 * discovery migrate down the ladder — on the CAFQA Clifford spaces
 * this reaches chemical accuracy in fewer evaluations than a single
 * annealing trajectory (see `bench/portfolio_search.cpp`).
 *
 * Registry key: `"tempering"`. Each sweep proposes one mutation per
 * replica; when `SearchContext::batch` is set (the pipeline always
 * sets it), the sweep's proposals are evaluated as one block fanned
 * out over the thread pool with one clone()d backend per worker — with
 * the memoizing cache enabled the clones share it, so replicas are
 * cache-cooperative rather than cache-oblivious. The recorded
 * trajectory is identical to the serial path; only the fan-out
 * changes.
 */
#ifndef CAFQA_SEARCH_PARALLEL_TEMPERING_HPP
#define CAFQA_SEARCH_PARALLEL_TEMPERING_HPP

#include "opt/optimizer.hpp"

namespace cafqa {

/** Replica-exchange controls. */
struct TemperingOptions
{
    /** Replicas on the temperature ladder. */
    std::size_t replicas = 4;
    /** Sweeps (one proposal per replica per sweep). Like annealing's
     *  `iterations`, a nonzero `StoppingCriteria::max_evaluations`
     *  replaces this: the budget is the total evaluation count. */
    std::size_t sweeps = 125;
    /** Coldest temperature (replica 0) — near-greedy exploitation. */
    double min_temperature = 0.05;
    /** Hottest temperature (last replica) — exploration. The defaults
     *  (4 replicas over [0.05, 1.0], swaps every 2 sweeps) were picked
     *  by a seed-averaged sweep on the LiH Clifford space, where they
     *  find the best known assignment on every seed tried while plain
     *  annealing does so on a minority (bench/portfolio_search.cpp). */
    double max_temperature = 1.0;
    /** Sweeps between swap rounds (adjacent pairs, alternating
     *  even/odd pairings — the standard deterministic schedule). */
    std::size_t swap_interval = 2;
    std::uint64_t seed = 77;
    /** Coordinates mutated per proposal. */
    std::size_t mutations_per_step = 1;
};

/**
 * Population of Metropolis replicas at a fixed geometric temperature
 * ladder with seeded replica-exchange moves (registry key
 * "tempering"). When `SearchContext::seed_configs` is set, the seeds
 * are evaluated first and the best of them becomes every replica's
 * starting state (the per-replica RNGs diverge from the first sweep).
 * Deterministic under a fixed seed regardless of thread count: swap
 * decisions come from a dedicated swap RNG and recorded evaluations
 * are ordered by replica index within each sweep.
 */
class ParallelTempering final : public DiscreteOptimizer
{
  public:
    explicit ParallelTempering(TemperingOptions options = {});

    std::string_view name() const override { return "tempering"; }

    OptimizeOutcome minimize(const DiscreteObjective& objective,
                             const DiscreteSpace& space,
                             const StoppingCriteria& criteria = {},
                             const SearchContext& context = {}) override;

  private:
    TemperingOptions options_;
};

} // namespace cafqa

#endif // CAFQA_SEARCH_PARALLEL_TEMPERING_HPP
