#include "search/parallel_tempering.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cafqa {

namespace {

/** One replica: current state, its value, and a private RNG. */
struct Replica
{
    std::vector<int> config;
    double value = 0.0;
    Rng rng;

    explicit Replica(std::uint64_t seed) : rng(seed) {}
};

/** Uniform random configuration from `space`. */
std::vector<int>
random_config(const DiscreteSpace& space, Rng& rng)
{
    std::vector<int> config(space.num_parameters());
    for (std::size_t i = 0; i < config.size(); ++i) {
        config[i] =
            static_cast<int>(rng.uniform_int(0, space.cardinalities[i] - 1));
    }
    return config;
}

/** Evaluate `block` through the batch hook when available, else
 *  serially — same values either way, only the fan-out differs. */
std::vector<double>
evaluate_block(const DiscreteObjective& objective,
               const SearchContext& context,
               const std::vector<std::vector<int>>& block)
{
    if (context.batch) {
        return context.batch(block);
    }
    std::vector<double> values;
    values.reserve(block.size());
    for (const auto& config : block) {
        values.push_back(objective(config));
    }
    return values;
}

} // namespace

ParallelTempering::ParallelTempering(TemperingOptions options)
    : options_(options)
{
}

OptimizeOutcome
ParallelTempering::minimize(const DiscreteObjective& objective,
                            const DiscreteSpace& space,
                            const StoppingCriteria& criteria,
                            const SearchContext& context)
{
    validate_space(space);
    validate_seed_configs(context.seed_configs, space);
    const TemperingOptions& options = options_;
    CAFQA_REQUIRE(options.replicas >= 1, "need at least one replica");
    CAFQA_REQUIRE(options.sweeps >= 1, "need at least one sweep");
    CAFQA_REQUIRE(options.min_temperature > 0.0 &&
                      options.max_temperature >= options.min_temperature,
                  "temperature ladder must satisfy 0 < min <= max");
    CAFQA_REQUIRE(options.swap_interval >= 1,
                  "swap interval must be at least one sweep");

    const std::size_t replicas = options.replicas;
    // Geometric ladder: replica 0 coldest (exploitation), last hottest.
    std::vector<double> temperature(replicas);
    for (std::size_t r = 0; r < replicas; ++r) {
        const double t = replicas > 1
            ? static_cast<double>(r) / static_cast<double>(replicas - 1)
            : 0.0;
        temperature[r] =
            options.min_temperature *
            std::pow(options.max_temperature / options.min_temperature, t);
    }

    // One private RNG per replica plus a dedicated swap RNG: the swap
    // schedule consumes randomness independently of the proposal
    // streams, so results do not depend on evaluation interleaving.
    Rng swap_rng(options.seed);
    std::vector<Replica> population;
    population.reserve(replicas);
    for (std::size_t r = 0; r < replicas; ++r) {
        population.emplace_back(options.seed + 1 + r);
    }

    // Each sweep costs `replicas` evaluations, so a criteria budget is
    // a sweep count (like annealing's iterations): run enough sweeps
    // that the recorder's cap fires exactly, else the options' own.
    std::size_t sweeps = options.sweeps;
    if (criteria.max_evaluations > 0) {
        sweeps = criteria.max_evaluations / replicas + 2;
    }

    OutcomeRecorder recorder(criteria, criteria.max_evaluations,
                             context.progress);
    try {
        // Prior injection: evaluate the seeds first; the best becomes
        // every replica's starting state (their RNGs diverge from the
        // first proposal on).
        std::vector<int> start;
        double start_value = 0.0;
        if (!context.seed_configs.empty()) {
            const std::vector<double> values =
                evaluate_block(objective, context, context.seed_configs);
            for (std::size_t i = 0; i < context.seed_configs.size(); ++i) {
                recorder.record(context.seed_configs[i], values[i]);
                if (start.empty() || values[i] < start_value) {
                    start = context.seed_configs[i];
                    start_value = values[i];
                }
            }
            for (Replica& replica : population) {
                replica.config = start;
                replica.value = start_value;
            }
        } else {
            // No seeds: one random start per replica, evaluated as the
            // first block (recorded in replica order).
            std::vector<std::vector<int>> starts;
            starts.reserve(replicas);
            for (Replica& replica : population) {
                starts.push_back(random_config(space, replica.rng));
            }
            const std::vector<double> values =
                evaluate_block(objective, context, starts);
            for (std::size_t r = 0; r < replicas; ++r) {
                population[r].config = starts[r];
                population[r].value = values[r];
                recorder.record(starts[r], values[r]);
            }
        }

        for (std::size_t sweep = 1; sweep < sweeps; ++sweep) {
            // Propose one mutation per replica (RNG draws in replica
            // order), evaluate the block, then record in the same
            // order — the batched and serial paths share one recorded
            // trajectory.
            std::vector<std::vector<int>> proposals;
            proposals.reserve(replicas);
            for (Replica& replica : population) {
                std::vector<int> proposal = replica.config;
                for (std::size_t m = 0; m < options.mutations_per_step;
                     ++m) {
                    const auto pos = static_cast<std::size_t>(
                        replica.rng.uniform_int(
                            0,
                            static_cast<std::int64_t>(proposal.size()) -
                                1));
                    proposal[pos] = static_cast<int>(replica.rng.uniform_int(
                        0, space.cardinalities[pos] - 1));
                }
                proposals.push_back(std::move(proposal));
            }
            const std::vector<double> values =
                evaluate_block(objective, context, proposals);
            for (std::size_t r = 0; r < replicas; ++r) {
                recorder.record(proposals[r], values[r]);
            }

            // Metropolis accept per replica at its own temperature.
            for (std::size_t r = 0; r < replicas; ++r) {
                Replica& replica = population[r];
                const double delta = values[r] - replica.value;
                if (delta <= 0.0 ||
                    replica.rng.uniform_real() <
                        std::exp(-delta / temperature[r])) {
                    replica.config = std::move(proposals[r]);
                    replica.value = values[r];
                }
            }

            // Replica-exchange round: adjacent pairs, alternating
            // even/odd pairing per round. The acceptance draw is
            // consumed for every considered pair, so the schedule is a
            // pure function of the seed.
            if (sweep % options.swap_interval == 0 && replicas > 1) {
                const std::size_t first =
                    (sweep / options.swap_interval) % 2;
                for (std::size_t i = first; i + 1 < replicas; i += 2) {
                    Replica& cold = population[i];
                    Replica& hot = population[i + 1];
                    const double exponent =
                        (1.0 / temperature[i] - 1.0 / temperature[i + 1]) *
                        (cold.value - hot.value);
                    const double draw = swap_rng.uniform_real();
                    if (exponent >= 0.0 || draw < std::exp(exponent)) {
                        std::swap(cold.config, hot.config);
                        std::swap(cold.value, hot.value);
                    }
                }
            }
        }
    } catch (const OutcomeRecorder::EarlyStop&) {
        // A stopping criterion fired; the recorder holds the reason.
    }

    return recorder.finish(StopReason::BudgetExhausted);
}

} // namespace cafqa
