/**
 * @file
 * Portfolio search: race several registry optimizers ("arms") over
 * threads against a shared incumbent, kill dominated arms early, and
 * merge the per-arm traces into one attributed `OptimizeOutcome`.
 *
 * Registry key: `"portfolio:<k1+k2+...>"` (e.g.
 * `"portfolio:anneal+bayes+random"`). Arm i runs the bare optimizer
 * `ki` with seed `parent_seed + i`, so a one-arm portfolio is
 * bit-identical to the bare optimizer — the parity anchor the tests
 * pin down.
 *
 * Budget semantics: `StoppingCriteria::max_evaluations` is the PER-ARM
 * budget, exactly what the same optimizer would get solo — an arm's
 * trajectory is eval-for-eval identical to its solo run (annealing
 * cooling schedules and Bayesian warmup splits resolve against the
 * same budget either way), which is what makes the race comparable to
 * running the best arm alone. The merged outcome therefore holds up to
 * `arms * budget` evaluations; the race buys wall-clock (arms run
 * concurrently) and the kill rule buys back compute.
 *
 * Scheduling is round-based so results do not depend on thread timing:
 * every arm draws `sync_evals` evaluations from the shared pool
 * (`arms * budget` total), then blocks at a generation barrier.
 * Kill/restart decisions happen only when every live arm has arrived —
 * a deterministic cut for any thread count. An arm is killed only when
 * it is strictly dominated AND has not improved for `stale_rounds`
 * rounds (domination alone is not enough: slow-burn strategies trail
 * mid-run and win late). A killed arm's unspent budget stays in the
 * pool, and an arm that exhausts its own budget while the pool still
 * holds reclaimed evaluations is RESTARTED, warm-started from its best
 * configuration — the "budget rebalanced to survivors" contract. A
 * killed arm records at most one further evaluation (the recorder
 * checks its cancel token after each record).
 *
 * Evaluation is concurrent when `SearchContext::objective_factory` is
 * set (the pipeline supplies per-arm `clone()`d backends that share
 * the memoizing cache — arms are cache-cooperative); without a factory
 * the arms serialize on a mutex so plain objectives stay safe.
 */
#ifndef CAFQA_SEARCH_PORTFOLIO_HPP
#define CAFQA_SEARCH_PORTFOLIO_HPP

#include <memory>
#include <string>
#include <vector>

#include "opt/optimizer.hpp"
#include "telemetry/metrics.hpp"

namespace cafqa {

/** Orchestration controls for `PortfolioSearch`. */
struct PortfolioOptions
{
    /** Evaluations each live arm runs between synchronization
     *  barriers (one "round"). Smaller = faster kills, more barrier
     *  overhead. */
    std::size_t sync_evals = 32;
    /** Rounds every arm is immune from killing — lets slow starters
     *  (Bayesian warm-up) survive long enough to matter. */
    std::size_t grace_rounds = 2;
    /** An arm is dominated when its best trails the incumbent by more
     *  than this (0 = any strictly worse best); at most the single
     *  worst arm is killed per round. */
    double kill_margin = 0.0;
    /** A dominated arm is killed only after this many rounds without
     *  improving its own best — transiently trailing strategies
     *  (annealing before it cools) are spared while genuinely stuck
     *  ones are cut. The default (8 rounds = 256 evaluations at the
     *  default sync) never misfires on the bench race problems while
     *  still reclaiming a stuck arm's budget well before a typical
     *  run ends. */
    std::size_t stale_rounds = 8;
};

/** One racing strategy: its registry key and the optimizer itself. */
struct PortfolioArm
{
    std::string kind;
    std::unique_ptr<DiscreteOptimizer> optimizer;
};

/**
 * Races its arms concurrently (one thread per arm) and returns the
 * merged outcome: per-arm histories concatenated in arm order (see
 * `last_report()` for the arm attribution of every entry), best point
 * over all arms, `evaluations` summed. Stop-reason precedence:
 * external cancel > any arm reaching the target > pool exhausted >
 * the winning arm's own reason.
 *
 * Deterministic under a fixed seed and criteria regardless of thread
 * count or machine; the merged history may exceed the evaluation pool
 * (`arms * max_evaluations`) by at most one entry per arm (a killed
 * arm records once more — the recorder observes the raised token after
 * recording). A one-arm portfolio has no overshoot: the arm's own
 * recorder caps it at exactly the budget, and the dry pool denies the
 * restart.
 */
class PortfolioSearch final : public DiscreteOptimizer
{
  public:
    /** Per-arm outcome with its placement in the merged trace. */
    struct ArmReport
    {
        std::string kind;
        /** All of the arm's attempts combined (restarted arms append
         *  their warm-started continuation to the first leg). */
        OptimizeOutcome outcome;
        /** Offset of this arm's history within the merged history. */
        std::size_t history_offset = 0;
        /** True if the orchestrator killed the arm (dominated-stale,
         *  pool exhausted, or another arm reached the target). */
        bool killed = false;
        /** Times the arm was restarted on reclaimed budget. */
        std::size_t restarts = 0;
    };

    /** Attribution of the last `minimize` call. */
    struct Report
    {
        std::vector<ArmReport> arms;
        /** For merged history entry j, the index of the arm that
         *  produced it. */
        std::vector<std::size_t> trace_arm;
        /** Arm index holding the returned best (tie: lowest index). */
        std::size_t winner = 0;
    };

    /** `key` is the full registry key ("portfolio:anneal+bayes"),
     *  reported by `name()`. */
    PortfolioSearch(std::vector<PortfolioArm> arms,
                    PortfolioOptions options, std::string key);

    std::string_view name() const override { return key_; }

    OptimizeOutcome minimize(const DiscreteObjective& objective,
                             const DiscreteSpace& space,
                             const StoppingCriteria& criteria = {},
                             const SearchContext& context = {}) override;

    /** Per-arm attribution of the most recent `minimize` call. */
    const Report& last_report() const { return report_; }

  private:
    std::vector<PortfolioArm> arms_;
    PortfolioOptions options_;
    std::string key_;
    Report report_;
    /** Registry references fetched in the constructor — registration
     *  must not happen inside `minimize` (parts of it run under
     *  `control_mutex`, and the registering accessors take
     *  `metrics_mutex`). One entry per arm, parallel to `arms_`. */
    std::vector<telemetry::Counter*> arm_evals_metrics_;
    telemetry::Counter* kills_metric_ = nullptr;
    telemetry::Counter* restarts_metric_ = nullptr;
};

} // namespace cafqa

#endif // CAFQA_SEARCH_PORTFOLIO_HPP
