#include "mapping/z2_reduction.hpp"

#include "common/error.hpp"

namespace cafqa {

PauliSum
reduce_two_qubits(const PauliSum& op, const ParitySector& sector)
{
    const std::size_t n = op.num_qubits();
    CAFQA_REQUIRE(n >= 2 && n % 2 == 0,
                  "parity reduction expects an even qubit count >= 2");
    const std::size_t m = n / 2;
    const std::size_t alpha_qubit = m - 1;
    const std::size_t total_qubit = n - 1;

    // Z eigenvalues in this sector: parity qubit value b has Z = (-1)^b.
    const int alpha_parity = sector.num_alpha % 2;
    const int total_parity = (sector.num_alpha + sector.num_beta) % 2;
    const double z_alpha = (alpha_parity == 0) ? 1.0 : -1.0;
    const double z_total = (total_parity == 0) ? 1.0 : -1.0;

    PauliSum reduced(n - 2);
    for (const auto& term : op.terms()) {
        PauliString string = term.string;
        std::complex<double> coeff = term.coefficient;
        CAFQA_REQUIRE(!string.x_bit(alpha_qubit) &&
                          !string.x_bit(total_qubit),
                      "operator does not respect the Z2 symmetries");
        if (string.z_bit(total_qubit)) {
            coeff *= z_total;
        }
        if (string.z_bit(alpha_qubit)) {
            coeff *= z_alpha;
        }
        // Remove the higher index first so the lower stays valid. Only
        // I/Z letters are removed, so the string's sign is unaffected
        // (add_term re-canonicalizes regardless).
        string.remove_qubit(total_qubit);
        string.remove_qubit(alpha_qubit);
        reduced.add_term(coeff, string);
    }
    reduced.simplify();
    return reduced;
}

std::vector<int>
reduce_bits(const std::vector<int>& bits)
{
    const std::size_t n = bits.size();
    CAFQA_REQUIRE(n >= 2 && n % 2 == 0,
                  "parity reduction expects an even bit count >= 2");
    std::vector<int> out;
    out.reserve(n - 2);
    for (std::size_t q = 0; q < n; ++q) {
        if (q == n / 2 - 1 || q == n - 1) {
            continue;
        }
        out.push_back(bits[q]);
    }
    return out;
}

std::pair<int, int>
reduced_state_electrons(std::uint64_t index, std::size_t active_orbitals,
                        const ParitySector& sector)
{
    const std::size_t m = active_orbitals;
    CAFQA_REQUIRE(m >= 1, "need at least one orbital");
    const std::size_t n = 2 * m;

    // Reconstruct the full parity register: insert the fixed bits.
    std::vector<int> bits(n, 0);
    std::size_t src = 0;
    for (std::size_t q = 0; q < n; ++q) {
        if (q == m - 1) {
            bits[q] = sector.num_alpha % 2;
        } else if (q == n - 1) {
            bits[q] = (sector.num_alpha + sector.num_beta) % 2;
        } else {
            bits[q] = static_cast<int>((index >> src) & 1);
            ++src;
        }
    }

    // Occupations are successive parity differences.
    int n_alpha = 0;
    int n_beta = 0;
    int previous = 0;
    for (std::size_t q = 0; q < n; ++q) {
        const int occ = bits[q] ^ previous;
        previous = bits[q];
        if (q < m) {
            n_alpha += occ;
        } else {
            n_beta += occ;
        }
    }
    return {n_alpha, n_beta};
}

} // namespace cafqa
