/**
 * @file
 * Two-qubit Z2-symmetry reduction for the parity mapping (paper
 * Section 6).
 *
 * With block spin-orbital ordering, qubit M-1 of a parity-encoded
 * 2M-mode system stores the total alpha-electron parity and qubit 2M-1
 * the total electron parity. Both are conserved by particle-number- and
 * S_z-conserving Hamiltonians, every Hamiltonian term acts on those two
 * qubits with I or Z only, and the qubits can be replaced by their
 * eigenvalues in the chosen symmetry sector — removing two qubits.
 */
#ifndef CAFQA_MAPPING_Z2_REDUCTION_HPP
#define CAFQA_MAPPING_Z2_REDUCTION_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "pauli/pauli_sum.hpp"

namespace cafqa {

/** Symmetry sector: fixed alpha and beta electron counts. */
struct ParitySector
{
    int num_alpha = 0;
    int num_beta = 0;
};

/**
 * Remove qubits M-1 and 2M-1 from a parity-mapped operator over 2M
 * spin-orbital modes (alpha block first).
 *
 * @param op      operator on 2M qubits in the parity encoding.
 * @param sector  electron counts fixing the Z eigenvalues.
 * @throws std::invalid_argument if a term carries X/Y on a reduced qubit
 *         (i.e. the operator does not respect the symmetry).
 */
PauliSum reduce_two_qubits(const PauliSum& op, const ParitySector& sector);

/**
 * Reduce a parity-encoded computational basis state the same way
 * (drops bits M-1 and 2M-1).
 */
std::vector<int> reduce_bits(const std::vector<int>& bits);

/**
 * Electron counts (n_alpha, n_beta) encoded by a computational basis
 * state of the *reduced* register. The reduction fixed only the two
 * parities, so different reduced basis states can carry different
 * electron numbers of the same parity; this reconstructs them — used
 * for sector-restricted exact diagonalization.
 *
 * @param index            basis state of the reduced (2M-2)-qubit space,
 *                         bit q = qubit q.
 * @param active_orbitals  M, the spatial orbital count.
 * @param sector           the sector whose parities fixed the reduction.
 */
std::pair<int, int> reduced_state_electrons(std::uint64_t index,
                                            std::size_t active_orbitals,
                                            const ParitySector& sector);

} // namespace cafqa

#endif // CAFQA_MAPPING_Z2_REDUCTION_HPP
