/**
 * @file
 * Fermion-to-qubit encodings: Jordan-Wigner and the parity mapping used
 * by the paper (Section 6: "parity mapping and Z2 symmetry / two qubit
 * reduction").
 *
 * Spin-orbitals use block ordering: modes 0..M-1 are the alpha spin
 * orbitals, modes M..2M-1 the beta spin orbitals — the ordering for
 * which the parity mapping's Z2 symmetries localize on qubits M-1 and
 * 2M-1.
 */
#ifndef CAFQA_MAPPING_ENCODING_HPP
#define CAFQA_MAPPING_ENCODING_HPP

#include <vector>

#include "pauli/pauli_string.hpp"
#include "pauli/pauli_sum.hpp"

namespace cafqa {

/** Supported encodings. */
enum class EncodingKind { JordanWigner, Parity };

/** Maps fermionic modes to qubit operators. */
class FermionEncoding
{
  public:
    FermionEncoding(EncodingKind kind, std::size_t num_modes);

    EncodingKind kind() const { return kind_; }
    std::size_t num_modes() const { return num_modes_; }
    /** Qubits before any symmetry reduction (== num_modes). */
    std::size_t num_qubits() const { return num_modes_; }

    /**
     * Majorana operator gamma_k (k in [0, 2*num_modes)), where
     * gamma_{2p} = a_p + a_p^dagger and
     * gamma_{2p+1} = i (a_p^dagger - a_p).
     */
    PauliString majorana(std::size_t k) const;

    /** a_p as a two-term Pauli sum. */
    PauliSum annihilation(std::size_t mode) const;
    /** a_p^dagger as a two-term Pauli sum. */
    PauliSum creation(std::size_t mode) const;

    /** a_p^dagger a_p. */
    PauliSum number_operator(std::size_t mode) const;

    /**
     * The qubit basis state encoding an occupation vector (occ[p] in
     * {0,1}): identity for Jordan-Wigner, prefix parities for Parity.
     * Bit q of the result is qubit q.
     */
    std::vector<int> occupation_to_bits(const std::vector<int>& occ) const;

  private:
    EncodingKind kind_;
    std::size_t num_modes_;
};

} // namespace cafqa

#endif // CAFQA_MAPPING_ENCODING_HPP
