#include "mapping/encoding.hpp"

#include "common/error.hpp"

namespace cafqa {

FermionEncoding::FermionEncoding(EncodingKind kind, std::size_t num_modes)
    : kind_(kind), num_modes_(num_modes)
{
    CAFQA_REQUIRE(num_modes >= 1, "need at least one fermionic mode");
}

PauliString
FermionEncoding::majorana(std::size_t k) const
{
    CAFQA_REQUIRE(k < 2 * num_modes_, "Majorana index out of range");
    const std::size_t p = k / 2;
    const bool odd = (k % 2) != 0;
    PauliString out(num_modes_);

    if (kind_ == EncodingKind::JordanWigner) {
        // gamma_{2p}   = Z_0 ... Z_{p-1} X_p
        // gamma_{2p+1} = Z_0 ... Z_{p-1} Y_p
        for (std::size_t q = 0; q < p; ++q) {
            out.set_letter(q, PauliLetter::Z);
        }
        out.set_letter(p, odd ? PauliLetter::Y : PauliLetter::X);
        return out;
    }

    // Parity mapping:
    // gamma_{2p}   = Z_{p-1} X_p X_{p+1} ... X_{n-1}
    // gamma_{2p+1} =         Y_p X_{p+1} ... X_{n-1}
    if (!odd && p > 0) {
        out.set_letter(p - 1, PauliLetter::Z);
    }
    out.set_letter(p, odd ? PauliLetter::Y : PauliLetter::X);
    for (std::size_t q = p + 1; q < num_modes_; ++q) {
        out.set_letter(q, PauliLetter::X);
    }
    return out;
}

PauliSum
FermionEncoding::annihilation(std::size_t mode) const
{
    // a_p = (gamma_{2p} + i gamma_{2p+1}) / 2
    PauliSum sum(num_modes_);
    sum.add_term(0.5, majorana(2 * mode));
    sum.add_term(std::complex<double>{0.0, 0.5}, majorana(2 * mode + 1));
    return sum;
}

PauliSum
FermionEncoding::creation(std::size_t mode) const
{
    // a_p^dagger = (gamma_{2p} - i gamma_{2p+1}) / 2
    PauliSum sum(num_modes_);
    sum.add_term(0.5, majorana(2 * mode));
    sum.add_term(std::complex<double>{0.0, -0.5}, majorana(2 * mode + 1));
    return sum;
}

PauliSum
FermionEncoding::number_operator(std::size_t mode) const
{
    PauliSum n = creation(mode) * annihilation(mode);
    n.simplify();
    return n;
}

std::vector<int>
FermionEncoding::occupation_to_bits(const std::vector<int>& occ) const
{
    CAFQA_REQUIRE(occ.size() == num_modes_, "occupation size mismatch");
    std::vector<int> bits(num_modes_, 0);
    if (kind_ == EncodingKind::JordanWigner) {
        bits = occ;
        return bits;
    }
    int parity = 0;
    for (std::size_t q = 0; q < num_modes_; ++q) {
        parity = (parity + occ[q]) % 2;
        bits[q] = parity;
    }
    return bits;
}

} // namespace cafqa
