/**
 * @file
 * Spin-chain problem instances beyond chemistry and MaxCut: the
 * transverse-field Ising model and the Heisenberg XXZ model on open
 * chains and rings. Both are standard variational workloads with
 * hardware-efficient (EfficientSU2-style) ansatze whose fixed gates are
 * all Clifford, so the circuits are directly CAFQA-searchable, and both
 * have exact small-size reference energies via the Lanczos solver
 * (paper Section 2.1: CAFQA applies to any variational workload).
 */
#ifndef CAFQA_PROBLEMS_SPIN_CHAINS_HPP
#define CAFQA_PROBLEMS_SPIN_CHAINS_HPP

#include <cstddef>
#include <string>

#include "pauli/pauli_sum.hpp"

namespace cafqa::problems {

/** A 1D lattice of quantum spins with a named Hamiltonian. */
struct SpinChainProblem
{
    std::string name;
    std::size_t num_sites = 0;
    /** Ring (periodic) vs open chain boundary. */
    bool periodic = false;
    PauliSum hamiltonian;
};

/**
 * Transverse-field Ising model
 *   H = -J sum_<i,i+1> Z_i Z_{i+1} - h sum_i X_i
 * on `num_sites` spins (open chain, or ring when `periodic`). The
 * classical limits h = 0 (ferromagnet) and J = 0 (paramagnet) are
 * stabilizer states, so the Clifford search is exact there; near the
 * critical point h ~ J the search returns the best stabilizer
 * approximation.
 */
SpinChainProblem make_tfim_chain(std::size_t num_sites, double coupling_j,
                                 double field_h, bool periodic);

/**
 * Heisenberg XXZ model
 *   H = J sum_<i,i+1> (X_i X_{i+1} + Y_i Y_{i+1} + delta Z_i Z_{i+1})
 * on `num_sites` spins (open chain, or ring when `periodic`).
 * delta = 1 is the isotropic Heisenberg antiferromagnet for J > 0.
 */
SpinChainProblem make_xxz_chain(std::size_t num_sites, double coupling_j,
                                double delta, bool periodic);

} // namespace cafqa::problems

#endif // CAFQA_PROBLEMS_SPIN_CHAINS_HPP
