#include "problems/problem.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <map>

#include "common/thread_safety.hpp"

#include "circuit/efficient_su2.hpp"
#include "common/error.hpp"
#include "common/text.hpp"
#include "core/clifford_ansatz.hpp"
#include "core/hartree_fock_baseline.hpp"
#include "problems/maxcut.hpp"
#include "problems/molecule_factory.hpp"
#include "problems/spin_chains.hpp"
#include "statevector/lanczos.hpp"

namespace cafqa::problems {

namespace {

/** Largest qubit count for which the Lanczos exact solve is offered. */
constexpr std::size_t kMaxLanczosQubits = 20;

std::string
lower(std::string text)
{
    std::transform(text.begin(), text.end(), text.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return text;
}

/** Strict whole-token finite double parse. */
double
parse_real_value(const std::string& family, const std::string& name,
                 const std::string& text)
{
    const auto value = parse_real_token(text);
    CAFQA_REQUIRE(value.has_value(),
                  "problem parameter \"" + name + "\" of family \"" +
                      family + "\" expects a finite number, got \"" +
                      text + "\"");
    return *value;
}

/** Strict whole-token integer parse. */
std::int64_t
parse_integer_value(const std::string& family, const std::string& name,
                    const std::string& text)
{
    const auto value = parse_integer_token(text);
    CAFQA_REQUIRE(value.has_value(),
                  "problem parameter \"" + name + "\" of family \"" +
                      family + "\" expects an integer, got \"" + text +
                      "\"");
    return *value;
}

/**
 * Typed access to a key's query parameters. Every accepted name must be
 * read through one accessor (even if only to apply the default) so that
 * `finish()` can reject unknown names with the full accepted list.
 */
class ParamReader
{
  public:
    explicit ParamReader(const ProblemKey& key) : key_(key) {}

    std::string
    text(const std::string& name, std::string fallback)
    {
        known_.push_back(name);
        const auto value = key_.find(name);
        return value ? *value : std::move(fallback);
    }

    double
    real(const std::string& name, double fallback)
    {
        known_.push_back(name);
        const auto value = key_.find(name);
        return value ? parse_real_value(key_.family, name, *value)
                     : fallback;
    }

    std::int64_t
    integer(const std::string& name, std::int64_t fallback)
    {
        known_.push_back(name);
        const auto value = key_.find(name);
        return value ? parse_integer_value(key_.family, name, *value)
                     : fallback;
    }

    std::size_t
    count(const std::string& name, std::size_t fallback,
          std::size_t min_value = 0)
    {
        const std::int64_t value =
            integer(name, static_cast<std::int64_t>(fallback));
        CAFQA_REQUIRE(value >= 0 &&
                          static_cast<std::size_t>(value) >= min_value,
                      "problem parameter \"" + name + "\" of family \"" +
                          key_.family + "\" must be an integer >= " +
                          std::to_string(min_value));
        return static_cast<std::size_t>(value);
    }

    /** Reject any parameter name that no accessor consumed. */
    void
    finish() const
    {
        for (const auto& [name, value] : key_.params) {
            if (std::find(known_.begin(), known_.end(), name) !=
                known_.end()) {
                continue;
            }
            std::string accepted;
            for (const auto& known : known_) {
                accepted += accepted.empty() ? known : ", " + known;
            }
            CAFQA_REQUIRE(false, "unknown parameter \"" + name +
                                     "\" for problem family \"" +
                                     key_.family + "\" (accepted: " +
                                     (accepted.empty() ? "none"
                                                       : accepted) +
                                     ")");
        }
    }

  private:
    const ProblemKey& key_;
    std::vector<std::string> known_;
};

/** Append one `name=value` pair to a key query under assembly (the
 *  leading '?' is attached by the caller when the query is non-empty),
 *  keeping every family's canonical-key emission identical. */
void
append_query_param(std::string& query, const std::string& name,
                   const std::string& value)
{
    query += query.empty() ? "" : "&";
    query += name + "=" + value;
}

/** Split a sized instance name like "chain-8" / "ring-64" / "er-256"
 *  into its prefix and size; throws naming the accepted prefixes. */
std::pair<std::string, std::size_t>
parse_sized_instance(const ProblemKey& key,
                     const std::vector<std::string>& prefixes)
{
    std::string accepted;
    for (const auto& prefix : prefixes) {
        accepted += (accepted.empty() ? "" : ", ") + prefix + "-<n>";
    }
    const auto dash = key.instance.rfind('-');
    CAFQA_REQUIRE(dash != std::string::npos && dash > 0 &&
                      dash + 1 < key.instance.size(),
                  "problem family \"" + key.family +
                      "\" expects an instance of the form " + accepted +
                      ", got \"" + key.instance + "\"");
    const std::string prefix = key.instance.substr(0, dash);
    CAFQA_REQUIRE(std::find(prefixes.begin(), prefixes.end(), prefix) !=
                      prefixes.end(),
                  "problem family \"" + key.family +
                      "\" expects an instance of the form " + accepted +
                      ", got \"" + key.instance + "\"");
    const std::string size_text = key.instance.substr(dash + 1);
    const std::int64_t size =
        parse_integer_value(key.family, "instance size", size_text);
    CAFQA_REQUIRE(size >= 1, "instance size in \"" + key.instance +
                                 "\" must be a positive integer");
    return {prefix, static_cast<std::size_t>(size)};
}

// ------------------------------------------------------------ molecule

Problem
make_molecule_problem(const ProblemKey& key)
{
    // Case-insensitive molecule lookup against the Table-1 catalog.
    std::string canonical_name;
    for (const auto& name : supported_molecules()) {
        if (lower(name) == lower(key.instance)) {
            canonical_name = name;
            break;
        }
    }
    if (canonical_name.empty()) {
        std::string all;
        for (const auto& name : supported_molecules()) {
            all += all.empty() ? name : ", " + name;
        }
        CAFQA_REQUIRE(false, "unknown molecule \"" + key.instance +
                                 "\" (supported: " + all + ")");
    }
    const MoleculeInfo info = molecule_info(canonical_name);

    ParamReader params(key);
    const double bond =
        params.real("bond", info.equilibrium_bond_length);
    const std::int64_t charge = params.integer("charge", 0);
    const std::int64_t spin = params.integer("spin", 0);
    params.finish();
    CAFQA_REQUIRE(bond > 0.0,
                  "molecule bond length must be positive (angstrom)");

    MolecularSystemOptions options;
    options.sector_charge = static_cast<int>(charge);
    options.sector_spin_2sz = static_cast<int>(spin);
    MolecularSystem system =
        make_molecular_system(canonical_name, bond, options);

    Problem problem;
    problem.family = "molecule";
    problem.name = canonical_name;
    problem.key = "molecule:" + canonical_name + "?bond=" +
                  format_real(bond);
    if (charge != 0) {
        problem.key += "&charge=" + std::to_string(charge);
    }
    if (spin != 0) {
        problem.key += "&spin=" + std::to_string(spin);
    }
    problem.detail = system.molecule.summary() + " at " +
                     format_real(bond) + " A";
    problem.num_qubits = system.num_qubits;
    problem.objective = make_objective(system);
    problem.ansatz = system.ansatz;
    problem.seed_steps.push_back(efficient_su2_bitstring_steps(
        system.num_qubits, system.hf_bits));
    problem.reference_energy = system.hf_energy;
    problem.reference_name = "HF";
    problem.metrics = {
        {"bond_angstrom", bond},
        {"scf_converged", system.scf_converged ? 1.0 : 0.0},
    };

    if (system.num_qubits <= kMaxLanczosQubits) {
        if (charge == 0 && spin == 0) {
            // Neutral singlet: the global minimum of the reduced
            // Hamiltonian (matches the historical CLI read-out).
            PauliSum hamiltonian = system.hamiltonian;
            problem.exact_solver = [hamiltonian =
                                        std::move(hamiltonian)]() {
                return std::optional<double>(
                    lanczos_ground_state(hamiltonian).energy);
            };
        } else {
            // Constrained sector: restrict the Krylov basis so the
            // reference is the lowest energy *within the sector*.
            PauliSum hamiltonian = system.hamiltonian;
            auto filter = sector_filter(system);
            problem.exact_solver = [hamiltonian = std::move(hamiltonian),
                                    filter = std::move(filter)]() {
                LanczosOptions options;
                options.basis_filter = filter;
                return std::optional<double>(
                    lanczos_ground_state(hamiltonian, options).energy);
            };
        }
    }
    return problem;
}

// -------------------------------------------------------------- maxcut

Problem
make_maxcut_problem(const ProblemKey& key)
{
    const auto [kind, vertices] =
        parse_sized_instance(key, {"ring", "er"});

    ParamReader params(key);
    MaxCutProblem instance;
    std::string query;
    if (kind == "ring") {
        instance = make_ring_maxcut(vertices);
    } else {
        const double p = params.real("p", 0.5);
        const std::uint64_t seed = params.count("seed", 1);
        CAFQA_REQUIRE(p > 0.0 && p <= 1.0,
                      "edge probability p must be in (0, 1]");
        instance = make_random_maxcut(
            vertices, p, seed,
            "er" + std::to_string(vertices) + "-" + std::to_string(seed));
        // p and seed define the sampled graph, so the canonical key
        // always carries them.
        append_query_param(query, "p", format_real(p));
        append_query_param(query, "seed", std::to_string(seed));
    }
    const std::string ansatz_kind = params.text("ansatz", "su2");
    const std::size_t layers = params.count("layers", 1, 1);
    params.finish();

    Problem problem;
    problem.family = "maxcut";
    problem.name = instance.name;
    if (ansatz_kind != "su2" || layers != 1) {
        append_query_param(query, "ansatz", ansatz_kind);
        append_query_param(query, "layers", std::to_string(layers));
    }
    problem.key = "maxcut:" + kind + "-" + std::to_string(vertices);
    if (!query.empty()) {
        problem.key += "?" + query;
    }
    problem.detail = std::to_string(instance.num_vertices) +
                     " vertices, " + std::to_string(instance.edges.size()) +
                     " edges";
    problem.num_qubits = instance.num_vertices;
    problem.objective.hamiltonian = instance.hamiltonian;
    if (ansatz_kind == "su2") {
        EfficientSu2Options su2;
        su2.reps = layers;
        problem.ansatz = make_efficient_su2(instance.num_vertices, su2);
    } else if (ansatz_kind == "qaoa") {
        problem.ansatz = make_qaoa_ansatz(instance, layers);
    } else {
        CAFQA_REQUIRE(false, "maxcut ansatz must be \"su2\" or \"qaoa\","
                             " got \"" + ansatz_kind + "\"");
    }
    problem.metrics = {
        {"vertices", static_cast<double>(instance.num_vertices)},
        {"edges", static_cast<double>(instance.edges.size())},
    };

    if (instance.num_vertices <=
        MaxCutProblem::max_brute_force_vertices) {
        problem.exact_solver = [instance = std::move(instance)]() {
            // H = sum (Z_i Z_j - 1)/2, so the ground energy is minus
            // the maximum cut weight.
            return std::optional<double>(-instance.optimal_cut());
        };
    }
    return problem;
}

// --------------------------------------------------- tfim / xxz chains

/** Fields shared by both spin-chain factories once the Hamiltonian is
 *  built: ansatz, product-state reference/prior, Lanczos exact. */
Problem
finish_spin_chain(const ProblemKey& key, SpinChainProblem chain,
                  std::size_t layers, const std::vector<int>& seed_bits)
{
    Problem problem;
    problem.family = key.family;
    problem.name = chain.name;
    problem.detail = std::to_string(chain.num_sites) + "-site " +
                     (chain.periodic ? "ring" : "open chain");
    problem.num_qubits = chain.num_sites;
    problem.objective.hamiltonian = chain.hamiltonian;

    EfficientSu2Options su2;
    su2.reps = layers;
    problem.ansatz = make_efficient_su2(chain.num_sites, su2);

    // The best classical product state of the model's classical limit
    // (all-up for the TFIM ferromagnet, Neel for XXZ): the reference
    // baseline, and — exactly like the HF determinant for molecules —
    // a prior-injected Clifford point the search can only improve on.
    problem.reference_energy =
        basis_state_expectation(problem.hamiltonian(), seed_bits);
    problem.reference_name = "product-state";
    if (layers == 1) {
        // The bitstring-to-steps map is defined for the default
        // single-rep EfficientSU2 layout only.
        problem.seed_steps.push_back(efficient_su2_bitstring_steps(
            chain.num_sites, seed_bits));
    }

    if (chain.num_sites <= kMaxLanczosQubits) {
        PauliSum hamiltonian = problem.hamiltonian();
        problem.exact_solver = [hamiltonian = std::move(hamiltonian)]() {
            return std::optional<double>(
                lanczos_ground_state(hamiltonian).energy);
        };
    }
    return problem;
}

Problem
make_tfim_problem(const ProblemKey& key)
{
    const auto [kind, sites] =
        parse_sized_instance(key, {"chain", "ring"});
    ParamReader params(key);
    const double j = params.real("j", 1.0);
    const double h = params.real("h", 1.0);
    const std::size_t layers = params.count("layers", 1, 1);
    params.finish();

    SpinChainProblem chain =
        make_tfim_chain(sites, j, h, kind == "ring");
    // Classical (h = 0) ground state: all spins up.
    const std::vector<int> up(sites, 0);
    Problem problem = finish_spin_chain(key, std::move(chain), layers, up);

    problem.key = "tfim:" + kind + "-" + std::to_string(sites);
    std::string query;
    if (j != 1.0) {
        append_query_param(query, "j", format_real(j));
    }
    if (h != 1.0) {
        append_query_param(query, "h", format_real(h));
    }
    if (layers != 1) {
        append_query_param(query, "layers", std::to_string(layers));
    }
    if (!query.empty()) {
        problem.key += "?" + query;
    }
    problem.metrics = {
        {"j", j},
        {"h", h},
        {"sites", static_cast<double>(sites)},
    };
    return problem;
}

Problem
make_xxz_problem(const ProblemKey& key)
{
    const auto [kind, sites] =
        parse_sized_instance(key, {"chain", "ring"});
    ParamReader params(key);
    const double j = params.real("j", 1.0);
    const double delta = params.real("delta", 1.0);
    const std::size_t layers = params.count("layers", 1, 1);
    params.finish();

    SpinChainProblem chain =
        make_xxz_chain(sites, j, delta, kind == "ring");
    // Neel state: the classical Ising-limit ground state for J > 0.
    std::vector<int> neel(sites, 0);
    for (std::size_t v = 1; v < sites; v += 2) {
        neel[v] = 1;
    }
    Problem problem =
        finish_spin_chain(key, std::move(chain), layers, neel);

    problem.key = "xxz:" + kind + "-" + std::to_string(sites);
    std::string query;
    if (j != 1.0) {
        append_query_param(query, "j", format_real(j));
    }
    if (delta != 1.0) {
        append_query_param(query, "delta", format_real(delta));
    }
    if (layers != 1) {
        append_query_param(query, "layers", std::to_string(layers));
    }
    if (!query.empty()) {
        problem.key += "?" + query;
    }
    problem.metrics = {
        {"j", j},
        {"delta", delta},
        {"sites", static_cast<double>(sites)},
    };
    return problem;
}

// ------------------------------------------------------------ registry

struct FamilyEntry
{
    ProblemFactory factory;
    std::string description;
    std::string sample_key;
};

struct Registry
{
    Mutex problem_registry_mutex{"problem_registry_mutex"};
    std::map<std::string, FamilyEntry> families
        CAFQA_GUARDED_BY(problem_registry_mutex);
};

/** The process-wide registry, with the built-in families
 *  pre-registered. Function-local static so registration order is
 *  independent of translation-unit initialization order. */
Registry&
registry()
{
    static Registry instance;
    static const bool built_ins_registered = [] {
        MutexLock lock(instance.problem_registry_mutex);
        auto& families = instance.families;
        families["molecule"] = {
            make_molecule_problem,
            "VQE molecule from the paper's Table 1 "
            "(params: bond, charge, spin)",
            "molecule:H2?bond=0.74"};
        families["maxcut"] = {
            make_maxcut_problem,
            "MaxCut Ising instance on ring-<n> or er-<n> graphs "
            "(params: p, seed, ansatz, layers)",
            "maxcut:ring-6"};
        families["tfim"] = {
            make_tfim_problem,
            "transverse-field Ising model on chain-<n> or ring-<n> "
            "(params: j, h, layers)",
            "tfim:chain-4"};
        families["xxz"] = {
            make_xxz_problem,
            "Heisenberg XXZ model on chain-<n> or ring-<n> "
            "(params: j, delta, layers)",
            "xxz:chain-4"};
        return true;
    }();
    (void)built_ins_registered;
    return instance;
}

} // namespace

// ---------------------------------------------------------- ProblemKey

ProblemKey
ProblemKey::parse(const std::string& key)
{
    const auto colon = key.find(':');
    CAFQA_REQUIRE(colon != std::string::npos && colon > 0,
                  "problem key must look like "
                  "\"family:instance?param=value\", got \"" + key + "\"");
    ProblemKey parsed;
    parsed.family = key.substr(0, colon);

    const auto question = key.find('?', colon + 1);
    parsed.instance = key.substr(
        colon + 1, question == std::string::npos ? std::string::npos
                                                 : question - colon - 1);
    CAFQA_REQUIRE(!parsed.instance.empty(),
                  "problem key \"" + key + "\" has an empty instance");

    if (question != std::string::npos) {
        std::string query = key.substr(question + 1);
        CAFQA_REQUIRE(!query.empty(), "problem key \"" + key +
                                          "\" has an empty query");
        std::size_t start = 0;
        while (start <= query.size()) {
            auto amp = query.find('&', start);
            if (amp == std::string::npos) {
                amp = query.size();
            }
            const std::string token = query.substr(start, amp - start);
            const auto equals = token.find('=');
            CAFQA_REQUIRE(equals != std::string::npos && equals > 0 &&
                              equals + 1 < token.size(),
                          "problem key parameter \"" + token +
                              "\" must look like name=value");
            const std::string name = token.substr(0, equals);
            for (const auto& [existing, value] : parsed.params) {
                CAFQA_REQUIRE(existing != name,
                              "duplicate parameter \"" + name +
                                  "\" in problem key \"" + key + "\"");
            }
            parsed.params.emplace_back(name, token.substr(equals + 1));
            start = amp + 1;
        }
    }
    return parsed;
}

std::string
ProblemKey::to_string() const
{
    std::string out = family + ":" + instance;
    bool first = true;
    for (const auto& [name, value] : params) {
        out += (first ? "?" : "&") + name + "=" + value;
        first = false;
    }
    return out;
}

std::optional<std::string>
ProblemKey::find(const std::string& name) const
{
    for (const auto& [existing, value] : params) {
        if (existing == name) {
            return value;
        }
    }
    return std::nullopt;
}

// ------------------------------------------------------------- Problem

std::optional<double>
Problem::metric(const std::string& name) const
{
    for (const auto& [existing, value] : metrics) {
        if (existing == name) {
            return value;
        }
    }
    return std::nullopt;
}

std::optional<double>
Problem::exact_energy() const
{
    if (!exact_cache_) {
        exact_cache_ = exact_solver ? exact_solver()
                                    : std::optional<double>();
    }
    return *exact_cache_;
}

// --------------------------------------------------------- factory API

void
register_problem_family(const std::string& family, ProblemFactory factory,
                        std::string description, std::string sample_key)
{
    CAFQA_REQUIRE(!family.empty(), "problem family must be non-empty");
    CAFQA_REQUIRE(family.find(':') == std::string::npos,
                  "problem family must not contain ':'");
    CAFQA_REQUIRE(factory != nullptr,
                  "problem factory must be callable");
    Registry& r = registry();
    MutexLock lock(r.problem_registry_mutex);
    r.families[family] = {std::move(factory), std::move(description),
                          std::move(sample_key)};
}

bool
problem_family_registered(const std::string& family)
{
    Registry& r = registry();
    MutexLock lock(r.problem_registry_mutex);
    return r.families.count(family) != 0;
}

std::vector<std::string>
registered_problem_families()
{
    Registry& r = registry();
    MutexLock lock(r.problem_registry_mutex);
    std::vector<std::string> families;
    families.reserve(r.families.size());
    for (const auto& [family, entry] : r.families) {
        families.push_back(family);
    }
    return families;
}

std::vector<ProblemFamilyInfo>
problem_family_catalog()
{
    Registry& r = registry();
    MutexLock lock(r.problem_registry_mutex);
    std::vector<ProblemFamilyInfo> catalog;
    catalog.reserve(r.families.size());
    for (const auto& [family, entry] : r.families) {
        catalog.push_back(
            {family, entry.description, entry.sample_key});
    }
    return catalog;
}

Problem
make_problem(const std::string& key)
{
    const ProblemKey parsed = ProblemKey::parse(key);
    ProblemFactory factory;
    {
        Registry& r = registry();
        MutexLock lock(r.problem_registry_mutex);
        const auto it = r.families.find(parsed.family);
        if (it != r.families.end()) {
            factory = it->second.factory;
        }
    }
    if (!factory) {
        std::string all;
        {
            Registry& r = registry();
            MutexLock lock(r.problem_registry_mutex);
            for (const auto& [family, entry] : r.families) {
                all += all.empty() ? family : ", " + family;
            }
        }
        CAFQA_REQUIRE(false, "unknown problem family \"" + parsed.family +
                                 "\" in key \"" + key +
                                 "\" (registered: " + all + ")");
    }
    Problem problem = factory(parsed);
    CAFQA_ASSERT(!problem.key.empty(),
                 "problem factory left the canonical key empty");
    CAFQA_ASSERT(problem.hamiltonian().num_qubits() == problem.num_qubits,
                 "problem Hamiltonian qubit count mismatch");
    return problem;
}

} // namespace cafqa::problems
