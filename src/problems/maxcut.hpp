/**
 * @file
 * MaxCut problem instances as Ising Hamiltonians (paper Fig. 15 includes
 * two MaxCut problems in the BO-iteration study; Section 2.1 notes CAFQA
 * suits variational algorithms beyond VQE, e.g. QAOA).
 *
 * The Hamiltonian is H = sum_{(i,j)} w_ij (Z_i Z_j - 1)/2 whose minimum
 * is minus the maximum cut weight.
 */
#ifndef CAFQA_PROBLEMS_MAXCUT_HPP
#define CAFQA_PROBLEMS_MAXCUT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "pauli/pauli_sum.hpp"

namespace cafqa::problems {

/** A MaxCut instance. */
struct MaxCutProblem
{
    /** Largest instance `optimal_cut` will brute-force (2^n states). */
    static constexpr std::size_t max_brute_force_vertices = 24;

    std::string name;
    std::size_t num_vertices = 0;
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    PauliSum hamiltonian;

    /** Brute-force optimum cut size.
     *  @throws std::invalid_argument when the instance exceeds
     *  `max_brute_force_vertices` (the enumeration would be
     *  intractable, not merely slow). */
    double optimal_cut() const;
};

/** Erdos-Renyi random graph with unit edge weights. */
MaxCutProblem make_random_maxcut(std::size_t num_vertices,
                                 double edge_probability,
                                 std::uint64_t seed,
                                 const std::string& name);

/** Cycle graph C_n (known optimum: n for even n, n-1 for odd n). */
MaxCutProblem make_ring_maxcut(std::size_t num_vertices);

/**
 * QAOA ansatz for a MaxCut instance: p layers of problem unitaries
 * (shared-angle RZZ per edge) interleaved with mixer layers
 * (shared-angle RX per vertex), after an initial Hadamard wall. All
 * fixed gates are Clifford and every rotation is Clifford at
 * quarter-turn angles, so the circuit is directly CAFQA-searchable
 * with 2p discrete parameters.
 */
Circuit make_qaoa_ansatz(const MaxCutProblem& problem, std::size_t layers);

} // namespace cafqa::problems

#endif // CAFQA_PROBLEMS_MAXCUT_HPP
