#include "problems/spin_chains.hpp"

#include "common/error.hpp"

namespace cafqa::problems {

namespace {

/** Number of coupled nearest-neighbor pairs. */
std::size_t
num_bonds(std::size_t num_sites, bool periodic)
{
    return periodic ? num_sites : num_sites - 1;
}

PauliString
two_site(std::size_t n, std::size_t a, std::size_t b, PauliLetter letter)
{
    PauliString s(n);
    s.set_letter(a, letter);
    s.set_letter(b, letter);
    return s;
}

} // namespace

SpinChainProblem
make_tfim_chain(std::size_t num_sites, double coupling_j, double field_h,
                bool periodic)
{
    CAFQA_REQUIRE(num_sites >= 2, "spin chain needs at least two sites");
    CAFQA_REQUIRE(!periodic || num_sites >= 3,
                  "a periodic chain (ring) needs at least three sites");

    SpinChainProblem problem;
    problem.name = (periodic ? "tfim-ring" : "tfim-chain") +
                   std::to_string(num_sites);
    problem.num_sites = num_sites;
    problem.periodic = periodic;

    PauliSum h(num_sites);
    const std::size_t bonds = num_bonds(num_sites, periodic);
    for (std::size_t v = 0; v < bonds; ++v) {
        h.add_term(-coupling_j,
                   two_site(num_sites, v, (v + 1) % num_sites,
                            PauliLetter::Z));
    }
    for (std::size_t v = 0; v < num_sites; ++v) {
        PauliString x(num_sites);
        x.set_letter(v, PauliLetter::X);
        h.add_term(-field_h, std::move(x));
    }
    h.simplify();
    problem.hamiltonian = std::move(h);
    return problem;
}

SpinChainProblem
make_xxz_chain(std::size_t num_sites, double coupling_j, double delta,
               bool periodic)
{
    CAFQA_REQUIRE(num_sites >= 2, "spin chain needs at least two sites");
    CAFQA_REQUIRE(!periodic || num_sites >= 3,
                  "a periodic chain (ring) needs at least three sites");

    SpinChainProblem problem;
    problem.name = (periodic ? "xxz-ring" : "xxz-chain") +
                   std::to_string(num_sites);
    problem.num_sites = num_sites;
    problem.periodic = periodic;

    PauliSum h(num_sites);
    const std::size_t bonds = num_bonds(num_sites, periodic);
    for (std::size_t v = 0; v < bonds; ++v) {
        const std::size_t w = (v + 1) % num_sites;
        h.add_term(coupling_j, two_site(num_sites, v, w, PauliLetter::X));
        h.add_term(coupling_j, two_site(num_sites, v, w, PauliLetter::Y));
        h.add_term(coupling_j * delta,
                   two_site(num_sites, v, w, PauliLetter::Z));
    }
    h.simplify();
    problem.hamiltonian = std::move(h);
    return problem;
}

} // namespace cafqa::problems
