#include "problems/maxcut.hpp"

#include <bit>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cafqa::problems {

namespace {

PauliSum
edges_to_hamiltonian(std::size_t n,
                     const std::vector<std::pair<std::size_t, std::size_t>>&
                         edges)
{
    PauliSum h(n);
    for (const auto& [a, b] : edges) {
        PauliString zz(n);
        zz.set_letter(a, PauliLetter::Z);
        zz.set_letter(b, PauliLetter::Z);
        h.add_term(0.5, std::move(zz));
        h.add_term(-0.5, PauliString(n));
    }
    h.simplify();
    return h;
}

} // namespace

double
MaxCutProblem::optimal_cut() const
{
    CAFQA_REQUIRE(
        num_vertices <= max_brute_force_vertices,
        "optimal_cut enumerates all 2^n assignments and is limited to " +
            std::to_string(max_brute_force_vertices) +
            " vertices; this instance has " +
            std::to_string(num_vertices) +
            " (use a heuristic or a bound instead)");
    std::size_t best = 0;
    const std::uint64_t limit = std::uint64_t{1} << num_vertices;
    for (std::uint64_t assignment = 0; assignment < limit; ++assignment) {
        std::size_t cut = 0;
        for (const auto& [a, b] : edges) {
            if (((assignment >> a) & 1) != ((assignment >> b) & 1)) {
                ++cut;
            }
        }
        best = std::max(best, cut);
    }
    return static_cast<double>(best);
}

MaxCutProblem
make_random_maxcut(std::size_t num_vertices, double edge_probability,
                   std::uint64_t seed, const std::string& name)
{
    CAFQA_REQUIRE(num_vertices >= 2, "need at least two vertices");
    Rng rng(seed);
    MaxCutProblem problem;
    problem.name = name;
    problem.num_vertices = num_vertices;
    for (std::size_t a = 0; a < num_vertices; ++a) {
        for (std::size_t b = a + 1; b < num_vertices; ++b) {
            if (rng.bernoulli(edge_probability)) {
                problem.edges.emplace_back(a, b);
            }
        }
    }
    // Guarantee connectivity of the sampled instance by adding a path.
    for (std::size_t v = 0; v + 1 < num_vertices; ++v) {
        bool present = false;
        for (const auto& [a, b] : problem.edges) {
            if ((a == v && b == v + 1) || (a == v + 1 && b == v)) {
                present = true;
                break;
            }
        }
        if (!present && rng.bernoulli(0.5)) {
            problem.edges.emplace_back(v, v + 1);
        }
    }
    CAFQA_REQUIRE(!problem.edges.empty(), "sampled graph has no edges");
    problem.hamiltonian =
        edges_to_hamiltonian(num_vertices, problem.edges);
    return problem;
}

MaxCutProblem
make_ring_maxcut(std::size_t num_vertices)
{
    CAFQA_REQUIRE(num_vertices >= 3, "ring needs at least three vertices");
    MaxCutProblem problem;
    problem.name = "ring" + std::to_string(num_vertices);
    problem.num_vertices = num_vertices;
    for (std::size_t v = 0; v < num_vertices; ++v) {
        problem.edges.emplace_back(v, (v + 1) % num_vertices);
    }
    problem.hamiltonian =
        edges_to_hamiltonian(num_vertices, problem.edges);
    return problem;
}

Circuit
make_qaoa_ansatz(const MaxCutProblem& problem, std::size_t layers)
{
    CAFQA_REQUIRE(layers >= 1, "QAOA needs at least one layer");
    Circuit circuit(problem.num_vertices);
    for (std::size_t q = 0; q < problem.num_vertices; ++q) {
        circuit.h(q);
    }
    for (std::size_t layer = 0; layer < layers; ++layer) {
        const int gamma = circuit.new_param();
        for (const auto& [a, b] : problem.edges) {
            circuit.rzz_at(a, b, gamma);
        }
        const int beta = circuit.new_param();
        for (std::size_t q = 0; q < problem.num_vertices; ++q) {
            circuit.rx_at(q, beta);
        }
    }
    return circuit;
}

} // namespace cafqa::problems
