/**
 * @file
 * Unified workload-facing problem API: every variational workload —
 * molecules, MaxCut, spin chains — resolves through one string-keyed
 * registry, mirroring the backend (`core/backend_registry.hpp`) and
 * optimizer (`opt/optimizer_registry.hpp`) registries.
 *
 * A problem key is `family:instance[?param=value[&param=value]...]`:
 *
 * | key example                        | workload                       |
 * |------------------------------------|--------------------------------|
 * | "molecule:LiH?bond=1.5"            | VQE molecule (paper Table 1)   |
 * | "maxcut:ring-64"                   | MaxCut on the cycle graph C_64 |
 * | "maxcut:er-256?p=0.03&seed=11"     | MaxCut on an Erdos-Renyi graph |
 * | "tfim:chain-8?h=1.25"              | transverse-field Ising chain   |
 * | "xxz:ring-6?delta=0.5"             | Heisenberg XXZ ring            |
 *
 * `make_problem(key)` returns a fully prepared `Problem`: qubit count,
 * constrained objective (Hamiltonian + sector penalties), a
 * Clifford-searchable hardware-efficient ansatz, prior-injection seed
 * steps (the Hartree-Fock point for molecules), an optional classical
 * reference energy, and a lazy exact ground energy (Lanczos / brute
 * force, small sizes only). Unknown families and unknown query
 * parameters are rejected with self-describing errors that list the
 * valid choices. New families can be registered at runtime with
 * `register_problem_family` and are immediately usable from the CLI,
 * the batch runner and every example.
 */
#ifndef CAFQA_PROBLEMS_PROBLEM_HPP
#define CAFQA_PROBLEMS_PROBLEM_HPP

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "core/objective.hpp"
#include "pauli/pauli_sum.hpp"

namespace cafqa::problems {

/** A parsed problem key: `family:instance?param=value&...`. */
struct ProblemKey
{
    std::string family;
    std::string instance;
    /** Query parameters in source order (keys must be unique). */
    std::vector<std::pair<std::string, std::string>> params;

    /** Parse a key; throws std::invalid_argument on malformed input
     *  (missing family/instance, empty or duplicate parameters). */
    static ProblemKey parse(const std::string& key);

    /** Reassemble `family:instance?k=v&...`. */
    std::string to_string() const;

    /** The raw value of one parameter, if present. */
    std::optional<std::string> find(const std::string& name) const;
};

/**
 * A fully prepared variational problem, ready for `CafqaPipeline` (set
 * `PipelineConfig::ansatz/objective` from the fields here, or go
 * through `make_pipeline_config` in `core/run_spec.hpp`).
 */
struct Problem
{
    /** Canonical registry key; `make_problem(key)` reproduces this
     *  problem exactly (round-trip). */
    std::string key;
    /** Registry family ("molecule", "maxcut", "tfim", "xxz", ...). */
    std::string family;
    /** Short display name, e.g. "H2" or "ring8". */
    std::string name;
    /** One-line human description of the instance. */
    std::string detail;
    std::size_t num_qubits = 0;

    /** Hamiltonian plus any sector-constraint penalties. */
    VqaObjective objective;
    /** Clifford-searchable hardware-efficient ansatz. */
    Circuit ansatz;
    /** Step assignments worth prior-injecting into the discrete search
     *  (the Hartree-Fock determinant for molecules; may be empty). */
    std::vector<std::vector<int>> seed_steps;

    /** Classical baseline energy (Hartree-Fock for molecules), with a
     *  label naming it; nullopt when the family has no baseline. */
    std::optional<double> reference_energy;
    std::string reference_name;

    /** Named scalar facts about the instance (bond length, edge count,
     *  model couplings, ...) for reporting. */
    std::vector<std::pair<std::string, double>> metrics;

    /** Solver for the exact ground energy; nullopt-returning (or
     *  absent) when the instance is too large. Set by the factory;
     *  invoked lazily by `exact_energy()`. */
    std::function<std::optional<double>()> exact_solver;

    /** The problem Hamiltonian (alias of `objective.hamiltonian`). */
    const PauliSum& hamiltonian() const { return objective.hamiltonian; }

    /** Value of one metric, if recorded. */
    std::optional<double> metric(const std::string& name) const;

    /**
     * Exact ground energy of the bare Hamiltonian (Lanczos for
     * molecules and spin chains, brute force for MaxCut), or nullopt
     * when the instance is too large for an exact solve. Computed on
     * first call and memoized; potentially expensive.
     */
    std::optional<double> exact_energy() const;

  private:
    mutable std::optional<std::optional<double>> exact_cache_;
};

/** Factory signature stored in the registry. The factory receives the
 *  parsed key and must reject unknown parameters. */
using ProblemFactory = std::function<Problem(const ProblemKey&)>;

/** One registry entry's metadata (for usage text and docs). */
struct ProblemFamilyInfo
{
    std::string family;
    /** One-line description including the accepted parameters. */
    std::string description;
    /** A small example key that resolves quickly. */
    std::string sample_key;
};

/** Register (or replace) a family under `family`. */
void register_problem_family(const std::string& family,
                             ProblemFactory factory,
                             std::string description = {},
                             std::string sample_key = {});

/** True if `family` is registered. */
bool problem_family_registered(const std::string& family);

/** Sorted list of registered families. */
std::vector<std::string> registered_problem_families();

/** Sorted metadata for every registered family. */
std::vector<ProblemFamilyInfo> problem_family_catalog();

/** Resolve a problem key; throws std::invalid_argument on unknown
 *  family (listing the registered ones), unknown parameters, or
 *  invalid parameter values. */
Problem make_problem(const std::string& key);

} // namespace cafqa::problems

#endif // CAFQA_PROBLEMS_PROBLEM_HPP
