/**
 * @file
 * End-to-end molecular problem factory: molecule geometry -> STO-3G
 * integrals -> RHF -> active space -> parity-mapped, Z2-reduced qubit
 * Hamiltonian + constraint operators + HF reference state + ansatz.
 *
 * Covers every VQE application of the paper's Table 1 (H2-S1 is
 * substituted by an H10 chain with the same 18-qubit footprint; see
 * DESIGN.md).
 */
#ifndef CAFQA_PROBLEMS_MOLECULE_FACTORY_HPP
#define CAFQA_PROBLEMS_MOLECULE_FACTORY_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chem/molecule.hpp"
#include "chem/scf.hpp"
#include "circuit/circuit.hpp"
#include "core/objective.hpp"
#include "pauli/pauli_sum.hpp"

namespace cafqa::problems {

/** Static per-molecule metadata (paper Table 1). */
struct MoleculeInfo
{
    std::string name;
    double equilibrium_bond_length = 0.0; ///< Angstrom
    double min_bond_length = 0.0;
    double max_bond_length = 0.0;
    std::size_t total_orbitals = 0;
    std::size_t used_orbitals = 0;
    std::size_t frozen_orbitals = 0;
    std::size_t num_qubits = 0;
};

/** Options for building a molecular system. */
struct MolecularSystemOptions
{
    /** Electrons removed from the *target sector* relative to neutral
     *  (+1 selects the cation sector, e.g. H2+). The SCF itself always
     *  runs on the neutral closed-shell molecule. */
    int sector_charge = 0;
    /** Target 2*S_z of the sector (0 = singlet pairing, 2 = triplet). */
    int sector_spin_2sz = 0;
    /** Override the default active orbital count (0 = spec default). */
    std::size_t active_override = 0;
    /** Override the default frozen orbital count. */
    long frozen_override = -1;
    /** Set to use `scf` below instead of the per-molecule defaults. */
    bool use_custom_scf = false;
    /** SCF controls when use_custom_scf is set. */
    chem::ScfOptions scf;
};

/** A fully prepared VQE problem instance. */
struct MolecularSystem
{
    std::string name;
    double bond_length = 0.0; ///< Angstrom
    chem::Molecule molecule;

    std::size_t num_qubits = 0;
    std::size_t total_orbitals = 0;
    std::size_t active_orbitals = 0;
    std::size_t frozen_orbitals = 0;
    int n_alpha = 0;
    int n_beta = 0;

    bool scf_converged = false;
    /** RHF total energy from the SCF (neutral molecule). */
    double scf_energy = 0.0;
    /** Expectation of the reduced Hamiltonian on the HF bitstring —
     *  the Hartree-Fock baseline in the target sector. */
    double hf_energy = 0.0;

    /** Parity-mapped, two-qubit-reduced Hamiltonian. */
    PauliSum hamiltonian;
    /** Reduced particle-number operator. */
    PauliSum number_op;
    /** Reduced S_z operator. */
    PauliSum sz_op;
    /** HF determinant as a reduced parity bitstring. */
    std::vector<int> hf_bits;

    /** Hardware-efficient ansatz (EfficientSU2, one entanglement
     *  layer). */
    Circuit ansatz;
};

/** Names accepted by make_molecular_system. */
std::vector<std::string> supported_molecules();

/** Table 1 metadata for one molecule. */
MoleculeInfo molecule_info(const std::string& name);

/** Build the full VQE problem at one bond length (Angstrom). */
MolecularSystem make_molecular_system(
    const std::string& name, double bond_length_angstrom,
    const MolecularSystemOptions& options = {});

/**
 * The CAFQA search objective for a system: Hamiltonian plus
 * electron-count and S_z penalties pinning the target sector
 * (paper Section 3 item 5 / Section 7.1).
 */
VqaObjective make_objective(const MolecularSystem& system,
                            double number_weight = 2.0,
                            double sz_weight = 2.0);

/**
 * Predicate selecting the reduced basis states that carry exactly the
 * system's (n_alpha, n_beta). Pass as LanczosOptions::basis_filter to
 * compute the exact ground energy *within the target sector* (needed
 * e.g. for triplet references, where the global minimum of the reduced
 * Hamiltonian lies in a different sector of the same parity).
 */
std::function<bool(std::uint64_t)> sector_filter(
    const MolecularSystem& system);

} // namespace cafqa::problems

#endif // CAFQA_PROBLEMS_MOLECULE_FACTORY_HPP
