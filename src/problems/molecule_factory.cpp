#include "problems/molecule_factory.hpp"

#include <cmath>
#include <functional>
#include <map>

#include "chem/basis.hpp"
#include "chem/fermion.hpp"
#include "chem/mo_integrals.hpp"
#include "circuit/efficient_su2.hpp"
#include "common/error.hpp"
#include "core/hartree_fock_baseline.hpp"
#include "mapping/encoding.hpp"
#include "mapping/z2_reduction.hpp"


namespace cafqa::problems {

namespace {

using chem::Molecule;

struct MoleculeSpec
{
    MoleculeInfo info;
    std::function<Molecule(double)> geometry;
    std::size_t default_frozen = 0;
    std::size_t default_active = 0; // 0 = all remaining
    chem::ScfOptions scf;
};

const std::map<std::string, MoleculeSpec>&
spec_table()
{
    static const std::map<std::string, MoleculeSpec> table = [] {
        std::map<std::string, MoleculeSpec> t;
        chem::ScfOptions default_scf;
        chem::ScfOptions hard_scf;
        hard_scf.max_iterations = 400;
        hard_scf.damping = 0.5;
        hard_scf.damping_iterations = 8;
        hard_scf.level_shift = 0.3;

        t["H2"] = MoleculeSpec{
            {"H2", 0.74, 0.37, 2.96, 2, 2, 0, 2},
            [](double r) { return Molecule::diatomic("H", "H", r); },
            0, 0, default_scf};
        t["LiH"] = MoleculeSpec{
            {"LiH", 1.6, 0.8, 4.8, 6, 3, 1, 4},
            [](double r) { return Molecule::diatomic("Li", "H", r); },
            1, 3, default_scf};
        t["H2O"] = MoleculeSpec{
            {"H2O", 1.0, 0.5, 4.0, 7, 7, 0, 12},
            [](double r) { return Molecule::bent("H", "O", r, 104.5); },
            0, 0, default_scf};
        t["H6"] = MoleculeSpec{
            {"H6", 0.9, 0.45, 3.6, 6, 6, 0, 10},
            [](double r) { return Molecule::linear_chain("H", 6, r); },
            0, 0, default_scf};
        t["N2"] = MoleculeSpec{
            {"N2", 1.09, 0.55, 4.36, 10, 7, 2, 12},
            [](double r) { return Molecule::diatomic("N", "N", r); },
            2, 7, default_scf};
        t["NaH"] = MoleculeSpec{
            {"NaH", 1.9, 0.95, 7.6, 10, 7, 3, 12},
            [](double r) { return Molecule::diatomic("Na", "H", r); },
            3, 7, hard_scf};
        t["BeH2"] = MoleculeSpec{
            {"BeH2", 1.32, 0.66, 5.28, 7, 7, 0, 12},
            [](double r) {
                return Molecule::linear_symmetric("H", "Be", r);
            },
            0, 0, default_scf};
        // H10 chain: the 18-qubit stand-in for the paper's H2-S1
        // Hamiltonian (see DESIGN.md, Substitutions).
        t["H10"] = MoleculeSpec{
            {"H10", 1.0, 0.5, 3.0, 10, 10, 0, 18},
            [](double r) { return Molecule::linear_chain("H", 10, r); },
            0, 0, default_scf};
        t["Cr2"] = MoleculeSpec{
            {"Cr2", 1.68, 1.25, 3.5, 36, 18, 18, 34},
            [](double r) { return Molecule::diatomic("Cr", "Cr", r); },
            18, 18, hard_scf};
        return t;
    }();
    return table;
}

} // namespace

std::vector<std::string>
supported_molecules()
{
    std::vector<std::string> names;
    for (const auto& [name, spec] : spec_table()) {
        (void)spec;
        names.push_back(name);
    }
    return names;
}

MoleculeInfo
molecule_info(const std::string& name)
{
    const auto it = spec_table().find(name);
    CAFQA_REQUIRE(it != spec_table().end(),
                  "unknown molecule: " + name);
    return it->second.info;
}

MolecularSystem
make_molecular_system(const std::string& name, double bond_length_angstrom,
                      const MolecularSystemOptions& options)
{
    const auto it = spec_table().find(name);
    CAFQA_REQUIRE(it != spec_table().end(), "unknown molecule: " + name);
    const MoleculeSpec& spec = it->second;

    MolecularSystem system;
    system.name = name;
    system.bond_length = bond_length_angstrom;
    system.molecule = spec.geometry(bond_length_angstrom);

    // ---- SCF on the neutral closed-shell molecule. ----
    const chem::BasisSet basis = chem::BasisSet::sto3g(system.molecule);
    system.total_orbitals = basis.size();
    const chem::AoIntegrals ints =
        chem::compute_ao_integrals(system.molecule, basis);
    const chem::ScfOptions& scf_options =
        options.use_custom_scf ? options.scf : spec.scf;
    chem::ScfResult scf = chem::rhf(system.molecule, ints, scf_options);
    if (!scf.converged && !options.use_custom_scf) {
        // Stretched geometries can defeat plain DIIS (the paper hits the
        // same with Psi4 at large H2O bonds). Retry once with heavy
        // damping and a level shift; keep whichever run is variationally
        // better.
        chem::ScfOptions retry = scf_options;
        retry.max_iterations = 500;
        retry.damping = 0.5;
        retry.damping_iterations = 12;
        retry.level_shift = 0.4;
        chem::ScfResult second = chem::rhf(system.molecule, ints, retry);
        if (second.converged || second.energy < scf.energy) {
            scf = std::move(second);
        }
    }
    system.scf_converged = scf.converged;
    system.scf_energy = scf.energy;

    // ---- Active space. ----
    std::size_t n_frozen = spec.default_frozen;
    if (options.frozen_override >= 0) {
        n_frozen = static_cast<std::size_t>(options.frozen_override);
    }
    std::size_t n_active = (options.active_override > 0)
        ? options.active_override
        : spec.default_active;
    if (n_active == 0) {
        n_active = basis.size() - n_frozen;
    }
    system.frozen_orbitals = n_frozen;
    system.active_orbitals = n_active;

    const chem::ActiveSpace space =
        chem::make_active_space(basis.size(), n_frozen, n_active);
    const chem::MoIntegrals mo =
        chem::transform_to_mo(ints, scf, space, system.molecule);

    // ---- Target sector. ----
    const int active_electrons = mo.num_active_electrons -
                                 options.sector_charge;
    CAFQA_REQUIRE(active_electrons >= 0,
                  "sector charge removes more electrons than available");
    const int two_sz = options.sector_spin_2sz;
    CAFQA_REQUIRE((active_electrons + two_sz) % 2 == 0,
                  "electron count and 2*Sz must have equal parity");
    system.n_alpha = (active_electrons + two_sz) / 2;
    system.n_beta = (active_electrons - two_sz) / 2;
    CAFQA_REQUIRE(system.n_beta >= 0 &&
                      static_cast<std::size_t>(system.n_alpha) <= n_active,
                  "sector does not fit in the active space");

    // ---- Mapping + reduction. ----
    const FermionEncoding encoding(EncodingKind::Parity, 2 * n_active);
    const ParitySector sector{system.n_alpha, system.n_beta};

    PauliSum h_full = chem::build_qubit_hamiltonian(mo, encoding);
    system.hamiltonian = reduce_two_qubits(h_full, sector);
    system.number_op =
        reduce_two_qubits(chem::total_number_operator(encoding), sector);
    system.sz_op = reduce_two_qubits(chem::sz_operator(encoding), sector);
    system.num_qubits = system.hamiltonian.num_qubits();

    // ---- HF reference in this sector. ----
    const std::vector<int> occ = chem::hartree_fock_occupation(
        n_active, system.n_alpha, system.n_beta);
    system.hf_bits = reduce_bits(encoding.occupation_to_bits(occ));
    system.hf_energy =
        basis_state_expectation(system.hamiltonian, system.hf_bits);

    // ---- Ansatz. ----
    system.ansatz = make_efficient_su2(system.num_qubits);
    return system;
}

VqaObjective
make_objective(const MolecularSystem& system, double number_weight,
               double sz_weight)
{
    VqaObjective objective;
    objective.hamiltonian = system.hamiltonian;
    objective.add_number_constraint(system.number_op,
                                    system.n_alpha + system.n_beta,
                                    number_weight);
    objective.add_sz_constraint(
        system.sz_op, 0.5 * (system.n_alpha - system.n_beta), sz_weight);
    return objective;
}

std::function<bool(std::uint64_t)>
sector_filter(const MolecularSystem& system)
{
    const std::size_t m = system.active_orbitals;
    const ParitySector sector{system.n_alpha, system.n_beta};
    const int want_alpha = system.n_alpha;
    const int want_beta = system.n_beta;
    return [m, sector, want_alpha, want_beta](std::uint64_t index) {
        const auto [na, nb] = reduced_state_electrons(index, m, sector);
        return na == want_alpha && nb == want_beta;
    };
}

} // namespace cafqa::problems
