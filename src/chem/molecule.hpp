/**
 * @file
 * Molecular geometry: atoms with nuclear charges and 3D coordinates
 * (atomic units / Bohr), total charge and spin, and the nuclear repulsion
 * energy. This replaces the molecular-specification layer the paper
 * obtains from PySCF.
 */
#ifndef CAFQA_CHEM_MOLECULE_HPP
#define CAFQA_CHEM_MOLECULE_HPP

#include <array>
#include <string>
#include <vector>

namespace cafqa::chem {

/** Conversion factor: 1 Angstrom in Bohr radii. */
constexpr double angstrom_to_bohr = 1.8897259886;

/** 3D point in Bohr. */
using Vec3 = std::array<double, 3>;

/** One nucleus. */
struct Atom
{
    int atomic_number = 1;
    Vec3 position{0.0, 0.0, 0.0};
};

/** Chemical element helpers (supported through Kr, Z = 36). */
int element_number(const std::string& symbol);
std::string element_symbol(int atomic_number);

/** A molecule: nuclei plus total charge. */
class Molecule
{
  public:
    Molecule() = default;
    Molecule(std::vector<Atom> atoms, int charge = 0);

    const std::vector<Atom>& atoms() const { return atoms_; }
    int charge() const { return charge_; }

    /** Total electron count (sum of Z minus charge). */
    int num_electrons() const;

    /** Nuclear-nuclear repulsion energy in Hartree. */
    double nuclear_repulsion() const;

    /** One-line summary such as "H2 (2 atoms, 2 electrons)". */
    std::string summary() const;

    /** Diatomic molecule on the z axis with the given separation. */
    static Molecule diatomic(const std::string& a, const std::string& b,
                             double bond_length_angstrom, int charge = 0);

    /** Linear chain of identical atoms with uniform spacing. */
    static Molecule linear_chain(const std::string& symbol, int count,
                                 double spacing_angstrom);

    /** Bent triatomic A-B-A (e.g. water) with bond length and angle. */
    static Molecule bent(const std::string& outer, const std::string& center,
                         double bond_length_angstrom, double angle_degrees);

    /** Linear symmetric triatomic A-B-A (e.g. BeH2). */
    static Molecule linear_symmetric(const std::string& outer,
                                     const std::string& center,
                                     double bond_length_angstrom);

  private:
    std::vector<Atom> atoms_;
    int charge_ = 0;
};

} // namespace cafqa::chem

#endif // CAFQA_CHEM_MOLECULE_HPP
