#include "chem/boys.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace cafqa::chem {

namespace {

/** Power series F_m(T) = e^{-T} sum_i (2T)^i / prod_{j=0..i} (2m+2j+1). */
double
boys_series(int m, double t)
{
    const double expt = std::exp(-t);
    double term = 1.0 / (2.0 * m + 1.0);
    double sum = term;
    for (int i = 1; i < 400; ++i) {
        term *= 2.0 * t / (2.0 * m + 2.0 * i + 1.0);
        sum += term;
        if (term < 1e-17 * sum) {
            break;
        }
    }
    return expt * sum;
}

/** Large-T asymptotic: F_m(T) ~ (2m-1)!! / (2T)^m * (1/2) sqrt(pi/T). */
double
boys_asymptotic(int m, double t)
{
    double value = 0.5 * std::sqrt(std::numbers::pi / t);
    for (int j = 1; j <= m; ++j) {
        value *= (2.0 * j - 1.0) / (2.0 * t);
    }
    return value;
}

} // namespace

std::vector<double>
boys_function(int max_order, double t)
{
    CAFQA_REQUIRE(max_order >= 0, "negative Boys order");
    CAFQA_REQUIRE(t >= -1e-12, "negative Boys argument");
    t = std::max(t, 0.0);

    std::vector<double> f(static_cast<std::size_t>(max_order) + 1);
    if (t < 1e-13) {
        for (int m = 0; m <= max_order; ++m) {
            f[static_cast<std::size_t>(m)] = 1.0 / (2.0 * m + 1.0);
        }
        return f;
    }

    const double top = (t > 35.0) ? boys_asymptotic(max_order, t)
                                  : boys_series(max_order, t);
    f[static_cast<std::size_t>(max_order)] = top;
    const double expt = std::exp(-t);
    for (int m = max_order - 1; m >= 0; --m) {
        f[static_cast<std::size_t>(m)] =
            (2.0 * t * f[static_cast<std::size_t>(m) + 1] + expt) /
            (2.0 * m + 1.0);
    }
    return f;
}

} // namespace cafqa::chem
