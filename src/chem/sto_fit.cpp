#include "chem/sto_fit.hpp"

#include <cmath>
#include <map>
#include <utility>

#include "common/error.hpp"
#include "common/linalg.hpp"
#include "opt/nelder_mead.hpp"

namespace cafqa::chem {

namespace {

/** ln Gamma(l + 3/2) via repeated Gamma(x+1) = x Gamma(x). */
double
gamma_l_threehalf(int l)
{
    // Gamma(3/2) = sqrt(pi)/2, Gamma(x+1) = x*Gamma(x).
    double value = std::sqrt(M_PI) / 2.0;
    for (int k = 0; k < l; ++k) {
        value *= (k + 1.5);
    }
    return value;
}

double
factorial(int n)
{
    double value = 1.0;
    for (int k = 2; k <= n; ++k) {
        value *= k;
    }
    return value;
}

/** Normalization of the radial GTO r^l exp(-alpha r^2). */
double
gto_radial_norm(int l, double alpha)
{
    return std::sqrt(2.0 * std::pow(2.0 * alpha, l + 1.5) /
                     gamma_l_threehalf(l));
}

/** Normalization of the radial STO r^{n-1} exp(-zeta r), zeta = 1. */
double
sto_radial_norm(int n)
{
    return std::pow(2.0, n + 0.5) / std::sqrt(factorial(2 * n));
}

/** Analytic overlap between normalized radial GTOs of momentum l. */
double
gto_gto_overlap(int l, double a, double b)
{
    return gto_radial_norm(l, a) * gto_radial_norm(l, b) *
           gamma_l_threehalf(l) / (2.0 * std::pow(a + b, l + 1.5));
}

/** Composite Simpson integration of f on [lo, hi]. */
template <typename F>
double
simpson(F f, double lo, double hi, int intervals)
{
    const double h = (hi - lo) / intervals;
    double sum = f(lo) + f(hi);
    for (int i = 1; i < intervals; ++i) {
        sum += f(lo + i * h) * ((i % 2 == 1) ? 4.0 : 2.0);
    }
    return sum * h / 3.0;
}

} // namespace

double
sto_gto_radial_overlap(int n, int l, double alpha)
{
    CAFQA_REQUIRE(n > l, "Slater orbital requires n > l");
    const double ns = sto_radial_norm(n);
    const double ng = gto_radial_norm(l, alpha);
    auto integrand = [&](double r) {
        return std::pow(r, n + l + 1) * std::exp(-r - alpha * r * r);
    };
    // Two panels: a fine one near the origin for sharp Gaussians, a long
    // one for the exponential tail (zeta = 1 decays within ~60 Bohr).
    const double split = 2.0;
    const double value = simpson(integrand, 0.0, split, 4000) +
                         simpson(integrand, split, 80.0, 4000);
    return ns * ng * value;
}

StoNgFit
fit_sto_ng(int n, int l, int num_gaussians)
{
    CAFQA_REQUIRE(num_gaussians >= 1, "need at least one Gaussian");
    CAFQA_REQUIRE(n > l && n <= 5 && l <= 3, "unsupported shell");

    const std::size_t ng = static_cast<std::size_t>(num_gaussians);

    // For fixed exponents the optimal coefficients satisfy c ~ S^{-1} s
    // and the achieved overlap is sqrt(s^T S^{-1} s).
    auto overlap_for = [&](const std::vector<double>& log_alpha,
                           std::vector<double>* coeffs_out) {
        std::vector<double> alpha(ng);
        for (std::size_t i = 0; i < ng; ++i) {
            alpha[i] = std::exp(log_alpha[i]);
        }
        Matrix s_gg(ng, ng);
        std::vector<double> s_sg(ng);
        for (std::size_t i = 0; i < ng; ++i) {
            s_sg[i] = sto_gto_radial_overlap(n, l, alpha[i]);
            for (std::size_t j = 0; j < ng; ++j) {
                s_gg(i, j) = gto_gto_overlap(l, alpha[i], alpha[j]);
            }
        }
        std::vector<double> c;
        try {
            c = solve_linear(s_gg, s_sg);
        } catch (const std::invalid_argument&) {
            return 0.0; // degenerate exponents
        }
        double quad = 0.0;
        for (std::size_t i = 0; i < ng; ++i) {
            quad += s_sg[i] * c[i];
        }
        if (quad <= 0.0) {
            return 0.0;
        }
        const double ov = std::sqrt(quad);
        if (coeffs_out != nullptr) {
            coeffs_out->assign(ng, 0.0);
            for (std::size_t i = 0; i < ng; ++i) {
                (*coeffs_out)[i] = c[i] / ov; // c^T S c == 1
            }
        }
        return ov;
    };

    // Start from a geometric ladder similar to the known 1s fit, widened
    // for higher principal quantum numbers.
    std::vector<double> start(ng);
    const double center = 0.3 / (n * n);
    for (std::size_t i = 0; i < ng; ++i) {
        start[i] = std::log(center * std::pow(5.0, static_cast<double>(i)));
    }

    auto objective = [&](const std::vector<double>& log_alpha) {
        return -overlap_for(log_alpha, nullptr);
    };

    OptimizeResult best{};
    for (int restart = 0; restart < 3; ++restart) {
        std::vector<double> x0 = start;
        for (auto& v : x0) {
            v += 0.4 * restart;
        }
        OptimizeResult r = nelder_mead(
            objective, x0,
            {.max_evaluations = 4000, .f_tolerance = 1e-13,
             .initial_step = 0.4});
        if (restart == 0 || r.best_value < best.best_value) {
            best = std::move(r);
        }
    }

    StoNgFit fit;
    fit.coefficients.resize(ng);
    fit.overlap = overlap_for(best.best_x, &fit.coefficients);
    fit.exponents.resize(ng);
    for (std::size_t i = 0; i < ng; ++i) {
        fit.exponents[i] = std::exp(best.best_x[i]);
    }
    return fit;
}

} // namespace cafqa::chem
