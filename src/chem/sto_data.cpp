#include "chem/sto_data.hpp"

#include <map>

#include "common/thread_safety.hpp"

#include "chem/sto_fit.hpp"
#include "common/error.hpp"

namespace cafqa::chem {

namespace {

// Universal STO-3G contraction coefficients (w.r.t. normalized
// primitives) shared by all elements that use tabulated data.
const std::vector<double> coeff_1s = {0.1543289673, 0.5353281423,
                                      0.4446345422};
const std::vector<double> coeff_2s = {-0.09996722919, 0.3995128261,
                                      0.7001154689};
const std::vector<double> coeff_2p = {0.1559162750, 0.6076837186,
                                      0.3919573931};
const std::vector<double> coeff_3s = {-0.2196203690, 0.2255954336,
                                      0.9003984260};
const std::vector<double> coeff_3p = {0.01058760429, 0.5951670053,
                                      0.4620010120};

struct TabulatedElement
{
    std::vector<double> exp_1s;
    std::vector<double> exp_2sp; // empty if absent
    std::vector<double> exp_3sp; // empty if absent
};

const std::map<int, TabulatedElement> tabulated = {
    {1, {{3.425250914, 0.6239137298, 0.1688554040}, {}, {}}},
    {2, {{6.362421394, 1.158922999, 0.3136497915}, {}, {}}},
    {3,
     {{16.11957475, 2.936200663, 0.7946504870},
      {0.6362897469, 0.1478600533, 0.0480886784},
      {}}},
    {4,
     {{30.16787069, 5.495115306, 1.487192653},
      {1.314833110, 0.3055389383, 0.0993707456},
      {}}},
    {5,
     {{48.79111318, 8.887362172, 2.405267040},
      {2.236956142, 0.5198204999, 0.1690617600},
      {}}},
    {6,
     {{71.61683735, 13.04509632, 3.530512160},
      {2.941249355, 0.6834830964, 0.2222899159},
      {}}},
    {7,
     {{99.10616896, 18.05231239, 4.885660238},
      {3.780455879, 0.8784966449, 0.2857143744},
      {}}},
    {8,
     {{130.7093214, 23.80886605, 6.443608313},
      {5.033151319, 1.169596125, 0.3803889600},
      {}}},
    {9,
     {{166.6791340, 30.36081233, 8.216820672},
      {6.464803249, 1.502281245, 0.4885884864},
      {}}},
    {11,
     {{250.7724300, 45.67851117, 12.36238776},
      {12.04019274, 2.797881859, 0.9099580170},
      {1.478740622, 0.4125648801, 0.1614750979}}},
};

/** Filling order of atomic shells with capacities. */
const std::vector<std::pair<int, int>> filling_order = {
    {1, 0}, {2, 0}, {2, 1}, {3, 0}, {3, 1}, {4, 0},
    {3, 2}, {4, 1}, {5, 0}, {4, 2}, {5, 1},
};

/** Shells in the minimal basis of element Z, as (n, l) pairs. */
std::vector<std::pair<int, int>>
basis_shells(int z)
{
    std::vector<std::pair<int, int>> shells = {{1, 0}};
    if (z >= 3) {
        shells.push_back({2, 0});
        shells.push_back({2, 1});
    }
    if (z >= 11) {
        shells.push_back({3, 0});
        shells.push_back({3, 1});
    }
    if (z >= 19) {
        shells.push_back({4, 0});
    }
    if (z >= 21) {
        // First-row transition metals: 3d plus the 4p polarization shell
        // included by the official STO-3G tables (this is what gives Cr
        // 18 basis functions per atom, matching Table 1 of the paper).
        shells.push_back({3, 2});
        shells.push_back({4, 1});
    } else if (z >= 31) {
        shells.push_back({3, 2});
        shells.push_back({4, 1});
    }
    return shells;
}

} // namespace

int
shell_occupation(int atomic_number, int n, int l)
{
    // Aufbau with the chromium/copper 3d exceptions.
    std::map<std::pair<int, int>, int> occ;
    int remaining = atomic_number;
    for (const auto& [fn, fl] : filling_order) {
        const int capacity = 2 * (2 * fl + 1);
        const int take = std::min(capacity, remaining);
        occ[{fn, fl}] = take;
        remaining -= take;
        if (remaining == 0) {
            break;
        }
    }
    if (atomic_number == 24 || atomic_number == 29) {
        occ[{4, 0}] -= 1;
        occ[{3, 2}] += 1;
    }
    const auto it = occ.find({n, l});
    return it == occ.end() ? 0 : it->second;
}

double
slater_zeta(int atomic_number, int n, int l)
{
    // Standard molecular zetas for light elements (Hehre-Stewart-Pople).
    static const std::map<std::tuple<int, int, int>, double> overrides = {
        {{1, 1, 0}, 1.24},  {{2, 1, 0}, 1.69},
        {{3, 2, 0}, 0.80},  {{3, 2, 1}, 0.80},
        {{4, 2, 0}, 1.15},  {{4, 2, 1}, 1.15},
        {{5, 2, 0}, 1.45},  {{5, 2, 1}, 1.45},
        {{6, 2, 0}, 1.72},  {{6, 2, 1}, 1.72},
        {{7, 2, 0}, 1.95},  {{7, 2, 1}, 1.95},
        {{8, 2, 0}, 2.25},  {{8, 2, 1}, 2.25},
        {{9, 2, 0}, 2.55},  {{9, 2, 1}, 2.55},
    };
    const auto ov = overrides.find({atomic_number, n, l});
    if (ov != overrides.end()) {
        return ov->second;
    }

    // Slater's screening rules. Group structure: (1s)(2sp)(3sp)(3d)(4sp)...
    auto group_of = [](int gn, int gl) {
        return (gl <= 1) ? std::pair<int, int>{gn, 0}
                         : std::pair<int, int>{gn, gl};
    };
    const auto own_group = group_of(n, l);
    const bool own_is_d_or_f = l >= 2;
    const int occupied_here = shell_occupation(atomic_number, n, l);

    double shield = 0.0;
    for (const auto& [fn, fl] : filling_order) {
        const int occ = shell_occupation(atomic_number, fn, fl);
        if (occ == 0) {
            continue;
        }
        const auto grp = group_of(fn, fl);
        if (grp == own_group) {
            int same = occ;
            if (fn == n && fl == l && occupied_here > 0) {
                same -= 1; // don't count the electron itself
            }
            shield += ((own_group == std::pair<int, int>{1, 0}) ? 0.30
                                                                : 0.35) *
                      same;
        } else if (own_is_d_or_f) {
            if (fn < n || (fn == n && fl < l)) {
                shield += 1.00 * occ;
            }
        } else {
            if (fn == n - 1) {
                shield += 0.85 * occ;
            } else if (fn <= n - 2) {
                shield += 1.00 * occ;
            }
        }
    }

    static const double n_star[] = {0.0, 1.0, 2.0, 3.0, 3.7, 4.0, 4.2};
    CAFQA_REQUIRE(n >= 1 && n <= 6, "unsupported principal quantum number");
    const double zeta = (atomic_number - shield) / n_star[n];
    CAFQA_REQUIRE(zeta > 0.05, "Slater zeta collapsed to zero");
    return zeta;
}

const AtomBasis&
sto3g_atom_basis(int atomic_number)
{
    static std::map<int, AtomBasis> cache;
    static Mutex sto_basis_mutex{"sto_basis_mutex"};
    MutexLock lock(sto_basis_mutex);

    const auto hit = cache.find(atomic_number);
    if (hit != cache.end()) {
        return hit->second;
    }

    AtomBasis basis;
    const auto tab = tabulated.find(atomic_number);
    if (tab != tabulated.end()) {
        const TabulatedElement& data = tab->second;
        basis.shells.push_back(ShellData{1, 0, data.exp_1s, coeff_1s});
        if (!data.exp_2sp.empty()) {
            basis.shells.push_back(ShellData{2, 0, data.exp_2sp, coeff_2s});
            basis.shells.push_back(ShellData{2, 1, data.exp_2sp, coeff_2p});
        }
        if (!data.exp_3sp.empty()) {
            basis.shells.push_back(ShellData{3, 0, data.exp_3sp, coeff_3s});
            basis.shells.push_back(ShellData{3, 1, data.exp_3sp, coeff_3p});
        }
    } else {
        // Generate STO-3G-like shells with the least-squares fitter.
        static std::map<std::pair<int, int>, StoNgFit> fit_cache;
        for (const auto& [n, l] : basis_shells(atomic_number)) {
            auto fit_it = fit_cache.find({n, l});
            if (fit_it == fit_cache.end()) {
                fit_it = fit_cache.emplace(std::pair<int, int>{n, l},
                                           fit_sto_ng(n, l, 3))
                             .first;
            }
            const StoNgFit& fit = fit_it->second;
            const double zeta = slater_zeta(atomic_number, n, l);
            ShellData shell{n, l, fit.exponents, fit.coefficients};
            for (auto& e : shell.exponents) {
                e *= zeta * zeta;
            }
            basis.shells.push_back(std::move(shell));
        }
    }

    return cache.emplace(atomic_number, std::move(basis)).first->second;
}

} // namespace cafqa::chem
