/**
 * @file
 * McMurchie-Davidson integrals over primitive Cartesian Gaussians:
 * overlap, kinetic, nuclear attraction and electron repulsion. This is
 * the integral engine underneath the STO-3G Hartree-Fock stack that
 * replaces the paper's PySCF/Psi4 dependency.
 *
 * All functions operate on *unnormalized* primitives
 *   g(r) = (x-Ax)^lx (y-Ay)^ly (z-Az)^lz exp(-alpha |r-A|^2);
 * contraction coefficients and normalization are applied by the basis
 * layer.
 */
#ifndef CAFQA_CHEM_GAUSSIAN_HPP
#define CAFQA_CHEM_GAUSSIAN_HPP

#include <array>

#include "chem/molecule.hpp"

namespace cafqa::chem {

/** A primitive Cartesian Gaussian. */
struct PrimitiveGaussian
{
    double alpha = 1.0;
    std::array<int, 3> powers{0, 0, 0};
    Vec3 center{0.0, 0.0, 0.0};

    /** Total angular momentum lx + ly + lz. */
    int total_l() const { return powers[0] + powers[1] + powers[2]; }
};

/** <a|b> overlap integral. */
double overlap(const PrimitiveGaussian& a, const PrimitiveGaussian& b);

/** <a| -1/2 nabla^2 |b> kinetic-energy integral. */
double kinetic(const PrimitiveGaussian& a, const PrimitiveGaussian& b);

/** <a| 1/|r - C| |b> nuclear-attraction kernel (positive; the caller
 *  multiplies by -Z). */
double nuclear(const PrimitiveGaussian& a, const PrimitiveGaussian& b,
               const Vec3& nucleus);

/** Two-electron repulsion integral (ab|cd) in chemist notation. */
double electron_repulsion(const PrimitiveGaussian& a,
                          const PrimitiveGaussian& b,
                          const PrimitiveGaussian& c,
                          const PrimitiveGaussian& d);

} // namespace cafqa::chem

#endif // CAFQA_CHEM_GAUSSIAN_HPP
