#include "chem/basis.hpp"

#include <cmath>
#include <numbers>

#include "chem/sto_data.hpp"
#include "common/error.hpp"

namespace cafqa::chem {

namespace {

/**
 * Radial part of the primitive normalization constant. The
 * component-dependent double-factorial factor is intentionally omitted:
 * it is constant across primitives of a contraction, so it is absorbed
 * by the final numeric normalization of each AO.
 */
double
radial_norm(double alpha, int l)
{
    return std::pow(2.0 * alpha / std::numbers::pi, 0.75) *
           std::pow(4.0 * alpha, 0.5 * l);
}

/** A solid-harmonic component: monomial powers with an integer-ratio
 *  coefficient. */
struct Monomial
{
    std::array<int, 3> powers;
    double coeff;
};

/** The Cartesian expansion of each real AO component for shell l. */
std::vector<std::vector<Monomial>>
shell_components(int l)
{
    switch (l) {
      case 0:
        return {{{{0, 0, 0}, 1.0}}};
      case 1:
        return {
            {{{1, 0, 0}, 1.0}}, // px
            {{{0, 1, 0}, 1.0}}, // py
            {{{0, 0, 1}, 1.0}}, // pz
        };
      case 2:
        // Real solid harmonics; overall scale fixed numerically later.
        return {
            {{{1, 1, 0}, 1.0}},                                  // dxy
            {{{0, 1, 1}, 1.0}},                                  // dyz
            {{{0, 0, 2}, 2.0}, {{2, 0, 0}, -1.0}, {{0, 2, 0}, -1.0}}, // dz2
            {{{1, 0, 1}, 1.0}},                                  // dxz
            {{{2, 0, 0}, 1.0}, {{0, 2, 0}, -1.0}},               // dx2-y2
        };
      default:
        CAFQA_REQUIRE(false, "angular momentum beyond d is not supported");
    }
    return {};
}

const char* const component_names_s[] = {"s"};
const char* const component_names_p[] = {"px", "py", "pz"};
const char* const component_names_d[] = {"dxy", "dyz", "dz2", "dxz",
                                         "dx2y2"};

std::string
component_name(int l, std::size_t index)
{
    switch (l) {
      case 0: return component_names_s[index];
      case 1: return component_names_p[index];
      default: return component_names_d[index];
    }
}

/** Overlap between two contracted AOs. */
double
contracted_overlap(const ContractedGaussian& a, const ContractedGaussian& b)
{
    double total = 0.0;
    for (const auto& ta : a.terms) {
        for (const auto& tb : b.terms) {
            total += ta.coeff * tb.coeff * overlap(ta.primitive,
                                                   tb.primitive);
        }
    }
    return total;
}

} // namespace

BasisSet
BasisSet::sto3g(const Molecule& molecule)
{
    BasisSet basis;
    std::size_t atom_index = 0;
    for (const auto& atom : molecule.atoms()) {
        const AtomBasis& atom_basis = sto3g_atom_basis(atom.atomic_number);
        for (const auto& shell : atom_basis.shells) {
            const auto components = shell_components(shell.l);
            for (std::size_t comp = 0; comp < components.size(); ++comp) {
                ContractedGaussian ao;
                ao.label = element_symbol(atom.atomic_number) +
                           std::to_string(atom_index) + " " +
                           std::to_string(shell.n) +
                           component_name(shell.l, comp);
                for (std::size_t p = 0; p < shell.exponents.size(); ++p) {
                    const double alpha = shell.exponents[p];
                    const double c =
                        shell.coefficients[p] * radial_norm(alpha, shell.l);
                    for (const auto& mono : components[comp]) {
                        ao.terms.push_back(ContractedGaussian::Term{
                            c * mono.coeff,
                            PrimitiveGaussian{alpha, mono.powers,
                                              atom.position}});
                    }
                }
                basis.aos_.push_back(std::move(ao));
            }
        }
        ++atom_index;
    }
    basis.normalize();
    return basis;
}

void
BasisSet::normalize()
{
    for (auto& ao : aos_) {
        const double self = contracted_overlap(ao, ao);
        CAFQA_ASSERT(self > 1e-14, "AO with vanishing norm");
        const double scale = 1.0 / std::sqrt(self);
        for (auto& term : ao.terms) {
            term.coeff *= scale;
        }
    }
}

Matrix
overlap_matrix(const BasisSet& basis)
{
    const std::size_t n = basis.size();
    Matrix s(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            const double v = contracted_overlap(basis.ao(i), basis.ao(j));
            s(i, j) = v;
            s(j, i) = v;
        }
    }
    return s;
}

Matrix
kinetic_matrix(const BasisSet& basis)
{
    const std::size_t n = basis.size();
    Matrix t(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            double v = 0.0;
            for (const auto& ta : basis.ao(i).terms) {
                for (const auto& tb : basis.ao(j).terms) {
                    v += ta.coeff * tb.coeff *
                         kinetic(ta.primitive, tb.primitive);
                }
            }
            t(i, j) = v;
            t(j, i) = v;
        }
    }
    return t;
}

Matrix
nuclear_matrix(const BasisSet& basis, const Molecule& molecule)
{
    const std::size_t n = basis.size();
    Matrix v(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            double value = 0.0;
            for (const auto& ta : basis.ao(i).terms) {
                for (const auto& tb : basis.ao(j).terms) {
                    for (const auto& atom : molecule.atoms()) {
                        value -= atom.atomic_number * ta.coeff * tb.coeff *
                                 nuclear(ta.primitive, tb.primitive,
                                         atom.position);
                    }
                }
            }
            v(i, j) = value;
            v(j, i) = value;
        }
    }
    return v;
}

namespace {

double
contracted_eri(const ContractedGaussian& a, const ContractedGaussian& b,
               const ContractedGaussian& c, const ContractedGaussian& d)
{
    double total = 0.0;
    for (const auto& ta : a.terms) {
        for (const auto& tb : b.terms) {
            for (const auto& tc : c.terms) {
                for (const auto& td : d.terms) {
                    total += ta.coeff * tb.coeff * tc.coeff * td.coeff *
                             electron_repulsion(ta.primitive, tb.primitive,
                                                tc.primitive, td.primitive);
                }
            }
        }
    }
    return total;
}

} // namespace

std::vector<double>
eri_tensor(const BasisSet& basis)
{
    const std::size_t n = basis.size();
    std::vector<double> eri(n * n * n * n, 0.0);

    // Schwarz bound: |(ij|kl)| <= sqrt((ij|ij)) sqrt((kl|kl)).
    Matrix schwarz(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            const double diag = contracted_eri(basis.ao(i), basis.ao(j),
                                               basis.ao(i), basis.ao(j));
            const double bound = std::sqrt(std::abs(diag));
            schwarz(i, j) = bound;
            schwarz(j, i) = bound;
        }
    }
    constexpr double screen_threshold = 1e-12;

    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            for (std::size_t k = 0; k <= i; ++k) {
                const std::size_t l_max = (k == i) ? j : k;
                for (std::size_t l = 0; l <= l_max; ++l) {
                    double value = 0.0;
                    if (schwarz(i, j) * schwarz(k, l) > screen_threshold) {
                        value = contracted_eri(basis.ao(i), basis.ao(j),
                                               basis.ao(k), basis.ao(l));
                    }
                    // Scatter to all 8 symmetric slots.
                    eri[eri_index(n, i, j, k, l)] = value;
                    eri[eri_index(n, j, i, k, l)] = value;
                    eri[eri_index(n, i, j, l, k)] = value;
                    eri[eri_index(n, j, i, l, k)] = value;
                    eri[eri_index(n, k, l, i, j)] = value;
                    eri[eri_index(n, l, k, i, j)] = value;
                    eri[eri_index(n, k, l, j, i)] = value;
                    eri[eri_index(n, l, k, j, i)] = value;
                }
            }
        }
    }
    return eri;
}

} // namespace cafqa::chem
