/**
 * @file
 * Least-squares STO-nG expansion generator: fits `ng` Gaussians to a
 * Slater-type orbital by maximizing the radial overlap, exactly the
 * procedure of Hehre, Stewart & Pople (1969) that produced the original
 * STO-3G tables.
 *
 * Used for shells without hardcoded tabulated data (e.g. the Cr 3d/4s/4p
 * shells needed for the paper's Cr2 experiment) — see DESIGN.md,
 * "Substitutions".
 */
#ifndef CAFQA_CHEM_STO_FIT_HPP
#define CAFQA_CHEM_STO_FIT_HPP

#include <vector>

namespace cafqa::chem {

/** Result of fitting Gaussians to a Slater orbital. */
struct StoNgFit
{
    /** Gaussian exponents for zeta = 1 (scale by zeta^2 for general
     *  zeta). */
    std::vector<double> exponents;
    /** Contraction coefficients w.r.t. radially normalized primitives. */
    std::vector<double> coefficients;
    /** Achieved overlap with the Slater orbital (1 = perfect). */
    double overlap = 0.0;
};

/**
 * Fit `num_gaussians` primitives of angular momentum l to the Slater
 * orbital R_{n}(r) ~ r^{n-1} exp(-r) (zeta = 1).
 *
 * @param n principal quantum number of the Slater orbital (n > l).
 * @param l angular momentum of the Gaussian primitives.
 * @param num_gaussians expansion length (3 for STO-3G).
 */
StoNgFit fit_sto_ng(int n, int l, int num_gaussians = 3);

/**
 * Radial overlap <STO(n, zeta=1) | GTO(l, alpha)> between normalized
 * radial functions (exposed for tests).
 */
double sto_gto_radial_overlap(int n, int l, double alpha);

} // namespace cafqa::chem

#endif // CAFQA_CHEM_STO_FIT_HPP
