/**
 * @file
 * Boys function F_m(T) = int_0^1 t^{2m} exp(-T t^2) dt — the special
 * function at the core of Gaussian nuclear-attraction and electron
 * repulsion integrals.
 */
#ifndef CAFQA_CHEM_BOYS_HPP
#define CAFQA_CHEM_BOYS_HPP

#include <vector>

namespace cafqa::chem {

/**
 * Evaluate F_0..F_max_order at argument T.
 *
 * Strategy: the highest order is computed by a convergent power series
 * for moderate T and by the asymptotic form for large T; lower orders
 * follow from the (numerically stable) downward recursion
 *   F_m(T) = (2T F_{m+1}(T) + exp(-T)) / (2m + 1).
 *
 * @param max_order highest m required (inclusive).
 * @param t argument, must be >= 0.
 * @return vector of size max_order + 1.
 */
std::vector<double> boys_function(int max_order, double t);

} // namespace cafqa::chem

#endif // CAFQA_CHEM_BOYS_HPP
