#include "chem/scf.hpp"

#include <cmath>
#include <deque>

#include "common/error.hpp"

namespace cafqa::chem {

AoIntegrals
compute_ao_integrals(const Molecule& molecule, const BasisSet& basis)
{
    AoIntegrals out;
    out.n = basis.size();
    out.overlap = overlap_matrix(basis);
    out.h_core = kinetic_matrix(basis) + nuclear_matrix(basis, molecule);
    out.eri = eri_tensor(basis);
    return out;
}

namespace {

/** Fock matrix F = H + G(D) with G_ij = sum_kl D_kl [(ij|kl) - (ik|jl)/2]. */
Matrix
build_fock(const Matrix& h, const std::vector<double>& eri,
           const Matrix& density)
{
    const std::size_t n = h.rows();
    Matrix f = h;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double g = 0.0;
            for (std::size_t k = 0; k < n; ++k) {
                for (std::size_t l = 0; l < n; ++l) {
                    const double d = density(k, l);
                    if (d == 0.0) {
                        continue;
                    }
                    g += d * (eri[eri_index(n, i, j, k, l)] -
                              0.5 * eri[eri_index(n, i, k, j, l)]);
                }
            }
            f(i, j) += g;
        }
    }
    return f;
}

/** Closed-shell density D = 2 C_occ C_occ^T. */
Matrix
build_density(const Matrix& c, std::size_t n_occ)
{
    const std::size_t n = c.rows();
    Matrix d(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double sum = 0.0;
            for (std::size_t m = 0; m < n_occ; ++m) {
                sum += c(i, m) * c(j, m);
            }
            d(i, j) = 2.0 * sum;
        }
    }
    return d;
}

double
electronic_energy(const Matrix& h, const Matrix& f, const Matrix& d)
{
    double e = 0.0;
    for (std::size_t i = 0; i < h.rows(); ++i) {
        for (std::size_t j = 0; j < h.cols(); ++j) {
            e += 0.5 * d(i, j) * (h(i, j) + f(i, j));
        }
    }
    return e;
}

} // namespace

ScfResult
rhf(const Molecule& molecule, const AoIntegrals& integrals,
    const ScfOptions& options)
{
    const std::size_t n = integrals.n;
    const int electrons = molecule.num_electrons();
    CAFQA_REQUIRE(electrons > 0, "no electrons");
    CAFQA_REQUIRE(electrons % 2 == 0,
                  "RHF requires an even electron count (closed shell)");
    const std::size_t n_occ = static_cast<std::size_t>(electrons / 2);
    CAFQA_REQUIRE(n_occ <= n, "more electron pairs than basis functions");

    const Matrix x = inverse_sqrt(integrals.overlap);
    const Matrix& s = integrals.overlap;
    const Matrix& h = integrals.h_core;

    // Core-Hamiltonian guess.
    Matrix f = h;
    Matrix density(n, n);
    Matrix c(n, n);
    std::vector<double> orbital_energies(n, 0.0);

    std::deque<Matrix> diis_focks;
    std::deque<Matrix> diis_errors;

    double energy_prev = 0.0;
    ScfResult result;
    result.nuclear_repulsion = molecule.nuclear_repulsion();

    for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
        // Diagonalize in the orthonormal basis (with optional level
        // shift on the virtual block built from the previous orbitals).
        Matrix f_ortho = x * f * x;
        if (options.level_shift != 0.0 && iter > 0) {
            // Q = I - P_occ in the orthonormal basis, P_occ built from
            // the current orthonormalized occupied orbitals.
            // C_ortho = S^{1/2} C = X^{-1} C; instead of forming S^{1/2}
            // we use the identity P_ortho = X^{-1} (D/2) X^{-1} =
            // (S X) (D/2) (X S) since X^{-1} = S X.
            const Matrix sx = s * x;
            const Matrix p = sx.transpose() * (0.5 * density) * sx;
            Matrix q = Matrix::identity(n) - p;
            f_ortho += options.level_shift * q;
        }
        const SymmetricEigen eig = symmetric_eigen(f_ortho);
        orbital_energies = eig.values;
        c = x * eig.vectors;

        Matrix density_new = build_density(c, n_occ);
        if (iter < options.damping_iterations && options.damping > 0.0 &&
            iter > 0) {
            density_new =
                (1.0 - options.damping) * density_new +
                options.damping * density;
        }
        const double density_change = density_new.max_abs_diff(density);
        density = std::move(density_new);

        f = build_fock(h, integrals.eri, density);
        const double e_elec = electronic_energy(h, f, density);

        // DIIS: error = F D S - S D F, orthonormalized.
        Matrix error = f * density * s - s * density * f;
        error = x * error * x;
        diis_focks.push_back(f);
        diis_errors.push_back(error);
        if (diis_focks.size() > options.diis_size) {
            diis_focks.pop_front();
            diis_errors.pop_front();
        }
        const std::size_t m = diis_focks.size();
        if (m >= 2 && iter >= options.damping_iterations) {
            // Solve the DIIS linear system with the Lagrange row.
            Matrix b(m + 1, m + 1);
            std::vector<double> rhs(m + 1, 0.0);
            for (std::size_t p = 0; p < m; ++p) {
                for (std::size_t q = 0; q < m; ++q) {
                    double dot = 0.0;
                    const auto& ep = diis_errors[p].data();
                    const auto& eq = diis_errors[q].data();
                    for (std::size_t t = 0; t < ep.size(); ++t) {
                        dot += ep[t] * eq[t];
                    }
                    b(p, q) = dot;
                }
                b(p, m) = -1.0;
                b(m, p) = -1.0;
            }
            rhs[m] = -1.0;
            try {
                const std::vector<double> w = solve_linear(b, rhs);
                Matrix f_diis(n, n);
                for (std::size_t p = 0; p < m; ++p) {
                    f_diis += w[p] * diis_focks[p];
                }
                f = std::move(f_diis);
            } catch (const std::invalid_argument&) {
                // Singular DIIS system: fall back to the plain Fock.
            }
        }

        const double total = e_elec + result.nuclear_repulsion;
        const bool converged =
            iter > 0 &&
            std::abs(total - energy_prev) < options.energy_tolerance &&
            density_change < options.density_tolerance;
        energy_prev = total;
        result.iterations = iter + 1;
        result.electronic_energy = e_elec;
        result.energy = total;
        if (converged) {
            result.converged = true;
            break;
        }
    }

    result.mo_coefficients = c;
    result.orbital_energies = orbital_energies;
    result.density = density;
    return result;
}

} // namespace cafqa::chem
