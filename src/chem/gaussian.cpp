#include "chem/gaussian.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "chem/boys.hpp"
#include "common/error.hpp"

namespace cafqa::chem {

namespace {

/**
 * Hermite expansion coefficient E_t^{ij} for one Cartesian dimension.
 *
 * @param i,j   angular momenta on centers A and B.
 * @param t     Hermite order, nonzero only for 0 <= t <= i + j.
 * @param q     A - B distance in this dimension.
 * @param a,b   Gaussian exponents.
 */
double
hermite_e(int i, int j, int t, double q, double a, double b)
{
    const double p = a + b;
    if (t < 0 || t > i + j) {
        return 0.0;
    }
    if (i == 0 && j == 0) {
        // t == 0 here because of the range check above.
        const double mu = a * b / p;
        return std::exp(-mu * q * q);
    }
    if (i > 0) {
        // Decrement i: X_PA = -b*q/p.
        return hermite_e(i - 1, j, t - 1, q, a, b) / (2.0 * p) -
               (b * q / p) * hermite_e(i - 1, j, t, q, a, b) +
               (t + 1) * hermite_e(i - 1, j, t + 1, q, a, b);
    }
    // Decrement j: X_PB = +a*q/p.
    return hermite_e(i, j - 1, t - 1, q, a, b) / (2.0 * p) +
           (a * q / p) * hermite_e(i, j - 1, t, q, a, b) +
           (t + 1) * hermite_e(i, j - 1, t + 1, q, a, b);
}

/**
 * Table of Hermite Coulomb integrals R^0_{tuv}(p, PC) for all
 * t + u + v <= l_total, computed by downward recursion in the auxiliary
 * index n.
 */
class HermiteCoulomb
{
  public:
    HermiteCoulomb(int l_total, double p, const Vec3& pc)
        : l_(l_total), stride_(static_cast<std::size_t>(l_total) + 1)
    {
        const double r2 = pc[0] * pc[0] + pc[1] * pc[1] + pc[2] * pc[2];
        const std::vector<double> boys = boys_function(l_, p * r2);

        // table_[n][t][u][v], stored flat; only t+u+v <= l_ - n needed.
        table_.assign(static_cast<std::size_t>(l_ + 1) * stride_ * stride_ *
                          stride_,
                      0.0);
        for (int n = l_; n >= 0; --n) {
            const int budget = l_ - n;
            for (int t = 0; t <= budget; ++t) {
                for (int u = 0; u + t <= budget; ++u) {
                    for (int v = 0; v + t + u <= budget; ++v) {
                        double value;
                        if (t == 0 && u == 0 && v == 0) {
                            value = std::pow(-2.0 * p, n) *
                                    boys[static_cast<std::size_t>(n)];
                        } else if (t > 0) {
                            value = (t - 1) * get(n + 1, t - 2, u, v) +
                                    pc[0] * get(n + 1, t - 1, u, v);
                        } else if (u > 0) {
                            value = (u - 1) * get(n + 1, t, u - 2, v) +
                                    pc[1] * get(n + 1, t, u - 1, v);
                        } else {
                            value = (v - 1) * get(n + 1, t, u, v - 2) +
                                    pc[2] * get(n + 1, t, u, v - 1);
                        }
                        set(n, t, u, v, value);
                    }
                }
            }
        }
    }

    /** R^0_{tuv}. */
    double r(int t, int u, int v) const { return get(0, t, u, v); }

  private:
    double
    get(int n, int t, int u, int v) const
    {
        if (t < 0 || u < 0 || v < 0) {
            return 0.0;
        }
        return table_[index(n, t, u, v)];
    }

    void
    set(int n, int t, int u, int v, double value)
    {
        table_[index(n, t, u, v)] = value;
    }

    std::size_t
    index(int n, int t, int u, int v) const
    {
        return ((static_cast<std::size_t>(n) * stride_ +
                 static_cast<std::size_t>(t)) *
                    stride_ +
                static_cast<std::size_t>(u)) *
                   stride_ +
               static_cast<std::size_t>(v);
    }

    int l_;
    std::size_t stride_;
    std::vector<double> table_;
};

/** 1D overlap including the sqrt(pi/p) factor. */
double
overlap_1d(int i, int j, double q, double a, double b)
{
    return hermite_e(i, j, 0, q, a, b) *
           std::sqrt(std::numbers::pi / (a + b));
}

} // namespace

double
overlap(const PrimitiveGaussian& a, const PrimitiveGaussian& b)
{
    double result = 1.0;
    for (int d = 0; d < 3; ++d) {
        result *= overlap_1d(a.powers[d], b.powers[d],
                             a.center[d] - b.center[d], a.alpha, b.alpha);
    }
    return result;
}

double
kinetic(const PrimitiveGaussian& a, const PrimitiveGaussian& b)
{
    // 1D kinetic: K_ij = b(2j+1) S_ij - 2b^2 S_{i,j+2}
    //                    - j(j-1)/2 S_{i,j-2}.
    double s[3];
    double k[3];
    for (int d = 0; d < 3; ++d) {
        const int i = a.powers[d];
        const int j = b.powers[d];
        const double q = a.center[d] - b.center[d];
        s[d] = overlap_1d(i, j, q, a.alpha, b.alpha);
        k[d] = b.alpha * (2.0 * j + 1.0) * s[d] -
               2.0 * b.alpha * b.alpha *
                   overlap_1d(i, j + 2, q, a.alpha, b.alpha);
        if (j >= 2) {
            k[d] -= 0.5 * j * (j - 1) *
                    overlap_1d(i, j - 2, q, a.alpha, b.alpha);
        }
    }
    return k[0] * s[1] * s[2] + s[0] * k[1] * s[2] + s[0] * s[1] * k[2];
}

double
nuclear(const PrimitiveGaussian& a, const PrimitiveGaussian& b,
        const Vec3& nucleus)
{
    const double p = a.alpha + b.alpha;
    Vec3 composite;
    Vec3 pc;
    for (int d = 0; d < 3; ++d) {
        composite[d] =
            (a.alpha * a.center[d] + b.alpha * b.center[d]) / p;
        pc[d] = composite[d] - nucleus[d];
    }
    const int l_total = a.total_l() + b.total_l();
    const HermiteCoulomb coulomb(l_total, p, pc);

    double sum = 0.0;
    for (int t = 0; t <= a.powers[0] + b.powers[0]; ++t) {
        const double ex =
            hermite_e(a.powers[0], b.powers[0], t,
                      a.center[0] - b.center[0], a.alpha, b.alpha);
        for (int u = 0; u <= a.powers[1] + b.powers[1]; ++u) {
            const double ey =
                hermite_e(a.powers[1], b.powers[1], u,
                          a.center[1] - b.center[1], a.alpha, b.alpha);
            for (int v = 0; v <= a.powers[2] + b.powers[2]; ++v) {
                const double ez =
                    hermite_e(a.powers[2], b.powers[2], v,
                              a.center[2] - b.center[2], a.alpha, b.alpha);
                sum += ex * ey * ez * coulomb.r(t, u, v);
            }
        }
    }
    return 2.0 * std::numbers::pi / p * sum;
}

double
electron_repulsion(const PrimitiveGaussian& a, const PrimitiveGaussian& b,
                   const PrimitiveGaussian& c, const PrimitiveGaussian& d)
{
    const double p = a.alpha + b.alpha;
    const double q = c.alpha + d.alpha;
    const double alpha = p * q / (p + q);

    Vec3 pp;
    Vec3 qq;
    Vec3 pq;
    for (int dim = 0; dim < 3; ++dim) {
        pp[dim] =
            (a.alpha * a.center[dim] + b.alpha * b.center[dim]) / p;
        qq[dim] =
            (c.alpha * c.center[dim] + d.alpha * d.center[dim]) / q;
        pq[dim] = pp[dim] - qq[dim];
    }

    const int l_bra = a.total_l() + b.total_l();
    const int l_ket = c.total_l() + d.total_l();
    const HermiteCoulomb coulomb(l_bra + l_ket, alpha, pq);

    // Precompute the bra and ket Hermite coefficient tables.
    auto e_table = [](const PrimitiveGaussian& g1,
                      const PrimitiveGaussian& g2, int dim,
                      std::vector<double>& out) {
        const int imax = g1.powers[dim] + g2.powers[dim];
        out.resize(static_cast<std::size_t>(imax) + 1);
        for (int t = 0; t <= imax; ++t) {
            out[static_cast<std::size_t>(t)] =
                hermite_e(g1.powers[dim], g2.powers[dim], t,
                          g1.center[dim] - g2.center[dim], g1.alpha,
                          g2.alpha);
        }
    };
    std::vector<double> ex1, ey1, ez1, ex2, ey2, ez2;
    e_table(a, b, 0, ex1);
    e_table(a, b, 1, ey1);
    e_table(a, b, 2, ez1);
    e_table(c, d, 0, ex2);
    e_table(c, d, 1, ey2);
    e_table(c, d, 2, ez2);

    double sum = 0.0;
    for (std::size_t t = 0; t < ex1.size(); ++t) {
        for (std::size_t u = 0; u < ey1.size(); ++u) {
            for (std::size_t v = 0; v < ez1.size(); ++v) {
                const double bra = ex1[t] * ey1[u] * ez1[v];
                if (bra == 0.0) {
                    continue;
                }
                for (std::size_t tau = 0; tau < ex2.size(); ++tau) {
                    for (std::size_t nu = 0; nu < ey2.size(); ++nu) {
                        for (std::size_t phi = 0; phi < ez2.size(); ++phi) {
                            const double ket =
                                ex2[tau] * ey2[nu] * ez2[phi];
                            if (ket == 0.0) {
                                continue;
                            }
                            const double parity =
                                ((tau + nu + phi) % 2 == 0) ? 1.0 : -1.0;
                            sum += bra * ket * parity *
                                   coulomb.r(static_cast<int>(t + tau),
                                             static_cast<int>(u + nu),
                                             static_cast<int>(v + phi));
                        }
                    }
                }
            }
        }
    }

    const double prefactor =
        2.0 * std::pow(std::numbers::pi, 2.5) /
        (p * q * std::sqrt(p + q));
    return prefactor * sum;
}

} // namespace cafqa::chem
