#include "chem/molecule.hpp"

#include <cmath>
#include <numbers>
#include <sstream>

#include "common/error.hpp"

namespace cafqa::chem {

namespace {

const char* const symbols[] = {
    "X",  "H",  "He", "Li", "Be", "B",  "C",  "N",  "O",  "F",  "Ne",
    "Na", "Mg", "Al", "Si", "P",  "S",  "Cl", "Ar", "K",  "Ca", "Sc",
    "Ti", "V",  "Cr", "Mn", "Fe", "Co", "Ni", "Cu", "Zn", "Ga", "Ge",
    "As", "Se", "Br", "Kr",
};
constexpr int max_element = 36;

} // namespace

int
element_number(const std::string& symbol)
{
    for (int z = 1; z <= max_element; ++z) {
        if (symbol == symbols[z]) {
            return z;
        }
    }
    CAFQA_REQUIRE(false, "unsupported element symbol: " + symbol);
    return 0;
}

std::string
element_symbol(int atomic_number)
{
    CAFQA_REQUIRE(atomic_number >= 1 && atomic_number <= max_element,
                  "atomic number out of supported range");
    return symbols[atomic_number];
}

Molecule::Molecule(std::vector<Atom> atoms, int charge)
    : atoms_(std::move(atoms)), charge_(charge)
{
    CAFQA_REQUIRE(!atoms_.empty(), "molecule needs at least one atom");
}

int
Molecule::num_electrons() const
{
    int total = 0;
    for (const auto& atom : atoms_) {
        total += atom.atomic_number;
    }
    return total - charge_;
}

double
Molecule::nuclear_repulsion() const
{
    double energy = 0.0;
    for (std::size_t i = 0; i < atoms_.size(); ++i) {
        for (std::size_t j = i + 1; j < atoms_.size(); ++j) {
            const auto& a = atoms_[i].position;
            const auto& b = atoms_[j].position;
            const double dx = a[0] - b[0];
            const double dy = a[1] - b[1];
            const double dz = a[2] - b[2];
            const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
            CAFQA_REQUIRE(r > 1e-8, "coincident nuclei");
            energy += atoms_[i].atomic_number * atoms_[j].atomic_number / r;
        }
    }
    return energy;
}

std::string
Molecule::summary() const
{
    std::ostringstream out;
    for (const auto& atom : atoms_) {
        out << element_symbol(atom.atomic_number);
    }
    out << " (" << atoms_.size() << " atoms, " << num_electrons()
        << " electrons)";
    return out.str();
}

Molecule
Molecule::diatomic(const std::string& a, const std::string& b,
                   double bond_length_angstrom, int charge)
{
    const double d = bond_length_angstrom * angstrom_to_bohr;
    return Molecule({Atom{element_number(a), {0.0, 0.0, 0.0}},
                     Atom{element_number(b), {0.0, 0.0, d}}},
                    charge);
}

Molecule
Molecule::linear_chain(const std::string& symbol, int count,
                       double spacing_angstrom)
{
    CAFQA_REQUIRE(count >= 1, "chain needs at least one atom");
    const int z = element_number(symbol);
    const double d = spacing_angstrom * angstrom_to_bohr;
    std::vector<Atom> atoms;
    for (int i = 0; i < count; ++i) {
        atoms.push_back(Atom{z, {0.0, 0.0, i * d}});
    }
    return Molecule(std::move(atoms));
}

Molecule
Molecule::bent(const std::string& outer, const std::string& center,
               double bond_length_angstrom, double angle_degrees)
{
    const double d = bond_length_angstrom * angstrom_to_bohr;
    const double half = angle_degrees * std::numbers::pi / 180.0 / 2.0;
    const int zo = element_number(outer);
    const int zc = element_number(center);
    return Molecule({
        Atom{zc, {0.0, 0.0, 0.0}},
        Atom{zo, {d * std::sin(half), 0.0, d * std::cos(half)}},
        Atom{zo, {-d * std::sin(half), 0.0, d * std::cos(half)}},
    });
}

Molecule
Molecule::linear_symmetric(const std::string& outer,
                           const std::string& center,
                           double bond_length_angstrom)
{
    const double d = bond_length_angstrom * angstrom_to_bohr;
    const int zo = element_number(outer);
    const int zc = element_number(center);
    return Molecule({
        Atom{zc, {0.0, 0.0, 0.0}},
        Atom{zo, {0.0, 0.0, d}},
        Atom{zo, {0.0, 0.0, -d}},
    });
}

} // namespace cafqa::chem
