/**
 * @file
 * AO -> MO integral transformation, frozen-core folding and active-space
 * selection (paper Section 6: orbital freezing for Cr2, reduced "used"
 * orbital counts in Table 1).
 */
#ifndef CAFQA_CHEM_MO_INTEGRALS_HPP
#define CAFQA_CHEM_MO_INTEGRALS_HPP

#include <vector>

#include "chem/scf.hpp"

namespace cafqa::chem {

/** Orbital partition: indices into the MO list (ascending energy). */
struct ActiveSpace
{
    std::vector<std::size_t> frozen;
    std::vector<std::size_t> active;
};

/**
 * The standard partition: freeze the `n_frozen` lowest MOs, keep the
 * next `n_active` as the active space, drop the rest as virtuals.
 */
ActiveSpace make_active_space(std::size_t n_orbitals, std::size_t n_frozen,
                              std::size_t n_active);

/** Spatial-orbital integrals restricted to an active space. */
struct MoIntegrals
{
    std::size_t num_active = 0;
    /** Nuclear repulsion + frozen-core energy. */
    double core_energy = 0.0;
    /** Effective one-body integrals over active orbitals. */
    Matrix h;
    /** Active-space (pq|rs) in chemist notation, size num_active^4. */
    std::vector<double> eri;
    /** Electrons remaining in the active space. */
    int num_active_electrons = 0;
};

/**
 * Transform to the MO basis and fold the frozen core.
 *
 * @param integrals AO integrals.
 * @param scf       converged RHF solution supplying the MO coefficients.
 * @param space     frozen/active orbital partition.
 * @param molecule  source molecule (for electron counts and E_nuc).
 */
MoIntegrals transform_to_mo(const AoIntegrals& integrals,
                            const ScfResult& scf, const ActiveSpace& space,
                            const Molecule& molecule);

} // namespace cafqa::chem

#endif // CAFQA_CHEM_MO_INTEGRALS_HPP
