/**
 * @file
 * Second-quantized molecular Hamiltonians mapped to qubit operators.
 *
 * Takes the active-space spatial integrals, promotes them to
 * spin-orbitals in block ordering (alpha modes first), maps every
 * creation/annihilation operator through a FermionEncoding, and combines
 * like Pauli terms. Also provides the particle-number and S_z operators
 * used for the paper's electron/spin preservation penalties
 * (Section 3, item 5 and Section 7.1).
 */
#ifndef CAFQA_CHEM_FERMION_HPP
#define CAFQA_CHEM_FERMION_HPP

#include "chem/mo_integrals.hpp"
#include "mapping/encoding.hpp"
#include "pauli/pauli_sum.hpp"

namespace cafqa::chem {

/**
 * The qubit Hamiltonian (before any symmetry reduction):
 *   H = E_core
 *     + sum_{pq,sigma} h_pq  a^dag_{p sigma} a_{q sigma}
 *     + 1/2 sum_{pqrs,sigma tau} (pq|rs)
 *           a^dag_{p sigma} a^dag_{r tau} a_{s tau} a_{q sigma}.
 */
PauliSum build_qubit_hamiltonian(const MoIntegrals& integrals,
                                 const FermionEncoding& encoding);

/** Total particle-number operator N = sum_p n_p. */
PauliSum total_number_operator(const FermionEncoding& encoding);

/** S_z = (N_alpha - N_beta) / 2 with block spin-orbital ordering. */
PauliSum sz_operator(const FermionEncoding& encoding);

/**
 * Spin-orbital occupation vector of the RHF determinant in block
 * ordering: the lowest n_alpha alpha modes and n_beta beta modes.
 */
std::vector<int> hartree_fock_occupation(std::size_t num_spatial,
                                         int n_alpha, int n_beta);

} // namespace cafqa::chem

#endif // CAFQA_CHEM_FERMION_HPP
