#include "chem/fermion.hpp"

#include <cmath>

#include "common/error.hpp"

namespace cafqa::chem {

namespace {

/** Cache of mapped creation/annihilation operators per spin-orbital. */
struct MappedModes
{
    std::vector<PauliSum> create;
    std::vector<PauliSum> destroy;

    explicit MappedModes(const FermionEncoding& encoding)
    {
        const std::size_t n = encoding.num_modes();
        create.reserve(n);
        destroy.reserve(n);
        for (std::size_t p = 0; p < n; ++p) {
            create.push_back(encoding.creation(p));
            destroy.push_back(encoding.annihilation(p));
        }
    }
};

} // namespace

PauliSum
build_qubit_hamiltonian(const MoIntegrals& integrals,
                        const FermionEncoding& encoding)
{
    const std::size_t m = integrals.num_active;
    CAFQA_REQUIRE(encoding.num_modes() == 2 * m,
                  "encoding mode count must be twice the active orbitals");
    const std::size_t n_qubits = encoding.num_qubits();
    const MappedModes modes(encoding);

    PauliSum h(n_qubits);
    PauliString identity(n_qubits);
    h.add_term(integrals.core_energy, identity);

    constexpr double coeff_cutoff = 1e-12;
    // Periodic compaction bounds memory on large active spaces.
    constexpr std::size_t compact_threshold = 2'000'000;

    // One-body: h_pq (a^dag_{p sigma} a_{q sigma}).
    for (std::size_t p = 0; p < m; ++p) {
        for (std::size_t q = 0; q < m; ++q) {
            const double value = integrals.h(p, q);
            if (std::abs(value) < coeff_cutoff) {
                continue;
            }
            for (int sigma = 0; sigma < 2; ++sigma) {
                const std::size_t ps = p + sigma * m;
                const std::size_t qs = q + sigma * m;
                PauliSum term = modes.create[ps] * modes.destroy[qs];
                term *= value;
                h += term;
            }
        }
    }
    h.simplify();

    // Two-body: (pq|rs)/2 a^dag_{p s} a^dag_{r t} a_{s t} a_{q s}.
    for (std::size_t p = 0; p < m; ++p) {
        for (std::size_t q = 0; q < m; ++q) {
            for (std::size_t r = 0; r < m; ++r) {
                for (std::size_t s = 0; s < m; ++s) {
                    const double value =
                        0.5 * integrals.eri[eri_index(m, p, q, r, s)];
                    if (std::abs(value) < coeff_cutoff) {
                        continue;
                    }
                    for (int sg = 0; sg < 2; ++sg) {
                        for (int tu = 0; tu < 2; ++tu) {
                            const std::size_t ps = p + sg * m;
                            const std::size_t qs = q + sg * m;
                            const std::size_t rt = r + tu * m;
                            const std::size_t st = s + tu * m;
                            if (ps == rt || qs == st) {
                                continue; // a^dag a^dag / a a with equal
                                          // indices vanish
                            }
                            PauliSum term =
                                modes.create[ps] * modes.create[rt];
                            term = term * modes.destroy[st];
                            term = term * modes.destroy[qs];
                            term *= value;
                            h += term;
                            if (h.num_terms() > compact_threshold) {
                                h.simplify();
                            }
                        }
                    }
                }
            }
        }
    }

    h.simplify();
    h.chop_to_hermitian(1e-8);
    return h;
}

PauliSum
total_number_operator(const FermionEncoding& encoding)
{
    PauliSum n(encoding.num_qubits());
    for (std::size_t p = 0; p < encoding.num_modes(); ++p) {
        n += encoding.number_operator(p);
    }
    n.simplify();
    n.chop_to_hermitian(1e-10);
    return n;
}

PauliSum
sz_operator(const FermionEncoding& encoding)
{
    const std::size_t modes = encoding.num_modes();
    CAFQA_REQUIRE(modes % 2 == 0, "block ordering needs even mode count");
    const std::size_t m = modes / 2;
    PauliSum sz(encoding.num_qubits());
    for (std::size_t p = 0; p < m; ++p) {
        sz += 0.5 * encoding.number_operator(p);
        sz -= 0.5 * encoding.number_operator(p + m);
    }
    sz.simplify();
    sz.chop_to_hermitian(1e-10);
    return sz;
}

std::vector<int>
hartree_fock_occupation(std::size_t num_spatial, int n_alpha, int n_beta)
{
    CAFQA_REQUIRE(n_alpha >= 0 && n_beta >= 0, "negative electron count");
    CAFQA_REQUIRE(static_cast<std::size_t>(n_alpha) <= num_spatial &&
                      static_cast<std::size_t>(n_beta) <= num_spatial,
                  "electron count exceeds orbital count");
    std::vector<int> occ(2 * num_spatial, 0);
    for (int i = 0; i < n_alpha; ++i) {
        occ[static_cast<std::size_t>(i)] = 1;
    }
    for (int i = 0; i < n_beta; ++i) {
        occ[num_spatial + static_cast<std::size_t>(i)] = 1;
    }
    return occ;
}

} // namespace cafqa::chem
