#include "chem/mo_integrals.hpp"

#include <numeric>

#include "common/error.hpp"

namespace cafqa::chem {

ActiveSpace
make_active_space(std::size_t n_orbitals, std::size_t n_frozen,
                  std::size_t n_active)
{
    CAFQA_REQUIRE(n_frozen + n_active <= n_orbitals,
                  "active space exceeds orbital count");
    ActiveSpace space;
    for (std::size_t i = 0; i < n_frozen; ++i) {
        space.frozen.push_back(i);
    }
    for (std::size_t i = 0; i < n_active; ++i) {
        space.active.push_back(n_frozen + i);
    }
    return space;
}

namespace {

/** Full O(N^5) staged transform of the ERI tensor to the MO basis. */
std::vector<double>
transform_eri(const std::vector<double>& ao, const Matrix& c)
{
    const std::size_t n = c.rows();
    std::vector<double> t1(n * n * n * n, 0.0);
    std::vector<double> t2(n * n * n * n, 0.0);

    // Index 0.
    for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t j = 0; j < n; ++j) {
            for (std::size_t k = 0; k < n; ++k) {
                for (std::size_t l = 0; l < n; ++l) {
                    double sum = 0.0;
                    for (std::size_t i = 0; i < n; ++i) {
                        sum += c(i, p) * ao[eri_index(n, i, j, k, l)];
                    }
                    t1[eri_index(n, p, j, k, l)] = sum;
                }
            }
        }
    }
    // Index 1.
    for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t q = 0; q < n; ++q) {
            for (std::size_t k = 0; k < n; ++k) {
                for (std::size_t l = 0; l < n; ++l) {
                    double sum = 0.0;
                    for (std::size_t j = 0; j < n; ++j) {
                        sum += c(j, q) * t1[eri_index(n, p, j, k, l)];
                    }
                    t2[eri_index(n, p, q, k, l)] = sum;
                }
            }
        }
    }
    // Index 2.
    std::fill(t1.begin(), t1.end(), 0.0);
    for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t q = 0; q < n; ++q) {
            for (std::size_t r = 0; r < n; ++r) {
                for (std::size_t l = 0; l < n; ++l) {
                    double sum = 0.0;
                    for (std::size_t k = 0; k < n; ++k) {
                        sum += c(k, r) * t2[eri_index(n, p, q, k, l)];
                    }
                    t1[eri_index(n, p, q, r, l)] = sum;
                }
            }
        }
    }
    // Index 3.
    std::fill(t2.begin(), t2.end(), 0.0);
    for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t q = 0; q < n; ++q) {
            for (std::size_t r = 0; r < n; ++r) {
                for (std::size_t s = 0; s < n; ++s) {
                    double sum = 0.0;
                    for (std::size_t l = 0; l < n; ++l) {
                        sum += c(l, s) * t1[eri_index(n, p, q, r, l)];
                    }
                    t2[eri_index(n, p, q, r, s)] = sum;
                }
            }
        }
    }
    return t2;
}

} // namespace

MoIntegrals
transform_to_mo(const AoIntegrals& integrals, const ScfResult& scf,
                const ActiveSpace& space, const Molecule& molecule)
{
    const std::size_t n = integrals.n;
    const Matrix& c = scf.mo_coefficients;
    CAFQA_REQUIRE(c.rows() == n && c.cols() == n,
                  "MO coefficient shape mismatch");

    // One-body MO transform.
    const Matrix h_mo = c.transpose() * integrals.h_core * c;
    const std::vector<double> eri_mo = transform_eri(integrals.eri, c);

    const std::size_t n_active = space.active.size();
    const std::size_t n_frozen = space.frozen.size();

    MoIntegrals out;
    out.num_active = n_active;
    const int total_electrons = molecule.num_electrons();
    out.num_active_electrons =
        total_electrons - 2 * static_cast<int>(n_frozen);
    CAFQA_REQUIRE(out.num_active_electrons >= 0,
                  "frozen orbitals hold more electrons than available");
    CAFQA_REQUIRE(
        out.num_active_electrons <= 2 * static_cast<int>(n_active),
        "active space too small for the electron count");

    // Frozen-core energy: sum_i 2 h_ii + sum_ij [2 (ii|jj) - (ij|ji)].
    double core = molecule.nuclear_repulsion();
    for (const std::size_t i : space.frozen) {
        core += 2.0 * h_mo(i, i);
        for (const std::size_t j : space.frozen) {
            core += 2.0 * eri_mo[eri_index(n, i, i, j, j)] -
                    eri_mo[eri_index(n, i, j, j, i)];
        }
    }
    out.core_energy = core;

    // Effective one-body over active orbitals:
    // h_pq + sum_i [2 (pq|ii) - (pi|iq)].
    out.h = Matrix(n_active, n_active);
    for (std::size_t a = 0; a < n_active; ++a) {
        for (std::size_t b = 0; b < n_active; ++b) {
            const std::size_t p = space.active[a];
            const std::size_t q = space.active[b];
            double value = h_mo(p, q);
            for (const std::size_t i : space.frozen) {
                value += 2.0 * eri_mo[eri_index(n, p, q, i, i)] -
                         eri_mo[eri_index(n, p, i, i, q)];
            }
            out.h(a, b) = value;
        }
    }

    // Active-space two-body tensor.
    out.eri.assign(n_active * n_active * n_active * n_active, 0.0);
    for (std::size_t a = 0; a < n_active; ++a) {
        for (std::size_t b = 0; b < n_active; ++b) {
            for (std::size_t cc = 0; cc < n_active; ++cc) {
                for (std::size_t d = 0; d < n_active; ++d) {
                    out.eri[eri_index(n_active, a, b, cc, d)] =
                        eri_mo[eri_index(n, space.active[a],
                                         space.active[b], space.active[cc],
                                         space.active[d])];
                }
            }
        }
    }
    return out;
}

} // namespace cafqa::chem
