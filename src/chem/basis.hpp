/**
 * @file
 * Molecular basis sets: contracted atomic orbitals expanded over
 * primitive Cartesian Gaussians (with real solid-harmonic combinations
 * for d shells, giving 5 spherical d functions), and the AO integral
 * matrices (S, T, V) and two-electron tensor that feed Hartree-Fock.
 */
#ifndef CAFQA_CHEM_BASIS_HPP
#define CAFQA_CHEM_BASIS_HPP

#include <string>
#include <vector>

#include "chem/gaussian.hpp"
#include "chem/molecule.hpp"
#include "common/linalg.hpp"

namespace cafqa::chem {

/** One atomic orbital: a linear combination of primitives. */
struct ContractedGaussian
{
    struct Term
    {
        double coeff;
        PrimitiveGaussian primitive;
    };
    std::vector<Term> terms;
    /** Human-readable label, e.g. "Cr0 3dz2". */
    std::string label;
};

/** The full AO basis of a molecule. */
class BasisSet
{
  public:
    /** Build the STO-3G basis for a molecule (spherical d functions). */
    static BasisSet sto3g(const Molecule& molecule);

    std::size_t size() const { return aos_.size(); }
    const ContractedGaussian& ao(std::size_t i) const { return aos_[i]; }
    const std::vector<ContractedGaussian>& aos() const { return aos_; }

  private:
    /** Scale each AO so that its self-overlap is exactly 1. */
    void normalize();

    std::vector<ContractedGaussian> aos_;
};

/** AO overlap matrix S. */
Matrix overlap_matrix(const BasisSet& basis);
/** AO kinetic-energy matrix T. */
Matrix kinetic_matrix(const BasisSet& basis);
/** AO nuclear-attraction matrix V (includes the -Z factors). */
Matrix nuclear_matrix(const BasisSet& basis, const Molecule& molecule);

/** Flat index into the full N^4 ERI tensor, chemist notation (ij|kl). */
inline std::size_t
eri_index(std::size_t n, std::size_t i, std::size_t j, std::size_t k,
          std::size_t l)
{
    return ((i * n + j) * n + k) * n + l;
}

/**
 * Full two-electron integral tensor (ij|kl) with 8-fold permutational
 * symmetry exploited during construction and Schwarz screening of
 * negligible quartets.
 */
std::vector<double> eri_tensor(const BasisSet& basis);

} // namespace cafqa::chem

#endif // CAFQA_CHEM_BASIS_HPP
