/**
 * @file
 * STO-3G shell definitions per element.
 *
 * Elements with well-established tabulated exponents/coefficients
 * (H, He, Li-F, Na) use the official STO-3G values. Other elements are
 * generated on the fly by the STO-nG least-squares fitter with
 * Slater-rule effective zetas — the same construction procedure as the
 * original basis (see DESIGN.md, "Substitutions"). Fitted shells are
 * cached per element.
 */
#ifndef CAFQA_CHEM_STO_DATA_HPP
#define CAFQA_CHEM_STO_DATA_HPP

#include <vector>

namespace cafqa::chem {

/** One contracted shell of an atomic basis. */
struct ShellData
{
    /** Principal quantum number of the parent Slater orbital. */
    int n = 1;
    /** Angular momentum (0 = s, 1 = p, 2 = d). */
    int l = 0;
    std::vector<double> exponents;
    std::vector<double> coefficients;
};

/** All shells of one atom's minimal basis. */
struct AtomBasis
{
    std::vector<ShellData> shells;
};

/** The STO-3G (or STO-3G-like, for fitted elements) basis of element Z. */
const AtomBasis& sto3g_atom_basis(int atomic_number);

/**
 * Effective Slater zeta for shell (n, l) of element Z: tabulated
 * molecular values where standard, otherwise Slater's screening rules.
 */
double slater_zeta(int atomic_number, int n, int l);

/** Ground-state electron count in shell (n, l) of element Z (Aufbau with
 *  the Cr/Cu exceptions). */
int shell_occupation(int atomic_number, int n, int l);

} // namespace cafqa::chem

#endif // CAFQA_CHEM_STO_DATA_HPP
