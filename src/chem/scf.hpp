/**
 * @file
 * Restricted Hartree-Fock with DIIS convergence acceleration — the
 * classical mean-field reference the paper initializes against (and the
 * source of the molecular orbitals every qubit Hamiltonian is expressed
 * in). Replaces the paper's Psi4/PySCF HF step.
 */
#ifndef CAFQA_CHEM_SCF_HPP
#define CAFQA_CHEM_SCF_HPP

#include <vector>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "common/linalg.hpp"

namespace cafqa::chem {

/** SCF convergence controls. */
struct ScfOptions
{
    std::size_t max_iterations = 200;
    double energy_tolerance = 1e-10;
    double density_tolerance = 1e-8;
    /** Number of Fock/error pairs kept for DIIS. */
    std::size_t diis_size = 8;
    /** Fraction of the previous density mixed in before DIIS kicks in. */
    double damping = 0.3;
    /** Iterations with plain damping before DIIS starts. */
    std::size_t damping_iterations = 2;
    /** Virtual-orbital level shift (helps difficult cases like Cr2). */
    double level_shift = 0.0;
};

/** Converged (or best-effort) RHF solution. */
struct ScfResult
{
    bool converged = false;
    std::size_t iterations = 0;
    /** Total energy including nuclear repulsion (Hartree). */
    double energy = 0.0;
    double electronic_energy = 0.0;
    double nuclear_repulsion = 0.0;
    /** Column i is MO i (ascending orbital energy). */
    Matrix mo_coefficients;
    std::vector<double> orbital_energies;
    /** Final AO density matrix (closed shell, trace = electrons). */
    Matrix density;
};

/** One-shot AO integral bundle (shared with the MO transform). */
struct AoIntegrals
{
    Matrix overlap;
    Matrix h_core; // kinetic + nuclear attraction
    std::vector<double> eri;
    std::size_t n = 0;
};

/** Compute S, Hcore and the ERI tensor for a molecule/basis pair. */
AoIntegrals compute_ao_integrals(const Molecule& molecule,
                                 const BasisSet& basis);

/**
 * Solve closed-shell RHF. The electron count must be even (the paper's
 * Hamiltonians are built for singlet states; open-shell sectors are
 * handled downstream via constraint penalties, Section 7.1).
 */
ScfResult rhf(const Molecule& molecule, const AoIntegrals& integrals,
              const ScfOptions& options = {});

} // namespace cafqa::chem

#endif // CAFQA_CHEM_SCF_HPP
