/**
 * @file
 * Error handling primitives shared across the CAFQA library.
 *
 * Follows the gem5 fatal/panic distinction: `CAFQA_REQUIRE` guards
 * user-visible preconditions (bad arguments, unsupported inputs) and throws
 * `std::invalid_argument`; `CAFQA_ASSERT` guards internal invariants that
 * indicate a library bug and throws `std::logic_error`.
 */
#ifndef CAFQA_COMMON_ERROR_HPP
#define CAFQA_COMMON_ERROR_HPP

#include <stdexcept>
#include <string>

namespace cafqa {

/** Throw std::invalid_argument with file/line context. */
[[noreturn]] void throw_require_failure(const char* cond, const char* file,
                                        int line, const std::string& msg);

/** Throw std::logic_error with file/line context. */
[[noreturn]] void throw_assert_failure(const char* cond, const char* file,
                                       int line, const std::string& msg);

} // namespace cafqa

/** Precondition check for user-facing API misuse. */
#define CAFQA_REQUIRE(cond, msg)                                              \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::cafqa::throw_require_failure(#cond, __FILE__, __LINE__, (msg)); \
        }                                                                     \
    } while (0)

/** Internal invariant check; failure indicates a library bug. */
#define CAFQA_ASSERT(cond, msg)                                               \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::cafqa::throw_assert_failure(#cond, __FILE__, __LINE__, (msg));  \
        }                                                                     \
    } while (0)

#endif // CAFQA_COMMON_ERROR_HPP
