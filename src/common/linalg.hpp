/**
 * @file
 * Minimal dense real linear algebra used by the SCF solver, the DIIS
 * extrapolation, the Lanczos eigensolver and the STO-nG fitter.
 *
 * Matrices are small (basis-set sized, at most a few hundred rows), so the
 * implementations favor robustness and clarity: Jacobi rotations for
 * symmetric eigenproblems and partial-pivot Gaussian elimination for linear
 * systems.
 */
#ifndef CAFQA_COMMON_LINALG_HPP
#define CAFQA_COMMON_LINALG_HPP

#include <cstddef>
#include <vector>

namespace cafqa {

/** Dense row-major real matrix. */
class Matrix
{
  public:
    Matrix() = default;

    /** Zero-initialized rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
    {}

    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double& operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    const std::vector<double>& data() const { return data_; }
    std::vector<double>& data() { return data_; }

    Matrix transpose() const;

    /** Frobenius norm. */
    double norm() const;

    /** Max |a_ij - b_ij|. */
    double max_abs_diff(const Matrix& other) const;

    Matrix& operator+=(const Matrix& other);
    Matrix& operator-=(const Matrix& other);
    Matrix& operator*=(double scale);

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

Matrix operator*(const Matrix& a, const Matrix& b);
Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(double scale, Matrix a);

/** Result of a symmetric eigendecomposition A = V diag(w) V^T. */
struct SymmetricEigen
{
    /** Eigenvalues in ascending order. */
    std::vector<double> values;
    /** Column i of `vectors` is the eigenvector for values[i]. */
    Matrix vectors;
};

/**
 * Eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
 *
 * @param a symmetric input matrix (only assumed symmetric, not checked
 *          beyond a loose tolerance).
 * @return eigenvalues ascending with matching eigenvector columns.
 */
SymmetricEigen symmetric_eigen(const Matrix& a);

/**
 * Solve A x = b with partial-pivot Gaussian elimination.
 *
 * @throws std::invalid_argument if the system is singular to working
 *         precision.
 */
std::vector<double> solve_linear(Matrix a, std::vector<double> b);

/**
 * Symmetric inverse square root A^{-1/2}, used for Loewdin orthogonalization
 * of the AO overlap matrix. Eigenvalues below `threshold` are treated as
 * linear dependence and dropped (their directions are projected out).
 */
Matrix inverse_sqrt(const Matrix& a, double threshold = 1e-10);

/**
 * Eigenvalues of a symmetric tridiagonal matrix (diagonal `alpha`,
 * off-diagonal `beta`, beta.size() == alpha.size() - 1), ascending.
 * Used to extract Ritz values from the Lanczos recurrence.
 */
std::vector<double> tridiagonal_eigenvalues(const std::vector<double>& alpha,
                                            const std::vector<double>& beta);

} // namespace cafqa

#endif // CAFQA_COMMON_LINALG_HPP
