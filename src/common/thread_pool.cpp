#include "common/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "telemetry/metrics.hpp"

namespace cafqa {

namespace {

/** Registry references, fetched lazily on the first `parallel_for` —
 *  before any pool lock is taken in that call, per the telemetry
 *  registration rule. */
struct PoolTelemetry
{
    telemetry::Counter& tasks;
    telemetry::Histogram& dispatch_wait_ms;

    static PoolTelemetry&
    get()
    {
        static PoolTelemetry instance{
            telemetry::MetricsRegistry::instance().counter(
                "cafqa_pool_tasks_total", {},
                "Tasks executed by parallel_for (inline or pooled)"),
            telemetry::MetricsRegistry::instance().histogram(
                "cafqa_pool_dispatch_wait_ms", {},
                "Milliseconds a parallel_for call waited to own the "
                "pool (contention with concurrent callers)"),
        };
        return instance;
    }
};

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) {
        workers_.emplace_back([this, w] { worker_loop(w); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(pool_mutex_);
        // Shutdown audit: a pool may only be destroyed between jobs.
        // `parallel_for` is synchronous, so in correct usage `job_` is
        // always null here; if a caller races destruction against a
        // running job, abort loudly instead of silently dropping the
        // indices in [next_index_, job_count_).
        CAFQA_ASSERT(job_ == nullptr,
                     "ThreadPool destroyed while a parallel_for is in "
                     "flight (tasks would be dropped)");
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void
ThreadPool::worker_loop(std::size_t worker)
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        MutexLock lock(pool_mutex_);
        while (!stopping_ &&
               (job_ == nullptr || generation_ == seen_generation)) {
            work_ready_.wait(lock);
        }
        if (stopping_) {
            // Shutdown audit, worker side: the stop flag is only set
            // with no job posted (see the destructor), so a worker can
            // never exit while unclaimed indices remain.
            CAFQA_ASSERT(job_ == nullptr || next_index_ >= job_count_,
                         "ThreadPool worker stopping with tasks pending");
            return;
        }
        seen_generation = generation_;
        // Per-generation copy taken under the lock: the pointee is
        // `CAFQA_PT_GUARDED_BY(pool_mutex_)`, so invocations run on the
        // copy instead of dereferencing `job_` while unlocked.
        const std::function<void(std::size_t, std::size_t)> job = *job_;
        ++active_workers_;
        while (next_index_ < job_count_ && !first_error_) {
            const std::size_t index = next_index_++;
            lock.unlock();
            try {
                job(worker, index);
            } catch (...) {
                lock.lock();
                if (!first_error_) {
                    first_error_ = std::current_exception();
                }
                break;
            }
            lock.lock();
        }
        --active_workers_;
        if (active_workers_ == 0) {
            work_done_.notify_all();
        }
    }
}

void
ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t worker, std::size_t index)>& fn)
{
    if (count == 0) {
        return;
    }
    PoolTelemetry& pool_metrics = PoolTelemetry::get();
    // Single worker or single item: run inline, no synchronization.
    if (workers_.size() == 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i) {
            fn(0, i);
        }
        pool_metrics.tasks.add(count);
        return;
    }
    const auto enter = std::chrono::steady_clock::now();
    MutexLock caller_lock(caller_mutex_);
    MutexLock lock(pool_mutex_);
    pool_metrics.dispatch_wait_ms.observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - enter)
            .count());
    pool_metrics.tasks.add(count);
    CAFQA_ASSERT(job_ == nullptr, "parallel_for re-entered from a job");
    job_ = &fn;
    job_count_ = count;
    next_index_ = 0;
    first_error_ = nullptr;
    ++generation_;
    work_ready_.notify_all();
    while (!(active_workers_ == 0 &&
             (next_index_ >= job_count_ || first_error_))) {
        // lint:allow(blocking-under-lock) caller_mutex_ exists to park
        // concurrent parallel_for callers across exactly this wait;
        // workers only ever take pool_mutex_, so holding caller_mutex_
        // here cannot stall them.
        work_done_.wait(lock);
    }
    job_ = nullptr;
    if (first_error_) {
        std::exception_ptr error = first_error_;
        first_error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

ThreadPool&
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

} // namespace cafqa
