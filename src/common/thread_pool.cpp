#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cafqa {

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) {
        workers_.emplace_back([this, w] { worker_loop(w); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void
ThreadPool::worker_loop(std::size_t worker)
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        std::unique_lock lock(mutex_);
        work_ready_.wait(lock, [&] {
            return stopping_ || (job_ != nullptr &&
                                 generation_ != seen_generation);
        });
        if (stopping_) {
            return;
        }
        seen_generation = generation_;
        const auto* job = job_;
        ++active_workers_;
        while (next_index_ < job_count_ && !first_error_) {
            const std::size_t index = next_index_++;
            lock.unlock();
            try {
                (*job)(worker, index);
            } catch (...) {
                lock.lock();
                if (!first_error_) {
                    first_error_ = std::current_exception();
                }
                break;
            }
            lock.lock();
        }
        --active_workers_;
        if (active_workers_ == 0) {
            work_done_.notify_all();
        }
    }
}

void
ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t worker, std::size_t index)>& fn)
{
    if (count == 0) {
        return;
    }
    // Single worker or single item: run inline, no synchronization.
    if (workers_.size() == 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i) {
            fn(0, i);
        }
        return;
    }
    std::lock_guard caller_lock(caller_mutex_);
    std::unique_lock lock(mutex_);
    CAFQA_ASSERT(job_ == nullptr, "parallel_for re-entered from a job");
    job_ = &fn;
    job_count_ = count;
    next_index_ = 0;
    first_error_ = nullptr;
    ++generation_;
    work_ready_.notify_all();
    work_done_.wait(lock, [&] {
        return active_workers_ == 0 &&
               (next_index_ >= job_count_ || first_error_);
    });
    job_ = nullptr;
    if (first_error_) {
        std::exception_ptr error = first_error_;
        first_error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

ThreadPool&
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

} // namespace cafqa
