#include "common/rng.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace cafqa {

std::int64_t
Rng::uniform_int(std::int64_t lo, std::int64_t hi)
{
    CAFQA_REQUIRE(lo <= hi, "empty integer range");
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
}

double
Rng::uniform_real(double lo, double hi)
{
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

double
Rng::normal(double mean, double stddev)
{
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
}

bool
Rng::bernoulli(double p)
{
    std::bernoulli_distribution dist(p);
    return dist(engine_);
}

int
Rng::rademacher()
{
    return bernoulli(0.5) ? 1 : -1;
}

std::vector<std::size_t>
Rng::sample_without_replacement(std::size_t n, std::size_t k)
{
    CAFQA_REQUIRE(k <= n, "cannot sample more elements than population");
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    // Partial Fisher-Yates: only the first k positions need shuffling.
    for (std::size_t i = 0; i < k; ++i) {
        const auto j = static_cast<std::size_t>(
            uniform_int(static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(n - 1)));
        std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
}

std::vector<std::size_t>
Rng::permutation(std::size_t n)
{
    return sample_without_replacement(n, n);
}

} // namespace cafqa
