#include "common/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace cafqa {

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        m(i, i) = 1.0;
    }
    return m;
}

Matrix
Matrix::transpose() const
{
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            t(c, r) = (*this)(r, c);
        }
    }
    return t;
}

double
Matrix::norm() const
{
    double sum = 0.0;
    for (double v : data_) {
        sum += v * v;
    }
    return std::sqrt(sum);
}

double
Matrix::max_abs_diff(const Matrix& other) const
{
    CAFQA_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                  "shape mismatch");
    double best = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        best = std::max(best, std::abs(data_[i] - other.data_[i]));
    }
    return best;
}

Matrix&
Matrix::operator+=(const Matrix& other)
{
    CAFQA_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                  "shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] += other.data_[i];
    }
    return *this;
}

Matrix&
Matrix::operator-=(const Matrix& other)
{
    CAFQA_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                  "shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] -= other.data_[i];
    }
    return *this;
}

Matrix&
Matrix::operator*=(double scale)
{
    for (double& v : data_) {
        v *= scale;
    }
    return *this;
}

Matrix
operator*(const Matrix& a, const Matrix& b)
{
    CAFQA_REQUIRE(a.cols() == b.rows(), "inner dimension mismatch");
    Matrix c(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const double aik = a(i, k);
            if (aik == 0.0) {
                continue;
            }
            for (std::size_t j = 0; j < b.cols(); ++j) {
                c(i, j) += aik * b(k, j);
            }
        }
    }
    return c;
}

Matrix
operator+(Matrix a, const Matrix& b)
{
    a += b;
    return a;
}

Matrix
operator-(Matrix a, const Matrix& b)
{
    a -= b;
    return a;
}

Matrix
operator*(double scale, Matrix a)
{
    a *= scale;
    return a;
}

SymmetricEigen
symmetric_eigen(const Matrix& input)
{
    CAFQA_REQUIRE(input.rows() == input.cols(), "matrix must be square");
    const std::size_t n = input.rows();
    Matrix a = input;
    Matrix v = Matrix::identity(n);

    auto off_diagonal_norm = [&]() {
        double sum = 0.0;
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                sum += a(p, q) * a(p, q);
            }
        }
        return std::sqrt(sum);
    };

    const int max_sweeps = 128;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        if (off_diagonal_norm() < 1e-13 * (1.0 + a.norm())) {
            break;
        }
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = a(p, q);
                if (std::abs(apq) < 1e-300) {
                    continue;
                }
                const double app = a(p, p);
                const double aqq = a(q, q);
                const double tau = (aqq - app) / (2.0 * apq);
                // Smaller-magnitude root keeps the rotation stable.
                const double t = (tau >= 0.0)
                    ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                    : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
                const double c = 1.0 / std::sqrt(1.0 + t * t);
                const double s = t * c;

                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = a(k, p);
                    const double akq = a(k, q);
                    a(k, p) = c * akp - s * akq;
                    a(k, q) = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = a(p, k);
                    const double aqk = a(q, k);
                    a(p, k) = c * apk - s * aqk;
                    a(q, k) = s * apk + c * aqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v(k, p);
                    const double vkq = v(k, q);
                    v(k, p) = c * vkp - s * vkq;
                    v(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
        return a(i, i) < a(j, j);
    });

    SymmetricEigen result;
    result.values.resize(n);
    result.vectors = Matrix(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        result.values[j] = a(order[j], order[j]);
        for (std::size_t i = 0; i < n; ++i) {
            result.vectors(i, j) = v(i, order[j]);
        }
    }
    return result;
}

std::vector<double>
solve_linear(Matrix a, std::vector<double> b)
{
    CAFQA_REQUIRE(a.rows() == a.cols(), "matrix must be square");
    CAFQA_REQUIRE(a.rows() == b.size(), "rhs size mismatch");
    const std::size_t n = a.rows();

    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(a(r, col)) > std::abs(a(pivot, col))) {
                pivot = r;
            }
        }
        CAFQA_REQUIRE(std::abs(a(pivot, col)) > 1e-14,
                      "singular linear system");
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c) {
                std::swap(a(col, c), a(pivot, c));
            }
            std::swap(b[col], b[pivot]);
        }
        for (std::size_t r = col + 1; r < n; ++r) {
            const double f = a(r, col) / a(col, col);
            if (f == 0.0) {
                continue;
            }
            for (std::size_t c = col; c < n; ++c) {
                a(r, c) -= f * a(col, c);
            }
            b[r] -= f * b[col];
        }
    }

    std::vector<double> x(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double acc = b[i];
        for (std::size_t j = i + 1; j < n; ++j) {
            acc -= a(i, j) * x[j];
        }
        x[i] = acc / a(i, i);
    }
    return x;
}

Matrix
inverse_sqrt(const Matrix& a, double threshold)
{
    const SymmetricEigen eig = symmetric_eigen(a);
    const std::size_t n = a.rows();
    Matrix result(n, n);
    for (std::size_t k = 0; k < n; ++k) {
        if (eig.values[k] < threshold) {
            continue; // project out linearly dependent directions
        }
        const double w = 1.0 / std::sqrt(eig.values[k]);
        for (std::size_t i = 0; i < n; ++i) {
            const double vik = eig.vectors(i, k);
            if (vik == 0.0) {
                continue;
            }
            for (std::size_t j = 0; j < n; ++j) {
                result(i, j) += vik * w * eig.vectors(j, k);
            }
        }
    }
    return result;
}

std::vector<double>
tridiagonal_eigenvalues(const std::vector<double>& alpha,
                        const std::vector<double>& beta)
{
    const std::size_t n = alpha.size();
    CAFQA_REQUIRE(n > 0, "empty tridiagonal matrix");
    CAFQA_REQUIRE(beta.size() + 1 == n, "off-diagonal size mismatch");
    Matrix t(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        t(i, i) = alpha[i];
        if (i + 1 < n) {
            t(i, i + 1) = beta[i];
            t(i + 1, i) = beta[i];
        }
    }
    return symmetric_eigen(t).values;
}

} // namespace cafqa
