#include "common/error.hpp"

#include <sstream>

namespace cafqa {

namespace {

std::string
format_failure(const char* kind, const char* cond, const char* file, int line,
               const std::string& msg)
{
    std::ostringstream out;
    out << kind << " failed: (" << cond << ") at " << file << ":" << line;
    if (!msg.empty()) {
        out << " — " << msg;
    }
    return out.str();
}

} // namespace

void
throw_require_failure(const char* cond, const char* file, int line,
                      const std::string& msg)
{
    throw std::invalid_argument(
        format_failure("precondition", cond, file, line, msg));
}

void
throw_assert_failure(const char* cond, const char* file, int line,
                     const std::string& msg)
{
    throw std::logic_error(
        format_failure("invariant", cond, file, line, msg));
}

} // namespace cafqa
