/**
 * @file
 * The one hash combiner shared by every hashing site in the repository
 * — sample deduplication (`config_hash`), evaluation-cache keys, and
 * the unique-evaluation budget accounting. The caching layer's
 * correctness argument ("the cache dedupes on the same identity the
 * samplers do") depends on all of them mixing identically, so the
 * combiner lives here rather than being re-derived per module.
 */
#ifndef CAFQA_COMMON_HASH_HPP
#define CAFQA_COMMON_HASH_HPP

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace cafqa {

/** Conventional starting value for hash_mix chains. */
inline constexpr std::size_t kHashSeed = 0x9e3779b97f4a7c15ull;

/** Fold one word into a running hash (splitmix/boost-combine style). */
inline std::size_t
hash_mix(std::size_t h, std::uint64_t word)
{
    h ^= static_cast<std::size_t>(word) + 0x9e3779b97f4a7c15ull +
         (h << 6) + (h >> 2);
    return h;
}

/**
 * One quantized point coordinate — the shared identity of the
 * evaluation cache's continuous keys and the unique-evaluation budget
 * accounting (the two must agree on when two points are "the same").
 * Saturates at the int64 range so a huge value or ultra-fine
 * resolution cannot overflow llround into unspecified results.
 */
inline std::int64_t
quantize_coordinate(double value, double resolution)
{
    const double scaled = value / resolution;
    constexpr double kMax = 9.2e18; // just inside int64 range
    if (scaled >= kMax) {
        return std::numeric_limits<std::int64_t>::max();
    }
    if (scaled <= -kMax) {
        return std::numeric_limits<std::int64_t>::min();
    }
    return static_cast<std::int64_t>(std::llround(scaled));
}

} // namespace cafqa

#endif // CAFQA_COMMON_HASH_HPP
