#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace cafqa {

void
Table::set_header(std::vector<std::string> header)
{
    CAFQA_REQUIRE(rows_.empty(), "header must be set before rows are added");
    header_ = std::move(header);
}

void
Table::add_row(std::vector<std::string> row)
{
    CAFQA_REQUIRE(row.size() == header_.size(),
                  "row width does not match header");
    rows_.push_back(std::move(row));
}

std::string
Table::num(double value, int precision)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return out.str();
}

std::string
Table::sci(double value, int precision)
{
    std::ostringstream out;
    out << std::scientific << std::setprecision(precision) << value;
    return out.str();
}

void
Table::print(std::ostream& out) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) {
        widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    out << "== " << title_ << " ==\n";
    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << std::left << std::setw(static_cast<int>(widths[c]) + 2)
                << row[c];
        }
        out << '\n';
    };
    print_row(header_);
    std::string rule;
    for (std::size_t c = 0; c < header_.size(); ++c) {
        rule += std::string(widths[c], '-') + "  ";
    }
    out << rule << '\n';
    for (const auto& row : rows_) {
        print_row(row);
    }
    out << std::flush;
}

} // namespace cafqa
