/**
 * @file
 * Seedable random number generator used by every stochastic component
 * (Bayesian optimization, SPSA, noise sampling, property tests).
 *
 * All CAFQA components take a `Rng&` or an explicit seed instead of using
 * global random state, so every experiment in the bench suite is
 * reproducible bit-for-bit.
 */
#ifndef CAFQA_COMMON_RNG_HPP
#define CAFQA_COMMON_RNG_HPP

#include <cstdint>
#include <random>
#include <vector>

namespace cafqa {

/** Thin wrapper over std::mt19937_64 with convenience draws. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed) : engine_(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /** Uniform real in [lo, hi). */
    double uniform_real(double lo = 0.0, double hi = 1.0);

    /** Standard normal draw. */
    double normal(double mean = 0.0, double stddev = 1.0);

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p);

    /** Random +1/-1 with equal probability. */
    int rademacher();

    /** Sample k distinct indices from [0, n). */
    std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                        std::size_t k);

    /** Fisher-Yates shuffle of an index vector [0, n). */
    std::vector<std::size_t> permutation(std::size_t n);

    /** Underlying engine, for std distributions. */
    std::mt19937_64& engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace cafqa

#endif // CAFQA_COMMON_RNG_HPP
