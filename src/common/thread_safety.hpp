/**
 * @file
 * Clang Thread Safety Analysis support: portable annotation macros and
 * an annotated mutex wrapper, so every mutex-guarded invariant in the
 * concurrent subsystems (thread pool, evaluation cache, batch runner,
 * job server, portfolio search) is machine-checked at compile time.
 *
 * Under clang the macros expand to the `capability` attribute family
 * and `-Wthread-safety` proves that every access to a
 * `CAFQA_GUARDED_BY(m)` field happens with `m` held and that every
 * `CAFQA_REQUIRES(m)` helper is only called under the lock; everywhere
 * else they expand to nothing. The CI clang build compiles `src/` with
 * `-Wthread-safety -Werror`, so a missing lock is a build failure, not
 * a TSan lottery ticket.
 *
 * Conventions (enforced by `tools/lint_invariants`):
 *  - Shared state uses `cafqa::Mutex`, never a naked `std::mutex`
 *    member — the wrapper carries the `capability` attribute the
 *    analysis needs.
 *  - Lock with `MutexLock` (scoped; supports the unlock/relock dance
 *    worker loops need) and block with `CondVar`, which pairs with
 *    `MutexLock` the way `std::condition_variable` pairs with
 *    `std::unique_lock`.
 *  - A method that needs the lock already held takes the
 *    `Locked()`-suffix name and a `CAFQA_REQUIRES(mutex_)` annotation;
 *    the locking wrapper keeps the public name.
 *  - Condition-variable predicates are open-coded in the waiting
 *    function (a `while (!pred) cv.wait(lock)` loop) instead of being
 *    passed as lambdas: the analysis is intraprocedural, so guarded
 *    reads inside a predicate lambda could not be proven.
 *  - Every long-lived mutex carries a REGISTERED NAME (the string
 *    passed to the constructor, equal to the declared identifier minus
 *    any trailing underscore). The name feeds two layers of lock-order
 *    enforcement: the static analyzer in `tools/lint` extracts the
 *    acquisition graph per name and diffs it against the committed
 *    manifest `tools/lint/lock_order.manifest`, and under the
 *    `CAFQA_LOCK_ORDER_CHECK` CMake option every acquisition is
 *    validated at runtime against the same manifest (compiled to a
 *    static table) using a thread-local held-stack — an acquisition
 *    whose (held, next) name pair has no manifest edge aborts with
 *    both endpoints named. Unnamed mutexes (tests, benches) are
 *    exempt from the runtime check.
 */
#ifndef CAFQA_COMMON_THREAD_SAFETY_HPP
#define CAFQA_COMMON_THREAD_SAFETY_HPP

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define CAFQA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CAFQA_THREAD_ANNOTATION(x) // no-op outside clang
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define CAFQA_CAPABILITY(x) CAFQA_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its constructor and releases in
 *  its destructor. */
#define CAFQA_SCOPED_CAPABILITY CAFQA_THREAD_ANNOTATION(scoped_lockable)

/** Field may only be read or written with `x` held. */
#define CAFQA_GUARDED_BY(x) CAFQA_THREAD_ANNOTATION(guarded_by(x))

/** Pointer field whose *pointee* is guarded by `x`. */
#define CAFQA_PT_GUARDED_BY(x) CAFQA_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function requires the listed capabilities held on entry (the
 *  `Locked()`-suffix helper contract). */
#define CAFQA_REQUIRES(...) \
    CAFQA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the listed capabilities and holds them on exit. */
#define CAFQA_ACQUIRE(...) \
    CAFQA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities. */
#define CAFQA_RELEASE(...) \
    CAFQA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function attempts the acquisition; holds it iff it returned `r`. */
#define CAFQA_TRY_ACQUIRE(r, ...) \
    CAFQA_THREAD_ANNOTATION(try_acquire_capability(r, __VA_ARGS__))

/** Function must be called with the listed capabilities NOT held
 *  (deadlock prevention on self-locking public entry points). */
#define CAFQA_EXCLUDES(...) \
    CAFQA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Declares the capability returned by a getter. */
#define CAFQA_RETURN_CAPABILITY(x) \
    CAFQA_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch; every use needs a comment saying why the analysis
 *  cannot see the synchronization (e.g. happens-before via join()). */
#define CAFQA_NO_THREAD_SAFETY_ANALYSIS \
    CAFQA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cafqa {

class Mutex;

namespace detail {

#if defined(CAFQA_LOCK_ORDER_CHECK)
/** Aborts unless every currently-held registered name has a manifest
 *  edge to `mutex`'s name. Called BEFORE blocking on the underlying
 *  `std::mutex`, so a bad ordering aborts deterministically instead of
 *  deadlocking when the schedule cooperates. */
void lock_order_check(const Mutex& mutex) noexcept;
/** Pushes `mutex` onto the calling thread's held-stack. */
void lock_order_push(const Mutex& mutex) noexcept;
/** Removes `mutex` from the calling thread's held-stack. */
void lock_order_pop(const Mutex& mutex) noexcept;
#else
inline void lock_order_check(const Mutex&) noexcept {}
inline void lock_order_push(const Mutex&) noexcept {}
inline void lock_order_pop(const Mutex&) noexcept {}
#endif

} // namespace detail

/**
 * `std::mutex` with the `capability` attribute. Satisfies Lockable, so
 * `std::lock_guard<Mutex>` and `std::unique_lock<Mutex>` still compile
 * — but prefer `MutexLock`, which the analysis understands.
 *
 * The optional constructor argument registers a lock-order name (see
 * the file comment); pass the declared identifier minus any trailing
 * underscore, as a string literal (the pointer is stored, not copied).
 */
class CAFQA_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    explicit Mutex(const char* name) : name_(name) {}
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() CAFQA_ACQUIRE()
    {
        detail::lock_order_check(*this);
        mutex_.lock();
        detail::lock_order_push(*this);
    }
    void unlock() CAFQA_RELEASE()
    {
        detail::lock_order_pop(*this);
        mutex_.unlock();
    }
    bool try_lock() CAFQA_TRY_ACQUIRE(true)
    {
        detail::lock_order_check(*this);
        const bool acquired = mutex_.try_lock();
        if (acquired) { detail::lock_order_push(*this); }
        return acquired;
    }

    /** Registered lock-order name; nullptr when unregistered. */
    const char* name() const noexcept { return name_; }

  private:
    friend class MutexLock;
    std::mutex mutex_;
    const char* name_ = nullptr;
};

/**
 * Scoped lock over `Mutex`, annotated so the analysis tracks the held
 * set across the constructor/destructor and the explicit
 * `unlock()`/`lock()` pair (the worker-loop "drop the lock around user
 * code" dance). Waiting is `CondVar::wait(MutexLock&)`.
 */
class CAFQA_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex& mutex) CAFQA_ACQUIRE(mutex)
        : lock_(mutex.mutex_, std::defer_lock), mutex_(&mutex)
    {
        detail::lock_order_check(mutex);
        lock_.lock();
        detail::lock_order_push(mutex);
    }

    /** Releases iff still held (`std::unique_lock` tracks ownership,
     *  and clang models scoped-capability destructors the same way). */
    ~MutexLock() CAFQA_RELEASE()
    {
        if (lock_.owns_lock()) { detail::lock_order_pop(*mutex_); }
    }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

    /** Drop the lock mid-scope (re-acquire with `lock()`). */
    void unlock() CAFQA_RELEASE()
    {
        detail::lock_order_pop(*mutex_);
        lock_.unlock();
    }

    /** Re-acquire after `unlock()`. */
    void lock() CAFQA_ACQUIRE()
    {
        detail::lock_order_check(*mutex_);
        lock_.lock();
        detail::lock_order_push(*mutex_);
    }

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lock_;
    Mutex* mutex_;
};

/**
 * Condition variable paired with `MutexLock`. `wait` atomically
 * releases and re-acquires the lock, so from the analysis' point of
 * view the capability is held across the call — exactly the libc++
 * annotation model for `std::condition_variable::wait`.
 */
class CondVar
{
  public:
    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

    /** The lock stays logically held across the call (the re-acquire
     *  is not a new ordering event), so the lock-order held-stack is
     *  deliberately left untouched. */
    void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  private:
    std::condition_variable cv_;
};

} // namespace cafqa

#endif // CAFQA_COMMON_THREAD_SAFETY_HPP
