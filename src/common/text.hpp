/**
 * @file
 * Small shared text-formatting helpers: shortest round-trip decimal
 * rendering of doubles (canonical problem keys, spec serialization,
 * JSON numbers) and JSON string quoting. One definition each, so every
 * emitter in the tree escapes and formats identically.
 */
#ifndef CAFQA_COMMON_TEXT_HPP
#define CAFQA_COMMON_TEXT_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cafqa {

/**
 * The shortest decimal representation that parses back to exactly
 * `value` (std::to_chars): "2.2" stays "2.2", not "2.2000000000000002".
 * Requires a finite value.
 */
std::string format_real(double value);

/** `text` as a quoted JSON string: quotes/backslashes/control
 *  characters escaped (control characters as \uXXXX). */
std::string json_quote(const std::string& text);

/**
 * Strict whole-token integer parse: nullopt unless the entire token is
 * a decimal integer within range (rejects "abc", "12x", "", overflow).
 * Call sites attach their own context to the error they raise.
 */
std::optional<std::int64_t> parse_integer_token(const std::string& text);

/** Strict whole-token finite-double parse: nullopt unless the entire
 *  token is a finite number (rejects "nan", "inf", trailing garbage). */
std::optional<double> parse_real_token(const std::string& text);

/** One field of a flat JSON object, in source order. */
struct JsonField
{
    std::string name;
    /** Decoded text when `is_string`; otherwise the raw source slice
     *  of the value (a scalar token, or a balanced nested object /
     *  array kept verbatim for pass-through). */
    std::string value;
    bool is_string = false;
};

/**
 * Parse one flat JSON object `{"name": value, ...}` — the shape every
 * serializer in this tree emits (RunSpec, RunRecord, CacheStats, the
 * job-server protocol). String values are unescaped; numbers, booleans
 * and null come back as raw tokens for the caller's strict parsers;
 * nested objects/arrays come back as raw balanced text (pass-through,
 * not recursed into). Duplicate names are NOT rejected here — callers
 * with that contract check the returned list. Throws
 * `std::invalid_argument` naming the defect and the offending text.
 */
std::vector<JsonField> parse_flat_json_object(const std::string& text);

/** The field named `name`, or nullptr. */
const JsonField* find_json_field(const std::vector<JsonField>& fields,
                                 const std::string& name);

} // namespace cafqa

#endif // CAFQA_COMMON_TEXT_HPP
