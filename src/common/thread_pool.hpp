/**
 * @file
 * Minimal fixed-size thread pool for fan-out over independent work items
 * (batched candidate evaluation in the CAFQA warm-up phase, exhaustive
 * Clifford enumeration). Workers are long-lived; `parallel_for` blocks
 * the caller until every index has been processed.
 */
#ifndef CAFQA_COMMON_THREAD_POOL_HPP
#define CAFQA_COMMON_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cafqa {

/** Long-lived worker pool with an indexed parallel-for primitive. */
class ThreadPool
{
  public:
    /** @param threads  worker count; 0 picks the hardware concurrency. */
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of workers. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Run `fn(worker, index)` for every index in [0, count), distributing
     * indices dynamically across the pool. `worker` is a stable id in
     * [0, size()) so callers can keep per-worker scratch state (e.g. one
     * backend clone per worker). Blocks until all indices are done; the
     * first exception thrown by any invocation is rethrown here.
     *
     * Safe to call from several threads at once — concurrent jobs are
     * serialized, one at a time (relevant for the shared() pool, which
     * every default-configured search funnels through). Must not be
     * called from inside a running job (deadlock).
     */
    void parallel_for(std::size_t count,
                      const std::function<void(std::size_t worker,
                                               std::size_t index)>& fn);

    /** Process-wide default pool, sized to the hardware. */
    static ThreadPool& shared();

  private:
    void worker_loop(std::size_t worker);

    std::vector<std::thread> workers_;
    /** Serializes concurrent parallel_for callers (held for the whole
     *  job). */
    std::mutex caller_mutex_;
    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable work_done_;

    // Current job state (all guarded by mutex_).
    const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
    std::size_t job_count_ = 0;
    std::size_t next_index_ = 0;
    std::size_t active_workers_ = 0;
    std::uint64_t generation_ = 0;
    std::exception_ptr first_error_;
    bool stopping_ = false;
};

} // namespace cafqa

#endif // CAFQA_COMMON_THREAD_POOL_HPP
