/**
 * @file
 * Minimal fixed-size thread pool for fan-out over independent work items
 * (batched candidate evaluation in the CAFQA warm-up phase, exhaustive
 * Clifford enumeration). Workers are long-lived; `parallel_for` blocks
 * the caller until every index has been processed.
 */
#ifndef CAFQA_COMMON_THREAD_POOL_HPP
#define CAFQA_COMMON_THREAD_POOL_HPP

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_safety.hpp"

namespace cafqa {

/** Long-lived worker pool with an indexed parallel-for primitive. */
class ThreadPool
{
  public:
    /** @param threads  worker count; 0 picks the hardware concurrency. */
    explicit ThreadPool(std::size_t threads = 0);

    /**
     * Joins the workers. Must not run while a `parallel_for` is in
     * flight on another thread — asserted: shutdown never drops a task
     * silently, a pool with unfinished work aborts loudly instead.
     */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of workers. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Run `fn(worker, index)` for every index in [0, count), distributing
     * indices dynamically across the pool. `worker` is a stable id in
     * [0, size()) so callers can keep per-worker scratch state (e.g. one
     * backend clone per worker). Blocks until all indices are done; the
     * first exception thrown by any invocation is rethrown here.
     *
     * Safe to call from several threads at once — concurrent jobs are
     * serialized, one at a time (relevant for the shared() pool, which
     * every default-configured search funnels through). Must not be
     * called from inside a running job (deadlock).
     */
    void parallel_for(std::size_t count,
                      const std::function<void(std::size_t worker,
                                               std::size_t index)>& fn)
        CAFQA_EXCLUDES(pool_mutex_);

    /** Process-wide default pool, sized to the hardware. */
    static ThreadPool& shared();

  private:
    void worker_loop(std::size_t worker) CAFQA_EXCLUDES(pool_mutex_);

    std::vector<std::thread> workers_;
    /** Serializes concurrent parallel_for callers (held for the whole
     *  job, and ordered strictly before `pool_mutex_`). */
    Mutex caller_mutex_{"caller_mutex"};
    Mutex pool_mutex_{"pool_mutex"};
    CondVar work_ready_;
    CondVar work_done_;

    // Current job state. The job pointer AND its pointee (the caller's
    // `fn`, alive until `work_done_` fires) are only touched under the
    // lock: workers take a per-generation copy instead of dereferencing
    // while unlocked.
    const std::function<void(std::size_t, std::size_t)>* job_
        CAFQA_GUARDED_BY(pool_mutex_) CAFQA_PT_GUARDED_BY(pool_mutex_) =
            nullptr;
    std::size_t job_count_ CAFQA_GUARDED_BY(pool_mutex_) = 0;
    std::size_t next_index_ CAFQA_GUARDED_BY(pool_mutex_) = 0;
    std::size_t active_workers_ CAFQA_GUARDED_BY(pool_mutex_) = 0;
    std::uint64_t generation_ CAFQA_GUARDED_BY(pool_mutex_) = 0;
    std::exception_ptr first_error_ CAFQA_GUARDED_BY(pool_mutex_);
    bool stopping_ CAFQA_GUARDED_BY(pool_mutex_) = false;
};

} // namespace cafqa

#endif // CAFQA_COMMON_THREAD_POOL_HPP
