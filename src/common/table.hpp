/**
 * @file
 * Aligned-column table printer used by the bench binaries to emit the
 * series/rows of each paper figure and table in a uniform, diff-friendly
 * format.
 */
#ifndef CAFQA_COMMON_TABLE_HPP
#define CAFQA_COMMON_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace cafqa {

/** Column-aligned text table with a title and header row. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the header row; must be called before add_row. */
    void set_header(std::vector<std::string> header);

    /** Append a preformatted row; size must match the header. */
    void add_row(std::vector<std::string> row);

    /** Format a double with fixed precision for use in add_row. */
    static std::string num(double value, int precision = 6);

    /** Format a double in scientific notation. */
    static std::string sci(double value, int precision = 3);

    /** Render the table with aligned columns. */
    void print(std::ostream& out) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace cafqa

#endif // CAFQA_COMMON_TABLE_HPP
