#include "common/text.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace cafqa {

namespace {

/** Cursor over one flat JSON object. Kept deliberately minimal: the
 *  only JSON this project reads is JSON this project (or its clients)
 *  wrote, so exotica (unicode escapes in, exponent validation, deep
 *  recursion) stays out. */
class FlatJsonCursor
{
  public:
    explicit FlatJsonCursor(const std::string& text) : text_(text) {}

    void
    expect(char c)
    {
        skip_space();
        if (pos_ >= text_.size() || text_[pos_] != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    bool
    consume(char c)
    {
        skip_space();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    char
    peek()
    {
        skip_space();
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    std::string
    string_value()
    {
        skip_space();
        if (pos_ >= text_.size() || text_[pos_] != '"') {
            fail("expected a string");
        }
        ++pos_;
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size()) {
                    fail("dangling escape");
                }
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/': c = '/'; break;
                  case 'b': c = '\b'; break;
                  case 'f': c = '\f'; break;
                  case 'n': c = '\n'; break;
                  case 'r': c = '\r'; break;
                  case 't': c = '\t'; break;
                  default: fail("unsupported string escape");
                }
            }
            out += c;
        }
        if (pos_ >= text_.size()) {
            fail("unterminated string");
        }
        ++pos_; // closing quote
        return out;
    }

    /** A number/true/false/null token, returned as raw text for the
     *  caller's strict parsers. */
    std::string
    scalar_value()
    {
        skip_space();
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '+' || text_[pos_] == '-' ||
                text_[pos_] == '.')) {
            ++pos_;
        }
        if (pos_ == start) {
            fail("expected a value");
        }
        return text_.substr(start, pos_ - start);
    }

    /** A nested object or array as its raw balanced source slice
     *  (strings honored so braces inside them don't count). */
    std::string
    nested_value()
    {
        skip_space();
        const std::size_t start = pos_;
        const char open = text_[pos_];
        const char close = open == '{' ? '}' : ']';
        std::size_t depth = 0;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                string_value();
                continue;
            }
            ++pos_;
            if (c == open) {
                ++depth;
            } else if (c == close && --depth == 0) {
                return text_.substr(start, pos_ - start);
            }
        }
        fail("unbalanced nested value");
    }

    void
    expect_end()
    {
        skip_space();
        if (pos_ != text_.size()) {
            fail("trailing content after the object");
        }
    }

  private:
    void
    skip_space()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    [[noreturn]] void
    fail(const std::string& why) const
    {
        CAFQA_REQUIRE(false,
                      "malformed flat JSON object (" + why +
                          ") in: " + text_);
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

std::string
format_real(double value)
{
    char buffer[32];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    CAFQA_ASSERT(ec == std::errc{}, "double formatting failed");
    return std::string(buffer, end);
}

std::string
json_quote(const std::string& text)
{
    std::string out = "\"";
    for (const char raw : text) {
        const unsigned char c = static_cast<unsigned char>(raw);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (c < 0x20) {
                char escaped[8];
                std::snprintf(escaped, sizeof(escaped), "\\u%04x", c);
                out += escaped;
            } else {
                out += raw;
            }
            break;
        }
    }
    out += '"';
    return out;
}

std::optional<std::int64_t>
parse_integer_token(const std::string& text)
{
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
        return std::nullopt;
    }
    return static_cast<std::int64_t>(value);
}

std::optional<double>
parse_real_token(const std::string& text)
{
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
        !std::isfinite(value)) {
        return std::nullopt;
    }
    return value;
}

std::vector<JsonField>
parse_flat_json_object(const std::string& text)
{
    std::vector<JsonField> fields;
    FlatJsonCursor cursor(text);
    cursor.expect('{');
    if (!cursor.consume('}')) {
        do {
            JsonField field;
            field.name = cursor.string_value();
            cursor.expect(':');
            const char head = cursor.peek();
            if (head == '"') {
                field.value = cursor.string_value();
                field.is_string = true;
            } else if (head == '{' || head == '[') {
                field.value = cursor.nested_value();
            } else {
                field.value = cursor.scalar_value();
            }
            fields.push_back(std::move(field));
        } while (cursor.consume(','));
        cursor.expect('}');
    }
    cursor.expect_end();
    return fields;
}

const JsonField*
find_json_field(const std::vector<JsonField>& fields,
                const std::string& name)
{
    for (const JsonField& field : fields) {
        if (field.name == name) {
            return &field;
        }
    }
    return nullptr;
}

} // namespace cafqa
