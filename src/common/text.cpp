#include "common/text.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace cafqa {

std::string
format_real(double value)
{
    char buffer[32];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    CAFQA_ASSERT(ec == std::errc{}, "double formatting failed");
    return std::string(buffer, end);
}

std::string
json_quote(const std::string& text)
{
    std::string out = "\"";
    for (const char raw : text) {
        const unsigned char c = static_cast<unsigned char>(raw);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (c < 0x20) {
                char escaped[8];
                std::snprintf(escaped, sizeof(escaped), "\\u%04x", c);
                out += escaped;
            } else {
                out += raw;
            }
            break;
        }
    }
    out += '"';
    return out;
}

std::optional<std::int64_t>
parse_integer_token(const std::string& text)
{
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
        return std::nullopt;
    }
    return static_cast<std::int64_t>(value);
}

std::optional<double>
parse_real_token(const std::string& text)
{
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
        !std::isfinite(value)) {
        return std::nullopt;
    }
    return value;
}

} // namespace cafqa
