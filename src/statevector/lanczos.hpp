/**
 * @file
 * Lanczos ground-state solver for qubit Hamiltonians — the "Exact"
 * reference of the paper's evaluation (possible only for small problem
 * sizes; here up to ~18-20 qubits).
 *
 * The matvec is a sum of bit-twiddled Pauli applications on a dense
 * vector, so no matrix is ever materialized.
 */
#ifndef CAFQA_STATEVECTOR_LANCZOS_HPP
#define CAFQA_STATEVECTOR_LANCZOS_HPP

#include <functional>
#include <optional>

#include "pauli/pauli_sum.hpp"
#include "statevector/statevector.hpp"

namespace cafqa {

/** Options for the Lanczos iteration. */
struct LanczosOptions
{
    /** Maximum Krylov dimension. */
    std::size_t max_iterations = 300;
    /** Stop when the smallest Ritz value changes less than this. */
    double tolerance = 1e-10;
    /** Seed for the random start vector. */
    std::uint64_t seed = 7;
    /**
     * Also reconstruct the ground-state vector. This stores the full
     * Krylov basis (with reorthogonalization), so it is restricted to
     * small qubit counts; energy-only mode keeps three vectors.
     */
    bool want_vector = false;
    /**
     * Optional symmetry-sector restriction: basis states for which the
     * predicate returns false are projected out of the start vector and
     * after every matvec. The Hamiltonian must preserve the subspace
     * (e.g. an electron-number sector of a molecular Hamiltonian) —
     * the solve then returns the lowest eigenvalue *within the sector*.
     */
    std::function<bool(std::uint64_t)> basis_filter;
};

/** Result of a ground-state solve. */
struct GroundState
{
    double energy = 0.0;
    /** Present when LanczosOptions::want_vector was set. */
    std::optional<Statevector> state;
    /** Krylov iterations actually performed. */
    std::size_t iterations = 0;
};

/** Smallest eigenvalue (and optionally eigenvector) of a Hermitian
 *  Pauli sum. */
GroundState lanczos_ground_state(const PauliSum& hamiltonian,
                                 const LanczosOptions& options = {});

/**
 * Dense reference eigenvalues for tiny systems (<= 10 qubits): builds the
 * full matrix as a real-symmetric embedding and diagonalizes it. Used by
 * tests to validate Lanczos.
 */
std::vector<double> dense_spectrum(const PauliSum& hamiltonian);

} // namespace cafqa

#endif // CAFQA_STATEVECTOR_LANCZOS_HPP
