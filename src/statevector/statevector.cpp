#include "statevector/statevector.hpp"

#include <bit>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace cafqa {

namespace {

constexpr std::size_t max_statevector_qubits = 28;

Complex
i_power(std::uint8_t k)
{
    switch (k & 3) {
      case 0: return {1.0, 0.0};
      case 1: return {0.0, 1.0};
      case 2: return {-1.0, 0.0};
      default: return {0.0, -1.0};
    }
}

std::uint64_t
first_word_mask(const std::vector<std::uint64_t>& words)
{
    return words.empty() ? 0 : words[0];
}

} // namespace

Statevector::Statevector(std::size_t num_qubits)
    : num_qubits_(num_qubits),
      amplitudes_(std::size_t{1} << num_qubits, Complex{0.0, 0.0})
{
    CAFQA_REQUIRE(num_qubits >= 1 && num_qubits <= max_statevector_qubits,
                  "statevector supports 1..28 qubits");
    amplitudes_[0] = Complex{1.0, 0.0};
}

Statevector
Statevector::basis_state(std::size_t num_qubits, std::uint64_t bits)
{
    Statevector psi(num_qubits);
    CAFQA_REQUIRE(bits < psi.dim(), "basis state index out of range");
    psi.amplitudes_[0] = Complex{0.0, 0.0};
    psi.amplitudes_[bits] = Complex{1.0, 0.0};
    return psi;
}

void
Statevector::apply_1q(const std::array<Complex, 4>& u, std::size_t q)
{
    CAFQA_REQUIRE(q < num_qubits_, "qubit index out of range");
    const std::size_t stride = std::size_t{1} << q;
    for (std::size_t base = 0; base < amplitudes_.size(); base += 2 * stride) {
        for (std::size_t i = base; i < base + stride; ++i) {
            const Complex a0 = amplitudes_[i];
            const Complex a1 = amplitudes_[i + stride];
            amplitudes_[i] = u[0] * a0 + u[1] * a1;
            amplitudes_[i + stride] = u[2] * a0 + u[3] * a1;
        }
    }
}

void
Statevector::apply_cx(std::size_t control, std::size_t target)
{
    CAFQA_REQUIRE(control < num_qubits_ && target < num_qubits_ &&
                  control != target, "bad cx operands");
    const std::uint64_t cbit = std::uint64_t{1} << control;
    const std::uint64_t tbit = std::uint64_t{1} << target;
    for (std::uint64_t idx = 0; idx < amplitudes_.size(); ++idx) {
        if ((idx & cbit) && !(idx & tbit)) {
            std::swap(amplitudes_[idx], amplitudes_[idx | tbit]);
        }
    }
}

void
Statevector::apply_cz(std::size_t a, std::size_t b)
{
    CAFQA_REQUIRE(a < num_qubits_ && b < num_qubits_ && a != b,
                  "bad cz operands");
    const std::uint64_t abit = std::uint64_t{1} << a;
    const std::uint64_t bbit = std::uint64_t{1} << b;
    for (std::uint64_t idx = 0; idx < amplitudes_.size(); ++idx) {
        if ((idx & abit) && (idx & bbit)) {
            amplitudes_[idx] = -amplitudes_[idx];
        }
    }
}

void
Statevector::apply_swap(std::size_t a, std::size_t b)
{
    CAFQA_REQUIRE(a < num_qubits_ && b < num_qubits_ && a != b,
                  "bad swap operands");
    const std::uint64_t abit = std::uint64_t{1} << a;
    const std::uint64_t bbit = std::uint64_t{1} << b;
    for (std::uint64_t idx = 0; idx < amplitudes_.size(); ++idx) {
        if ((idx & abit) && !(idx & bbit)) {
            std::swap(amplitudes_[idx], amplitudes_[(idx & ~abit) | bbit]);
        }
    }
}

std::array<Complex, 4>
Statevector::gate_matrix(GateKind kind, double angle)
{
    const double inv_sqrt2 = 1.0 / std::numbers::sqrt2;
    const Complex i{0.0, 1.0};
    switch (kind) {
      case GateKind::H:
        return {inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2};
      case GateKind::X:
        return {0.0, 1.0, 1.0, 0.0};
      case GateKind::Y:
        return {0.0, -i, i, 0.0};
      case GateKind::Z:
        return {1.0, 0.0, 0.0, -1.0};
      case GateKind::S:
        return {1.0, 0.0, 0.0, i};
      case GateKind::Sdg:
        return {1.0, 0.0, 0.0, -i};
      case GateKind::T:
        return {1.0, 0.0, 0.0, std::exp(i * (std::numbers::pi / 4.0))};
      case GateKind::Tdg:
        return {1.0, 0.0, 0.0, std::exp(-i * (std::numbers::pi / 4.0))};
      case GateKind::Rx: {
        const double c = std::cos(angle / 2.0);
        const double s = std::sin(angle / 2.0);
        return {Complex{c, 0.0}, -i * s, -i * s, Complex{c, 0.0}};
      }
      case GateKind::Ry: {
        const double c = std::cos(angle / 2.0);
        const double s = std::sin(angle / 2.0);
        return {Complex{c, 0.0}, Complex{-s, 0.0}, Complex{s, 0.0},
                Complex{c, 0.0}};
      }
      case GateKind::Rz: {
        return {std::exp(-i * (angle / 2.0)), 0.0, 0.0,
                std::exp(i * (angle / 2.0))};
      }
      default:
        CAFQA_REQUIRE(false, "gate has no single-qubit matrix");
    }
    return {};
}

void
Statevector::apply(const GateOp& op, const std::vector<double>& params)
{
    switch (op.kind) {
      case GateKind::CX: apply_cx(op.q0, op.q1); return;
      case GateKind::CZ: apply_cz(op.q0, op.q1); return;
      case GateKind::Swap: apply_swap(op.q0, op.q1); return;
      case GateKind::Rzz: {
        // Diagonal: exp(-i theta/2) on even ZZ parity, exp(+i theta/2)
        // on odd.
        const double theta = op.resolved_angle(params);
        const Complex even = std::exp(Complex{0.0, -theta / 2.0});
        const Complex odd = std::exp(Complex{0.0, theta / 2.0});
        const std::uint64_t mask = (std::uint64_t{1} << op.q0) |
                                   (std::uint64_t{1} << op.q1);
        for (std::uint64_t idx = 0; idx < amplitudes_.size(); ++idx) {
            const bool parity_odd =
                std::popcount(idx & mask) % 2 == 1;
            amplitudes_[idx] *= parity_odd ? odd : even;
        }
        return;
      }
      default:
        break;
    }
    const double angle =
        is_rotation(op.kind) ? op.resolved_angle(params) : 0.0;
    apply_1q(gate_matrix(op.kind, angle), op.q0);
}

void
Statevector::apply_circuit(const Circuit& circuit,
                           const std::vector<double>& params)
{
    CAFQA_REQUIRE(circuit.num_qubits() == num_qubits_,
                  "circuit qubit count mismatch");
    for (const auto& op : circuit.ops()) {
        apply(op, params);
    }
}

void
Statevector::apply_pauli(const PauliString& pauli)
{
    CAFQA_REQUIRE(pauli.num_qubits() == num_qubits_,
                  "operator qubit count mismatch");
    const std::uint64_t xm = first_word_mask(pauli.x_words());
    const std::uint64_t zm = first_word_mask(pauli.z_words());
    const Complex phase = i_power(pauli.phase_exponent());

    auto z_sign = [zm](std::uint64_t b) {
        return (std::popcount(b & zm) & 1) ? -1.0 : 1.0;
    };

    if (xm == 0) {
        for (std::uint64_t b = 0; b < amplitudes_.size(); ++b) {
            amplitudes_[b] *= phase * z_sign(b);
        }
        return;
    }
    for (std::uint64_t b = 0; b < amplitudes_.size(); ++b) {
        const std::uint64_t partner = b ^ xm;
        if (b >= partner) {
            continue;
        }
        const Complex vb = amplitudes_[b];
        const Complex vp = amplitudes_[partner];
        amplitudes_[partner] = phase * z_sign(b) * vb;
        amplitudes_[b] = phase * z_sign(partner) * vp;
    }
}

Complex
Statevector::expectation(const PauliString& pauli) const
{
    CAFQA_REQUIRE(pauli.num_qubits() == num_qubits_,
                  "operator qubit count mismatch");
    const std::uint64_t xm = first_word_mask(pauli.x_words());
    const std::uint64_t zm = first_word_mask(pauli.z_words());
    const Complex phase = i_power(pauli.phase_exponent());

    Complex total{0.0, 0.0};
    for (std::uint64_t b = 0; b < amplitudes_.size(); ++b) {
        const double sign = (std::popcount(b & zm) & 1) ? -1.0 : 1.0;
        total += std::conj(amplitudes_[b ^ xm]) * sign * amplitudes_[b];
    }
    return phase * total;
}

double
Statevector::expectation(const PauliSum& op) const
{
    CAFQA_REQUIRE(op.num_qubits() == num_qubits_,
                  "operator qubit count mismatch");
    double total = 0.0;
    for (const auto& term : op.terms()) {
        total += (term.coefficient * expectation(term.string)).real();
    }
    return total;
}

Complex
Statevector::inner(const Statevector& other) const
{
    CAFQA_REQUIRE(other.num_qubits_ == num_qubits_, "qubit count mismatch");
    Complex total{0.0, 0.0};
    for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
        total += std::conj(amplitudes_[i]) * other.amplitudes_[i];
    }
    return total;
}

double
Statevector::norm_squared() const
{
    double total = 0.0;
    for (const auto& a : amplitudes_) {
        total += std::norm(a);
    }
    return total;
}

void
Statevector::normalize()
{
    const double n2 = norm_squared();
    CAFQA_REQUIRE(n2 > 1e-300, "cannot normalize the zero vector");
    const double inv = 1.0 / std::sqrt(n2);
    for (auto& a : amplitudes_) {
        a *= inv;
    }
}

void
accumulate_apply(const PauliSum& op, const std::vector<Complex>& x,
                 std::vector<Complex>& y)
{
    CAFQA_REQUIRE(x.size() == y.size(), "buffer size mismatch");
    for (const auto& term : op.terms()) {
        const std::uint64_t xm = first_word_mask(term.string.x_words());
        const std::uint64_t zm = first_word_mask(term.string.z_words());
        const Complex w =
            term.coefficient * i_power(term.string.phase_exponent());
        for (std::uint64_t b = 0; b < x.size(); ++b) {
            const double sign = (std::popcount(b & zm) & 1) ? -1.0 : 1.0;
            y[b ^ xm] += w * sign * x[b];
        }
    }
}

} // namespace cafqa
