/**
 * @file
 * Dense statevector simulator — the "ideal machine" reference used for
 * exact expectation values, cross-validation of the stabilizer simulator,
 * post-CAFQA noise-free VQA tuning and the Clifford+kT branch evaluation.
 *
 * Qubit 0 is the least significant bit of the amplitude index.
 */
#ifndef CAFQA_STATEVECTOR_STATEVECTOR_HPP
#define CAFQA_STATEVECTOR_STATEVECTOR_HPP

#include <array>
#include <complex>
#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "pauli/pauli_sum.hpp"

namespace cafqa {

using Complex = std::complex<double>;

/** Dense pure state on up to 28 qubits. */
class Statevector
{
  public:
    /** |0...0> on `num_qubits` qubits. */
    explicit Statevector(std::size_t num_qubits);

    /** Computational basis state |bits> (bit q of `bits` is qubit q). */
    static Statevector basis_state(std::size_t num_qubits,
                                   std::uint64_t bits);

    std::size_t num_qubits() const { return num_qubits_; }
    std::size_t dim() const { return amplitudes_.size(); }

    const std::vector<Complex>& amplitudes() const { return amplitudes_; }
    std::vector<Complex>& amplitudes() { return amplitudes_; }

    /** Apply a 2x2 unitary (row-major [u00,u01,u10,u11]) on one qubit. */
    void apply_1q(const std::array<Complex, 4>& u, std::size_t q);

    void apply_cx(std::size_t control, std::size_t target);
    void apply_cz(std::size_t a, std::size_t b);
    void apply_swap(std::size_t a, std::size_t b);

    /** Apply one gate op, resolving rotation parameters. */
    void apply(const GateOp& op, const std::vector<double>& params = {});

    /** Apply a full circuit. */
    void apply_circuit(const Circuit& circuit,
                       const std::vector<double>& params = {});

    /** Apply a Pauli string (including its phase) in place. */
    void apply_pauli(const PauliString& pauli);

    /** <psi|P|psi>. */
    Complex expectation(const PauliString& pauli) const;

    /** Real expectation of a Hermitian Pauli sum. */
    double expectation(const PauliSum& op) const;

    /** <this|other>. */
    Complex inner(const Statevector& other) const;

    /** Squared norm. */
    double norm_squared() const;

    /** Scale so that norm == 1; throws on the zero vector. */
    void normalize();

    /** The 2x2 matrix for a single-qubit gate kind (rotations need
     *  `angle`). */
    static std::array<Complex, 4> gate_matrix(GateKind kind, double angle);

  private:
    std::size_t num_qubits_;
    std::vector<Complex> amplitudes_;
};

/**
 * y += coeff * (P_sum x): accumulate a Pauli-sum application; the work
 * buffer form used by the Lanczos matvec.
 */
void accumulate_apply(const PauliSum& op, const std::vector<Complex>& x,
                      std::vector<Complex>& y);

} // namespace cafqa

#endif // CAFQA_STATEVECTOR_STATEVECTOR_HPP
