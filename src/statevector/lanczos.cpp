#include "statevector/lanczos.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/linalg.hpp"
#include "common/rng.hpp"

namespace cafqa {

namespace {

using Vec = std::vector<Complex>;

Complex
dot(const Vec& a, const Vec& b)
{
    Complex total{0.0, 0.0};
    for (std::size_t i = 0; i < a.size(); ++i) {
        total += std::conj(a[i]) * b[i];
    }
    return total;
}

double
norm(const Vec& a)
{
    double total = 0.0;
    for (const auto& v : a) {
        total += std::norm(v);
    }
    return std::sqrt(total);
}

void
axpy(Vec& y, Complex alpha, const Vec& x)
{
    for (std::size_t i = 0; i < y.size(); ++i) {
        y[i] += alpha * x[i];
    }
}

void
scale(Vec& y, double alpha)
{
    for (auto& v : y) {
        v *= alpha;
    }
}

Vec
random_unit_vector(std::size_t dim, std::uint64_t seed)
{
    Rng rng(seed);
    Vec v(dim);
    for (auto& a : v) {
        a = Complex{rng.normal(), rng.normal()};
    }
    Vec tmp = v;
    double n = norm(tmp);
    for (auto& a : v) {
        a /= n;
    }
    return v;
}

} // namespace

GroundState
lanczos_ground_state(const PauliSum& hamiltonian, const LanczosOptions& options)
{
    CAFQA_REQUIRE(hamiltonian.num_terms() > 0, "empty Hamiltonian");
    CAFQA_REQUIRE(hamiltonian.max_imag_coefficient() < 1e-8,
                  "Hamiltonian must be Hermitian");
    const std::size_t n = hamiltonian.num_qubits();
    const std::size_t dim = std::size_t{1} << n;
    if (options.want_vector) {
        CAFQA_REQUIRE(n <= 16,
                      "eigenvector reconstruction supported up to 16 qubits");
    }

    std::vector<double> alpha;
    std::vector<double> beta;
    std::vector<Vec> basis; // only filled in want_vector mode

    auto project = [&options](Vec& v) {
        if (!options.basis_filter) {
            return;
        }
        for (std::uint64_t b = 0; b < v.size(); ++b) {
            if (!options.basis_filter(b)) {
                v[b] = Complex{0.0, 0.0};
            }
        }
    };

    Vec v_prev(dim, Complex{0.0, 0.0});
    Vec v_cur = random_unit_vector(dim, options.seed);
    if (options.basis_filter) {
        project(v_cur);
        const double n = norm(v_cur);
        CAFQA_REQUIRE(n > 1e-12, "basis filter leaves an empty subspace");
        scale(v_cur, 1.0 / n);
    }
    Vec w(dim);

    double best = 0.0;
    bool have_best = false;
    std::size_t iters = 0;

    for (std::size_t j = 0; j < options.max_iterations; ++j) {
        ++iters;
        if (options.want_vector) {
            basis.push_back(v_cur);
        }
        std::fill(w.begin(), w.end(), Complex{0.0, 0.0});
        accumulate_apply(hamiltonian, v_cur, w);
        project(w); // guard against roundoff leakage out of the sector

        const double a_j = dot(v_cur, w).real();
        alpha.push_back(a_j);
        axpy(w, Complex{-a_j, 0.0}, v_cur);
        if (j > 0) {
            axpy(w, Complex{-beta.back(), 0.0}, v_prev);
        }
        if (options.want_vector) {
            // Full reorthogonalization keeps the Krylov basis clean.
            for (const auto& b : basis) {
                const Complex overlap = dot(b, w);
                axpy(w, -overlap, b);
            }
        }

        const double b_j = norm(w);
        const std::vector<double> ritz =
            tridiagonal_eigenvalues(alpha, beta);
        const double current = ritz.front();
        if (have_best && std::abs(current - best) < options.tolerance) {
            best = current;
            break;
        }
        best = current;
        have_best = true;

        if (b_j < 1e-12) {
            break; // invariant subspace found; Ritz value is exact
        }
        beta.push_back(b_j);
        v_prev = v_cur;
        v_cur = w;
        scale(v_cur, 1.0 / b_j);
    }

    GroundState result;
    result.energy = best;
    result.iterations = iters;

    if (options.want_vector) {
        // Eigenvector of the tridiagonal matrix for the smallest Ritz value.
        const std::size_t m = alpha.size();
        Matrix t(m, m);
        for (std::size_t i = 0; i < m; ++i) {
            t(i, i) = alpha[i];
            if (i + 1 < m && i < beta.size()) {
                t(i, i + 1) = beta[i];
                t(i + 1, i) = beta[i];
            }
        }
        const SymmetricEigen eig = symmetric_eigen(t);
        Statevector ground(n);
        auto& amp = ground.amplitudes();
        std::fill(amp.begin(), amp.end(), Complex{0.0, 0.0});
        for (std::size_t k = 0; k < m && k < basis.size(); ++k) {
            const double coeff = eig.vectors(k, 0);
            for (std::size_t i = 0; i < dim; ++i) {
                amp[i] += coeff * basis[k][i];
            }
        }
        ground.normalize();
        result.state = std::move(ground);
    }
    return result;
}

std::vector<double>
dense_spectrum(const PauliSum& hamiltonian)
{
    const std::size_t n = hamiltonian.num_qubits();
    CAFQA_REQUIRE(n <= 8, "dense spectrum limited to 8 qubits");
    CAFQA_REQUIRE(hamiltonian.max_imag_coefficient() < 1e-8,
                  "Hamiltonian must be Hermitian");
    const std::size_t dim = std::size_t{1} << n;

    // Build H column by column via Pauli application.
    std::vector<Vec> columns(dim, Vec(dim, Complex{0.0, 0.0}));
    Vec unit(dim);
    for (std::size_t c = 0; c < dim; ++c) {
        std::fill(unit.begin(), unit.end(), Complex{0.0, 0.0});
        unit[c] = Complex{1.0, 0.0};
        accumulate_apply(hamiltonian, unit, columns[c]);
    }

    // Real-symmetric embedding [[A, -B], [B, A]] of A + iB doubles each
    // eigenvalue; keep every other one.
    Matrix big(2 * dim, 2 * dim);
    for (std::size_t r = 0; r < dim; ++r) {
        for (std::size_t c = 0; c < dim; ++c) {
            const double re = columns[c][r].real();
            const double im = columns[c][r].imag();
            big(r, c) = re;
            big(r + dim, c + dim) = re;
            big(r, c + dim) = -im;
            big(r + dim, c) = im;
        }
    }
    const SymmetricEigen eig = symmetric_eigen(big);
    std::vector<double> values;
    values.reserve(dim);
    for (std::size_t i = 0; i < 2 * dim; i += 2) {
        values.push_back(eig.values[i]);
    }
    return values;
}

} // namespace cafqa
