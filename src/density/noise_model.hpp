/**
 * @file
 * Gate-attached noise models and the noisy circuit simulator.
 *
 * The two presets stand in for the paper's IBMQ Casablanca and Manhattan
 * noise-model simulations (Fig. 5). Device calibration data is
 * proprietary, so the presets are depolarizing + amplitude-damping models
 * calibrated to reproduce the *noise floors* the paper reports (the
 * Casablanca sweep bottoms out near -0.85 on the 2-qubit XX
 * microbenchmark, Manhattan near -0.7) — see DESIGN.md "Substitutions".
 */
#ifndef CAFQA_DENSITY_NOISE_MODEL_HPP
#define CAFQA_DENSITY_NOISE_MODEL_HPP

#include <string>

#include "density/density_matrix.hpp"

namespace cafqa {

/** Gate-level error rates applied after each gate. */
struct NoiseModel
{
    std::string name = "ideal";
    /** Depolarizing probability after each single-qubit gate. */
    double depolarizing_1q = 0.0;
    /** Depolarizing probability after each two-qubit gate. */
    double depolarizing_2q = 0.0;
    /** Amplitude-damping probability after each single-qubit gate. */
    double amplitude_damping = 0.0;

    bool enabled() const
    {
        return depolarizing_1q > 0.0 || depolarizing_2q > 0.0 ||
               amplitude_damping > 0.0;
    }
};

/** Lighter-noise preset (IBMQ Casablanca surrogate). */
NoiseModel noise_model_casablanca();

/** Heavier-noise preset (IBMQ Manhattan surrogate). */
NoiseModel noise_model_manhattan();

/**
 * Run a circuit under a noise model: each unitary gate is followed by
 * the model's channels on the qubits it touched.
 */
DensityMatrix simulate_noisy(const Circuit& circuit,
                             const std::vector<double>& params,
                             const NoiseModel& noise);

} // namespace cafqa

#endif // CAFQA_DENSITY_NOISE_MODEL_HPP
