/**
 * @file
 * Density-matrix simulator with quantum noise channels — the "noisy
 * machine" substrate standing in for the paper's IBMQ noise-model
 * simulations (Fig. 5 purple/blue curves, Fig. 14 noisy tuning).
 *
 * The density matrix is stored dense (row-major), so this backend is
 * intended for the small post-CAFQA systems (<= ~8 qubits) the paper
 * evaluates noisily.
 */
#ifndef CAFQA_DENSITY_DENSITY_MATRIX_HPP
#define CAFQA_DENSITY_DENSITY_MATRIX_HPP

#include <array>
#include <complex>
#include <vector>

#include "circuit/circuit.hpp"
#include "pauli/pauli_sum.hpp"

namespace cafqa {

/** Dense density matrix on up to 12 qubits. */
class DensityMatrix
{
  public:
    /** |0...0><0...0|. */
    explicit DensityMatrix(std::size_t num_qubits);

    std::size_t num_qubits() const { return num_qubits_; }
    std::size_t dim() const { return dim_; }

    std::complex<double>& at(std::size_t row, std::size_t col)
    {
        return rho_[row * dim_ + col];
    }
    const std::complex<double>& at(std::size_t row, std::size_t col) const
    {
        return rho_[row * dim_ + col];
    }

    /** rho -> U rho U^dagger for a single-qubit unitary. */
    void apply_1q(const std::array<std::complex<double>, 4>& u,
                  std::size_t q);

    /** Apply one gate op (unitary part only). */
    void apply(const GateOp& op, const std::vector<double>& params = {});

    /** Kraus channel on one qubit: rho -> sum_k K rho K^dagger. */
    void apply_kraus_1q(
        const std::vector<std::array<std::complex<double>, 4>>& kraus,
        std::size_t q);

    /** Single-qubit depolarizing channel with error probability p. */
    void depolarize_1q(std::size_t q, double p);

    /** Two-qubit depolarizing channel (uniform over 15 Paulis). */
    void depolarize_2q(std::size_t a, std::size_t b, double p);

    /** Amplitude damping with decay probability gamma. */
    void amplitude_damp(std::size_t q, double gamma);

    /** tr(P rho). */
    std::complex<double> expectation(const PauliString& pauli) const;

    /** Real expectation of a Hermitian Pauli sum. */
    double expectation(const PauliSum& op) const;

    /** tr(rho); should stay 1 under trace-preserving evolution. */
    double trace() const;

    /** tr(rho^2); 1 for pure states, < 1 for mixed. */
    double purity() const;

  private:
    /** rho -> P rho P^dagger for a Pauli string (used by depolarizing). */
    void conjugate_pauli(const PauliString& pauli);

    std::size_t num_qubits_;
    std::size_t dim_;
    std::vector<std::complex<double>> rho_;
};

} // namespace cafqa

#endif // CAFQA_DENSITY_DENSITY_MATRIX_HPP
