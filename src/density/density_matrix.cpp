#include "density/density_matrix.hpp"

#include <bit>

#include "common/error.hpp"
#include "statevector/statevector.hpp"

namespace cafqa {

namespace {

constexpr std::size_t max_density_qubits = 12;

std::complex<double>
i_power(std::uint8_t k)
{
    switch (k & 3) {
      case 0: return {1.0, 0.0};
      case 1: return {0.0, 1.0};
      case 2: return {-1.0, 0.0};
      default: return {0.0, -1.0};
    }
}

} // namespace

DensityMatrix::DensityMatrix(std::size_t num_qubits)
    : num_qubits_(num_qubits),
      dim_(std::size_t{1} << num_qubits),
      rho_(dim_ * dim_, std::complex<double>{0.0, 0.0})
{
    CAFQA_REQUIRE(num_qubits >= 1 && num_qubits <= max_density_qubits,
                  "density matrix supports 1..12 qubits");
    rho_[0] = std::complex<double>{1.0, 0.0};
}

void
DensityMatrix::apply_1q(const std::array<std::complex<double>, 4>& u,
                        std::size_t q)
{
    CAFQA_REQUIRE(q < num_qubits_, "qubit index out of range");
    const std::size_t bit = std::size_t{1} << q;

    // Left multiply by U (acts on the row index).
    for (std::size_t c = 0; c < dim_; ++c) {
        for (std::size_t r = 0; r < dim_; ++r) {
            if (r & bit) {
                continue;
            }
            const auto a0 = at(r, c);
            const auto a1 = at(r | bit, c);
            at(r, c) = u[0] * a0 + u[1] * a1;
            at(r | bit, c) = u[2] * a0 + u[3] * a1;
        }
    }
    // Right multiply by U^dagger (acts on the column index).
    for (std::size_t r = 0; r < dim_; ++r) {
        for (std::size_t c = 0; c < dim_; ++c) {
            if (c & bit) {
                continue;
            }
            const auto a0 = at(r, c);
            const auto a1 = at(r, c | bit);
            at(r, c) = a0 * std::conj(u[0]) + a1 * std::conj(u[1]);
            at(r, c | bit) = a0 * std::conj(u[2]) + a1 * std::conj(u[3]);
        }
    }
}

void
DensityMatrix::apply(const GateOp& op, const std::vector<double>& params)
{
    switch (op.kind) {
      case GateKind::CX: {
        const std::size_t cbit = std::size_t{1} << op.q0;
        const std::size_t tbit = std::size_t{1} << op.q1;
        for (std::size_t c = 0; c < dim_; ++c) {
            for (std::size_t r = 0; r < dim_; ++r) {
                if ((r & cbit) && !(r & tbit)) {
                    std::swap(rho_[r * dim_ + c],
                              rho_[(r | tbit) * dim_ + c]);
                }
            }
        }
        for (std::size_t r = 0; r < dim_; ++r) {
            for (std::size_t c = 0; c < dim_; ++c) {
                if ((c & cbit) && !(c & tbit)) {
                    std::swap(rho_[r * dim_ + c],
                              rho_[r * dim_ + (c | tbit)]);
                }
            }
        }
        return;
      }
      case GateKind::CZ: {
        const std::size_t mask =
            (std::size_t{1} << op.q0) | (std::size_t{1} << op.q1);
        for (std::size_t r = 0; r < dim_; ++r) {
            for (std::size_t c = 0; c < dim_; ++c) {
                const bool row_flip = (r & mask) == mask;
                const bool col_flip = (c & mask) == mask;
                if (row_flip != col_flip) {
                    rho_[r * dim_ + c] = -rho_[r * dim_ + c];
                }
            }
        }
        return;
      }
      case GateKind::Swap: {
        apply(GateOp{GateKind::CX, op.q0, op.q1, -1, 0.0}, params);
        apply(GateOp{GateKind::CX, op.q1, op.q0, -1, 0.0}, params);
        apply(GateOp{GateKind::CX, op.q0, op.q1, -1, 0.0}, params);
        return;
      }
      case GateKind::Rzz: {
        // RZZ(theta) = CX . RZ_target(theta) . CX (exact identity).
        const double theta = op.resolved_angle(params);
        apply(GateOp{GateKind::CX, op.q0, op.q1, -1, 0.0}, params);
        apply(GateOp{GateKind::Rz, op.q1, 0, -1, theta}, params);
        apply(GateOp{GateKind::CX, op.q0, op.q1, -1, 0.0}, params);
        return;
      }
      default:
        break;
    }
    const double angle =
        is_rotation(op.kind) ? op.resolved_angle(params) : 0.0;
    apply_1q(Statevector::gate_matrix(op.kind, angle), op.q0);
}

void
DensityMatrix::apply_kraus_1q(
    const std::vector<std::array<std::complex<double>, 4>>& kraus,
    std::size_t q)
{
    CAFQA_REQUIRE(!kraus.empty(), "empty Kraus set");
    const std::vector<std::complex<double>> saved = rho_;
    std::vector<std::complex<double>> accum(rho_.size(),
                                            std::complex<double>{0.0, 0.0});
    for (const auto& k : kraus) {
        rho_ = saved;
        apply_1q(k, q); // K rho K^dagger
        for (std::size_t i = 0; i < rho_.size(); ++i) {
            accum[i] += rho_[i];
        }
    }
    rho_ = std::move(accum);
}

void
DensityMatrix::conjugate_pauli(const PauliString& pauli)
{
    const std::uint64_t xm = pauli.x_words().empty() ? 0
                                                     : pauli.x_words()[0];
    const std::uint64_t zm = pauli.z_words().empty() ? 0
                                                     : pauli.z_words()[0];
    auto weight = [&](std::uint64_t b) -> std::complex<double> {
        const double sign = (std::popcount(b & zm) & 1) ? -1.0 : 1.0;
        return i_power(pauli.phase_exponent()) * sign;
    };
    std::vector<std::complex<double>> out(rho_.size());
    for (std::size_t r = 0; r < dim_; ++r) {
        const auto wr = weight(r);
        for (std::size_t c = 0; c < dim_; ++c) {
            out[(r ^ xm) * dim_ + (c ^ xm)] =
                wr * std::conj(weight(c)) * rho_[r * dim_ + c];
        }
    }
    rho_ = std::move(out);
}

void
DensityMatrix::depolarize_1q(std::size_t q, double p)
{
    if (p <= 0.0) {
        return;
    }
    CAFQA_REQUIRE(p <= 1.0, "depolarizing probability above 1");
    const std::vector<std::complex<double>> saved = rho_;
    std::vector<std::complex<double>> accum(rho_.size(),
                                            std::complex<double>{0.0, 0.0});
    for (const PauliLetter letter :
         {PauliLetter::X, PauliLetter::Y, PauliLetter::Z}) {
        rho_ = saved;
        PauliString pauli(num_qubits_);
        pauli.set_letter(q, letter);
        conjugate_pauli(pauli);
        for (std::size_t i = 0; i < rho_.size(); ++i) {
            accum[i] += rho_[i];
        }
    }
    rho_ = saved;
    for (std::size_t i = 0; i < rho_.size(); ++i) {
        rho_[i] = (1.0 - p) * rho_[i] + (p / 3.0) * accum[i];
    }
}

void
DensityMatrix::depolarize_2q(std::size_t a, std::size_t b, double p)
{
    if (p <= 0.0) {
        return;
    }
    CAFQA_REQUIRE(a != b, "depolarize_2q needs distinct qubits");
    CAFQA_REQUIRE(p <= 1.0, "depolarizing probability above 1");
    const std::vector<std::complex<double>> saved = rho_;
    std::vector<std::complex<double>> accum(rho_.size(),
                                            std::complex<double>{0.0, 0.0});
    for (int la = 0; la < 4; ++la) {
        for (int lb = 0; lb < 4; ++lb) {
            if (la == 0 && lb == 0) {
                continue;
            }
            rho_ = saved;
            PauliString pauli(num_qubits_);
            pauli.set_letter(a, static_cast<PauliLetter>(la));
            pauli.set_letter(b, static_cast<PauliLetter>(lb));
            conjugate_pauli(pauli);
            for (std::size_t i = 0; i < rho_.size(); ++i) {
                accum[i] += rho_[i];
            }
        }
    }
    rho_ = saved;
    for (std::size_t i = 0; i < rho_.size(); ++i) {
        rho_[i] = (1.0 - p) * rho_[i] + (p / 15.0) * accum[i];
    }
}

void
DensityMatrix::amplitude_damp(std::size_t q, double gamma)
{
    if (gamma <= 0.0) {
        return;
    }
    CAFQA_REQUIRE(gamma <= 1.0, "damping probability above 1");
    const double s = std::sqrt(1.0 - gamma);
    const double g = std::sqrt(gamma);
    apply_kraus_1q({{std::complex<double>{1.0, 0.0}, 0.0, 0.0,
                     std::complex<double>{s, 0.0}},
                    {0.0, std::complex<double>{g, 0.0}, 0.0, 0.0}},
                   q);
}

std::complex<double>
DensityMatrix::expectation(const PauliString& pauli) const
{
    CAFQA_REQUIRE(pauli.num_qubits() == num_qubits_,
                  "operator qubit count mismatch");
    const std::uint64_t xm = pauli.x_words().empty() ? 0
                                                     : pauli.x_words()[0];
    const std::uint64_t zm = pauli.z_words().empty() ? 0
                                                     : pauli.z_words()[0];
    std::complex<double> total{0.0, 0.0};
    for (std::size_t k = 0; k < dim_; ++k) {
        const double sign = (std::popcount(k & zm) & 1) ? -1.0 : 1.0;
        total += sign * rho_[k * dim_ + (k ^ xm)];
    }
    return i_power(pauli.phase_exponent()) * total;
}

double
DensityMatrix::expectation(const PauliSum& op) const
{
    CAFQA_REQUIRE(op.num_qubits() == num_qubits_,
                  "operator qubit count mismatch");
    double total = 0.0;
    for (const auto& term : op.terms()) {
        total += (term.coefficient * expectation(term.string)).real();
    }
    return total;
}

double
DensityMatrix::trace() const
{
    std::complex<double> t{0.0, 0.0};
    for (std::size_t i = 0; i < dim_; ++i) {
        t += rho_[i * dim_ + i];
    }
    return t.real();
}

double
DensityMatrix::purity() const
{
    double total = 0.0;
    for (std::size_t r = 0; r < dim_; ++r) {
        for (std::size_t c = 0; c < dim_; ++c) {
            total += std::norm(rho_[r * dim_ + c]);
        }
    }
    return total;
}

} // namespace cafqa
