#include "density/noise_model.hpp"

#include "common/error.hpp"

namespace cafqa {

NoiseModel
noise_model_casablanca()
{
    // Calibrated so the Fig. 5 microbenchmark sweep bottoms out near
    // -0.85 (lighter of the two device surrogates).
    return NoiseModel{"casablanca", 0.012, 0.10, 0.008};
}

NoiseModel
noise_model_manhattan()
{
    // Heavier surrogate: Fig. 5 floor near -0.7.
    return NoiseModel{"manhattan", 0.025, 0.20, 0.015};
}

DensityMatrix
simulate_noisy(const Circuit& circuit, const std::vector<double>& params,
               const NoiseModel& noise)
{
    DensityMatrix rho(circuit.num_qubits());
    for (const auto& op : circuit.ops()) {
        rho.apply(op, params);
        if (!noise.enabled()) {
            continue;
        }
        if (is_two_qubit(op.kind)) {
            rho.depolarize_2q(op.q0, op.q1, noise.depolarizing_2q);
            rho.amplitude_damp(op.q0, noise.amplitude_damping);
            rho.amplitude_damp(op.q1, noise.amplitude_damping);
        } else {
            rho.depolarize_1q(op.q0, noise.depolarizing_1q);
            rho.amplitude_damp(op.q0, noise.amplitude_damping);
        }
    }
    return rho;
}

} // namespace cafqa
