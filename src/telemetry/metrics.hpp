/**
 * @file
 * Lock-light process-wide telemetry: named counters, gauges and
 * log-bucketed latency histograms collected in a `MetricsRegistry`,
 * RAII `TraceSpan` timing scopes, and two exporters — Prometheus text
 * exposition and a flat-JSON snapshot (built on the `common/text`
 * helpers, so it parses with `parse_flat_json_object`).
 *
 * Hot-path contract: after the one-time registration lookup, every
 * `Counter::add` / `Gauge::set` / `Histogram::observe` is a relaxed
 * atomic RMW — counters are sharded across per-thread slots so two
 * threads bumping the same counter do not ping-pong a cache line — and
 * the shards are merged only on scrape. `metrics_mutex` is taken only
 * to register a metric or to scrape. Because of that split, the one
 * rule call sites must follow is: NEVER call the registering accessors
 * (`counter()`, `gauge()`, `histogram()`, `set_callback_gauge()`)
 * while holding another named `cafqa::Mutex` — fetch the references up
 * front (constructor, function entry before any lock) and keep them;
 * the recording calls themselves are lock-free and safe anywhere,
 * including under locks and inside signal-adjacent paths.
 *
 * `CAFQA_TELEMETRY_OFF=1` in the environment (or `set_enabled(false)`)
 * turns every recording call into one relaxed load and a branch; the
 * overhead microbench (`bench/telemetry_overhead.cpp`) pins both the
 * instrumented and the stubbed cost against a committed baseline.
 *
 * This directory is also the sanctioned home of wall-clock reads
 * (`wall_timestamp_seconds`): the `wall-clock-in-logic` lint rule
 * exempts exactly `src/telemetry/`, nothing else.
 */
#ifndef CAFQA_TELEMETRY_METRICS_HPP
#define CAFQA_TELEMETRY_METRICS_HPP

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/thread_safety.hpp"

namespace cafqa::telemetry {

/** Label set of one series: (key, value) pairs. Stored and exported
 *  sorted by key, so label order at the call site never changes the
 *  series identity. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Global recording switch. Initialized once from the environment
 *  (`CAFQA_TELEMETRY_OFF=1` disables); flip at runtime with
 *  `set_enabled`. Scraping still works while disabled — the metrics
 *  simply stop moving. */
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/** Wall-clock UNIX timestamp in seconds (the one sanctioned
 *  `system_clock` read; everything that measures a *duration* uses
 *  `steady_clock`). */
double wall_timestamp_seconds();

/**
 * Monotonic counter. `add` hits one of `kSlots` cache-line-padded
 * per-thread-slot atomics (relaxed); `value` merges the slots. Exact
 * under any interleaving: every add lands in exactly one slot.
 */
class Counter
{
  public:
    static constexpr std::size_t kSlots = 16;

    Counter() = default;
    Counter(const Counter&) = delete;
    Counter& operator=(const Counter&) = delete;

    void add(std::uint64_t n = 1) noexcept;
    std::uint64_t value() const noexcept;

  private:
    struct alignas(64) Slot
    {
        std::atomic<std::uint64_t> value{0};
    };

    std::array<Slot, kSlots> slots_{};
};

/** Last-value gauge (queue depth, busy workers, resident bytes).
 *  `set` stores, `add` CAS-accumulates a signed delta. */
class Gauge
{
  public:
    Gauge() = default;
    Gauge(const Gauge&) = delete;
    Gauge& operator=(const Gauge&) = delete;

    void set(double value) noexcept;
    void add(double delta) noexcept;
    double value() const noexcept;

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Log-bucketed histogram: 8 sub-buckets per power-of-two octave from
 * `kMinValue` up, plus an underflow and an overflow bucket. The
 * geometry bounds the relative quantile error at 2^(1/8) - 1 (~9%),
 * far inside the CI perf-gate tolerance band. `observe` is one bucket
 * index computation plus two relaxed RMWs (bucket count, running sum).
 */
class Histogram
{
  public:
    /** Sub-buckets per octave (bucket width ratio 2^(1/8)). */
    static constexpr std::size_t kSubBuckets = 8;
    /** Octaves covered: [kMinValue, kMinValue * 2^kOctaves). */
    static constexpr std::size_t kOctaves = 34;
    /** Smallest finite bucket boundary. In milliseconds that is 1ns;
     *  the units are whatever the caller observes. */
    static constexpr double kMinValue = 1e-6;
    /** Bucket count: underflow + log buckets + overflow. */
    static constexpr std::size_t kBuckets = kSubBuckets * kOctaves + 2;

    Histogram() = default;
    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

    void observe(double value) noexcept;

    std::uint64_t count() const noexcept;
    double sum() const noexcept;

    /** Interpolated quantile estimate (q in [0, 1]; 0 with no
     *  samples). The estimate lands inside the bucket holding the
     *  nearest-rank sample, so its relative error against a sorted
     *  oracle is bounded by the bucket width ratio (~9%). */
    double percentile(double q) const noexcept;

    /** Bucket geometry — shared by the exporters and the oracle
     *  tests. `bucket_index` is boundary-exact: a value equal to a
     *  bucket's lower bound lands in that bucket. */
    static std::size_t bucket_index(double value) noexcept;
    static double bucket_lower(std::size_t index) noexcept;
    /** Upper bound; +infinity for the overflow bucket. */
    static double bucket_upper(std::size_t index) noexcept;

    /** Snapshot of the raw bucket counts (index -> count). */
    std::array<std::uint64_t, kBuckets> bucket_counts() const noexcept;

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
    std::atomic<double> sum_{0.0};
};

/**
 * RAII wall-time scope: measures `steady_clock` elapsed milliseconds
 * from construction and records them into `sink` on destruction (or
 * on an explicit `stop()`, which also returns the elapsed time — the
 * pipeline uses that to surface per-stage wall time on its observer
 * events). Timing always happens; only the histogram recording
 * respects the global enabled switch, so observer-visible timings do
 * not change when telemetry is off.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(Histogram& sink)
        : sink_(&sink), start_(std::chrono::steady_clock::now())
    {
    }

    ~TraceSpan() { stop(); }

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

    /** Record once and return the elapsed milliseconds; idempotent
     *  (later calls return 0 and record nothing). */
    double stop() noexcept;

  private:
    Histogram* sink_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * Named metric registry. `instance()` is the process-wide one every
 * subsystem reports into; fresh instances are constructible for
 * deterministic tests. Metric names follow the Prometheus grammar
 * (`[a-zA-Z_:][a-zA-Z0-9_:]*`); a name registered twice with
 * different types throws. Returned references stay valid for the
 * registry's lifetime (metrics are never removed — only callback
 * gauges, whose owners outlive no scrape they are part of, can be
 * cleared).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /** The process-wide registry. */
    static MetricsRegistry& instance();

    Counter& counter(const std::string& name, const Labels& labels = {},
                     const std::string& help = {})
        CAFQA_EXCLUDES(metrics_mutex_);
    Gauge& gauge(const std::string& name, const Labels& labels = {},
                 const std::string& help = {})
        CAFQA_EXCLUDES(metrics_mutex_);
    Histogram& histogram(const std::string& name,
                         const Labels& labels = {},
                         const std::string& help = {})
        CAFQA_EXCLUDES(metrics_mutex_);

    /**
     * Gauge whose value is pulled from `fn` at scrape time (queue
     * depth, cache residency). `fn` runs under `metrics_mutex`, so it
     * may take its owner's locks — every such acquisition is a
     * scrape-path lock edge and must be declared in the lock-order
     * manifest (`dynamic metrics_mutex -> ...`). Re-registering the
     * same series replaces the callback; owners whose lifetime ends
     * before the process (a stopped server) MUST `clear_callback_gauge`
     * before dying or a later scrape calls into freed state.
     */
    void set_callback_gauge(const std::string& name, const Labels& labels,
                            std::function<double()> fn,
                            const std::string& help = {})
        CAFQA_EXCLUDES(metrics_mutex_);
    void clear_callback_gauge(const std::string& name,
                              const Labels& labels)
        CAFQA_EXCLUDES(metrics_mutex_);

    /** Prometheus text exposition (families sorted by name, series by
     *  label block; `# HELP`/`# TYPE` once per family; label values
     *  escaped per the exposition format). */
    std::string prometheus() const CAFQA_EXCLUDES(metrics_mutex_);

    /** Flat-JSON snapshot: one top-level field per series, keyed by
     *  the rendered series name (`name{k="v",...}`); counters as
     *  integers, gauges as shortest-round-trip reals, histograms as a
     *  nested `{"count":..,"sum":..,"p50":..,"p90":..,"p95":..,
     *  "p99":..}` object. Deterministic for a given metric state. */
    std::string json() const CAFQA_EXCLUDES(metrics_mutex_);

  private:
    enum class Kind { Counter, Gauge, Histogram };

    struct Series
    {
        Labels labels; // sorted by key
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
        std::function<double()> callback;
    };

    struct Family
    {
        Kind kind = Kind::Counter;
        std::string help;
        /** Rendered label block -> series (ordered => deterministic
         *  exposition). */
        std::map<std::string, Series> series;
    };

    Family& family_locked(const std::string& name, Kind kind,
                          const std::string& help)
        CAFQA_REQUIRES(metrics_mutex_);
    Series& series_locked(Family& family, const Labels& labels)
        CAFQA_REQUIRES(metrics_mutex_);

    mutable Mutex metrics_mutex_{"metrics_mutex"};
    std::map<std::string, Family> families_
        CAFQA_GUARDED_BY(metrics_mutex_);
};

/** Render `name{k="v",...}` exactly as the exporters do (sorted keys,
 *  exposition-format escaping; bare `name` without labels) — the
 *  series key tests and scrapers look up. */
std::string render_series_name(const std::string& name,
                               const Labels& labels);

/** The value of sample `series` (exact rendered series name, labels
 *  included) in a Prometheus text body; nullopt when absent. */
std::optional<double>
find_prometheus_sample(const std::string& text, const std::string& series);

} // namespace cafqa::telemetry

#endif // CAFQA_TELEMETRY_METRICS_HPP
