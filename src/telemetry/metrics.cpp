#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/error.hpp"
#include "common/text.hpp"

namespace cafqa::telemetry {

namespace {

std::atomic<bool>&
enabled_flag()
{
    static std::atomic<bool> on{[] {
        const char* off = std::getenv("CAFQA_TELEMETRY_OFF");
        return off == nullptr || off[0] == '\0' || off == std::string("0");
    }()};
    return on;
}

/** Stable per-thread slot in [0, Counter::kSlots). */
std::size_t
thread_slot() noexcept
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t slot =
        next.fetch_add(1, std::memory_order_relaxed) % Counter::kSlots;
    return slot;
}

/** The log-bucket boundaries: boundary[i] = kMinValue * 2^(i/kSub),
 *  i in [0, kSub*kOctaves]. Bucket b in [1, kSub*kOctaves] covers
 *  [boundary[b-1], boundary[b]). */
const std::array<double, Histogram::kBuckets - 1>&
boundaries()
{
    static const std::array<double, Histogram::kBuckets - 1> table = [] {
        std::array<double, Histogram::kBuckets - 1> out{};
        for (std::size_t i = 0; i < out.size(); ++i) {
            out[i] = Histogram::kMinValue *
                     std::exp2(static_cast<double>(i) /
                               static_cast<double>(Histogram::kSubBuckets));
        }
        return out;
    }();
    return table;
}

void
atomic_add_double(std::atomic<double>& target, double delta) noexcept
{
    double seen = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(seen, seen + delta,
                                         std::memory_order_relaxed)) {
    }
}

bool
valid_metric_name(const std::string& name)
{
    if (name.empty()) {
        return false;
    }
    const auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_' || c == ':';
    };
    if (!head(name.front())) {
        return false;
    }
    return std::all_of(name.begin(), name.end(), [&](char c) {
        return head(c) || (c >= '0' && c <= '9');
    });
}

/** Prometheus exposition escaping for label values: backslash, quote
 *  and newline. */
std::string
escape_label_value(const std::string& value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

/** HELP text escaping: backslash and newline only. */
std::string
escape_help(const std::string& help)
{
    std::string out;
    out.reserve(help.size());
    for (const char c : help) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

Labels
sorted_labels(Labels labels)
{
    std::sort(labels.begin(), labels.end());
    return labels;
}

/** `{k="v",...}` over pre-sorted labels; "" when empty. An extra
 *  trailing label (`le` for histogram buckets) can be appended. */
std::string
label_block(const Labels& labels, const std::string& extra_key = {},
            const std::string& extra_value = {})
{
    if (labels.empty() && extra_key.empty()) {
        return {};
    }
    std::string out = "{";
    bool first = true;
    const auto append = [&](const std::string& key,
                            const std::string& value) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += key;
        out += "=\"";
        out += escape_label_value(value);
        out += '"';
    };
    for (const auto& [key, value] : labels) {
        append(key, value);
    }
    if (!extra_key.empty()) {
        append(extra_key, extra_value);
    }
    out += '}';
    return out;
}

/** A finite double rendered for exposition/JSON (callbacks could in
 *  principle return junk; clamp it to 0 instead of emitting "nan"). */
std::string
render_real(double value)
{
    if (!std::isfinite(value)) {
        return "0";
    }
    return format_real(value);
}

} // namespace

bool
enabled() noexcept
{
    return enabled_flag().load(std::memory_order_relaxed);
}

void
set_enabled(bool on) noexcept
{
    enabled_flag().store(on, std::memory_order_relaxed);
}

double
wall_timestamp_seconds()
{
    // The sanctioned wall-clock read (see the file comment in
    // metrics.hpp); durations everywhere else use steady_clock.
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

void
Counter::add(std::uint64_t n) noexcept
{
    if (!enabled()) {
        return;
    }
    slots_[thread_slot()].value.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t
Counter::value() const noexcept
{
    std::uint64_t total = 0;
    for (const Slot& slot : slots_) {
        total += slot.value.load(std::memory_order_relaxed);
    }
    return total;
}

void
Gauge::set(double value) noexcept
{
    if (!enabled()) {
        return;
    }
    value_.store(value, std::memory_order_relaxed);
}

void
Gauge::add(double delta) noexcept
{
    if (!enabled()) {
        return;
    }
    atomic_add_double(value_, delta);
}

double
Gauge::value() const noexcept
{
    return value_.load(std::memory_order_relaxed);
}

std::size_t
Histogram::bucket_index(double value) noexcept
{
    const auto& bounds = boundaries();
    if (!(value >= bounds.front())) {
        return 0; // underflow (negatives and NaN land here too)
    }
    if (value >= bounds.back()) {
        return kBuckets - 1; // overflow
    }
    const double octaves = std::log2(value / kMinValue);
    std::size_t index =
        1 + static_cast<std::size_t>(std::max(
                0.0, octaves * static_cast<double>(kSubBuckets)));
    index = std::min(index, kBuckets - 2);
    // log2 rounding can be off by one step at exact boundaries; the
    // table is the ground truth, so nudge until the invariant
    // bounds[index-1] <= value < bounds[index] holds.
    while (index > 1 && value < bounds[index - 1]) {
        --index;
    }
    while (index < kBuckets - 2 && value >= bounds[index]) {
        ++index;
    }
    return index;
}

double
Histogram::bucket_lower(std::size_t index) noexcept
{
    if (index == 0) {
        return 0.0;
    }
    return boundaries()[std::min(index, kBuckets - 1) - 1];
}

double
Histogram::bucket_upper(std::size_t index) noexcept
{
    if (index >= kBuckets - 1) {
        return std::numeric_limits<double>::infinity();
    }
    return boundaries()[index];
}

void
Histogram::observe(double value) noexcept
{
    if (!enabled()) {
        return;
    }
    counts_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    atomic_add_double(sum_, std::isfinite(value) ? value : 0.0);
}

std::uint64_t
Histogram::count() const noexcept
{
    std::uint64_t total = 0;
    for (const auto& bucket : counts_) {
        total += bucket.load(std::memory_order_relaxed);
    }
    return total;
}

double
Histogram::sum() const noexcept
{
    return sum_.load(std::memory_order_relaxed);
}

std::array<std::uint64_t, Histogram::kBuckets>
Histogram::bucket_counts() const noexcept
{
    std::array<std::uint64_t, kBuckets> out{};
    for (std::size_t i = 0; i < kBuckets; ++i) {
        out[i] = counts_[i].load(std::memory_order_relaxed);
    }
    return out;
}

double
Histogram::percentile(double q) const noexcept
{
    const auto snapshot = bucket_counts();
    std::uint64_t total = 0;
    for (const std::uint64_t n : snapshot) {
        total += n;
    }
    if (total == 0) {
        return 0.0;
    }
    q = std::clamp(q, 0.0, 1.0);
    // Nearest-rank (0-based) over the merged buckets; interpolate
    // linearly inside the bucket that holds the rank.
    const double rank = q * static_cast<double>(total - 1);
    const auto target = static_cast<std::uint64_t>(rank + 0.5);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        if (snapshot[b] == 0) {
            continue;
        }
        if (cumulative + snapshot[b] > target) {
            const double lower = bucket_lower(b);
            const double upper = bucket_upper(b);
            if (!std::isfinite(upper)) {
                return lower; // overflow bucket: best available bound
            }
            const double within =
                (static_cast<double>(target - cumulative) + 0.5) /
                static_cast<double>(snapshot[b]);
            return lower + (upper - lower) * within;
        }
        cumulative += snapshot[b];
    }
    return bucket_lower(kBuckets - 1);
}

double
TraceSpan::stop() noexcept
{
    if (sink_ == nullptr) {
        return 0.0;
    }
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    sink_->observe(elapsed_ms);
    sink_ = nullptr;
    return elapsed_ms;
}

MetricsRegistry&
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Family&
MetricsRegistry::family_locked(const std::string& name, Kind kind,
                               const std::string& help)
{
    CAFQA_REQUIRE(valid_metric_name(name),
                  "invalid metric name \"" + name + "\"");
    const auto [it, inserted] = families_.try_emplace(name);
    if (inserted) {
        it->second.kind = kind;
        it->second.help = help;
    } else {
        CAFQA_REQUIRE(it->second.kind == kind,
                      "metric \"" + name +
                          "\" already registered with a different type");
        if (it->second.help.empty() && !help.empty()) {
            it->second.help = help;
        }
    }
    return it->second;
}

MetricsRegistry::Series&
MetricsRegistry::series_locked(Family& family, const Labels& labels)
{
    Labels sorted = sorted_labels(labels);
    for (const auto& [key, value] : sorted) {
        CAFQA_REQUIRE(valid_metric_name(key),
                      "invalid label name \"" + key + "\"");
    }
    const auto [it, inserted] =
        family.series.try_emplace(label_block(sorted));
    if (inserted) {
        it->second.labels = std::move(sorted);
    }
    return it->second;
}

Counter&
MetricsRegistry::counter(const std::string& name, const Labels& labels,
                         const std::string& help)
{
    MutexLock lock(metrics_mutex_);
    Series& series =
        series_locked(family_locked(name, Kind::Counter, help), labels);
    if (!series.counter) {
        series.counter = std::make_unique<Counter>();
    }
    return *series.counter;
}

Gauge&
MetricsRegistry::gauge(const std::string& name, const Labels& labels,
                       const std::string& help)
{
    MutexLock lock(metrics_mutex_);
    Series& series =
        series_locked(family_locked(name, Kind::Gauge, help), labels);
    CAFQA_REQUIRE(!series.callback,
                  "metric \"" + name +
                      "\" is a callback gauge for these labels");
    if (!series.gauge) {
        series.gauge = std::make_unique<Gauge>();
    }
    return *series.gauge;
}

Histogram&
MetricsRegistry::histogram(const std::string& name, const Labels& labels,
                           const std::string& help)
{
    MutexLock lock(metrics_mutex_);
    Series& series =
        series_locked(family_locked(name, Kind::Histogram, help), labels);
    if (!series.histogram) {
        series.histogram = std::make_unique<Histogram>();
    }
    return *series.histogram;
}

void
MetricsRegistry::set_callback_gauge(const std::string& name,
                                    const Labels& labels,
                                    std::function<double()> fn,
                                    const std::string& help)
{
    CAFQA_REQUIRE(fn != nullptr, "callback gauge needs a callable");
    MutexLock lock(metrics_mutex_);
    Series& series =
        series_locked(family_locked(name, Kind::Gauge, help), labels);
    CAFQA_REQUIRE(!series.gauge,
                  "metric \"" + name +
                      "\" is a plain gauge for these labels");
    series.callback = std::move(fn);
}

void
MetricsRegistry::clear_callback_gauge(const std::string& name,
                                      const Labels& labels)
{
    MutexLock lock(metrics_mutex_);
    const auto family = families_.find(name);
    if (family == families_.end()) {
        return;
    }
    const auto series =
        family->second.series.find(label_block(sorted_labels(labels)));
    if (series == family->second.series.end() ||
        !series->second.callback) {
        return;
    }
    family->second.series.erase(series);
    if (family->second.series.empty()) {
        families_.erase(family);
    }
}

std::string
MetricsRegistry::prometheus() const
{
    MutexLock lock(metrics_mutex_);
    std::string out;
    for (const auto& [name, family] : families_) {
        if (!family.help.empty()) {
            out += "# HELP " + name + " " + escape_help(family.help) + "\n";
        }
        out += "# TYPE " + name + " ";
        switch (family.kind) {
          case Kind::Counter: out += "counter"; break;
          case Kind::Gauge: out += "gauge"; break;
          case Kind::Histogram: out += "histogram"; break;
        }
        out += '\n';
        for (const auto& [block, series] : family.series) {
            if (series.counter) {
                out += name + block + " " +
                       std::to_string(series.counter->value()) + "\n";
            } else if (series.gauge) {
                out += name + block + " " +
                       render_real(series.gauge->value()) + "\n";
            } else if (series.callback) {
                // Scrape-path callback: runs under metrics_mutex, so
                // any lock it takes is a declared `dynamic
                // metrics_mutex -> ...` manifest edge.
                out += name + block + " " +
                       render_real(series.callback()) + "\n";
            } else if (series.histogram) {
                const auto counts = series.histogram->bucket_counts();
                std::uint64_t cumulative = 0;
                // The overflow bucket is folded into the mandatory
                // +Inf line below, never emitted on its own.
                for (std::size_t b = 0; b + 1 < Histogram::kBuckets;
                     ++b) {
                    if (counts[b] == 0) {
                        continue; // sparse: cumulative counts stay valid
                    }
                    cumulative += counts[b];
                    out += name + "_bucket" +
                           label_block(series.labels, "le",
                                       format_real(
                                           Histogram::bucket_upper(b))) +
                           " " + std::to_string(cumulative) + "\n";
                }
                cumulative += counts[Histogram::kBuckets - 1];
                out += name + "_bucket" +
                       label_block(series.labels, "le", "+Inf") + " " +
                       std::to_string(cumulative) + "\n";
                out += name + "_sum" + block + " " +
                       render_real(series.histogram->sum()) + "\n";
                out += name + "_count" + block + " " +
                       std::to_string(cumulative) + "\n";
            }
        }
    }
    return out;
}

std::string
MetricsRegistry::json() const
{
    MutexLock lock(metrics_mutex_);
    std::string out = "{";
    bool first = true;
    for (const auto& [name, family] : families_) {
        for (const auto& [block, series] : family.series) {
            if (!first) {
                out += ',';
            }
            first = false;
            out += json_quote(name + block) + ":";
            if (series.counter) {
                out += std::to_string(series.counter->value());
            } else if (series.gauge) {
                out += render_real(series.gauge->value());
            } else if (series.callback) {
                out += render_real(series.callback());
            } else if (series.histogram) {
                const Histogram& h = *series.histogram;
                out += "{\"count\":" + std::to_string(h.count()) +
                       ",\"sum\":" + render_real(h.sum()) +
                       ",\"p50\":" + render_real(h.percentile(0.50)) +
                       ",\"p90\":" + render_real(h.percentile(0.90)) +
                       ",\"p95\":" + render_real(h.percentile(0.95)) +
                       ",\"p99\":" + render_real(h.percentile(0.99)) + "}";
            } else {
                out += "0";
            }
        }
    }
    out += '}';
    return out;
}

std::string
render_series_name(const std::string& name, const Labels& labels)
{
    return name + label_block(sorted_labels(labels));
}

std::optional<double>
find_prometheus_sample(const std::string& text, const std::string& series)
{
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos) {
            end = text.size();
        }
        const std::string_view line(text.data() + start, end - start);
        if (line.size() > series.size() + 1 &&
            line.substr(0, series.size()) == series &&
            line[series.size()] == ' ') {
            return parse_real_token(
                std::string(line.substr(series.size() + 1)));
        }
        start = end + 1;
    }
    return std::nullopt;
}

} // namespace cafqa::telemetry
