// Regenerates paper Fig. 14: post-CAFQA VQA tuning for LiH at 4.8 A.
// Four runs: {CAFQA-init, HF-init} x {noise-free, noisy machine}. The
// paper's headline: CAFQA initialization converges ~2.5x faster than HF
// initialization on both backends.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/evaluator.hpp"
#include "common/table.hpp"
#include "core/clifford_ansatz.hpp"
#include "core/vqa_tuner.hpp"

namespace {

using namespace cafqa;
using namespace cafqa::bench;

void
print_fig14()
{
    banner("Fig. 14: post-CAFQA VQA tuning for LiH @ 4.8 A");

    const auto system = problems::make_molecular_system("LiH", 4.8);
    VqaObjective objective;
    objective.hamiltonian = system.hamiltonian;
    const double exact = exact_energy(system.hamiltonian);

    const CafqaResult cafqa = run_molecular_cafqa(system, 1414);
    const std::vector<double> cafqa_init =
        steps_to_angles(cafqa.best_steps);
    const std::vector<double> hf_init = steps_to_angles(
        efficient_su2_bitstring_steps(system.num_qubits, system.hf_bits));

    // Milder noise than the Fig. 5 surrogates: Fig. 14's noisy curves
    // land within ~1e-2 Hartree of the exact answer.
    const NoiseModel noisy{"nisq-surrogate", 0.002, 0.015, 0.002};

    VqaTunerOptions tuner;
    tuner.iterations = pick(400, 1000);

    struct Run
    {
        std::string label;
        VqaTuneResult result;
    };
    std::vector<Run> runs;
    {
        VqaTunerOptions ideal = tuner;
        ideal.seed = 11;
        runs.push_back({"CAFQA noise-free",
                        tune_vqa(system.ansatz, objective, cafqa_init,
                                 ideal)});
        ideal.seed = 12;
        runs.push_back({"HF noise-free",
                        tune_vqa(system.ansatz, objective, hf_init,
                                 ideal)});
        VqaTunerOptions noisy_opts = tuner;
        noisy_opts.noise = noisy;
        noisy_opts.seed = 13;
        runs.push_back({"CAFQA noisy",
                        tune_vqa(system.ansatz, objective, cafqa_init,
                                 noisy_opts)});
        noisy_opts.seed = 14;
        runs.push_back({"HF noisy",
                        tune_vqa(system.ansatz, objective, hf_init,
                                 noisy_opts)});
    }

    Table trace("Energy vs tuning iteration (Hartree)");
    std::vector<std::string> header = {"Iteration"};
    for (const auto& run : runs) {
        header.push_back(run.label);
    }
    header.push_back("Exact");
    trace.set_header(header);
    // trace[0] is the initialization's own energy; trace[i] the value
    // after tuning step i.
    const std::size_t total = runs[0].result.trace.size();
    const std::size_t stride = std::max<std::size_t>(1, total / 25);
    for (std::size_t i = 0; i < total; i += stride) {
        std::vector<std::string> row = {std::to_string(i)};
        for (const auto& run : runs) {
            row.push_back(Table::num(run.result.trace[i], 5));
        }
        row.push_back(Table::num(exact, 5));
        trace.add_row(row);
    }
    trace.print(std::cout);

    Table summary("Convergence (iterations to within 5e-3 Ha of final)");
    summary.set_header({"Run", "InitialEnergy", "FinalEnergy",
                        "IterationsToConverge"});
    std::vector<std::size_t> iters;
    for (const auto& run : runs) {
        const std::size_t it =
            iterations_to_converge(run.result.trace, 5e-3);
        iters.push_back(it);
        summary.add_row({run.label,
                         Table::num(run.result.trace.front(), 5),
                         Table::num(run.result.final_value, 5),
                         std::to_string(it)});
    }
    summary.print(std::cout);

    const double ideal_speedup =
        static_cast<double>(iters[1]) / std::max<std::size_t>(iters[0], 1);
    const double noisy_speedup =
        static_cast<double>(iters[3]) / std::max<std::size_t>(iters[2], 1);
    Table speedup("CAFQA-vs-HF convergence speedup");
    speedup.set_header({"Backend", "Speedup(x)", "Paper reports"});
    speedup.add_row({"noise-free", Table::num(ideal_speedup, 2), "~2.5x"});
    speedup.add_row({"noisy", Table::num(noisy_speedup, 2), "~2.5x"});
    speedup.print(std::cout);
}

void
BM_NoisySpsaStep(benchmark::State& state)
{
    static const auto system = problems::make_molecular_system("LiH", 4.8);
    const NoiseModel noisy{"nisq-surrogate", 0.002, 0.015, 0.002};
    NoisyEvaluator evaluator(system.ansatz, noisy);
    std::vector<double> params(system.ansatz.num_params(), 0.3);
    for (auto _ : state) {
        evaluator.prepare(params);
        benchmark::DoNotOptimize(
            evaluator.expectation(system.hamiltonian));
        params[0] += 0.01;
    }
}
BENCHMARK(BM_NoisySpsaStep)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char** argv)
{
    print_fig14();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
