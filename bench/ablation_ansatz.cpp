// Ablation: ansatz structure choices (paper Sections 2.2 and 8). The
// paper builds on a hardware-efficient EfficientSU2 circuit with one
// layer of linear entanglement; this bench varies the number of
// entanglement layers (reps) and the rotation blocks and reports the
// Clifford-space accuracy vs the parameter count — the trade-off the
// "Beyond a hardware-efficient ansatz" discussion refers to.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "circuit/efficient_su2.hpp"
#include "common/table.hpp"

namespace {

using namespace cafqa;
using namespace cafqa::bench;

void
evaluate_variant(const std::string& label, const Circuit& ansatz,
                 const problems::MolecularSystem& system, double exact,
                 std::uint64_t seed, Table& table)
{
    const VqaObjective objective = problems::make_objective(system);
    CafqaOptions options = cafqa_budget(system.num_qubits, seed);
    // HF seeding requires the default layout; variants search unseeded,
    // so give them the same extra budget uniformly.
    options.warmup += 50;
    options.iterations += 50;
    const CafqaResult result = run_cafqa(ansatz, objective, options);
    table.add_row({label, std::to_string(ansatz.num_params()),
                   Table::sci(std::max(result.best_energy - exact, 1e-10),
                              2),
                   std::to_string(result.evaluations_to_best)});
}

void
print_ablation()
{
    banner("Ablation: hardware-efficient ansatz structure");

    const auto system = problems::make_molecular_system("LiH", 3.4);
    const double exact = exact_energy(system.hamiltonian);
    std::cout << "LiH @ 3.4 A, exact = " << exact << " Ha, HF error = "
              << Table::sci(system.hf_energy - exact, 2) << " Ha\n\n";

    Table table("Clifford-space accuracy by ansatz variant");
    table.set_header({"Variant", "#Params", "CAFQA error(Ha)",
                      "EvalsToBest"});

    const std::size_t n = system.num_qubits;
    evaluate_variant("RY+RZ, reps=1 (paper)", make_efficient_su2(n),
                     system, exact, 81, table);

    EfficientSu2Options reps2;
    reps2.reps = 2;
    evaluate_variant("RY+RZ, reps=2", make_efficient_su2(n, reps2), system,
                     exact, 82, table);

    EfficientSu2Options ry_only;
    ry_only.rotation_blocks = {GateKind::Ry};
    evaluate_variant("RY only, reps=1", make_efficient_su2(n, ry_only),
                     system, exact, 83, table);

    EfficientSu2Options rx_rz;
    rx_rz.rotation_blocks = {GateKind::Rx, GateKind::Rz};
    evaluate_variant("RX+RZ, reps=1", make_efficient_su2(n, rx_rz), system,
                     exact, 84, table);

    EfficientSu2Options no_final;
    no_final.final_rotation_layer = false;
    evaluate_variant("RY+RZ, no final layer",
                     make_efficient_su2(n, no_final), system, exact, 85,
                     table);

    table.print(std::cout);
    std::cout << "\nLarger parameter counts enlarge the reachable"
                 " stabilizer set but inflate the 4^k search space — the"
                 " trade-off behind the paper's reps=1 default.\n";
}

void
BM_AnsatzConstruction(benchmark::State& state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(make_efficient_su2(12).num_params());
    }
}
BENCHMARK(BM_AnsatzConstruction);

} // namespace

int
main(int argc, char** argv)
{
    print_ablation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
