// Regenerates paper Fig. 9: LiH dissociation curves (energy, accuracy,
// correlation energy recovered) for CAFQA vs Hartree-Fock vs Exact.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/text.hpp"

namespace {

using namespace cafqa;
using namespace cafqa::bench;

void
print_fig09()
{
    banner("Fig. 9: LiH dissociation curves");

    const auto info = problems::molecule_info("LiH");
    const auto bonds = linspace(info.min_bond_length, info.max_bond_length,
                                pick(7, 14));

    Table energy("(a) LiH energy (Hartree)");
    energy.set_header({"Bond(A)", "HF", "CAFQA", "Exact"});
    Table accuracy("(b) LiH accuracy: |E - Exact| (Hartree)");
    accuracy.set_header({"Bond(A)", "HF", "CAFQA"});
    Table correlation("(c) LiH correlation energy recovered (%)");
    correlation.set_header({"Bond(A)", "CAFQA"});

    for (const double bond : bonds) {
        const auto problem = problems::make_problem(
            "molecule:LiH?bond=" + format_real(bond));
        const CafqaResult cafqa = run_problem_cafqa(
            problem, 2000 + static_cast<std::uint64_t>(bond * 100));
        const double exact = exact_energy(problem.hamiltonian());
        const double hf = problem.reference_energy.value();

        energy.add_row({Table::num(bond, 2), Table::num(hf, 5),
                        Table::num(cafqa.best_energy, 5),
                        Table::num(exact, 5)});
        accuracy.add_row(
            {Table::num(bond, 2), Table::sci(std::abs(hf - exact), 2),
             Table::sci(std::max(std::abs(cafqa.best_energy - exact), 1e-10),
                        2)});
        correlation.add_row(
            {Table::num(bond, 2),
             Table::num(correlation_recovered_percent(
                            hf, cafqa.best_energy, exact),
                        1)});
    }

    energy.print(std::cout);
    accuracy.print(std::cout);
    correlation.print(std::cout);
}

void
BM_LiHExactReference(benchmark::State& state)
{
    static const auto system = problems::make_molecular_system("LiH", 2.4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            lanczos_ground_state(system.hamiltonian).energy);
    }
}
BENCHMARK(BM_LiHExactReference)->Unit(benchmark::kMillisecond)->Iterations(5);

} // namespace

int
main(int argc, char** argv)
{
    print_fig09();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
