// Regenerates paper Table 1: the VQA applications and their
// characteristics (qubits, equilibrium / range bond lengths, molecular
// orbital counts). Static metadata is printed for all molecules; the
// light molecules are additionally built end-to-end to verify the qubit
// counts against the actual pipeline.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/table.hpp"

namespace {

using namespace cafqa;
using namespace cafqa::bench;

void
print_table1()
{
    banner("Table 1: VQA applications and their characteristics");

    // Paper order (H2-S1 is realized as the H10 chain; see DESIGN.md).
    const std::vector<std::string> order = {
        "H2", "LiH", "H2O", "H6", "N2", "Cr2", "NaH", "H10", "BeH2"};

    Table table("Table 1");
    table.set_header({"App", "#Qubits", "BondLen(Eqbm,A)", "BondLen(Range,A)",
                      "Orbitals Total/Used"});
    for (const auto& name : order) {
        const auto info = problems::molecule_info(name);
        table.add_row({
            name == "H10" ? "H2-S1 (as H10)" : name,
            std::to_string(info.num_qubits),
            Table::num(info.equilibrium_bond_length, 2),
            Table::num(info.min_bond_length, 2) + " - " +
                Table::num(info.max_bond_length, 2),
            std::to_string(info.total_orbitals) + " / " +
                std::to_string(info.used_orbitals),
        });
    }
    table.print(std::cout);

    // Pipeline verification on the fast subset (paper scale: all but
    // Cr2, whose full build is exercised by the fig12 bench).
    std::vector<std::string> verify = {"H2", "LiH", "H6"};
    if (scale() == Scale::Paper) {
        verify = {"H2", "LiH", "H2O", "H6", "N2", "NaH", "H10", "BeH2"};
    }
    Table check("Pipeline verification (built end-to-end)");
    check.set_header({"App", "Qubits(built)", "SCF converged", "HF (Ha)",
                      "Hamiltonian terms"});
    for (const auto& name : verify) {
        const auto info = problems::molecule_info(name);
        const auto system = problems::make_molecular_system(
            name, info.equilibrium_bond_length);
        check.add_row({
            name,
            std::to_string(system.num_qubits),
            system.scf_converged ? "yes" : "NO",
            Table::num(system.hf_energy, 6),
            std::to_string(system.hamiltonian.num_terms()),
        });
    }
    check.print(std::cout);
}

void
BM_BuildH2System(benchmark::State& state)
{
    for (auto _ : state) {
        auto system = problems::make_molecular_system("H2", 0.74);
        benchmark::DoNotOptimize(system.hamiltonian.num_terms());
    }
}
BENCHMARK(BM_BuildH2System)->Unit(benchmark::kMillisecond)->Iterations(3);

void
BM_BuildLiHSystem(benchmark::State& state)
{
    for (auto _ : state) {
        auto system = problems::make_molecular_system("LiH", 1.6);
        benchmark::DoNotOptimize(system.hamiltonian.num_terms());
    }
}
BENCHMARK(BM_BuildLiHSystem)->Unit(benchmark::kMillisecond)->Iterations(3);

} // namespace

int
main(int argc, char** argv)
{
    print_table1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
