// Portfolio search bench: the three acceptance claims of the search
// orchestration subsystem, on the paper's molecules plus one MaxCut.
//
//  (a) racing "portfolio:anneal+bayes+random" (per-arm budgets, so
//      every arm runs its solo trajectory) reaches at least the single
//      best arm's energy — without knowing in advance which strategy
//      wins — for no more wall-clock than trying the three arms
//      sequentially (and, with one core per arm, for roughly the best
//      arm's wall-clock alone);
//  (b) parallel tempering beats plain annealing on evaluations to the
//      best known Clifford value on LiH (the ladder escapes local
//      minima the single-temperature schedule gets stuck in; absolute
//      chemical accuracy is out of reach for the reduced 4-qubit LiH
//      ansatz, so nearness to the best known assignment is the
//      operative metric);
//  (c) warm-starting each dissociation-scan point from its left
//      neighbor's best Clifford assignment cuts total evaluations and
//      evaluations-to-accuracy versus independent cold searches.
//
// Everything is seeded: the portfolio is run twice and checked
// bit-identical before any numbers are reported. Emits
// BENCH_portfolio.json (override with --json <path>) so CI can archive
// a perf baseline and gate regressions with bench_check.

#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <memory>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/text.hpp"
#include "core/batch_runner.hpp"
#include "core/evaluator.hpp"
#include "core/run_spec.hpp"
#include "opt/optimizer_registry.hpp"

namespace {

using namespace cafqa;
using namespace cafqa::bench;

std::string json_lines; // accumulated metric records for the JSON dump

void
json_metric(const std::string& name, double value)
{
    if (!json_lines.empty()) {
        json_lines += ",\n  ";
    }
    json_lines += json_quote(name) + ": " + format_real(value);
}

/** Budget split matching the ablation bench: "bayes" halves into
 *  warm-up + model-guided, everything else runs off the criteria. */
OptimizerConfig
strategy_config(const std::string& kind, std::size_t budget,
                std::uint64_t seed)
{
    OptimizerConfig config = optimizer_config(kind);
    config.seed = seed;
    config.bayes.warmup = budget / 2;
    config.bayes.iterations = budget - budget / 2;
    config.anneal.initial_temperature = 0.5;
    config.anneal.final_temperature = 1e-3;
    return config;
}

std::string
evals_to_accuracy(const OptimizeOutcome& outcome, double exact)
{
    for (std::size_t i = 0; i < outcome.best_trace.size(); ++i) {
        if (outcome.best_trace[i] <= exact + chemical_accuracy) {
            return std::to_string(i + 1);
        }
    }
    return "-";
}

bool
identical(const OptimizeOutcome& a, const OptimizeOutcome& b)
{
    return a.history == b.history && a.best_config == b.best_config &&
           a.best_value == b.best_value &&
           a.stop_reason == b.stop_reason;
}

/** Claim (a) on one problem: each arm sequentially, then the race. */
void
race_on(const std::string& problem_key, std::uint64_t seed,
        std::size_t budget, const std::string& json_prefix)
{
    const auto problem = problems::make_problem(problem_key);
    CliffordEvaluator evaluator(problem.ansatz);
    auto objective_fn = [&](const std::vector<int>& steps) {
        evaluator.prepare(steps);
        return problem.objective.evaluate(evaluator);
    };
    const DiscreteSpace space = clifford_search_space(problem.ansatz);
    const double exact = exact_energy(problem.hamiltonian());

    StoppingCriteria criteria;
    criteria.max_evaluations = budget;
    SearchContext context;
    context.seed_configs = problem.seed_steps;
    // The concurrent-evaluation path: each arm mints its own evaluator
    // (the pipeline does the same with clone()d backends).
    context.objective_factory = [&problem]() -> DiscreteObjective {
        auto eval =
            std::make_shared<CliffordEvaluator>(problem.ansatz);
        return [eval, &problem](const std::vector<int>& steps) {
            eval->prepare(steps);
            return problem.objective.evaluate(*eval);
        };
    };

    Table table(problem_key + ", " + std::to_string(budget) +
                "-evaluation budget");
    table.set_header(
        {"Strategy", "Error(Ha)", "EvalsToChemAcc", "Wall(ms)"});

    const std::vector<std::string> arms = {"anneal", "bayes", "random"};
    double best_arm_value = 0.0;
    double best_arm_wall = 0.0;
    double sequential_wall = 0.0;
    bool first_arm = true;
    for (std::size_t i = 0; i < arms.size(); ++i) {
        // Seed offset mirrors the portfolio's own arm seeding, so the
        // sequential baseline runs the exact arms the race runs.
        const auto optimizer = make_discrete_optimizer(
            strategy_config(arms[i], budget, seed + i));
        const auto start = std::chrono::steady_clock::now();
        const OptimizeOutcome outcome =
            optimizer->minimize(objective_fn, space, criteria, context);
        const double wall =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        sequential_wall += wall;
        if (first_arm || outcome.best_value < best_arm_value) {
            first_arm = false;
            best_arm_value = outcome.best_value;
            best_arm_wall = wall;
        }
        table.add_row(
            {arms[i],
             Table::sci(std::max(outcome.best_value - exact, 1e-10), 2),
             evals_to_accuracy(outcome, exact), Table::num(wall, 1)});
    }

    const auto portfolio = make_discrete_optimizer(
        strategy_config("portfolio:anneal+bayes+random", budget, seed));
    const auto start = std::chrono::steady_clock::now();
    const OptimizeOutcome raced =
        portfolio->minimize(objective_fn, space, criteria, context);
    const double raced_wall =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    const OptimizeOutcome again =
        portfolio->minimize(objective_fn, space, criteria, context);
    table.add_row(
        {"portfolio (race)",
         Table::sci(std::max(raced.best_value - exact, 1e-10), 2),
         evals_to_accuracy(raced, exact), Table::num(raced_wall, 1)});
    table.print(std::cout);

    std::cout << "  deterministic re-run: "
              << (identical(raced, again) ? "bit-identical"
                                          : "MISMATCH (bug)")
              << "; race best " << Table::num(raced.best_value, 6)
              << " vs sequential best arm "
              << Table::num(best_arm_value, 6) << "\n  race wall "
              << Table::num(raced_wall, 1) << " ms vs "
              << Table::num(sequential_wall, 1)
              << " ms trying all three arms sequentially ("
              << Table::num(best_arm_wall, 1)
              << " ms for the winning arm alone — the race's floor"
                 " given one core per arm)\n\n";
    json_metric(json_prefix + "_race_wall_ms", raced_wall);
    json_metric(json_prefix + "_sequential_wall_ms", sequential_wall);
    json_metric(json_prefix + "_best_arm_wall_ms", best_arm_wall);
    json_metric(json_prefix + "_race_energy_gap",
                raced.best_value - best_arm_value);
}

/** Claim (b): tempering vs plain annealing on LiH, seed-averaged.
 *  The reduced 4-qubit LiH ansatz cannot represent the ground state
 *  to absolute chemical accuracy at this geometry, so the metric is
 *  evaluations to within chemical accuracy of the best Clifford value
 *  either strategy ever finds (a miss is censored at the budget). */
void
tempering_vs_anneal()
{
    const auto problem = problems::make_problem("molecule:LiH?bond=3.4");
    CliffordEvaluator evaluator(problem.ansatz);
    auto objective_fn = [&](const std::vector<int>& steps) {
        evaluator.prepare(steps);
        return problem.objective.evaluate(evaluator);
    };
    const DiscreteSpace space = clifford_search_space(problem.ansatz);
    const double exact = exact_energy(problem.hamiltonian());
    const std::size_t budget = pick(400, 2000);
    const std::vector<std::uint64_t> seeds = {71, 7, 13, 29, 42};

    StoppingCriteria criteria;
    criteria.max_evaluations = budget;
    SearchContext context;
    context.seed_configs = problem.seed_steps;

    const std::vector<std::string> kinds = {"anneal", "tempering"};
    std::vector<std::vector<OptimizeOutcome>> outcomes(kinds.size());
    double best_known = 0.0;
    bool first = true;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
        for (const std::uint64_t seed : seeds) {
            const auto optimizer = make_discrete_optimizer(
                strategy_config(kinds[k], budget, seed));
            outcomes[k].push_back(optimizer->minimize(
                objective_fn, space, criteria, context));
            if (first || outcomes[k].back().best_value < best_known) {
                first = false;
                best_known = outcomes[k].back().best_value;
            }
        }
    }

    Table table("LiH @ 3.4 A: tempering vs anneal, " +
                std::to_string(budget) + " evaluations, " +
                std::to_string(seeds.size()) + " seeds");
    table.set_header({"Strategy", "MeanError(Ha)", "SeedsAtBestKnown",
                      "MeanEvalsToBestKnown"});
    for (std::size_t k = 0; k < kinds.size(); ++k) {
        double error_sum = 0.0;
        std::size_t hits = 0;
        double evals_sum = 0.0;
        for (const OptimizeOutcome& outcome : outcomes[k]) {
            error_sum += outcome.best_value - exact;
            std::size_t evals = budget; // censored: never got close
            for (std::size_t i = 0; i < outcome.best_trace.size();
                 ++i) {
                if (outcome.best_trace[i] <=
                    best_known + chemical_accuracy) {
                    evals = i + 1;
                    ++hits;
                    break;
                }
            }
            evals_sum += static_cast<double>(evals);
        }
        const double mean_evals =
            evals_sum / static_cast<double>(seeds.size());
        table.add_row(
            {kinds[k],
             Table::sci(error_sum / static_cast<double>(seeds.size()),
                        2),
             std::to_string(hits) + "/" + std::to_string(seeds.size()),
             Table::num(mean_evals, 1)});
        json_metric("lih_" + kinds[k] + "_mean_evals_to_best_known",
                    mean_evals);
    }
    table.print(std::cout);
    std::cout << "  Expected: the temperature ladder reaches the best"
                 " known Clifford value on more seeds, and in fewer"
                 " evaluations, than the single annealing schedule.\n\n";
}

/** Claim (c): warm vs cold dissociation scan (the example's workflow,
 *  sized for a bench run). */
void
warm_vs_cold_scan()
{
    const std::size_t points = pick(5, 12);
    const std::size_t warmup = pick(40, 300);
    const std::size_t iterations = pick(60, 500);

    const auto scan = [&](bool warm) {
        std::vector<RunSpec> specs;
        const auto info = problems::molecule_info("H2");
        const std::vector<double> bonds = linspace(
            info.min_bond_length, info.max_bond_length, points);
        for (std::size_t i = 0; i < points; ++i) {
            RunSpec spec;
            spec.problem =
                "molecule:H2?bond=" + format_real(bonds[i]);
            spec.warmup = warmup;
            spec.iterations = iterations;
            spec.seed = 3 + i;
            specs.push_back(std::move(spec));
        }
        BatchOptions options;
        options.concurrency = 1;
        BatchRunner runner(options);
        if (warm) {
            runner.set_warm_start(
                [](std::size_t index, const RunSpec&,
                   const std::vector<RunRecord>& records)
                    -> std::vector<int> {
                    if (index == 0 || !records[index - 1].ok) {
                        return {};
                    }
                    return records[index - 1].best_steps;
                });
        }
        return runner.run(specs);
    };

    Table table("H2 dissociation scan, " + std::to_string(points) +
                " points: warm start vs cold");
    table.set_header({"Mode", "TotalEvals", "MeanEvalsToChemAcc",
                      "PointsAtChemAcc"});
    for (const bool warm : {false, true}) {
        const std::vector<RunRecord> records = scan(warm);
        std::size_t total = 0;
        std::size_t hits = 0;
        std::size_t hit_evals = 0;
        for (const RunRecord& record : records) {
            total += record.evaluations;
            if (record.evals_to_accuracy.has_value()) {
                ++hits;
                hit_evals += *record.evals_to_accuracy;
            }
        }
        table.add_row(
            {warm ? "warm" : "cold", std::to_string(total),
             hits > 0 ? Table::num(static_cast<double>(hit_evals) /
                                       static_cast<double>(hits),
                                   1)
                      : "-",
             std::to_string(hits) + "/" + std::to_string(points)});
        json_metric(warm ? "scan_warm_mean_evals_to_acc"
                         : "scan_cold_mean_evals_to_acc",
                    hits > 0 ? static_cast<double>(hit_evals) /
                                   static_cast<double>(hits)
                             : 0.0);
    }
    table.print(std::cout);
    std::cout << "  Expected: warm reaches chemical accuracy in fewer"
                 " evaluations per point (the neighbor's optimum is"
                 " evaluated right after the HF seed).\n\n";
}

void
print_portfolio_bench()
{
    banner("Portfolio search, parallel tempering and warm-start "
           "transfer");
    // Bond 2.8 is the shortest H2 geometry where the Clifford optimum
    // sits within chemical accuracy of exact, so the accuracy column
    // is meaningful.
    race_on("molecule:H2?bond=2.8", 71, pick(240, 1200), "h2");
    race_on("molecule:LiH?bond=3.4", 71, pick(300, 1500), "lih");
    race_on("maxcut:ring-8", 71, pick(240, 1200), "maxcut");
    tempering_vs_anneal();
    warm_vs_cold_scan();
}

void
BM_PortfolioRace(benchmark::State& state)
{
    const auto problem = problems::make_problem("molecule:H2?bond=2.2");
    CliffordEvaluator evaluator(problem.ansatz);
    auto objective_fn = [&](const std::vector<int>& steps) {
        evaluator.prepare(steps);
        return problem.objective.evaluate(evaluator);
    };
    const DiscreteSpace space = clifford_search_space(problem.ansatz);
    StoppingCriteria criteria;
    criteria.max_evaluations = 96;
    for (auto _ : state) {
        const auto portfolio = make_discrete_optimizer(
            strategy_config("portfolio:anneal+random", 96, 5));
        benchmark::DoNotOptimize(
            portfolio->minimize(objective_fn, space, criteria));
    }
}
BENCHMARK(BM_PortfolioRace);

} // namespace

int
main(int argc, char** argv)
{
    std::string json_path = "BENCH_portfolio.json";
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" && i + 1 < argc) {
            json_path = argv[i + 1];
            // Swallow the pair so google-benchmark's own flag parser
            // does not reject it below.
            for (int j = i; j + 2 < argc; ++j) {
                argv[j] = argv[j + 2];
            }
            argc -= 2;
            --i;
        }
    }

    print_portfolio_bench();

    std::ofstream json(json_path);
    if (json) {
        json << "{\n  \"bench\": \"portfolio_search\",\n  \"scale\": "
             << json_quote(scale_name()) << ",\n  " << json_lines
             << "\n}\n";
        std::cout << "wrote " << json_path << '\n';
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
