// Regenerates paper Fig. 15: Bayesian-optimization search iterations for
// CAFQA to converge to its lowest estimate, per VQA problem (molecules
// plus two MaxCut instances), with the mean.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/text.hpp"
#include "problems/problem.hpp"

namespace {

using namespace cafqa;
using namespace cafqa::bench;

struct ProblemRun
{
    std::string name;
    std::size_t params = 0;
    std::size_t evaluations_to_best = 0;
    double best_energy = 0.0;
};

/** One pure-BO run over a registry problem. This figure measures the
 *  *search* convergence, so the problem's prior seeds (the HF point
 *  for molecules) are deliberately not injected — the paper's
 *  iteration counts are unguided BO runs. */
ProblemRun
run_problem(const std::string& key, std::uint64_t seed)
{
    const auto problem = problems::make_problem(key);
    const CafqaResult result =
        run_cafqa(problem.ansatz, problem.objective,
                  cafqa_budget(problem.num_qubits, seed));
    return ProblemRun{problem.name, result.num_parameters,
                      result.evaluations_to_best, result.best_energy};
}

ProblemRun
run_molecule(const std::string& name, std::uint64_t seed)
{
    const auto info = problems::molecule_info(name);
    // Stretched to twice the equilibrium bond, where the search is
    // nontrivial (format_real round-trips the exact double).
    return run_problem(
        "molecule:" + name + "?bond=" +
            format_real(info.equilibrium_bond_length * 2.0),
        seed);
}

void
print_fig15()
{
    banner("Fig. 15: BO iterations for CAFQA to reach its best estimate");

    std::vector<ProblemRun> runs;
    std::vector<std::string> molecules = {"H2", "LiH", "H6"};
    if (scale() == Scale::Paper) {
        molecules = {"H2", "LiH", "H2O", "N2", "H6", "H10", "NaH", "BeH2"};
    }
    std::uint64_t seed = 15000;
    for (const auto& name : molecules) {
        runs.push_back(run_molecule(name, seed));
        seed += 100;
    }
    runs.push_back(run_problem("maxcut:er-8?p=0.45&seed=77", seed));
    runs.push_back(run_problem("maxcut:ring-10", seed + 1));

    // QAOA-structured ansatz over the same instance: only 2p shared
    // parameters, so the Clifford space is tiny (Section 2.1 notes
    // CAFQA applies to QAOA-style problems as well).
    {
        const auto qaoa = problems::make_problem(
            "maxcut:ring-10?ansatz=qaoa&layers=2");
        const CafqaResult result = run_cafqa(
            qaoa.ansatz, qaoa.objective,
            {.warmup = 32, .iterations = 64, .seed = seed + 2});
        runs.push_back(ProblemRun{"ring10-QAOA(p=2)",
                                  result.num_parameters,
                                  result.evaluations_to_best,
                                  result.best_energy});
    }

    Table table("Evaluations to best estimate");
    table.set_header({"Problem", "#Params", "SpaceSize(log10)",
                      "EvalsToBest", "BestEnergy(Ha)"});
    double sum = 0.0;
    for (const auto& run : runs) {
        DiscreteSpace space;
        space.cardinalities.assign(run.params, 4);
        table.add_row({run.name, std::to_string(run.params),
                       Table::num(space.log10_size(), 1),
                       std::to_string(run.evaluations_to_best),
                       Table::num(run.best_energy, 5)});
        sum += static_cast<double>(run.evaluations_to_best);
    }
    table.add_row({"Mean", "-", "-",
                   std::to_string(static_cast<std::size_t>(
                       sum / static_cast<double>(runs.size()))),
                   "-"});
    table.print(std::cout);

    std::cout << "\nPaper reports iteration counts from 2327 (H2) to 27000"
                 " (Cr2) with mean 9808 at its (larger) search budgets;"
                 " the trend to check is iterations growing with"
                 " parameter count.\n";
}

void
BM_ForestRefit(benchmark::State& state)
{
    // The surrogate refit is the dominant per-iteration cost late in a
    // search; measure it at a representative training-set size.
    Rng rng(5);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 500; ++i) {
        std::vector<double> row(40);
        for (auto& v : row) {
            v = static_cast<double>(rng.uniform_int(0, 3));
        }
        y.push_back(rng.normal());
        x.push_back(std::move(row));
    }
    for (auto _ : state) {
        RandomForest forest;
        forest.fit(x, y, 7, {});
        benchmark::DoNotOptimize(forest.predict(x[0]));
    }
}
BENCHMARK(BM_ForestRefit)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char** argv)
{
    print_fig15();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
