// Regenerates paper Fig. 10: H2O dissociation curves. CAFQA is run in
// both the singlet and triplet sectors — the paper observes a kink near
// 1.5 Angstrom where the lowest singlet and triplet states cross — and
// the reported CAFQA value is the lower of the two.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/table.hpp"

namespace {

using namespace cafqa;
using namespace cafqa::bench;

void
print_fig10()
{
    banner("Fig. 10: H2O dissociation curves (singlet/triplet sectors)");

    const auto info = problems::molecule_info("H2O");
    const auto bonds = linspace(info.min_bond_length, info.max_bond_length,
                                pick(5, 8));

    Table energy("(a) H2O energy (Hartree)");
    energy.set_header({"Bond(A)", "HF", "CAFQA(s)", "CAFQA(t)", "CAFQA",
                       "Exact", "SCFconv"});
    Table accuracy("(b) H2O accuracy: |E - Exact| (Hartree)");
    accuracy.set_header({"Bond(A)", "HF", "CAFQA", "CAFQA<=ChemAcc"});
    Table correlation("(c) H2O correlation energy recovered (%)");
    correlation.set_header({"Bond(A)", "CAFQA"});

    for (const double bond : bonds) {
        const auto singlet = problems::make_molecular_system("H2O", bond);
        const CafqaResult cafqa_s = run_molecular_cafqa(
            singlet, 3000 + static_cast<std::uint64_t>(bond * 100));

        problems::MolecularSystemOptions triplet_options;
        triplet_options.sector_spin_2sz = 2;
        const auto triplet =
            problems::make_molecular_system("H2O", bond, triplet_options);
        const CafqaResult cafqa_t = run_molecular_cafqa(
            triplet, 8000 + static_cast<std::uint64_t>(bond * 100),
            problems::make_objective(triplet, 4.0, 4.0));

        const double cafqa_best =
            std::min(cafqa_s.best_energy, cafqa_t.best_energy);
        const double exact = exact_energy(singlet.hamiltonian);
        const double cafqa_err = std::abs(cafqa_best - exact);

        energy.add_row({Table::num(bond, 2),
                        Table::num(singlet.hf_energy, 4),
                        Table::num(cafqa_s.best_energy, 4),
                        Table::num(cafqa_t.best_energy, 4),
                        Table::num(cafqa_best, 4), Table::num(exact, 4),
                        singlet.scf_converged ? "yes" : "NO (extrapolated"
                                                        " trend in paper)"});
        accuracy.add_row(
            {Table::num(bond, 2),
             Table::sci(std::abs(singlet.hf_energy - exact), 2),
             Table::sci(std::max(cafqa_err, 1e-10), 2),
             cafqa_err <= chemical_accuracy ? "yes" : "no"});
        correlation.add_row(
            {Table::num(bond, 2),
             Table::num(correlation_recovered_percent(
                            singlet.hf_energy, cafqa_best, exact),
                        1)});
    }

    energy.print(std::cout);
    accuracy.print(std::cout);
    correlation.print(std::cout);
}

void
BM_H2OHamiltonianBuild(benchmark::State& state)
{
    for (auto _ : state) {
        auto system = problems::make_molecular_system("H2O", 1.0);
        benchmark::DoNotOptimize(system.hamiltonian.num_terms());
    }
}
BENCHMARK(BM_H2OHamiltonianBuild)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

} // namespace

int
main(int argc, char** argv)
{
    print_fig10();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
