// Regenerates paper Fig. 11: H6 chain dissociation curves. Alongside the
// singlet-sector CAFQA/HF results, the "opt." variant takes the best
// estimate across spin sectors (the paper optimizes orbitals per spin;
// we select sectors through the constraint objective — see
// EXPERIMENTS.md for the substitution note).

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/evaluator.hpp"
#include "common/table.hpp"

namespace {

using namespace cafqa;
using namespace cafqa::bench;

void
print_fig11()
{
    banner("Fig. 11: H6 dissociation curves (with spin-'opt.' variant)");

    const auto info = problems::molecule_info("H6");
    const auto bonds = linspace(info.min_bond_length, info.max_bond_length,
                                pick(5, 8));

    Table energy("(a) H6 energy (Hartree)");
    energy.set_header({"Bond(A)", "HF", "CAFQA", "CAFQA opt.", "Exact"});
    Table accuracy("(b) H6 accuracy: |E - Exact| (Hartree)");
    accuracy.set_header({"Bond(A)", "HF", "CAFQA", "CAFQA opt."});
    Table correlation("(c) H6 correlation energy recovered (%)");
    correlation.set_header({"Bond(A)", "CAFQA", "CAFQA opt."});

    for (const double bond : bonds) {
        const auto system = problems::make_molecular_system("H6", bond);
        const CafqaResult cafqa = run_molecular_cafqa(
            system, 4000 + static_cast<std::uint64_t>(bond * 100));

        // 'opt.': best over spin sectors (2Sz in {0, 2, 4}).
        double opt_energy = cafqa.best_energy;
        for (const int two_sz : {2, 4}) {
            problems::MolecularSystemOptions options;
            options.sector_spin_2sz = two_sz;
            const auto sector =
                problems::make_molecular_system("H6", bond, options);
            const CafqaResult sector_cafqa = run_molecular_cafqa(
                sector,
                9000 + static_cast<std::uint64_t>(bond * 100 + two_sz),
                problems::make_objective(sector, 4.0, 4.0));
            opt_energy = std::min(opt_energy, sector_cafqa.best_energy);
        }

        const double exact = exact_energy(system.hamiltonian);
        energy.add_row({Table::num(bond, 2), Table::num(system.hf_energy, 4),
                        Table::num(cafqa.best_energy, 4),
                        Table::num(opt_energy, 4), Table::num(exact, 4)});
        accuracy.add_row(
            {Table::num(bond, 2),
             Table::sci(std::abs(system.hf_energy - exact), 2),
             Table::sci(std::max(std::abs(cafqa.best_energy - exact), 1e-10),
                        2),
             Table::sci(std::max(std::abs(opt_energy - exact), 1e-10), 2)});
        correlation.add_row(
            {Table::num(bond, 2),
             Table::num(correlation_recovered_percent(
                            system.hf_energy, cafqa.best_energy, exact),
                        1),
             Table::num(correlation_recovered_percent(system.hf_energy,
                                                      opt_energy, exact),
                        1)});
    }

    energy.print(std::cout);
    accuracy.print(std::cout);
    correlation.print(std::cout);
}

void
BM_H6TableauEvaluation(benchmark::State& state)
{
    static const auto system = problems::make_molecular_system("H6", 1.8);
    CliffordEvaluator evaluator(system.ansatz);
    std::vector<int> steps(system.ansatz.num_params(), 0);
    Rng rng(2);
    for (auto _ : state) {
        for (auto& s : steps) {
            s = static_cast<int>(rng.uniform_int(0, 3));
        }
        evaluator.prepare(steps);
        benchmark::DoNotOptimize(
            evaluator.expectation(system.hamiltonian));
    }
}
BENCHMARK(BM_H6TableauEvaluation);

} // namespace

int
main(int argc, char** argv)
{
    print_fig11();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
