/**
 * @file
 * Perf-regression gate for the benches' machine-readable JSON: compare
 * a fresh run against an archived baseline and exit non-zero when a
 * gated metric regressed past its tolerance band.
 *
 * Usage:
 *   bench_check <current.json> --check <baseline.json> [--tolerance X]
 *
 * Works on any bench JSON in this tree (BENCH_stabilizer.json,
 * BENCH_server_load.json, BENCH_portfolio.json, ...): the file is
 * walked recursively and every numeric leaf becomes a dotted path
 * ("eval[2].packed_us"). Gating is by leaf name:
 *
 *   *_us / *_ms   timing — regression when current > baseline * tol
 *   throughput_*  rate   — regression when current < baseline / tol
 *   energy        value  — drift when |cur - base| > 1e-6 * |base|
 *   anything else informational, skipped
 *
 * A gated metric present in the baseline but missing from the current
 * run also fails (a silently dropped measurement is a regression of
 * the bench itself). The default tolerance (3x) is deliberately loose:
 * shared CI runners jitter, and this gate exists to catch order-of-
 * magnitude cliffs and correctness drift, not 10% noise.
 *
 * Exit codes (distinct so CI can tell "perf regressed" from "the gate
 * itself is broken"; pinned by the `bench_check_exit_codes` ctest):
 *   0  every gated metric within tolerance
 *   1  at least one gated regression
 *   2  bad arguments (usage error)
 *   3  missing or unreadable input file (current or baseline)
 */
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/text.hpp"

namespace {

using cafqa::JsonField;
using cafqa::parse_flat_json_object;

[[noreturn]] void
fail(const std::string& message)
{
    std::cerr << "bench_check: " << message << '\n'
              << "usage: bench_check <current.json> --check"
                 " <baseline.json> [--tolerance X]\n";
    std::exit(2);
}

std::string
read_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        // Exit 3, not 2: a vanished baseline artifact is an
        // infrastructure problem, not a usage error, and CI reacts
        // differently (re-seed the baseline vs fix the invocation).
        std::cerr << "bench_check: cannot open '" << path << "'\n";
        std::exit(3);
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Split a JSON array's raw text into its top-level element slices. */
std::vector<std::string>
split_array(const std::string& text)
{
    std::vector<std::string> elements;
    std::size_t depth = 0;
    bool in_string = false;
    std::size_t begin = 1; // past '['
    for (std::size_t i = 1; i + 1 <= text.size(); ++i) {
        const char c = text[i];
        if (in_string) {
            if (c == '\\') {
                ++i;
            } else if (c == '"') {
                in_string = false;
            }
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            if (depth == 0 && c == ']') {
                const std::string last = text.substr(begin, i - begin);
                if (last.find_first_not_of(" \t\n\r") !=
                    std::string::npos) {
                    elements.push_back(last);
                }
                break;
            }
            --depth;
        } else if (c == ',' && depth == 0) {
            elements.push_back(text.substr(begin, i - begin));
            begin = i + 1;
        }
    }
    return elements;
}

std::string
trimmed(const std::string& text)
{
    const std::size_t begin = text.find_first_not_of(" \t\n\r");
    if (begin == std::string::npos) {
        return "";
    }
    const std::size_t end = text.find_last_not_of(" \t\n\r");
    return text.substr(begin, end - begin + 1);
}

/** Every numeric leaf in the (possibly nested) JSON value, keyed by
 *  its dotted path. Strings, booleans and nulls are skipped. */
void
collect_leaves(const std::string& path, const std::string& raw_value,
               bool is_string, std::map<std::string, double>& out)
{
    const std::string value = trimmed(raw_value);
    if (is_string || value.empty() || value == "true" ||
        value == "false" || value == "null") {
        return;
    }
    if (value[0] == '{') {
        for (const JsonField& field : parse_flat_json_object(value)) {
            collect_leaves(path.empty() ? field.name
                                        : path + "." + field.name,
                           field.value, field.is_string, out);
        }
        return;
    }
    if (value[0] == '[') {
        const std::vector<std::string> elements = split_array(value);
        for (std::size_t i = 0; i < elements.size(); ++i) {
            // An element that is itself a quoted string is skipped by
            // the scalar branch below (it fails strtod cleanly).
            collect_leaves(path + "[" + std::to_string(i) + "]",
                           elements[i], /*is_string=*/false, out);
        }
        return;
    }
    if (value[0] == '"') {
        return;
    }
    char* end = nullptr;
    const double number = std::strtod(value.c_str(), &end);
    if (end == value.c_str() + value.size() && std::isfinite(number)) {
        out[path] = number;
    }
}

std::map<std::string, double>
numeric_leaves(const std::string& json)
{
    std::map<std::string, double> leaves;
    collect_leaves("", json, /*is_string=*/false, leaves);
    return leaves;
}

std::string
leaf_name(const std::string& path)
{
    const std::size_t dot = path.rfind('.');
    std::string name = dot == std::string::npos ? path
                                                : path.substr(dot + 1);
    const std::size_t bracket = name.find('[');
    if (bracket != std::string::npos) {
        name = name.substr(0, bracket);
    }
    return name;
}

bool
ends_with(const std::string& text, const std::string& suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

enum class Gate { Timing, Throughput, Energy, Skip };

Gate
classify(const std::string& path)
{
    const std::string name = leaf_name(path);
    if (name == "energy") {
        return Gate::Energy;
    }
    if (name.rfind("throughput", 0) == 0) {
        return Gate::Throughput;
    }
    if (ends_with(name, "_us") || ends_with(name, "_ms")) {
        return Gate::Timing;
    }
    return Gate::Skip;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string current_path;
    std::string baseline_path;
    double tolerance = 3.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                fail(arg + " requires a value");
            }
            return argv[++i];
        };
        if (arg == "--check") {
            baseline_path = next();
        } else if (arg == "--tolerance") {
            char* end = nullptr;
            tolerance = std::strtod(next(), &end);
            if (*end != '\0' || !(tolerance > 1.0)) {
                fail("--tolerance expects a number > 1");
            }
        } else if (!arg.empty() && arg[0] == '-') {
            fail("unknown option '" + arg + "'");
        } else if (current_path.empty()) {
            current_path = arg;
        } else {
            fail("unexpected argument '" + arg + "'");
        }
    }
    if (current_path.empty() || baseline_path.empty()) {
        fail("both a current file and --check <baseline.json> are "
             "required");
    }

    std::map<std::string, double> current;
    std::map<std::string, double> baseline;
    try {
        current = numeric_leaves(read_file(current_path));
        baseline = numeric_leaves(read_file(baseline_path));
    } catch (const std::exception& error) {
        fail(error.what());
    }

    std::size_t gated = 0;
    std::size_t regressions = 0;
    for (const auto& [path, base] : baseline) {
        const Gate gate = classify(path);
        if (gate == Gate::Skip) {
            continue;
        }
        ++gated;
        const auto it = current.find(path);
        if (it == current.end()) {
            ++regressions;
            std::cout << "FAIL " << path << ": in baseline ("
                      << base << ") but missing from "
                      << current_path << '\n';
            continue;
        }
        const double now = it->second;
        bool bad = false;
        std::string band;
        switch (gate) {
          case Gate::Timing:
            bad = now > base * tolerance;
            band = "limit " + std::to_string(base * tolerance);
            break;
          case Gate::Throughput:
            bad = now < base / tolerance;
            band = "floor " + std::to_string(base / tolerance);
            break;
          case Gate::Energy:
            bad = std::abs(now - base) >
                  1e-6 * std::max(1.0, std::abs(base));
            band = "drift > 1e-6";
            break;
          case Gate::Skip:
            break;
        }
        if (bad) {
            ++regressions;
            std::cout << "FAIL " << path << ": baseline " << base
                      << ", current " << now << " (" << band << ")\n";
        }
    }

    std::cout << "bench_check: " << gated << " gated metrics, "
              << regressions << " regression"
              << (regressions == 1 ? "" : "s") << " (tolerance "
              << tolerance << "x) against " << baseline_path << '\n';
    return regressions == 0 ? 0 : 1;
}
