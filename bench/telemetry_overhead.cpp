/**
 * Telemetry overhead microbench: the per-operation cost of the
 * lock-light recording calls, instrumented versus disabled
 * (`CAFQA_TELEMETRY_OFF`-equivalent via `set_enabled(false)`), plus
 * the cost of a full registry scrape. No google-benchmark — like
 * `bench_check` this builds everywhere and emits one flat JSON file
 * the perf gate diffs against `bench/baselines/BENCH_telemetry.json`.
 *
 * Keys end in `_us`/`_ms`, so `bench_check` treats every one as a
 * ceiling: the gate fails when recording gets slower, never when it
 * gets faster. Counter totals double as checksums — the loops cannot
 * be optimized away without the run failing loudly.
 *
 * Usage: telemetry_overhead [--json PATH] [--quick]
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common/text.hpp"
#include "telemetry/metrics.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

[[noreturn]] void
fail(const std::string& message)
{
    std::cerr << "telemetry_overhead: " << message << '\n';
    std::exit(1);
}

double
us_between(clock_type::time_point a, clock_type::time_point b)
{
    return std::chrono::duration<double, std::micro>(b - a).count();
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cafqa;
    using namespace cafqa::telemetry;

    std::string json_path = "BENCH_telemetry.json";
    std::uint64_t ops = 4'000'000;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            if (i + 1 >= argc) {
                fail("--json requires a value");
            }
            json_path = argv[++i];
        } else if (arg == "--quick") {
            ops = 400'000;
        } else {
            fail("unknown option '" + arg + "'");
        }
    }

    if (!enabled()) {
        fail("telemetry is disabled in the environment; the bench "
             "needs to measure both sides of the switch itself");
    }

    MetricsRegistry registry;
    Counter& counter =
        registry.counter("cafqa_bench_ops_total", {}, "Bench ops");
    Histogram& histogram =
        registry.histogram("cafqa_bench_lat_ms", {}, "Bench latencies");

    // --- counter, instrumented ------------------------------------
    const auto c_on_start = clock_type::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
        counter.add();
    }
    const double counter_on_us = us_between(c_on_start, clock_type::now());
    if (counter.value() != ops) {
        fail("counter checksum mismatch while enabled");
    }

    // --- counter, disabled ----------------------------------------
    set_enabled(false);
    const auto c_off_start = clock_type::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
        counter.add();
    }
    const double counter_off_us =
        us_between(c_off_start, clock_type::now());
    set_enabled(true);
    if (counter.value() != ops) {
        fail("disabled counter adds must not land");
    }

    // --- histogram, instrumented ----------------------------------
    // A deterministic sawtooth over several octaves: exercises the
    // bucket indexer across its range without an RNG in the loop.
    const auto h_on_start = clock_type::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
        histogram.observe(0.001 * static_cast<double>((i & 1023) + 1));
    }
    const double histogram_on_us =
        us_between(h_on_start, clock_type::now());
    if (histogram.count() != ops) {
        fail("histogram checksum mismatch while enabled");
    }

    // --- histogram, disabled --------------------------------------
    set_enabled(false);
    const auto h_off_start = clock_type::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
        histogram.observe(0.001 * static_cast<double>((i & 1023) + 1));
    }
    const double histogram_off_us =
        us_between(h_off_start, clock_type::now());
    set_enabled(true);
    if (histogram.count() != ops) {
        fail("disabled histogram observes must not land");
    }

    // --- scrape ----------------------------------------------------
    // A registry shaped like the serving stack's: a few dozen labelled
    // counters, gauges and histograms, scraped through both exporters.
    MetricsRegistry scraped;
    for (int s = 0; s < 24; ++s) {
        scraped
            .counter("cafqa_scrape_reqs_total",
                     {{"verb", "v" + std::to_string(s)}}, "Requests")
            .add(static_cast<std::uint64_t>(s) * 17 + 1);
        scraped
            .gauge("cafqa_scrape_depth",
                   {{"shard", std::to_string(s)}}, "Depth")
            .set(static_cast<double>(s));
        Histogram& h = scraped.histogram(
            "cafqa_scrape_lat_ms", {{"stage", "s" + std::to_string(s)}},
            "Latency");
        for (int v = 0; v < 256; ++v) {
            h.observe(0.01 * static_cast<double>(v + 1));
        }
    }
    constexpr int kScrapes = 50;
    std::size_t scrape_bytes = 0;
    const auto scrape_start = clock_type::now();
    for (int s = 0; s < kScrapes; ++s) {
        scrape_bytes += scraped.prometheus().size();
        scrape_bytes += scraped.json().size();
    }
    const double scrape_ms =
        us_between(scrape_start, clock_type::now()) / 1000.0 / kScrapes;
    if (scrape_bytes == 0) {
        fail("scrape produced no output");
    }

    const double kops = static_cast<double>(ops) / 1000.0;
    const double counter_add_per_kop_us = counter_on_us / kops;
    const double counter_add_off_per_kop_us = counter_off_us / kops;
    const double histogram_observe_per_kop_us = histogram_on_us / kops;
    const double histogram_observe_off_per_kop_us =
        histogram_off_us / kops;

    std::cout << "telemetry_overhead: " << ops << " ops/loop\n"
              << "  counter add           "
              << format_real(counter_add_per_kop_us) << " us/kop\n"
              << "  counter add (off)     "
              << format_real(counter_add_off_per_kop_us) << " us/kop\n"
              << "  histogram observe     "
              << format_real(histogram_observe_per_kop_us) << " us/kop\n"
              << "  histogram observe (off) "
              << format_real(histogram_observe_off_per_kop_us)
              << " us/kop\n"
              << "  scrape (72 series)    " << format_real(scrape_ms)
              << " ms\n";

    std::ofstream json(json_path);
    if (json) {
        json << "{\"ops\":" << ops << ",\"counter_add_per_kop_us\":"
             << format_real(counter_add_per_kop_us)
             << ",\"counter_add_off_per_kop_us\":"
             << format_real(counter_add_off_per_kop_us)
             << ",\"histogram_observe_per_kop_us\":"
             << format_real(histogram_observe_per_kop_us)
             << ",\"histogram_observe_off_per_kop_us\":"
             << format_real(histogram_observe_off_per_kop_us)
             << ",\"scrape_ms\":" << format_real(scrape_ms) << "}\n";
    }
    return 0;
}
