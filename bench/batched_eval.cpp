// Micro-benchmark for the unified backend API's two batching axes:
//
//   1. Observable batching — evaluating a Hamiltonian term-by-term with
//      a state re-preparation per term, vs preparing once and measuring
//      all terms through `Backend::expectations` (the access pattern of
//      `VqaObjective::evaluate_prepared`).
//   2. Candidate batching — the CAFQA warm-up phase evaluated serially
//      vs fanned out across the thread pool with per-worker backend
//      clones (the path `CafqaPipeline` uses via
//      `BayesOptOptions::warmup_batch`).
//
// Prints speedup tables; the thread-pool numbers depend on the core
// count of the machine (expect >1.5x at 4+ cores, ~1x on 1 core).

#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/backend_registry.hpp"
#include "core/evaluator.hpp"

namespace {

using namespace cafqa;
using namespace cafqa::bench;

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/** One PauliSum per Hamiltonian term (the per-term observable list). */
std::vector<PauliSum>
split_terms(const PauliSum& op)
{
    std::vector<PauliSum> singles;
    singles.reserve(op.num_terms());
    for (const auto& term : op.terms()) {
        PauliSum single(op.num_qubits());
        single.add_term(term.coefficient, term.string);
        singles.push_back(std::move(single));
    }
    return singles;
}

void
print_observable_batching(const problems::MolecularSystem& system)
{
    const std::vector<PauliSum> terms = split_terms(system.hamiltonian);
    const std::vector<double> params(system.ansatz.num_params(), 0.7);
    const std::size_t repeats = pick(20, 100);

    BackendConfig config;
    config.kind = "statevector";
    config.ansatz = system.ansatz;
    const auto backend = make_continuous_backend(config);

    // (a) re-prepare the state for every term.
    auto start = std::chrono::steady_clock::now();
    double naive_sum = 0.0;
    for (std::size_t r = 0; r < repeats; ++r) {
        for (const PauliSum& term : terms) {
            backend->prepare(params);
            naive_sum += backend->expectation(term);
        }
    }
    const double naive_s = seconds_since(start);

    // (b) prepare once, measure every term on the prepared state.
    start = std::chrono::steady_clock::now();
    double batched_sum = 0.0;
    for (std::size_t r = 0; r < repeats; ++r) {
        backend->prepare(params);
        for (const double value : backend->expectations(terms)) {
            batched_sum += value;
        }
    }
    const double batched_s = seconds_since(start);

    Table table("Per-term (re-prepare) vs batched expectation, " +
                std::to_string(terms.size()) + " Hamiltonian terms x " +
                std::to_string(repeats) + " evaluations");
    table.set_header({"Path", "Time(s)", "Speedup(x)", "Energy check"});
    table.add_row({"prepare per term", Table::num(naive_s, 3),
                   Table::num(1.0, 2), Table::num(naive_sum, 6)});
    table.add_row({"prepare once + expectations()",
                   Table::num(batched_s, 3),
                   Table::num(naive_s / std::max(batched_s, 1e-12), 2),
                   Table::num(batched_sum, 6)});
    table.print(std::cout);
}

/** The pipeline's warm-up block: evaluate every candidate's objective
 *  with `threads` workers (per-worker backend clones). */
double
warmup_block_seconds(const CliffordEvaluator& prototype,
                     const VqaObjective& objective,
                     const std::vector<PauliSum>& observables,
                     const std::vector<std::vector<int>>& candidates,
                     std::size_t threads, std::vector<double>& values)
{
    ThreadPool pool(threads);
    std::vector<std::unique_ptr<DiscreteBackend>> clones(pool.size());
    const auto start = std::chrono::steady_clock::now();
    pool.parallel_for(
        candidates.size(), [&](std::size_t worker, std::size_t index) {
            auto& backend = clones[worker];
            if (!backend) {
                backend = prototype.clone_discrete();
            }
            backend->prepare(candidates[index]);
            values[index] =
                objective.combine(backend->expectations(observables));
        });
    return seconds_since(start);
}

void
print_candidate_batching(const problems::MolecularSystem& system)
{
    const VqaObjective objective = problems::make_objective(system);
    const std::vector<PauliSum> observables =
        objective.gather_observables();
    const CliffordEvaluator prototype(system.ansatz);

    Rng rng(2023);
    std::vector<std::vector<int>> candidates(pick(256, 2048));
    for (auto& steps : candidates) {
        steps.resize(system.ansatz.num_params());
        for (auto& s : steps) {
            s = static_cast<int>(rng.uniform_int(0, 3));
        }
    }

    const std::size_t cores = std::max<std::size_t>(
        1, std::thread::hardware_concurrency());

    std::vector<double> serial_values(candidates.size());
    const double serial_s =
        warmup_block_seconds(prototype, objective, observables,
                             candidates, 1, serial_values);

    std::vector<double> pooled_values(candidates.size());
    const double pooled_s =
        warmup_block_seconds(prototype, objective, observables,
                             candidates, cores, pooled_values);

    double max_diff = 0.0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        max_diff = std::max(
            max_diff, std::abs(serial_values[i] - pooled_values[i]));
    }

    Table table("Serial vs thread-pool warm-up, " +
                std::to_string(candidates.size()) + " candidates (" +
                std::to_string(cores) + " hardware threads)");
    table.set_header({"Path", "Time(s)", "Speedup(x)", "MaxValueDiff"});
    table.add_row({"serial", Table::num(serial_s, 3), Table::num(1.0, 2),
                   "-"});
    table.add_row({"thread pool", Table::num(pooled_s, 3),
                   Table::num(serial_s / std::max(pooled_s, 1e-12), 2),
                   Table::sci(max_diff, 1)});
    table.print(std::cout);
    if (cores < 4) {
        std::cout << "(fewer than 4 hardware threads: the pooled path "
                     "cannot show its >1.5x speedup here)\n\n";
    }
}

void
print_batched_eval()
{
    banner("Batched evaluation microbenchmark (backend API)");
    const auto h2 = problems::make_molecular_system("H2", 2.2);
    const auto lih = problems::make_molecular_system("LiH", 2.4);

    std::cout << "== H2 (2 qubits, fig05-class problem) ==\n";
    print_observable_batching(h2);
    print_candidate_batching(h2);

    std::cout << "== LiH (4 qubits) ==\n";
    print_observable_batching(lih);
    print_candidate_batching(lih);
}

void
BM_ExpectationsBatched(benchmark::State& state)
{
    static const auto system = problems::make_molecular_system("LiH", 2.4);
    static const std::vector<PauliSum> terms =
        split_terms(system.hamiltonian);
    IdealEvaluator backend(system.ansatz);
    backend.prepare(std::vector<double>(system.ansatz.num_params(), 0.7));
    for (auto _ : state) {
        benchmark::DoNotOptimize(backend.expectations(terms));
    }
}
BENCHMARK(BM_ExpectationsBatched);

void
BM_ExpectationsPerTermReprepare(benchmark::State& state)
{
    static const auto system = problems::make_molecular_system("LiH", 2.4);
    static const std::vector<PauliSum> terms =
        split_terms(system.hamiltonian);
    IdealEvaluator backend(system.ansatz);
    const std::vector<double> params(system.ansatz.num_params(), 0.7);
    for (auto _ : state) {
        double sum = 0.0;
        for (const PauliSum& term : terms) {
            backend.prepare(params);
            sum += backend.expectation(term);
        }
        benchmark::DoNotOptimize(sum);
    }
}
BENCHMARK(BM_ExpectationsPerTermReprepare);

} // namespace

int
main(int argc, char** argv)
{
    print_batched_eval();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
