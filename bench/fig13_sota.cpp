// Regenerates paper Fig. 13: CAFQA accuracy relative to the
// state-of-the-art Hartree-Fock initialization — the per-molecule
// 'Average' (mean error reduction over bond lengths) and 'Maximum'
// (best error reduction, usually at the largest bond length), plus the
// geometric means the abstract quotes (6.4x average, 56.8x maximum).

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "common/table.hpp"

namespace {

using namespace cafqa;
using namespace cafqa::bench;

struct MoleculeAccuracy
{
    std::string label;
    double average = 0.0;
    double maximum = 0.0;
};

MoleculeAccuracy
evaluate_molecule(const std::string& name, std::size_t num_bonds,
                  std::uint64_t seed)
{
    const auto info = problems::molecule_info(name);
    const auto bonds =
        linspace(info.min_bond_length, info.max_bond_length, num_bonds);

    MoleculeAccuracy out;
    out.label = (name == "H10") ? "H2-S1 (as H10)" : name;
    double sum = 0.0;
    std::size_t counted = 0;
    for (const double bond : bonds) {
        const auto system = problems::make_molecular_system(name, bond);
        const CafqaResult cafqa = run_molecular_cafqa(
            system, seed + static_cast<std::uint64_t>(bond * 100));
        const double exact = exact_energy(system.hamiltonian);

        const double hf_err = std::abs(system.hf_energy - exact);
        const double cafqa_err =
            std::max(std::abs(cafqa.best_energy - exact), 1e-10);
        const double ratio = std::max(hf_err / cafqa_err, 1e-3);
        sum += ratio;
        out.maximum = std::max(out.maximum, ratio);
        ++counted;
    }
    out.average = sum / static_cast<double>(counted);
    return out;
}

void
print_fig13()
{
    banner("Fig. 13: CAFQA accuracy relative to Hartree-Fock");

    std::vector<std::string> molecules = {"H2", "LiH", "H6", "BeH2"};
    std::size_t num_bonds = 4;
    if (scale() == Scale::Paper) {
        molecules = {"H2", "LiH", "H2O", "N2", "H6", "H10", "NaH", "BeH2"};
        num_bonds = 10;
    }

    Table table("Relative error reduction vs HF (x)");
    table.set_header({"Molecule", "Average", "Maximum"});
    double log_avg = 0.0;
    double log_max = 0.0;
    std::uint64_t seed = 31000;
    for (const auto& name : molecules) {
        const MoleculeAccuracy acc =
            evaluate_molecule(name, num_bonds, seed);
        seed += 1000;
        table.add_row({acc.label, Table::num(acc.average, 2),
                       Table::num(acc.maximum, 2)});
        log_avg += std::log(acc.average);
        log_max += std::log(acc.maximum);
    }
    const double n = static_cast<double>(molecules.size());
    table.add_row({"Geomean", Table::num(std::exp(log_avg / n), 2),
                   Table::num(std::exp(log_max / n), 2)});
    table.print(std::cout);

    std::cout << "\nPaper reports: geomean Average = 6.39x, geomean"
                 " Maximum = 56.84x (8 molecules, full bond sweeps; the"
                 " quick scale covers a subset).\n";
}

void
BM_RelativeAccuracyPoint(benchmark::State& state)
{
    static const auto system = problems::make_molecular_system("H2", 2.5);
    static const VqaObjective objective = problems::make_objective(system);
    for (auto _ : state) {
        const CafqaResult r = run_cafqa(
            system.ansatz, objective,
            {.warmup = 60, .iterations = 60, .seed = 3});
        benchmark::DoNotOptimize(r.best_energy);
    }
}
BENCHMARK(BM_RelativeAccuracyPoint)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // namespace

int
main(int argc, char** argv)
{
    print_fig13();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
