/**
 * @file
 * Shared helpers for the per-figure bench binaries.
 *
 * Every bench prints the series/rows of one paper table or figure and
 * then runs a few google-benchmark kernels for the hot code paths it
 * exercises. `CAFQA_BENCH_SCALE=paper` switches from the CI-sized
 * default ("quick") to paper-sized search budgets and sweeps.
 */
#ifndef CAFQA_BENCH_BENCH_COMMON_HPP
#define CAFQA_BENCH_BENCH_COMMON_HPP

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/clifford_ansatz.hpp"
#include "core/pipeline.hpp"
#include "problems/molecule_factory.hpp"
#include "problems/problem.hpp"
#include "statevector/lanczos.hpp"

namespace cafqa::bench {

/** Chemical accuracy threshold in Hartree (paper Section 2.1). */
constexpr double chemical_accuracy = 1.6e-3;

/** Bench sizing. */
enum class Scale { Quick, Paper };

inline Scale
scale()
{
    const char* env = std::getenv("CAFQA_BENCH_SCALE");
    if (env != nullptr && std::string(env) == "paper") {
        return Scale::Paper;
    }
    return Scale::Quick;
}

inline const char*
scale_name()
{
    return scale() == Scale::Paper ? "paper" : "quick";
}

/** Pick a size by scale. */
inline std::size_t
pick(std::size_t quick, std::size_t paper)
{
    return scale() == Scale::Paper ? paper : quick;
}

/** Evenly spaced sweep (inclusive endpoints). */
inline std::vector<double>
linspace(double lo, double hi, std::size_t points)
{
    std::vector<double> out;
    if (points == 1) {
        out.push_back(lo);
        return out;
    }
    for (std::size_t i = 0; i < points; ++i) {
        out.push_back(lo + (hi - lo) * static_cast<double>(i) /
                               static_cast<double>(points - 1));
    }
    return out;
}

/** Percentage of HF-missed correlation energy recovered by CAFQA
 *  (paper metric 3), clamped to [0, 100]. */
inline double
correlation_recovered_percent(double hf, double cafqa, double exact)
{
    const double denom = hf - exact;
    if (denom <= 1e-12) {
        return 100.0;
    }
    const double recovered = (hf - cafqa) / denom * 100.0;
    return std::max(0.0, std::min(100.0, recovered));
}

/** Default CAFQA budget for a system size, by scale. */
inline CafqaOptions
cafqa_budget(std::size_t num_qubits, std::uint64_t seed)
{
    CafqaOptions options;
    options.seed = seed;
    if (scale() == Scale::Paper) {
        options.warmup = 1000;
        options.iterations = 1000;
    } else {
        options.warmup = (num_qubits <= 4) ? 100 : 150;
        options.iterations = (num_qubits <= 4) ? 120 : 200;
    }
    return options;
}

/**
 * CAFQA budget for a molecular system, with the Hartree-Fock point
 * prior-injected into the search (guaranteeing CAFQA <= HF, the paper's
 * "equal to or better than" property).
 */
inline CafqaOptions
molecular_budget(const problems::MolecularSystem& system,
                 std::uint64_t seed)
{
    CafqaOptions options = cafqa_budget(system.num_qubits, seed);
    options.seed_steps.push_back(efficient_su2_bitstring_steps(
        system.num_qubits, system.hf_bits));
    return options;
}

/**
 * Pipeline configuration for a registry problem: objective, ansatz and
 * prior-injection seeds from the problem, scale-aware budget. Ready for
 * `CafqaPipeline` (set `tuner`/`threads` as needed before
 * constructing).
 */
inline PipelineConfig
problem_pipeline_config(const problems::Problem& problem,
                        std::uint64_t seed)
{
    PipelineConfig config;
    config.ansatz = problem.ansatz;
    config.objective = problem.objective;
    config.search = cafqa_budget(problem.num_qubits, seed);
    config.search.seed_steps = problem.seed_steps;
    return config;
}

/** Run just the Clifford-search stage for a registry problem. */
inline CafqaResult
run_problem_cafqa(const problems::Problem& problem, std::uint64_t seed)
{
    CafqaPipeline pipeline(problem_pipeline_config(problem, seed));
    return pipeline.run_clifford_search();
}

/**
 * Same for an already-built molecular system (benches that need custom
 * sector options go through `make_molecular_system` directly; the
 * wiring matches `problem_pipeline_config` over the molecule family).
 */
inline PipelineConfig
molecular_pipeline_config(const problems::MolecularSystem& system,
                          std::uint64_t seed)
{
    PipelineConfig config;
    config.ansatz = system.ansatz;
    config.objective = problems::make_objective(system);
    config.search = molecular_budget(system, seed);
    return config;
}

/** Run just the Clifford-search stage for a molecular system. */
inline CafqaResult
run_molecular_cafqa(const problems::MolecularSystem& system,
                    std::uint64_t seed)
{
    CafqaPipeline pipeline(molecular_pipeline_config(system, seed));
    return pipeline.run_clifford_search();
}

/** Same, with an explicit objective (sector constraints etc.). */
inline CafqaResult
run_molecular_cafqa(const problems::MolecularSystem& system,
                    std::uint64_t seed, const VqaObjective& objective)
{
    PipelineConfig config = molecular_pipeline_config(system, seed);
    config.objective = objective;
    CafqaPipeline pipeline(std::move(config));
    return pipeline.run_clifford_search();
}

/** Exact ground energy via Lanczos with a scale-aware iteration cap. */
inline double
exact_energy(const PauliSum& hamiltonian)
{
    LanczosOptions options;
    options.max_iterations = pick(120, 300);
    options.tolerance = 1e-9;
    return lanczos_ground_state(hamiltonian, options).energy;
}

/** Standard bench banner. */
inline void
banner(const std::string& what)
{
    std::cout << "# " << what << "\n# scale: " << scale_name()
              << " (set CAFQA_BENCH_SCALE=paper for paper-sized budgets)\n"
              << std::endl;
}

} // namespace cafqa::bench

#endif // CAFQA_BENCH_BENCH_COMMON_HPP
