// Regenerates paper Fig. 7: the Bayesian-optimization search trace for
// H2O ground-state energy estimation at 4.0 Angstrom (4x equilibrium).
// The first phase is random warm-up sampling; the model-guided search
// then drives the error toward (and below) chemical accuracy.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/evaluator.hpp"
#include "common/table.hpp"

namespace {

using namespace cafqa;
using namespace cafqa::bench;

void
print_fig07()
{
    banner("Fig. 7: H2O @ 4.0 A — CAFQA discrete search trace");

    const auto system = problems::make_molecular_system("H2O", 4.0);
    const double exact = exact_energy(system.hamiltonian);

    PipelineConfig config = molecular_pipeline_config(system, 1111);
    config.search.warmup = pick(300, 1000);
    config.search.iterations = pick(500, 1000);
    const std::size_t warmup = config.search.warmup;
    const std::size_t iterations = config.search.iterations;

    // The trace is collected through the pipeline observer — one
    // Progress event per objective evaluation.
    CafqaPipeline pipeline(std::move(config));
    std::vector<double> best_trace;
    pipeline.set_observer([&](const PipelineEvent& event) {
        if (event.event == PipelineEvent::Kind::Progress) {
            best_trace.push_back(event.best_value);
        }
    });
    const CafqaResult& result = pipeline.run_clifford_search();

    Table trace("Best-so-far energy error vs search iteration");
    trace.set_header({"Iteration", "Phase", "BestEnergyError(Ha)",
                      "WithinChemicalAccuracy"});
    const std::size_t stride =
        std::max<std::size_t>(1, best_trace.size() / 40);
    for (std::size_t i = 0; i < best_trace.size(); ++i) {
        if (i % stride != 0 && i + 1 != best_trace.size()) {
            continue;
        }
        const double error = std::max(best_trace[i] - exact, 1e-10);
        trace.add_row({std::to_string(i + 1),
                       (i < warmup) ? "warmup" : "search",
                       Table::sci(error, 3),
                       error <= chemical_accuracy ? "yes" : "no"});
    }
    trace.print(std::cout);

    Table summary("Summary");
    summary.set_header({"Quantity", "Value"});
    summary.add_row({"Warm-up iterations", std::to_string(warmup)});
    summary.add_row(
        {"Search iterations", std::to_string(iterations)});
    summary.add_row({"HF error (Ha)",
                     Table::sci(system.hf_energy - exact, 3)});
    summary.add_row({"CAFQA error (Ha)",
                     Table::sci(result.best_energy - exact, 3)});
    summary.add_row({"Chemical accuracy (Ha)",
                     Table::sci(chemical_accuracy, 3)});
    summary.add_row({"Best found at evaluation",
                     std::to_string(result.evaluations_to_best)});
    summary.print(std::cout);
}

void
BM_BoIterationH2O(benchmark::State& state)
{
    static const auto system = problems::make_molecular_system("H2O", 4.0);
    static const VqaObjective objective = problems::make_objective(system);
    CliffordEvaluator evaluator(system.ansatz);
    Rng rng(1);
    std::vector<int> steps(system.ansatz.num_params());
    for (auto _ : state) {
        for (auto& s : steps) {
            s = static_cast<int>(rng.uniform_int(0, 3));
        }
        evaluator.prepare(steps);
        benchmark::DoNotOptimize(objective.evaluate(evaluator));
    }
}
BENCHMARK(BM_BoIterationH2O);

} // namespace

int
main(int argc, char** argv)
{
    print_fig07();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
