// Regenerates paper Fig. 16: the Clifford+kT extension (Section 8).
// Dissociation curves for H2 with up to 1 T gate and LiH with up to 4 T
// gates (2 at quick scale), showing that a handful of T gates recovers
// correlation energy at bond lengths where Clifford-only CAFQA is
// limited — while remaining classically simulable via the exact branch
// decomposition T = alpha I + beta S.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/evaluator.hpp"
#include "common/table.hpp"

namespace {

using namespace cafqa;
using namespace cafqa::bench;

void
sweep_molecule(const std::string& name, std::size_t max_t,
               std::size_t num_bonds, std::uint64_t seed)
{
    const auto info = problems::molecule_info(name);
    // The paper plots the mid-to-stretched region where Clifford-only
    // accuracy degrades.
    const auto bonds = linspace(info.equilibrium_bond_length,
                                info.max_bond_length, num_bonds);

    Table table("(" + name + ") energy with up to " +
                std::to_string(max_t) + " T gates (Hartree)");
    table.set_header({"Bond(A)", "CAFQA", "CAFQA+" + std::to_string(max_t) +
                          "T", "Exact", "T gates used",
                      "CorrRecovered(%): CAFQA -> +kT"});

    for (const double bond : bonds) {
        const auto system = problems::make_molecular_system(name, bond);
        CafqaPipeline pipeline(molecular_pipeline_config(system, seed));
        const CafqaResult& base = pipeline.run_clifford_search();
        const TBoostResult& boost = pipeline.run_t_boost(max_t);
        const double exact = exact_energy(system.hamiltonian);

        const double rec_clifford = correlation_recovered_percent(
            system.hf_energy, base.best_energy, exact);
        const double rec_kt = correlation_recovered_percent(
            system.hf_energy, boost.best_energy, exact);
        table.add_row({Table::num(bond, 2),
                       Table::num(base.best_energy, 5),
                       Table::num(boost.best_energy, 5),
                       Table::num(exact, 5),
                       std::to_string(boost.t_positions.size()),
                       Table::num(rec_clifford, 1) + " -> " +
                           Table::num(rec_kt, 1)});
    }
    table.print(std::cout);
}

void
print_fig16()
{
    banner("Fig. 16: CAFQA + kT dissociation curves");
    sweep_molecule("H2", 1, pick(5, 10), 1601);
    sweep_molecule("LiH", pick(2, 4), pick(4, 8), 1602);
    std::cout << "\nSimulation cost grows as 2^k branches per evaluation"
                 " (paper Section 8: exponential in the T count), so k"
                 " stays small.\n";
}

void
BM_BranchEvaluationLiH(benchmark::State& state)
{
    static const auto system = problems::make_molecular_system("LiH", 3.0);
    Circuit with_t = system.ansatz;
    with_t.t(0);
    with_t.t(2);
    CliffordTEvaluator evaluator(with_t);
    std::vector<int> steps(system.ansatz.num_params(), 1);
    for (auto _ : state) {
        evaluator.prepare(steps);
        benchmark::DoNotOptimize(
            evaluator.expectation(system.hamiltonian));
    }
}
BENCHMARK(BM_BranchEvaluationLiH);

} // namespace

int
main(int argc, char** argv)
{
    print_fig16();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
