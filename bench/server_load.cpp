/**
 * Load bench for the job server: flood one in-process server with
 * thousands of queued specs over several client connections, then
 * report end-to-end latency percentiles (submit -> result), sustained
 * throughput, and the process-wide cache hit rate.
 *
 * Latency percentiles come from the telemetry subsystem's shared
 * `telemetry::Histogram` — the same log-bucketed estimator the server
 * exports — so the bench numbers and a production scrape read off one
 * implementation. Before shutting the server down the bench scrapes
 * the `metrics` protocol verb and cross-checks the server's own view
 * against the client side: completed-job count must match exactly, and
 * the server's p50 (queue wait + execution, observed before the result
 * is written to the socket) must not exceed the client's p50 (submit
 * to result read) beyond estimator slack.
 *
 * The spec mix cycles a handful of tiny problems, so jobs repeatedly
 * land on the same Hamiltonians — exactly the serving scenario the
 * shared evaluation cache targets; the bench asserts its hit rate is
 * nonzero across jobs. It also re-executes each distinct spec solo
 * through `execute_run_spec` and asserts the streamed record is
 * byte-identical apart from `wall_ms` (wall time is not
 * deterministic).
 *
 * Usage: server_load [--jobs N] [--clients N] [--workers N] [--json PATH]
 * Defaults: 1000 jobs, 4 connections, 2 workers.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_safety.hpp"

#include "common/text.hpp"
#include "core/batch_runner.hpp"
#include "server/client.hpp"
#include "server/job_server.hpp"
#include "telemetry/metrics.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

[[noreturn]] void
fail(const std::string& message)
{
    std::cerr << "server_load: " << message << '\n';
    std::exit(1);
}

double
ms_between(clock_type::time_point a, clock_type::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/** `json` with one top-level scalar field removed (its name, value and
 *  separating comma) — how the bench ignores `wall_ms`. */
std::string
strip_scalar_field(const std::string& json, const std::string& name)
{
    const std::string needle = "\"" + name + "\":";
    const std::size_t start = json.find(needle);
    if (start == std::string::npos) {
        return json;
    }
    std::size_t end = start + needle.size();
    while (end < json.size() && json[end] != ',' && json[end] != '}') {
        ++end;
    }
    std::size_t from = start;
    if (end < json.size() && json[end] == ',') {
        ++end; // the field's own trailing comma
    } else if (start > 0 && json[start - 1] == ',') {
        --from; // last field: drop the preceding comma instead
    }
    return json.substr(0, from) + json.substr(end);
}

/** Numeric field `field` of the nested histogram object `series` in a
 *  registry JSON snapshot (`"series":{...,"field":V,...}`). */
double
snapshot_histogram_field(const std::string& snapshot,
                         const std::string& series,
                         const std::string& field)
{
    const std::string series_needle = "\"" + series + "\":{";
    const std::size_t at = snapshot.find(series_needle);
    if (at == std::string::npos) {
        fail("metrics snapshot is missing series \"" + series + "\"");
    }
    const std::size_t close = snapshot.find('}', at);
    const std::string object =
        snapshot.substr(at, close - at + 1);
    const std::string field_needle = "\"" + field + "\":";
    const std::size_t fat = object.find(field_needle);
    if (fat == std::string::npos) {
        fail("series \"" + series + "\" is missing field \"" + field +
             "\"");
    }
    return std::atof(object.c_str() + fat + field_needle.size());
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cafqa;
    using namespace cafqa::server;

    std::size_t total_jobs = 1000;
    std::size_t num_clients = 4;
    std::size_t num_workers = 2;
    std::string json_path = "BENCH_server_load.json";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                fail(arg + " requires a value");
            }
            return argv[++i];
        };
        if (arg == "--jobs") {
            total_jobs = static_cast<std::size_t>(std::atoll(next()));
        } else if (arg == "--clients") {
            num_clients = static_cast<std::size_t>(std::atoll(next()));
        } else if (arg == "--workers") {
            num_workers = static_cast<std::size_t>(std::atoll(next()));
        } else if (arg == "--json") {
            json_path = next();
        } else if (arg == "--quick") {
            total_jobs = 200;
        } else {
            fail("unknown option '" + arg + "'");
        }
    }
    if (total_jobs == 0 || num_clients == 0) {
        fail("--jobs and --clients must be positive");
    }

    // Tiny specs, deliberately repetitive: the point of the serving
    // cache is jobs re-hitting the same problem.
    const std::vector<std::string> mix = {
        "problem=maxcut:ring-6 warmup=4 iterations=4",
        "problem=maxcut:ring-8 warmup=4 iterations=4",
        "problem=tfim:chain-4?h=1 warmup=4 iterations=4",
    };

    ServerOptions options;
    options.workers = num_workers;
    options.queue_capacity = total_jobs + 16; // hold the full flood
    JobServer server(options);
    server.start();

    std::cout << "server_load: " << total_jobs << " jobs over "
              << num_clients << " connections, " << num_workers
              << " workers\n";

    std::vector<BlockingClient> clients;
    clients.reserve(num_clients);
    for (std::size_t i = 0; i < num_clients; ++i) {
        clients.push_back(
            BlockingClient::connect_tcp("127.0.0.1", server.port()));
    }

    // Flood phase: submit everything before reading a single result,
    // so the queue really holds ~total_jobs entries at once.
    std::map<std::string, clock_type::time_point> submitted_at;
    std::map<std::string, std::string> spec_of;
    const auto flood_start = clock_type::now();
    for (std::size_t j = 0; j < total_jobs; ++j) {
        const std::size_t c = j % num_clients;
        const std::string id = "load-" + std::to_string(j);
        const std::string& spec = mix[j % mix.size()];
        submitted_at[id] = clock_type::now();
        spec_of[id] = spec;
        clients[c].send_line("{\"op\":\"submit\",\"id\":\"" + id +
                             "\",\"spec\":" + json_quote(spec) + "}");
    }

    // Collect phase: one drainer thread per connection (a connection
    // left unread would fill its socket buffer and stall the workers'
    // sends). Latency = submit -> result, observed straight into the
    // shared lock-light histogram (thread-safe; no per-drainer merge).
    telemetry::Histogram client_latency;
    std::map<std::string, std::string> record_of; // spec -> record json
    std::size_t accepted = 0;
    std::size_t failed = 0;
    cafqa::Mutex merge_mutex{"merge_mutex"};
    // lint:allow(raw-thread) bench drainers must outpace the server's
    // worker sends; the pool's serialized parallel_for cannot.
    std::vector<std::thread> drainers;
    drainers.reserve(num_clients);
    for (std::size_t c = 0; c < num_clients; ++c) {
        drainers.emplace_back([&, c] {
            std::size_t outstanding =
                total_jobs / num_clients +
                (c < total_jobs % num_clients ? 1 : 0);
            std::map<std::string, std::string> local_records;
            std::size_t local_accepted = 0;
            std::size_t local_failed = 0;
            while (outstanding > 0) {
                const auto line = clients[c].read_line();
                if (!line) {
                    fail("connection closed with jobs outstanding");
                }
                const Event event = parse_event(*line);
                if (event.event == "accepted") {
                    ++local_accepted;
                } else if (event.event == "rejected") {
                    fail("job rejected: " + event.reason);
                } else if (event.event == "result") {
                    --outstanding;
                    client_latency.observe(ms_between(
                        submitted_at.at(event.id), clock_type::now()));
                    if (event.record_json.find("\"ok\":true") ==
                        std::string::npos) {
                        ++local_failed;
                    }
                    local_records[spec_of.at(event.id)] =
                        event.record_json;
                }
            }
            cafqa::MutexLock lock(merge_mutex);
            for (auto& [spec, record] : local_records) {
                record_of[spec] = std::move(record);
            }
            accepted += local_accepted;
            failed += local_failed;
        });
    }
    // lint:allow(raw-thread) joining the bench drainers above.
    for (std::thread& drainer : drainers) {
        drainer.join();
    }
    const double wall_ms = ms_between(flood_start, clock_type::now());

    if (failed > 0) {
        fail(std::to_string(failed) + " job(s) failed");
    }

    // Scrape phase: ask the still-running server for its own telemetry
    // and cross-check it against the client-side view.
    clients[0].send_line(metrics_line());
    const auto metrics_reply = clients[0].read_line();
    if (!metrics_reply) {
        fail("connection closed on the metrics scrape");
    }
    const Event scrape = parse_event(*metrics_reply);
    if (scrape.event != "metrics") {
        fail("expected a metrics event, got \"" + scrape.event + "\"");
    }
    const std::optional<double> served_jobs = telemetry::find_prometheus_sample(
        scrape.prometheus, "cafqa_server_jobs_completed_total");
    if (!served_jobs) {
        fail("scrape is missing cafqa_server_jobs_completed_total");
    }
    if (static_cast<std::size_t>(*served_jobs) != total_jobs) {
        fail("server counted " + std::to_string(
                 static_cast<std::size_t>(*served_jobs)) +
             " completed jobs, clients saw " + std::to_string(total_jobs));
    }
    const double server_latency_count = snapshot_histogram_field(
        scrape.snapshot_json, "cafqa_server_job_latency_ms", "count");
    if (static_cast<std::size_t>(server_latency_count) != total_jobs) {
        fail("server latency histogram holds " +
             std::to_string(static_cast<std::size_t>(
                 server_latency_count)) +
             " observations, expected " + std::to_string(total_jobs));
    }
    const double server_p50 = snapshot_histogram_field(
        scrape.snapshot_json, "cafqa_server_job_latency_ms", "p50");

    const CacheStats cache = server.cache()->stats();
    server.shutdown(true);
    server.wait();

    // Contract: a server record matches the solo run byte for byte,
    // `wall_ms` aside.
    for (const std::string& spec_text : mix) {
        const RunSpec spec = RunSpec::parse(spec_text);
        const std::string solo =
            strip_scalar_field(execute_run_spec(spec).to_json(),
                               "wall_ms");
        const std::string served =
            strip_scalar_field(record_of.at(spec_text), "wall_ms");
        if (solo != served) {
            fail("server record differs from solo run for \"" +
                 spec_text + "\":\n  solo:   " + solo +
                 "\n  served: " + served);
        }
    }

    const double p50 = client_latency.percentile(0.50);
    const double p95 = client_latency.percentile(0.95);
    const double p99 = client_latency.percentile(0.99);
    const double throughput =
        static_cast<double>(total_jobs) / (wall_ms / 1000.0);

    // The server measures submit -> result-written; the client adds
    // socket transit and drain scheduling on top, so the server's p50
    // must not exceed the client's beyond the histogram estimator
    // slack (~9% per side) plus a small absolute allowance.
    if (server_p50 > p50 * 1.25 + 2.0) {
        fail("server p50 " + format_real(server_p50) +
             " ms exceeds client p50 " + format_real(p50) + " ms");
    }

    std::cout << "  accepted      " << accepted << "/" << total_jobs
              << "\n  wall          " << format_real(wall_ms)
              << " ms\n  throughput    " << format_real(throughput)
              << " jobs/s\n  latency p50   " << format_real(p50)
              << " ms\n  latency p95   " << format_real(p95)
              << " ms\n  latency p99   " << format_real(p99)
              << " ms\n  server p50    " << format_real(server_p50)
              << " ms (" << static_cast<std::size_t>(served_jobs.value())
              << " jobs scraped)\n  cache         " << cache.to_json()
              << "\n  solo-vs-served identical for " << mix.size()
              << " distinct specs\n";

    if (cache.hits == 0) {
        fail("shared cache saw no cross-job hits");
    }

    std::ofstream json(json_path);
    if (json) {
        json << "{\"jobs\":" << total_jobs
             << ",\"clients\":" << num_clients
             << ",\"workers\":" << num_workers
             << ",\"wall_ms\":" << format_real(wall_ms)
             << ",\"throughput_per_s\":" << format_real(throughput)
             << ",\"p50_ms\":" << format_real(p50)
             << ",\"p95_ms\":" << format_real(p95)
             << ",\"p99_ms\":" << format_real(p99)
             << ",\"cache\":" << cache.to_json() << "}\n";
    }
    return 0;
}
