/**
 * Scaling study of the stabilizer hot path: legacy row-based Tableau
 * term loop vs the column-packed SymplecticTableau +
 * StabilizerExpectationEngine batched pass.
 *
 * Sweeps molecule Hamiltonians, random Clifford circuits with random
 * Hermitian Pauli sums, and MaxCut instances up to 256+ qubits; every
 * comparison first asserts the two paths produce the *identical*
 * energy, then times them. An end-to-end pipeline comparison runs the
 * Clifford-search stage on a bench-registered "legacy-clifford"
 * backend vs the production "clifford" backend (same seed, identical
 * trajectories) and reports wall time.
 *
 * Results print as tables and are additionally written as
 * machine-readable JSON (default `BENCH_stabilizer.json`, override
 * with `--json <path>`) so CI can archive a perf baseline per commit.
 * `--quick` forces CI sizing regardless of CAFQA_BENCH_SCALE.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "problems/maxcut.hpp"
#include "stabilizer/circuit_replay.hpp"
#include "stabilizer/expectation_engine.hpp"
#include "stabilizer/symplectic_tableau.hpp"
#include "stabilizer/tableau.hpp"

namespace cafqa::bench {
namespace {

double sink = 0.0; // defeats dead-code elimination across timed calls

/** Microseconds per invocation, growing reps until the run is long
 *  enough to trust the clock. */
template <typename F>
double
time_us(F&& fn, double min_ms)
{
    using clock = std::chrono::steady_clock;
    std::size_t reps = 1;
    for (;;) {
        const auto start = clock::now();
        for (std::size_t i = 0; i < reps; ++i) {
            fn();
        }
        const double ms =
            std::chrono::duration<double, std::milli>(clock::now() - start)
                .count();
        if (ms >= min_ms || reps >= (std::size_t{1} << 24)) {
            return ms * 1000.0 / static_cast<double>(reps);
        }
        reps = (ms <= 0.01)
                   ? reps * 16
                   : static_cast<std::size_t>(
                         static_cast<double>(reps) * (min_ms / ms) * 1.3) +
                         1;
    }
}

/** Legacy reference path: per-term row-based evaluation. */
double
legacy_energy(const Tableau& tableau, const PauliSum& op)
{
    double total = 0.0;
    for (const auto& term : op.terms()) {
        const int e = tableau.expectation(term.string);
        if (e != 0) {
            total += term.coefficient.real() * e;
        }
    }
    return total;
}

struct EvalRow
{
    std::string name;
    std::size_t qubits = 0;
    std::size_t terms = 0;
    std::size_t groups = 0;
    double legacy_us = 0.0;
    double packed_us = 0.0;
    double parallel_us = 0.0; ///< 0 when not measured
    double speedup() const { return legacy_us / packed_us; }
};

struct GateRow
{
    std::string name;
    std::size_t qubits = 0;
    std::size_t gates = 0;
    double legacy_us = 0.0;
    double packed_us = 0.0;
};

struct PipelineRow
{
    std::string name;
    std::size_t qubits = 0;
    std::size_t evaluations = 0;
    double legacy_ms = 0.0;
    double packed_ms = 0.0;
    double energy = 0.0;
};

/**
 * One eval-path comparison: prepare the same stabilizer state on both
 * representations, assert identical energies, then time the batched
 * pass against the legacy term loop.
 */
EvalRow
compare_eval(const std::string& name, const Circuit& circuit,
             const std::vector<int>& steps, const PauliSum& op,
             double min_ms, bool measure_parallel)
{
    Tableau legacy(circuit.num_qubits());
    replay_circuit_steps(legacy, circuit, steps);
    SymplecticTableau packed(circuit.num_qubits());
    replay_circuit_steps(packed, circuit, steps);

    const StabilizerExpectationEngine engine(op);
    const double reference = legacy_energy(legacy, op);
    const double batched = engine.expectation(packed);
    if (batched != reference) {
        throw std::logic_error("packed energy diverges from legacy on " +
                               name);
    }

    EvalRow row;
    row.name = name;
    row.qubits = circuit.num_qubits();
    row.terms = op.num_terms();
    row.groups = engine.num_groups();
    row.legacy_us = time_us([&] { sink += legacy_energy(legacy, op); },
                            min_ms);
    row.packed_us =
        time_us([&] { sink += engine.expectation(packed); }, min_ms);
    if (measure_parallel && ThreadPool::shared().size() > 1) {
        ThreadPool& pool = ThreadPool::shared();
        if (engine.expectation(packed, pool) != reference) {
            throw std::logic_error(
                "parallel energy diverges from legacy on " + name);
        }
        row.parallel_us = time_us(
            [&] { sink += engine.expectation(packed, pool); }, min_ms);
    }
    return row;
}

GateRow
compare_gates(const std::string& name, const Circuit& circuit,
              const std::vector<int>& steps, double min_ms)
{
    GateRow row;
    row.name = name;
    row.qubits = circuit.num_qubits();
    row.gates = circuit.ops().size();
    row.legacy_us = time_us(
        [&] {
            Tableau t(circuit.num_qubits());
            replay_circuit_steps(t, circuit, steps);
        },
        min_ms);
    row.packed_us = time_us(
        [&] {
            SymplecticTableau t(circuit.num_qubits());
            replay_circuit_steps(t, circuit, steps);
        },
        min_ms);
    return row;
}

std::vector<int>
random_steps(std::size_t count, Rng& rng)
{
    std::vector<int> steps(count);
    for (auto& s : steps) {
        s = static_cast<int>(rng.uniform_int(0, 3));
    }
    return steps;
}

Circuit
random_clifford_circuit(std::size_t n, std::size_t gates, Rng& rng)
{
    Circuit circuit(n);
    for (std::size_t g = 0; g < gates; ++g) {
        const auto q = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        auto q2 = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        if (q2 == q) {
            q2 = (q + 1) % n;
        }
        switch (rng.uniform_int(0, 5)) {
          case 0: circuit.h(q); break;
          case 1: circuit.s(q); break;
          case 2: circuit.sdg(q); break;
          case 3: circuit.x(q); break;
          case 4: circuit.cx(q, q2); break;
          default: circuit.cz(q, q2); break;
        }
    }
    return circuit;
}

PauliSum
random_hamiltonian(std::size_t n, std::size_t terms, Rng& rng)
{
    PauliSum op(n);
    for (std::size_t t = 0; t < terms; ++t) {
        PauliString p(n);
        // Mix of local and extensive terms, like mapped molecular sums.
        const std::size_t weight =
            (t % 4 == 0) ? n / 2
                         : 1 + static_cast<std::size_t>(
                                   rng.uniform_int(0, 3));
        for (std::size_t k = 0; k < weight; ++k) {
            const auto q = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
            p.set_letter(q,
                         static_cast<PauliLetter>(rng.uniform_int(1, 3)));
        }
        op.add_term(rng.uniform_real(-1.0, 1.0), p);
    }
    op.simplify();
    return op;
}

/** Bench-local legacy backend so the whole pipeline can run on the
 *  row-based path for the end-to-end comparison. */
class LegacyCliffordEvaluator final : public DiscreteBackend
{
  public:
    explicit LegacyCliffordEvaluator(Circuit ansatz)
        : ansatz_(std::move(ansatz))
    {}

    std::string_view kind() const override { return "legacy-clifford"; }
    std::size_t num_qubits() const override { return ansatz_.num_qubits(); }
    std::size_t num_params() const override { return ansatz_.num_params(); }

    void prepare(const std::vector<int>& steps) override
    {
        tableau_.emplace(ansatz_.num_qubits());
        replay_circuit_steps(*tableau_, ansatz_, steps);
    }

    double expectation(const PauliSum& op) const override
    {
        if (!tableau_) {
            throw std::invalid_argument("prepare() has not been called");
        }
        return legacy_energy(*tableau_, op);
    }

    std::unique_ptr<Backend> clone() const override
    {
        return std::make_unique<LegacyCliffordEvaluator>(*this);
    }

  private:
    Circuit ansatz_;
    std::optional<Tableau> tableau_;
};

PipelineRow
compare_pipeline(const problems::MolecularSystem& system)
{
    PipelineRow row;
    row.name = system.name;
    row.qubits = system.num_qubits;

    double energies[2] = {0.0, 0.0};
    double wall_ms[2] = {0.0, 0.0};
    const char* backends[2] = {"legacy-clifford", "clifford"};
    for (int side = 0; side < 2; ++side) {
        PipelineConfig config = molecular_pipeline_config(system, 7);
        config.search_backend = backends[side];
        // Annealing is evaluation-bound (no surrogate-model fitting),
        // so the stage wall time isolates the simulator cost.
        config.search_optimizer = optimizer_config("anneal");
        CafqaPipeline pipeline(std::move(config));
        const auto start = std::chrono::steady_clock::now();
        const CafqaResult& result = pipeline.run_clifford_search();
        wall_ms[side] = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
        energies[side] = result.best_energy;
        row.evaluations = result.history.size();
    }
    if (energies[0] != energies[1]) {
        throw std::logic_error(
            "legacy and packed pipelines diverged on " + system.name);
    }
    row.legacy_ms = wall_ms[0];
    row.packed_ms = wall_ms[1];
    row.energy = energies[1];
    return row;
}

std::string
json_escape_number(double v)
{
    std::ostringstream out;
    out.precision(12);
    out << v;
    return out.str();
}

void
write_json(const std::string& path, bool quick,
           const std::vector<EvalRow>& evals,
           const std::vector<GateRow>& gates,
           const std::vector<PipelineRow>& pipelines)
{
    std::ofstream out(path);
    out << "{\n  \"bench\": \"stabilizer_scaling\",\n  \"scale\": \""
        << (quick ? "quick" : "paper") << "\",\n  \"threads\": "
        << ThreadPool::shared().size() << ",\n  \"eval\": [\n";
    for (std::size_t i = 0; i < evals.size(); ++i) {
        const EvalRow& r = evals[i];
        out << "    {\"case\": \"" << r.name << "\", \"qubits\": "
            << r.qubits << ", \"terms\": " << r.terms
            << ", \"groups\": " << r.groups << ", \"legacy_us\": "
            << json_escape_number(r.legacy_us) << ", \"packed_us\": "
            << json_escape_number(r.packed_us) << ", \"parallel_us\": "
            << json_escape_number(r.parallel_us) << ", \"speedup\": "
            << json_escape_number(r.speedup()) << "}"
            << (i + 1 < evals.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"gates\": [\n";
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const GateRow& r = gates[i];
        out << "    {\"case\": \"" << r.name << "\", \"qubits\": "
            << r.qubits << ", \"gates\": " << r.gates
            << ", \"legacy_us\": " << json_escape_number(r.legacy_us)
            << ", \"packed_us\": " << json_escape_number(r.packed_us)
            << ", \"speedup\": "
            << json_escape_number(r.legacy_us / r.packed_us) << "}"
            << (i + 1 < gates.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"pipeline\": [\n";
    for (std::size_t i = 0; i < pipelines.size(); ++i) {
        const PipelineRow& r = pipelines[i];
        out << "    {\"case\": \"" << r.name << "\", \"qubits\": "
            << r.qubits << ", \"evaluations\": " << r.evaluations
            << ", \"legacy_ms\": " << json_escape_number(r.legacy_ms)
            << ", \"packed_ms\": " << json_escape_number(r.packed_ms)
            << ", \"speedup\": "
            << json_escape_number(r.legacy_ms / r.packed_ms)
            << ", \"energy\": " << json_escape_number(r.energy) << "}"
            << (i + 1 < pipelines.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

int
run(int argc, char** argv)
{
    bool quick = scale() == Scale::Quick;
    std::string json_path = "BENCH_stabilizer.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::cerr << "usage: stabilizer_scaling [--quick] "
                         "[--json <path>]\n";
            return 1;
        }
    }

    banner("stabilizer_scaling: packed symplectic tableau vs legacy "
           "row-based path");
    const double min_ms = quick ? 30.0 : 200.0;
    Rng rng(2023);

    std::vector<EvalRow> evals;
    std::vector<GateRow> gates;
    std::vector<PipelineRow> pipelines;

    // ---- Molecule Hamiltonians on their EfficientSU2 ansatz states.
    std::vector<std::string> molecules = {"H2", "LiH"};
    if (!quick) {
        molecules.push_back("H6");
        molecules.push_back("H2O");
    } else {
        molecules.push_back("H2O"); // the 12-qubit system of Table 1
    }
    for (const std::string& name : molecules) {
        const auto info = problems::molecule_info(name);
        const auto system = problems::make_molecular_system(
            name, info.equilibrium_bond_length);
        const auto steps = random_steps(system.ansatz.num_params(), rng);
        evals.push_back(compare_eval(name, system.ansatz, steps,
                                     system.hamiltonian, min_ms, false));
        gates.push_back(
            compare_gates(name, system.ansatz, steps, min_ms));
    }

    // ---- Random Clifford circuits + random Hermitian sums.
    for (const std::size_t n :
         quick ? std::vector<std::size_t>{32, 64, 128, 256}
               : std::vector<std::size_t>{32, 64, 128, 256, 384}) {
        const Circuit circuit = random_clifford_circuit(n, 8 * n, rng);
        const PauliSum op = random_hamiltonian(n, 4 * n, rng);
        const std::string name =
            "random-" + std::to_string(n) + "q";
        evals.push_back(compare_eval(name, circuit, {}, op, min_ms,
                                     n >= 128));
        gates.push_back(compare_gates(name, circuit, {}, min_ms));
    }

    // ---- MaxCut instances with QAOA ansatze.
    {
        const auto ring = problems::make_ring_maxcut(64);
        const Circuit ansatz = problems::make_qaoa_ansatz(ring, 2);
        const auto steps = random_steps(ansatz.num_params(), rng);
        evals.push_back(compare_eval("maxcut-ring-64", ansatz, steps,
                                     ring.hamiltonian, min_ms, false));
    }
    {
        const auto graph =
            problems::make_random_maxcut(256, 0.03, 11, "er-256");
        const Circuit ansatz = problems::make_qaoa_ansatz(graph, 2);
        const auto steps = random_steps(ansatz.num_params(), rng);
        evals.push_back(compare_eval("maxcut-er-256", ansatz, steps,
                                     graph.hamiltonian, min_ms, true));
    }

    // ---- End-to-end Clifford-search stage, legacy vs packed backend.
    register_backend("legacy-clifford", [](const BackendConfig& config) {
        return std::make_unique<LegacyCliffordEvaluator>(config.ansatz);
    });
    for (const std::string& name :
         quick ? std::vector<std::string>{"H2"}
               : std::vector<std::string>{"H2", "LiH", "H2O"}) {
        const auto info = problems::molecule_info(name);
        pipelines.push_back(compare_pipeline(
            problems::make_molecular_system(
                name, info.equilibrium_bond_length)));
    }

    // ---- Report.
    Table eval_table("Batched Pauli-sum evaluation (one prepared state)");
    eval_table.set_header({"case", "qubits", "terms", "groups",
                           "legacy us", "packed us", "parallel us",
                           "speedup"});
    for (const EvalRow& r : evals) {
        eval_table.add_row(
            {r.name, std::to_string(r.qubits), std::to_string(r.terms),
             std::to_string(r.groups), Table::num(r.legacy_us, 2),
             Table::num(r.packed_us, 2),
             r.parallel_us > 0 ? Table::num(r.parallel_us, 2) : "-",
             Table::num(r.speedup(), 1) + "x"});
    }
    eval_table.print(std::cout);

    Table gate_table("Circuit replay (tableau construction)");
    gate_table.set_header({"case", "qubits", "gates", "legacy us",
                           "packed us", "speedup"});
    for (const GateRow& r : gates) {
        gate_table.add_row({r.name, std::to_string(r.qubits),
                            std::to_string(r.gates),
                            Table::num(r.legacy_us, 2),
                            Table::num(r.packed_us, 2),
                            Table::num(r.legacy_us / r.packed_us, 1) +
                                "x"});
    }
    gate_table.print(std::cout);

    Table pipe_table("End-to-end Clifford-search stage (anneal)");
    pipe_table.set_header({"case", "qubits", "evals", "legacy ms",
                           "packed ms", "speedup"});
    for (const PipelineRow& r : pipelines) {
        pipe_table.add_row({r.name, std::to_string(r.qubits),
                            std::to_string(r.evaluations),
                            Table::num(r.legacy_ms, 1),
                            Table::num(r.packed_ms, 1),
                            Table::num(r.legacy_ms / r.packed_ms, 1) +
                                "x"});
    }
    pipe_table.print(std::cout);

    write_json(json_path, quick, evals, gates, pipelines);
    std::cout << "\nJSON written to " << json_path << " (sink " << sink
              << ")\n";
    return 0;
}

} // namespace
} // namespace cafqa::bench

int
main(int argc, char** argv)
{
    return cafqa::bench::run(argc, argv);
}
