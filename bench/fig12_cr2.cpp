// Regenerates paper Fig. 12: chromium dimer (Cr2) ground-state energy,
// CAFQA vs Hartree-Fock, plotted as E_dimer - 2*E_atom. The paper
// freezes the lower 18 of 36 orbitals (34 qubits) and notes its search
// is bounded by compute; the quick scale here uses a deeper freeze
// (10-qubit active space) so the bench completes in CI time, while
// CAFQA_BENCH_SCALE=paper uses the paper's 18-orbital active space.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "chem/basis.hpp"
#include "common/table.hpp"

namespace {

using namespace cafqa;
using namespace cafqa::bench;

/** Best-effort RHF energy of the chromium atom (full basis). */
std::pair<double, bool>
chromium_atom_energy()
{
    const chem::Molecule atom({chem::Atom{24, {0.0, 0.0, 0.0}}});
    const chem::BasisSet basis = chem::BasisSet::sto3g(atom);
    const chem::AoIntegrals ints = chem::compute_ao_integrals(atom, basis);
    chem::ScfOptions options;
    options.max_iterations = 400;
    options.damping = 0.5;
    options.damping_iterations = 10;
    options.level_shift = 0.5;
    const chem::ScfResult scf = chem::rhf(atom, ints, options);
    return {scf.energy, scf.converged};
}

void
print_fig12()
{
    banner("Fig. 12: Cr2 ground state energy (E_dimer - 2*E_atom)");

    const auto [atom_energy, atom_converged] = chromium_atom_energy();
    std::cout << "Cr atom RHF reference: " << atom_energy << " Ha"
              << (atom_converged ? "" : "  (SCF not fully converged)")
              << "\n\n";

    problems::MolecularSystemOptions options;
    std::vector<double> bonds;
    if (scale() == Scale::Paper) {
        options.frozen_override = 18;
        options.active_override = 18; // 34 qubits, as in the paper
        bonds = linspace(1.25, 3.5, 8);
    } else {
        options.frozen_override = 21;
        options.active_override = 6; // 10 qubits for CI-time runs
        bonds = {1.68, 2.2, 2.8};
    }

    Table table("Cr2: energy relative to two atoms (Hartree)");
    table.set_header({"Bond(A)", "HF - 2*E_atom", "CAFQA - 2*E_atom",
                      "CAFQA <= HF", "Qubits", "SCFconv"});
    for (const double bond : bonds) {
        const auto system =
            problems::make_molecular_system("Cr2", bond, options);
        PipelineConfig config = molecular_pipeline_config(system, 2024);
        if (scale() == Scale::Quick) {
            config.search.warmup = 120;
            config.search.iterations = 150;
        }
        CafqaPipeline pipeline(std::move(config));
        const CafqaResult cafqa = pipeline.run_clifford_search();

        const double hf_rel = system.hf_energy - 2.0 * atom_energy;
        const double cafqa_rel = cafqa.best_energy - 2.0 * atom_energy;
        table.add_row({Table::num(bond, 2), Table::num(hf_rel, 4),
                       Table::num(cafqa_rel, 4),
                       cafqa.best_energy <= system.hf_energy + 1e-9
                           ? "yes"
                           : "NO",
                       std::to_string(system.num_qubits),
                       system.scf_converged ? "yes" : "no"});
    }
    table.print(std::cout);

    std::cout << "\nNote: paper Section 7.1.5 — Cr2 estimates are bounded"
                 " by compute budget; CAFQA's claim here is consistently"
                 " lower initialization energy than HF across bond"
                 " lengths.\n";
}

void
BM_Cr2ActiveHamiltonian(benchmark::State& state)
{
    problems::MolecularSystemOptions options;
    options.frozen_override = 21;
    options.active_override = 6;
    for (auto _ : state) {
        auto system = problems::make_molecular_system("Cr2", 1.68, options);
        benchmark::DoNotOptimize(system.hamiltonian.num_terms());
    }
}
BENCHMARK(BM_Cr2ActiveHamiltonian)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

} // namespace

int
main(int argc, char** argv)
{
    print_fig12();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
