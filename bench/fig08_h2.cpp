// Regenerates paper Fig. 8: H2 dissociation curves — ground-state energy
// (plus the H2+ cation with an electron-count constraint), energy
// estimation error, and correlation energy recovered, for CAFQA vs
// Hartree-Fock vs Exact.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/table.hpp"

namespace {

using namespace cafqa;
using namespace cafqa::bench;

void
print_fig08()
{
    banner("Fig. 8: H2 dissociation curves (+ H2+ cation)");

    const auto info = problems::molecule_info("H2");
    const auto bonds = linspace(info.min_bond_length, info.max_bond_length,
                                pick(7, 14));

    Table energy("(a) H2 energy (Hartree)");
    energy.set_header({"Bond(A)", "HF", "CAFQA", "Exact", "CAFQA H2+ cation"});
    Table accuracy("(b) H2 accuracy: |E - Exact| (Hartree)");
    accuracy.set_header({"Bond(A)", "HF", "CAFQA", "CAFQA<=ChemAcc"});
    Table correlation("(c) H2 correlation energy recovered (%)");
    correlation.set_header({"Bond(A)", "CAFQA"});

    for (const double bond : bonds) {
        const auto system = problems::make_molecular_system("H2", bond);
        const CafqaResult cafqa = run_molecular_cafqa(
            system, 1000 + static_cast<std::uint64_t>(bond * 100));
        const double exact = exact_energy(system.hamiltonian);

        // Cation sector: one electron, enforced through the objective
        // (paper Section 7.1.1).
        problems::MolecularSystemOptions cation_options;
        cation_options.sector_charge = +1;
        cation_options.sector_spin_2sz = +1;
        const auto cation =
            problems::make_molecular_system("H2", bond, cation_options);
        const CafqaResult cation_cafqa = run_molecular_cafqa(
            cation, 7000 + static_cast<std::uint64_t>(bond * 100),
            problems::make_objective(cation, 4.0, 4.0));

        const double hf_err = std::abs(system.hf_energy - exact);
        const double cafqa_err = std::abs(cafqa.best_energy - exact);

        energy.add_row({Table::num(bond, 2), Table::num(system.hf_energy, 5),
                        Table::num(cafqa.best_energy, 5),
                        Table::num(exact, 5),
                        Table::num(cation_cafqa.best_energy, 5)});
        accuracy.add_row({Table::num(bond, 2), Table::sci(hf_err, 2),
                          Table::sci(std::max(cafqa_err, 1e-10), 2),
                          cafqa_err <= chemical_accuracy ? "yes" : "no"});
        correlation.add_row(
            {Table::num(bond, 2),
             Table::num(correlation_recovered_percent(
                            system.hf_energy, cafqa.best_energy, exact),
                        1)});
    }

    energy.print(std::cout);
    accuracy.print(std::cout);
    correlation.print(std::cout);
}

void
BM_CafqaSearchH2(benchmark::State& state)
{
    static const auto system = problems::make_molecular_system("H2", 2.0);
    static const VqaObjective objective = problems::make_objective(system);
    for (auto _ : state) {
        const CafqaResult r = run_cafqa(
            system.ansatz, objective,
            {.warmup = 50, .iterations = 50, .seed = 1});
        benchmark::DoNotOptimize(r.best_energy);
    }
}
BENCHMARK(BM_CafqaSearchH2)->Unit(benchmark::kMillisecond)->Iterations(3);

} // namespace

int
main(int argc, char** argv)
{
    print_fig08();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
