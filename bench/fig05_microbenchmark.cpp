// Regenerates paper Fig. 5: the 2-qubit XX-Hamiltonian microbenchmark.
// Series: ideal-machine sweep, two noisy-machine sweeps (Casablanca /
// Manhattan surrogates), the Hartree-Fock value, and the four CAFQA
// Clifford points.

#include <benchmark/benchmark.h>

#include <numbers>

#include "bench_common.hpp"
#include "circuit/efficient_su2.hpp"
#include "common/table.hpp"
#include "core/evaluator.hpp"
#include "density/noise_model.hpp"

namespace {

using namespace cafqa;
using namespace cafqa::bench;

const PauliSum&
xx_hamiltonian()
{
    static const PauliSum h = PauliSum::from_terms(2, {{1.0, "XX"}});
    return h;
}

void
print_fig05()
{
    banner("Fig. 5: ansatz tuning on the 2-qubit XX Hamiltonian");

    const Circuit ansatz = make_microbenchmark_ansatz();
    const PauliSum& h = xx_hamiltonian();
    const NoiseModel casablanca = noise_model_casablanca();
    const NoiseModel manhattan = noise_model_manhattan();

    const std::size_t points = pick(17, 65);
    Table sweep("Expectation value vs theta");
    sweep.set_header({"theta(rad)", "Ideal", "Noisy(Casablanca)",
                      "Noisy(Manhattan)", "Hartree-Fock"});

    double ideal_min = 1e9;
    double casa_min = 1e9;
    double manh_min = 1e9;
    for (const double theta :
         linspace(0.0, 2.0 * std::numbers::pi, points)) {
        const std::vector<double> params = {theta};
        Statevector psi(2);
        psi.apply_circuit(ansatz, params);
        const double ideal = psi.expectation(h);
        const double casa =
            simulate_noisy(ansatz, params, casablanca).expectation(h);
        const double manh =
            simulate_noisy(ansatz, params, manhattan).expectation(h);
        ideal_min = std::min(ideal_min, ideal);
        casa_min = std::min(casa_min, casa);
        manh_min = std::min(manh_min, manh);
        // HF: best computational basis state; XX has no diagonal part,
        // so the HF expectation is identically 0 (paper Section 4.1).
        sweep.add_row({Table::num(theta, 3), Table::num(ideal, 4),
                       Table::num(casa, 4), Table::num(manh, 4),
                       Table::num(0.0, 4)});
    }
    sweep.print(std::cout);

    Table clifford("CAFQA Clifford points (theta = k*pi/2)");
    clifford.set_header({"k", "theta(rad)", "<XX> (exact, one shot/term)"});
    CliffordEvaluator evaluator(ansatz);
    double cafqa_min = 1e9;
    for (int k = 0; k < 4; ++k) {
        evaluator.prepare({k});
        const double value = evaluator.expectation(h);
        cafqa_min = std::min(cafqa_min, value);
        clifford.add_row({std::to_string(k),
                          Table::num(k * std::numbers::pi / 2.0, 3),
                          Table::num(value, 4)});
    }
    clifford.print(std::cout);

    Table mins("Minima reached by each method");
    mins.set_header({"Method", "Minimum", "Paper reports"});
    mins.add_row({"Ideal machine", Table::num(ideal_min, 4), "-1.0"});
    mins.add_row({"CAFQA (only-Clifford)", Table::num(cafqa_min, 4),
                  "-1.0"});
    mins.add_row({"Noisy (Casablanca)", Table::num(casa_min, 4), "~-0.85"});
    mins.add_row({"Noisy (Manhattan)", Table::num(manh_min, 4), "~-0.70"});
    mins.add_row({"Hartree-Fock", Table::num(0.0, 4), "0.0"});
    mins.print(std::cout);
}

void
BM_IdealSweepPoint(benchmark::State& state)
{
    const Circuit ansatz = make_microbenchmark_ansatz();
    double theta = 0.1;
    for (auto _ : state) {
        Statevector psi(2);
        psi.apply_circuit(ansatz, {theta});
        benchmark::DoNotOptimize(psi.expectation(xx_hamiltonian()));
        theta += 0.01;
    }
}
BENCHMARK(BM_IdealSweepPoint);

void
BM_NoisySweepPoint(benchmark::State& state)
{
    const Circuit ansatz = make_microbenchmark_ansatz();
    const NoiseModel noise = noise_model_manhattan();
    double theta = 0.1;
    for (auto _ : state) {
        const DensityMatrix rho = simulate_noisy(ansatz, {theta}, noise);
        benchmark::DoNotOptimize(rho.expectation(xx_hamiltonian()));
        theta += 0.01;
    }
}
BENCHMARK(BM_NoisySweepPoint);

void
BM_CliffordPoint(benchmark::State& state)
{
    CliffordEvaluator evaluator(make_microbenchmark_ansatz());
    int k = 0;
    for (auto _ : state) {
        evaluator.prepare({k & 3});
        benchmark::DoNotOptimize(
            evaluator.expectation(xx_hamiltonian()));
        ++k;
    }
}
BENCHMARK(BM_CliffordPoint);

} // namespace

int
main(int argc, char** argv)
{
    print_fig05();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
