// Regenerates paper Fig. 6: per-Pauli-term expectation values for LiH at
// 4.8 Angstrom (3x equilibrium), comparing Hartree-Fock, the CAFQA
// Clifford ansatz, and the exact ground state. Terms are grouped the
// way the paper plots them: computational basis terms, non-computational
// terms selected by CAFQA (|<P>| = 1), and the remaining terms beyond
// the Clifford reach.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/evaluator.hpp"
#include "core/hartree_fock_baseline.hpp"
#include "core/clifford_ansatz.hpp"

namespace {

using namespace cafqa;
using namespace cafqa::bench;

void
print_panel(const std::string& molecule, double bond, std::uint64_t seed)
{
    const auto system = problems::make_molecular_system(molecule, bond);
    const VqaObjective objective = problems::make_objective(system);
    // Pure BO search (no HF prior), matching the paper's methodology:
    // the resulting stabilizer state is a genuine non-computational
    // basis state whose selected non-diagonal terms this figure plots.
    // (With the HF prior injected, the search instead discovers that a
    // *different determinant* — the bond-broken configuration — is
    // near-exact for this active space; see the summary rows.)
    const CafqaResult cafqa = run_cafqa(
        system.ansatz, objective, cafqa_budget(system.num_qubits, seed));

    CliffordEvaluator clifford(system.ansatz);
    clifford.prepare(cafqa.best_steps);

    const GroundState exact = lanczos_ground_state(
        system.hamiltonian,
        {.max_iterations = 200, .tolerance = 1e-10, .seed = 7,
         .want_vector = true});

    struct Row
    {
        std::string label;
        double hf;
        int cafqa;
        double exact;
        int group; // 0 comp-basis, 1 CAFQA-selected, 2 rest
    };
    std::vector<Row> rows;
    for (const auto& term : system.hamiltonian.terms()) {
        if (term.string.is_identity_letters()) {
            continue;
        }
        Row row;
        row.label = term.string.to_label();
        std::vector<int> hf_bits = system.hf_bits;
        PauliSum single(system.num_qubits);
        single.add_term(1.0, term.string);
        row.hf = basis_state_expectation(single, hf_bits);
        row.cafqa = clifford.expectation(term.string);
        row.exact = exact.state->expectation(single);

        bool diagonal = true;
        for (const auto w : term.string.x_words()) {
            diagonal = diagonal && (w == 0);
        }
        if (diagonal) {
            row.group = 0;
        } else if (row.cafqa != 0) {
            row.group = 1;
        } else {
            row.group = 2;
        }
        rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
        if (a.group != b.group) {
            return a.group < b.group;
        }
        return a.exact < b.exact;
    });

    const char* const group_names[] = {
        "computational basis", "non-comp. basis, CAFQA-selected",
        "non-comp. basis, beyond Clifford reach"};
    Table table(molecule + " @ " + Table::num(bond, 2) +
                " A: per-term expectations (HF vs CAFQA vs Exact)");
    table.set_header({"Pauli", "Group", "HF", "CAFQA", "Exact"});
    for (const auto& row : rows) {
        table.add_row({row.label, group_names[row.group],
                       Table::num(row.hf, 1),
                       Table::num(static_cast<double>(row.cafqa), 1),
                       Table::num(row.exact, 4)});
    }
    table.print(std::cout);

    std::size_t selected = 0;
    for (const auto& row : rows) {
        if (row.group == 1) {
            ++selected;
        }
    }
    Table summary(molecule + " summary");
    summary.set_header({"Quantity", "Value"});
    summary.add_row({"HF energy (Ha)", Table::num(system.hf_energy, 6)});
    summary.add_row({"CAFQA energy (Ha)", Table::num(cafqa.best_energy, 6)});
    summary.add_row({"Exact energy (Ha)", Table::num(exact.energy, 6)});
    summary.add_row({"Non-diagonal terms CAFQA captures",
                     std::to_string(selected)});
    const BestBitstring best_det = best_constrained_bitstring(
        system.hamiltonian,
        {{system.number_op, 2.0}, {system.sz_op, 0.0}},
        system.num_qubits);
    summary.add_row({"Best in-sector determinant (Ha)",
                     Table::num(best_det.energy, 6)});
    summary.print(std::cout);
}

void
BM_CafqaEvaluationLiH(benchmark::State& state)
{
    static const auto system = problems::make_molecular_system("LiH", 4.8);
    CliffordEvaluator evaluator(system.ansatz);
    std::vector<int> steps(system.ansatz.num_params(), 1);
    for (auto _ : state) {
        evaluator.prepare(steps);
        benchmark::DoNotOptimize(
            evaluator.expectation(system.hamiltonian));
    }
}
BENCHMARK(BM_CafqaEvaluationLiH);

} // namespace

void
print_fig06()
{
    banner("Fig. 6: expectation value of each Pauli term");
    // The paper's target: LiH at 3x equilibrium. For our LiH active
    // space the Clifford optimum happens to be a (bond-broken)
    // determinant — reported in the summary — so a stretched H2 panel
    // is added where the optimal stabilizer state is necessarily
    // entangled and the non-diagonal selections are visible.
    print_panel("LiH", 4.8, 2023);
    print_panel("H2", 2.1, 2024);
}

int
main(int argc, char** argv)
{
    print_fig06();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
